// Publishing user behaviour sequences under differential privacy — the
// mooc scenario of Section 6.2, end to end:
//
//   1. pick the length cap l⊤ as a *private* ~95% quantile (footnote 2),
//   2. truncate, 3. build the private PST (Section 4.2),
//   4. mine top-k frequent action patterns from the model,
//   5. sample a synthetic dataset that can be shared downstream.
#include <cstdio>

#include "data/seq_gen.h"
#include "dp/budget.h"
#include "dp/quantile.h"
#include "dp/rng.h"
#include "eval/metrics.h"
#include "seq/pst_privtree.h"
#include "seq/topk.h"

int main() {
  privtree::Rng rng(11);
  const double total_epsilon = 1.0;
  privtree::PrivacyBudget budget(total_epsilon);

  const privtree::SequenceDataset sessions =
      privtree::GenerateMoocLike(80362, rng);
  std::printf("sessions: %zu, alphabet: %zu actions, avg length %.2f\n",
              sessions.size(), sessions.alphabet_size(),
              sessions.AverageLength());

  // Step 1: a small budget slice buys a private length cap.
  const double quantile_epsilon = budget.SpendFraction(0.05);
  std::vector<double> lengths(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    lengths[i] = static_cast<double>(sessions.LengthWithEnd(i));
  }
  const double private_quantile = privtree::PrivateQuantile(
      lengths, 0.95, 1.0, 200.0, quantile_epsilon, rng);
  const auto l_top = static_cast<std::size_t>(private_quantile) + 1;
  std::printf("private 95%% quantile => l_top = %zu (epsilon %.3f)\n", l_top,
              quantile_epsilon);

  // Steps 2-3: truncate and build the private PST with the rest.
  const privtree::SequenceDataset truncated = sessions.Truncate(l_top);
  const double model_epsilon = budget.SpendRemaining();
  privtree::PrivatePstOptions options;
  options.l_top = l_top;
  const auto result =
      privtree::BuildPrivatePst(truncated, model_epsilon, options, rng);
  std::printf("private PST: %zu nodes, %zu leaves (epsilon %.3f)\n",
              result.model.size(), result.model.LeafCount(), model_epsilon);

  // Step 4: top-10 frequent action patterns, mined from the model alone.
  const auto mined = privtree::TopKFromModel(result.model, 10, 5);
  const auto exact = privtree::ExactTopKStrings(sessions, 10, 5);
  std::printf("\ntop-10 patterns (model estimate vs exact count):\n");
  for (std::size_t i = 0; i < mined.strings.size(); ++i) {
    std::string pattern;
    for (privtree::Symbol x : mined.strings[i]) {
      pattern += static_cast<char>('A' + x);
    }
    std::printf("  %-8s est %9.0f\n", pattern.c_str(), mined.counts[i]);
  }
  std::printf("precision vs exact top-10: %.2f\n",
              privtree::TopKPrecision(exact, mined));

  // Step 5: synthetic data, safe to share (post-processing of a DP model).
  privtree::SequenceDataset synthetic(sessions.alphabet_size());
  for (int i = 0; i < 20000; ++i) {
    synthetic.Add(result.model.SampleSequence(rng, l_top));
  }
  const auto real_hist = sessions.LengthHistogram();
  const auto synth_hist = synthetic.LengthHistogram();
  std::printf(
      "\nsynthetic sample: %zu sequences, avg length %.2f (real %.2f),\n"
      "length-distribution TV distance %.3f\n",
      synthetic.size(), synthetic.AverageLength(), sessions.AverageLength(),
      privtree::TotalVariationDistance(
          std::vector<double>(real_hist.begin(), real_hist.end()),
          std::vector<double>(synth_hist.begin(), synth_hist.end())));
  return 0;
}
