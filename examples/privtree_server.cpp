// privtree_server — serve DP synopses of one dataset over a socket.
//
//   privtree_server <data.csv> <dim|seq:alphabet> [--port=N] [--threads=N]
//                   [--cache=N] [--max-queue=N] [--max-pending-spills=N]
//                   [--spill-dir=PATH]
//
// A plain <dim> loads a spatial point CSV (domain: the unit cube — rescale
// your data; a data-derived bounding box would leak); `seq:<alphabet>`
// loads a sequence dataset (one whitespace-separated symbol row per line)
// and serves the sequence-kind methods (pst_privtree, ngram) through
// SeqQueryBatch frames instead of box batches.  Either way the server
// answers concurrent fit, query-batch, warm and stats requests over the
// length-prefixed binary protocol (src/server/protocol.h) on
// 127.0.0.1:--port (default 7311; 0 picks an ephemeral port).  Requests
// execute on an AsyncEngine over a --threads pool and a --cache-synopsis
// SynopsisCache, so every client shares one cache and one admission
// controller; answers equal in-process ReleaseSession answers for the same
// seed, bit for bit.  The process runs until a client sends Shutdown
// (`privtree_cli shutdown --connect=...`) or it is signalled.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "data/csv.h"
#include "release/dataset.h"
#include "seq/sequence.h"
#include "serve/parallel_runner.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/async_engine.h"
#include "server/server_loop.h"
#include "server/socket.h"
#include "spatial/box.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <data.csv> <dim|seq:alphabet> [--port=N] "
               "[--threads=N] [--cache=N] [--max-queue=N] "
               "[--max-pending-spills=N] [--spill-dir=PATH]\n",
               argv0);
  return 2;
}

struct ServerFlags {
  std::uint16_t port = 7311;
  std::size_t threads = privtree::serve::DefaultThreadCount();
  std::size_t cache_capacity = 64;
  std::size_t max_queue = 256;
  std::size_t max_pending_spills = 128;
  std::string spill_dir;
};

bool ParseSizeFlag(const std::string& arg, const char* name,
                   std::size_t* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  const long parsed = std::atol(arg.c_str() + prefix.size());
  if (parsed < 0) {
    std::fprintf(stderr, "error: %s needs a non-negative integer\n", name);
    std::exit(2);
  }
  *out = static_cast<std::size_t>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const bool sequence = std::strncmp(argv[2], "seq:", 4) == 0;
  const auto dim = static_cast<std::size_t>(
      std::atol(sequence ? argv[2] + 4 : argv[2]));
  if (dim == 0 || dim > (sequence ? privtree::kMaxAlphabetSize : 8)) {
    return Usage(argv[0]);
  }

  ServerFlags flags;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    std::size_t port_value = 0;
    if (ParseSizeFlag(arg, "--port", &port_value)) {
      if (port_value > 65535) {
        std::fprintf(stderr, "error: --port out of range\n");
        return 2;
      }
      flags.port = static_cast<std::uint16_t>(port_value);
    } else if (ParseSizeFlag(arg, "--threads", &flags.threads) ||
               ParseSizeFlag(arg, "--cache", &flags.cache_capacity) ||
               ParseSizeFlag(arg, "--max-queue", &flags.max_queue) ||
               ParseSizeFlag(arg, "--max-pending-spills",
                             &flags.max_pending_spills)) {
    } else if (arg.rfind("--spill-dir=", 0) == 0) {
      flags.spill_dir = arg.substr(std::strlen("--spill-dir="));
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  // One of the two holds the served data for the process lifetime; the
  // engine only views it.
  std::optional<privtree::PointSet> points;
  std::optional<privtree::SequenceDataset> sequences;
  if (sequence) {
    auto loaded = privtree::LoadSequencesCsv(argv[1], dim);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    sequences.emplace(std::move(loaded).value());
    if (sequences->empty()) {
      std::fprintf(stderr, "error: %s is empty\n", argv[1]);
      return 1;
    }
  } else {
    auto loaded = privtree::LoadPointsCsv(argv[1], dim);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    points.emplace(std::move(loaded).value());
    if (points->empty()) {
      std::fprintf(stderr, "error: %s is empty\n", argv[1]);
      return 1;
    }
  }

  privtree::serve::SetDefaultThreadCount(flags.threads);
  privtree::serve::ThreadPool pool(flags.threads);
  auto cache =
      flags.spill_dir.empty()
          ? std::make_unique<privtree::serve::SynopsisCache>(
                flags.cache_capacity)
          : std::make_unique<privtree::serve::SynopsisCache>(
                flags.cache_capacity,
                privtree::serve::SpillOptions{flags.spill_dir, 256});

  privtree::server::EngineOptions options;
  options.admission.max_queue_depth = flags.max_queue;
  options.admission.max_pending_spills = flags.max_pending_spills;
  const privtree::release::Dataset dataset =
      sequence ? privtree::release::Dataset(*sequences)
               : privtree::release::Dataset(*points,
                                            privtree::Box::UnitCube(dim));
  privtree::server::AsyncEngine engine(dataset, pool, *cache, options);

  auto listener = privtree::server::ListenSocket::Listen(flags.port);
  if (!listener.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  privtree::server::ServerLoop loop(engine, std::move(listener).value());
  std::fprintf(stderr,
               "privtree_server listening on 127.0.0.1:%u "
               "(%zu %s, %s %zu, %zu worker%s, cache %zu)\n",
               loop.port(), dataset.size(),
               sequence ? "sequences" : "points",
               sequence ? "alphabet" : "dim", dim, pool.worker_count(),
               pool.worker_count() == 1 ? "" : "s", flags.cache_capacity);
  std::fflush(stderr);
  const privtree::Status served = loop.Run();
  if (!served.ok()) {
    std::fprintf(stderr, "error: %s\n", served.ToString().c_str());
    return 1;
  }
  const auto stats = engine.Stats();
  std::fprintf(stderr,
               "privtree_server stopped: %zu admitted, %zu shed "
               "(queue), %zu shed (cache), %zu expired, %zu coalesced\n",
               stats.admission.admitted, stats.admission.shed_queue_full,
               stats.admission.shed_cache_saturated, stats.admission.expired,
               stats.admission.coalesced_fits);
  return 0;
}
