// privtree_server — serve DP synopses of one or more datasets over a
// socket.
//
//   privtree_server <data.csv> <dim|seq:alphabet> [flags]
//   privtree_server --data=<name>:<path>:<dim|seq:alphabet> [--data=...]
//                   [flags]
//
// Flags: [--port=N] [--threads=N] [--cache=N] [--max-queue=N]
//        [--max-pending-spills=N] [--spill-dir=PATH]
//        [--loop=epoll|threads] [--idle-timeout-ms=N]
//        [--drain-timeout-ms=N] [--max-connections=N]
//        [--session-budget=EPS] [--no-uploads]
//        [--stats-file=PATH] [--stats-interval-ms=N] [--trace-slow-ms=N]
//
// A plain <dim> loads a spatial point CSV (domain: the unit cube — rescale
// your data; a data-derived bounding box would leak); `seq:<alphabet>`
// loads a sequence dataset (one whitespace-separated symbol row per line)
// and serves the sequence-kind methods (pst_privtree, ngram) through
// SeqQueryBatch frames instead of box batches.  Repeated --data flags host
// several tenants in one process: each dataset gets its own AsyncEngine
// behind a shared ThreadPool and SynopsisCache, keyed by its fingerprint
// (clients select tenants per request; the first --data is the default).
// Clients may also upload datasets at runtime via RegisterDataset frames
// unless --no-uploads.
//
// --loop picks the serving front end: `epoll` (default) multiplexes every
// connection over one readiness loop — the production choice at high
// connection counts — while `threads` parks one thread per client and
// exists as the parity oracle; both route through one Dispatcher, so their
// answers are bit-for-bit identical (and equal in-process ReleaseSession
// answers for the same seed).  --session-budget caps each connection's
// total ε across its fits (0 = unlimited).  The process runs until a
// client sends Shutdown (`privtree_cli shutdown --connect=...`) or it is
// signalled.
//
// Observability: --stats-file=PATH snapshots the whole metrics registry
// (the same JSON a GetStats frame returns) to PATH every
// --stats-interval-ms (default 1000), atomically via rename, plus one
// final snapshot at exit; --trace-slow-ms=N logs the full span breakdown
// of any request slower than N milliseconds to stderr.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sync.h"
#include "data/csv.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "release/dataset.h"
#include "seq/sequence.h"
#include "serve/parallel_runner.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/dataset_registry.h"
#include "server/dispatcher.h"
#include "server/event/event_loop.h"
#include "server/server_loop.h"
#include "server/socket.h"
#include "spatial/box.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <data.csv> <dim|seq:alphabet> [flags]\n"
      "       %s --data=<name>:<path>:<dim|seq:alphabet> [--data=...] "
      "[flags]\n"
      "flags: [--port=N] [--threads=N] [--cache=N] [--max-queue=N]\n"
      "       [--max-pending-spills=N] [--spill-dir=PATH]\n"
      "       [--loop=epoll|threads] [--idle-timeout-ms=N]\n"
      "       [--drain-timeout-ms=N] [--max-connections=N]\n"
      "       [--session-budget=EPS] [--no-uploads]\n"
      "       [--stats-file=PATH] [--stats-interval-ms=N] "
      "[--trace-slow-ms=N]\n",
      argv0, argv0);
  return 2;
}

/// Snapshots the metrics registry to `path` every `interval_ms` until
/// Stop(), plus once more on the way out (so a short-lived server still
/// leaves its final numbers behind).
class StatsFileWriter {
 public:
  StatsFileWriter(std::string path, std::size_t interval_ms)
      : path_(std::move(path)), interval_ms_(interval_ms) {
    writer_ = std::thread([this] { Run(); });
  }

  ~StatsFileWriter() { Stop(); }

  void Stop() {
    {
      privtree::MutexLock lk(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.NotifyAll();
    writer_.join();
    privtree::obs::WriteStatsFile(path_);  // The final snapshot.
  }

 private:
  void Run() {
    privtree::MutexLock lk(mu_);
    while (!stopped_) {
      cv_.WaitFor(lk, std::chrono::milliseconds(interval_ms_));
      if (stopped_) break;
      lk.Unlock();
      if (!privtree::obs::WriteStatsFile(path_)) {
        std::fprintf(stderr,
                     "privtree_server: stats snapshot to %s failed\n",
                     path_.c_str());
      }
      lk.Lock();
    }
  }

  const std::string path_;
  const std::size_t interval_ms_;
  privtree::Mutex mu_;
  privtree::CondVar cv_;
  bool stopped_ GUARDED_BY(mu_) = false;
  std::thread writer_;
};

struct DataSpec {
  std::string name;
  std::string path;
  bool sequence = false;
  std::size_t dim = 0;  ///< Spatial dim or alphabet size.
};

struct ServerFlags {
  std::uint16_t port = 7311;
  std::size_t threads = privtree::serve::DefaultThreadCount();
  std::size_t cache_capacity = 64;
  std::size_t max_queue = 256;
  std::size_t max_pending_spills = 128;
  std::string spill_dir;
  bool epoll = true;
  std::size_t idle_timeout_ms = 30000;
  std::size_t drain_timeout_ms = 5000;
  std::size_t max_connections = 4096;
  double session_budget = 0.0;
  bool allow_uploads = true;
  std::string stats_file;
  std::size_t stats_interval_ms = 1000;
  std::size_t trace_slow_ms = 0;
};

bool ParseSizeFlag(const std::string& arg, const char* name,
                   std::size_t* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  const long parsed = std::atol(arg.c_str() + prefix.size());
  if (parsed < 0) {
    std::fprintf(stderr, "error: %s needs a non-negative integer\n", name);
    std::exit(2);
  }
  *out = static_cast<std::size_t>(parsed);
  return true;
}

/// Parses "<dim>" or "seq:<alphabet>" into (sequence, dim); 0 on failure.
bool ParseDimSpec(const char* text, bool* sequence, std::size_t* dim) {
  *sequence = std::strncmp(text, "seq:", 4) == 0;
  *dim = static_cast<std::size_t>(
      std::atol(*sequence ? text + 4 : text));
  return *dim != 0 &&
         *dim <= (*sequence ? privtree::kMaxAlphabetSize : std::size_t{8});
}

/// Parses "--data=<name>:<path>:<dimspec>".  The name is everything before
/// the first ':'.  The dimspec is either the piece after the last ':' (a
/// spatial dim) or — since a sequence dimspec "seq:<alphabet>" carries a
/// ':' of its own — a trailing ":seq:<alphabet>"; the path, which may
/// itself contain ':', is everything in between.
bool ParseDataFlag(const std::string& arg, DataSpec* out) {
  if (arg.rfind("--data=", 0) != 0) return false;
  const std::string body = arg.substr(std::strlen("--data="));
  const std::size_t first = body.find(':');
  if (first == std::string::npos) {
    std::fprintf(stderr, "error: --data needs <name>:<path>:<dimspec>\n");
    std::exit(2);
  }
  out->name = body.substr(0, first);
  const std::string rest = body.substr(first + 1);
  const std::size_t seq = rest.rfind(":seq:");
  std::size_t split = std::string::npos;  // Path/dimspec boundary.
  if (seq != std::string::npos &&
      ParseDimSpec(rest.c_str() + seq + 1, &out->sequence, &out->dim)) {
    split = seq;
  } else {
    const std::size_t last = rest.rfind(':');
    if (last != std::string::npos &&
        ParseDimSpec(rest.c_str() + last + 1, &out->sequence, &out->dim)) {
      split = last;
    }
  }
  if (split == std::string::npos) {
    std::fprintf(stderr, "error: bad --data spec '%s'\n", body.c_str());
    std::exit(2);
  }
  out->path = rest.substr(0, split);
  if (out->name.empty() || out->path.empty()) {
    std::fprintf(stderr, "error: bad --data spec '%s'\n", body.c_str());
    std::exit(2);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<DataSpec> data;
  int flag_start = 1;
  // Legacy positional form: <data.csv> <dim|seq:alphabet> first.
  if (argc >= 3 && argv[1][0] != '-') {
    DataSpec spec;
    spec.name = "default";
    spec.path = argv[1];
    if (!ParseDimSpec(argv[2], &spec.sequence, &spec.dim)) {
      return Usage(argv[0]);
    }
    data.push_back(std::move(spec));
    flag_start = 3;
  }

  ServerFlags flags;
  for (int i = flag_start; i < argc; ++i) {
    const std::string arg = argv[i];
    std::size_t port_value = 0;
    DataSpec data_spec;
    if (ParseDataFlag(arg, &data_spec)) {
      data.push_back(std::move(data_spec));
    } else if (ParseSizeFlag(arg, "--port", &port_value)) {
      if (port_value > 65535) {
        std::fprintf(stderr, "error: --port out of range\n");
        return 2;
      }
      flags.port = static_cast<std::uint16_t>(port_value);
    } else if (ParseSizeFlag(arg, "--threads", &flags.threads) ||
               ParseSizeFlag(arg, "--cache", &flags.cache_capacity) ||
               ParseSizeFlag(arg, "--max-queue", &flags.max_queue) ||
               ParseSizeFlag(arg, "--max-pending-spills",
                             &flags.max_pending_spills) ||
               ParseSizeFlag(arg, "--idle-timeout-ms",
                             &flags.idle_timeout_ms) ||
               ParseSizeFlag(arg, "--drain-timeout-ms",
                             &flags.drain_timeout_ms) ||
               ParseSizeFlag(arg, "--max-connections",
                             &flags.max_connections) ||
               ParseSizeFlag(arg, "--stats-interval-ms",
                             &flags.stats_interval_ms) ||
               ParseSizeFlag(arg, "--trace-slow-ms",
                             &flags.trace_slow_ms)) {
    } else if (arg.rfind("--stats-file=", 0) == 0) {
      flags.stats_file = arg.substr(std::strlen("--stats-file="));
    } else if (arg.rfind("--spill-dir=", 0) == 0) {
      flags.spill_dir = arg.substr(std::strlen("--spill-dir="));
    } else if (arg == "--loop=epoll") {
      flags.epoll = true;
    } else if (arg == "--loop=threads") {
      flags.epoll = false;
    } else if (arg.rfind("--session-budget=", 0) == 0) {
      flags.session_budget =
          std::atof(arg.c_str() + std::strlen("--session-budget="));
      if (flags.session_budget < 0) {
        std::fprintf(stderr, "error: --session-budget must be >= 0\n");
        return 2;
      }
    } else if (arg == "--no-uploads") {
      flags.allow_uploads = false;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (data.empty()) return Usage(argv[0]);

  privtree::serve::SetDefaultThreadCount(flags.threads);
  privtree::serve::ThreadPool pool(flags.threads);
  auto cache =
      flags.spill_dir.empty()
          ? std::make_unique<privtree::serve::SynopsisCache>(
                flags.cache_capacity)
          : std::make_unique<privtree::serve::SynopsisCache>(
                flags.cache_capacity,
                privtree::serve::SpillOptions{flags.spill_dir, 256});

  privtree::server::DatasetRegistryOptions registry_options;
  registry_options.engine.admission.max_queue_depth = flags.max_queue;
  registry_options.engine.admission.max_pending_spills =
      flags.max_pending_spills;
  privtree::server::DatasetRegistry registry(pool, *cache,
                                             registry_options);

  // Load every dataset into the registry; the registry owns the storage.
  for (DataSpec& spec : data) {
    privtree::Result<std::uint64_t> registered =
        privtree::Status::Internal("unreachable");
    if (spec.sequence) {
      auto loaded = privtree::LoadSequencesCsv(spec.path, spec.dim);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s: %s\n", spec.path.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      registered = registry.Register(spec.name, std::move(loaded).value());
    } else {
      auto loaded = privtree::LoadPointsCsv(spec.path, spec.dim);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s: %s\n", spec.path.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      registered =
          registry.Register(spec.name, std::move(loaded).value(),
                            privtree::Box::UnitCube(spec.dim));
    }
    if (!registered.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", spec.name.c_str(),
                   registered.status().ToString().c_str());
      return 1;
    }
  }

  privtree::server::DispatcherOptions dispatch_options;
  dispatch_options.session_budget = flags.session_budget;
  dispatch_options.allow_uploads = flags.allow_uploads;
  privtree::server::Dispatcher dispatcher(registry, dispatch_options);

  if (flags.trace_slow_ms > 0) {
    privtree::obs::TraceRing::Global().SetSlowThresholdMillis(
        static_cast<std::int64_t>(flags.trace_slow_ms));
  }
  std::unique_ptr<StatsFileWriter> stats_writer;
  if (!flags.stats_file.empty()) {
    stats_writer = std::make_unique<StatsFileWriter>(
        flags.stats_file, std::max<std::size_t>(1, flags.stats_interval_ms));
  }

  auto listener = privtree::server::ListenSocket::Listen(flags.port);
  if (!listener.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }

  privtree::Status served = privtree::Status::OK();
  std::uint16_t port = 0;
  if (flags.epoll) {
    privtree::server::EventLoopOptions loop_options;
    loop_options.idle_timeout =
        std::chrono::milliseconds(flags.idle_timeout_ms);
    loop_options.drain_timeout =
        std::chrono::milliseconds(flags.drain_timeout_ms);
    loop_options.max_connections = flags.max_connections;
    privtree::server::EventLoop loop(dispatcher,
                                     std::move(listener).value(),
                                     loop_options);
    port = loop.port();
    std::fprintf(stderr,
                 "privtree_server listening on 127.0.0.1:%u "
                 "(epoll, %zu tenant%s, %zu worker%s, cache %zu)\n",
                 port, registry.size(), registry.size() == 1 ? "" : "s",
                 pool.worker_count(), pool.worker_count() == 1 ? "" : "s",
                 flags.cache_capacity);
    std::fflush(stderr);
    served = loop.Run();
    const auto stats = loop.stats();
    std::fprintf(stderr,
                 "privtree_server event loop: %llu accepted, %llu frames, "
                 "%llu reaped idle, %llu malformed, %llu refused\n",
                 static_cast<unsigned long long>(stats.accepted),
                 static_cast<unsigned long long>(stats.served_frames),
                 static_cast<unsigned long long>(stats.reaped_idle),
                 static_cast<unsigned long long>(stats.malformed_frames),
                 static_cast<unsigned long long>(stats.refused_at_capacity));
  } else {
    privtree::server::ServerLoop loop(dispatcher,
                                      std::move(listener).value());
    port = loop.port();
    std::fprintf(stderr,
                 "privtree_server listening on 127.0.0.1:%u "
                 "(threads, %zu tenant%s, %zu worker%s, cache %zu)\n",
                 port, registry.size(), registry.size() == 1 ? "" : "s",
                 pool.worker_count(), pool.worker_count() == 1 ? "" : "s",
                 flags.cache_capacity);
    std::fflush(stderr);
    served = loop.Run();
  }
  if (stats_writer) stats_writer->Stop();
  if (!served.ok()) {
    std::fprintf(stderr, "error: %s\n", served.ToString().c_str());
    return 1;
  }
  const auto stats =
      registry.Find(registry.default_fingerprint())->Stats();
  std::fprintf(stderr,
               "privtree_server stopped: %zu admitted, %zu shed "
               "(queue), %zu shed (cache), %zu expired, %zu coalesced\n",
               stats.admission.admitted, stats.admission.shed_queue_full,
               stats.admission.shed_cache_saturated, stats.admission.expired,
               stats.admission.coalesced_fits);
  return 0;
}
