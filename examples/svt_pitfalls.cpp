// Why you should not use the "binary SVT" from the literature (Section 5):
// a runnable demonstration of the privacy failure, plus the safe
// alternative (the paper's improved SVT, Algorithm 6).
#include <cstdio>
#include <vector>

#include "dp/rng.h"
#include "svt/privacy_loss.h"
#include "svt/svt.h"

int main() {
  privtree::Rng rng(3);

  std::printf(
      "Scenario: a stream of counting queries answered 'above/below\n"
      "threshold' with Laplace noise of scale 2/eps (Claim 1 says this is\n"
      "eps-DP regardless of the number of queries k).\n\n");

  const double epsilon = 1.0;
  const double lambda = 2.0 / epsilon;  // The scale Claim 1 recommends.
  std::printf("claimed bound on the privacy loss: %.1f (= 2*eps)\n",
              2.0 * epsilon);
  std::printf("%-6s %-24s\n", "k", "actual worst-case loss");
  for (int k : {4, 16, 64}) {
    std::printf("%-6d %-24.2f\n", k,
                privtree::BinarySvtLossLemma51(k, lambda));
  }
  std::printf(
      "\nThe loss grows as ~k/(2*lambda): with enough queries, an adversary\n"
      "distinguishes neighboring datasets almost surely.  PrivTree avoids\n"
      "SVT entirely; when you do need an SVT, use Algorithm 6:\n\n");

  // The safe variant: ImprovedSvt genuinely is ε-DP with λ = 2/ε, paying a
  // factor t in the per-query noise for t positive reports.
  const std::vector<double> answers = {120.0, 3.0, 250.0, -10.0, 99.0};
  const auto flags = privtree::ImprovedSvt(answers, 50.0, lambda,
                                           /*t=*/2, rng);
  std::printf("ImprovedSvt(threshold=50, t=2) on {120, 3, 250, -10, 99}:\n ");
  for (std::size_t i = 0; i < flags.size(); ++i) {
    std::printf(" q%zu=%d", i + 1, flags[i]);
  }
  std::printf("   (stops after t=2 positives; eps-DP with lambda = 2/eps)\n");
  return 0;
}
