// The full data-release workflow a curator would run:
//
//   1. load the sensitive points from CSV (here: generated and saved
//      first, standing in for the real file),
//   2. build the ε-DP synopsis,
//   3. persist the synopsis to disk — THIS file is what gets published,
//   4. (consumer side) load the synopsis and answer queries with no
//      access to the original data.
#include <cstdio>
#include <string>

#include "data/csv.h"
#include "data/spatial_gen.h"
#include "dp/rng.h"
#include "spatial/serialization.h"
#include "spatial/spatial_histogram.h"

int main() {
  const std::string data_csv = "/tmp/privtree_example_points.csv";
  const std::string synopsis_path = "/tmp/privtree_example_synopsis.txt";
  privtree::Rng rng(31);

  // --- Curator side -------------------------------------------------
  {
    const privtree::PointSet sensitive =
        privtree::GenerateRoadLike(120000, rng);
    if (auto s = privtree::SavePointsCsv(data_csv, sensitive); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  auto loaded_points = privtree::LoadPointsCsv(data_csv, 2);
  if (!loaded_points.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded_points.status().ToString().c_str());
    return 1;
  }
  std::printf("curator: loaded %zu sensitive points from %s\n",
              loaded_points.value().size(), data_csv.c_str());

  const privtree::SpatialHistogram synopsis =
      privtree::BuildPrivTreeHistogram(loaded_points.value(),
                                       privtree::Box::UnitCube(2),
                                       /*epsilon=*/1.0, {}, rng);
  if (auto s = privtree::SaveSpatialHistogram(synopsis_path, synopsis);
      !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("curator: published %zu-node synopsis to %s (epsilon = 1)\n",
              synopsis.tree.size(), synopsis_path.c_str());

  // --- Consumer side ------------------------------------------------
  auto published = privtree::LoadSpatialHistogram(synopsis_path);
  if (!published.ok()) {
    std::fprintf(stderr, "consumer load failed: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  std::printf("\nconsumer: answering queries from the synopsis alone:\n");
  const privtree::Box queries[] = {
      privtree::Box({0.0, 0.0}, {0.25, 0.25}),
      privtree::Box({0.4, 0.4}, {0.6, 0.6}),
      privtree::Box({0.1, 0.7}, {0.35, 0.95}),
  };
  for (const auto& q : queries) {
    std::printf("  count%-32s ~= %.0f\n", q.ToString().c_str(),
                published.value().Query(q));
  }

  std::remove(data_csv.c_str());
  std::remove(synopsis_path.c_str());
  return 0;
}
