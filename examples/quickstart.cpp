// Quickstart: build an ε-differentially private spatial histogram over a
// 2-d point set with PrivTree and answer range-count queries.
//
//   ./quickstart [epsilon]        (default ε = 1.0)
//
// The example generates a skewed synthetic dataset (a stand-in for, say,
// user check-ins), builds the private synopsis, and compares its answers
// with the exact counts — which the data owner can see, but a consumer of
// the synopsis cannot.
#include <cstdio>
#include <cstdlib>

#include "data/spatial_gen.h"
#include "dp/rng.h"
#include "spatial/spatial_histogram.h"

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;
  if (epsilon <= 0.0) {
    std::fprintf(stderr, "epsilon must be positive\n");
    return 1;
  }

  // 1. The sensitive dataset: 100k points in [0,1)^2 with strong clusters.
  privtree::Rng rng(2026);
  const privtree::PointSet points = privtree::GenerateGowallaLike(100000, rng);
  const privtree::Box domain = privtree::Box::UnitCube(2);
  std::printf("dataset: %zu points in %s\n", points.size(),
              domain.ToString().c_str());

  // 2. One call builds the ε-DP synopsis: PrivTree spends ε/2 on the tree
  //    shape and ε/2 on noisy leaf counts (Section 3.4 of the paper).
  const privtree::SpatialHistogram hist = privtree::BuildPrivTreeHistogram(
      points, domain, epsilon, privtree::PrivTreeHistogramOptions{}, rng);
  std::printf(
      "synopsis: %zu nodes, %zu leaves, height %d (epsilon = %.2f)\n",
      hist.tree.size(), hist.tree.LeafCount(), hist.tree.Height(), epsilon);

  // 3. Answer arbitrary range-count queries from the synopsis alone.
  const privtree::Box queries[] = {
      privtree::Box({0.0, 0.0}, {0.5, 0.5}),
      privtree::Box({0.25, 0.25}, {0.3, 0.3}),
      privtree::Box({0.6, 0.1}, {0.9, 0.35}),
  };
  std::printf("\n%-28s %12s %12s\n", "query", "private", "exact");
  for (const privtree::Box& q : queries) {
    std::printf("%-28s %12.1f %12zu\n", q.ToString().c_str(), hist.Query(q),
                points.ExactRangeCount(q));
  }
  std::printf(
      "\nThe private answers above are safe to publish; the exact column\n"
      "is shown only for comparison.\n");
  return 0;
}
