// Releasing a 4-dimensional taxi-trip table (pickup x/y, dropoff x/y)
// under differential privacy — the NYC scenario of Section 6.1.
//
// Demonstrates:
//   * PrivTree on 4-d data (fanout 2^4 = 16),
//   * answering "how many trips from region A to region B" queries,
//   * why a uniform grid struggles on the same data.
#include <cmath>
#include <cstdio>

#include "data/spatial_gen.h"
#include "dp/rng.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "hist/ug.h"
#include "spatial/spatial_histogram.h"

int main() {
  privtree::Rng rng(7);
  const double epsilon = 0.8;
  const privtree::PointSet trips = privtree::GenerateNycLike(98013, rng);
  const privtree::Box domain = privtree::Box::UnitCube(4);
  std::printf("trips: %zu, dimensions: pickup(x,y) + dropoff(x,y)\n",
              trips.size());

  const privtree::SpatialHistogram hist = privtree::BuildPrivTreeHistogram(
      trips, domain, epsilon, {}, rng);
  std::printf("PrivTree synopsis: %zu nodes, height %d\n", hist.tree.size(),
              hist.tree.Height());

  // An origin-destination query: trips from downtown to downtown.
  const privtree::Box od_query({0.47, 0.47, 0.47, 0.47},
                               {0.53, 0.53, 0.53, 0.53});
  std::printf("\ndowntown->downtown trips: private %.0f, exact %zu\n",
              hist.Query(od_query), trips.ExactRangeCount(od_query));

  // Workload comparison against the UG baseline.
  const auto queries = privtree::GenerateRangeQueries(
      domain, 300, privtree::kMediumQueries, rng);
  const auto exact = privtree::ExactAnswers(queries, trips);
  const auto ug = privtree::BuildUniformGrid(trips, domain, epsilon, {}, rng);
  const double privtree_error = privtree::MeanRelativeError(
      queries, exact, [&](const privtree::Box& q) { return hist.Query(q); },
      trips.size());
  const double ug_error = privtree::MeanRelativeError(
      queries, exact, [&](const privtree::Box& q) { return ug.Query(q); },
      trips.size());
  std::printf(
      "\nmean relative error over 300 medium queries (epsilon = %.1f):\n"
      "  PrivTree: %.3f\n  UG:       %.3f\n",
      epsilon, privtree_error, ug_error);
  std::printf(
      "\nPrivTree adapts its resolution to the dense downtown core, which\n"
      "a uniform grid cannot do without wasting budget on empty space.\n");
  return 0;
}
