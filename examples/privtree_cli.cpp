// privtree_cli — build and query released synopses from the command line.
//
//   privtree_cli list
//   privtree_cli run <data.csv> <dim> <epsilon> --method=<name>
//                    [--options=k=v,...] [--threads=N]
//                    (queries on stdin)
//   privtree_cli build <data.csv> <dim> <epsilon> <synopsis.out>
//                    [--method=<name>] [--options=k=v,...]
//   privtree_cli query <synopsis.out>           (queries on stdin)
//   privtree_cli query --connect=<host:port> <epsilon> [--method=<name>]
//                    [--options=k=v,...] [--deadline-ms=N]
//                    [--dataset=<name|fingerprint>]
//                    (queries on stdin)
//   privtree_cli datasets --connect=<host:port>
//   privtree_cli stats --connect=<host:port>
//   privtree_cli shutdown --connect=<host:port>
//
// <dim> selects the dataset kind: a plain integer loads a spatial point
// CSV of that dimensionality; `seq:<alphabet>` loads a sequence dataset
// (one whitespace-separated row of integer symbols per line) over that
// alphabet and defaults --method to pst_privtree.
//
// `list` prints every method in the release registry.  `run` fits any
// registered method through the serving layer — a serve::ParallelRunner
// backed by the process synopsis cache — and answers the stdin query boxes
// with a QueryBatch sharded across --threads workers (default 1, or
// PRIVTREE_THREADS); the synopsis lives only in memory.  The answers are
// identical at any thread count.  `build` fits through the same serving
// path and persists the synopsis — *any* registered method — in the
// universal envelope format (release/serialization.h); `query` re-loads it
// and answers without ever touching the data (persisting a released
// synopsis is pure post-processing, free under DP).  `build` and `run` fit
// with the same deterministic seed, so the on-disk answers match an
// in-memory `run` bit for bit.  Legacy v1 text files still load.
//
// `query --connect` answers through a running privtree_server instead: the
// boxes travel over the serving protocol (src/server/protocol.h) and the
// fit happens server-side with the same seed `run` uses, so remote answers
// diff clean against local ones (the CI smoke relies on this).  A
// multi-tenant server (protocol v3) hosts several datasets; `datasets
// --connect` lists them and `query --dataset=<name|fingerprint>` selects
// which tenant answers (default: the first registered).  `shutdown
// --connect` asks that server to exit cleanly.
//
// Spatial query lines are "lo_1 hi_1 ... lo_d hi_d"; sequence query lines
// are "freq s1 s2 ...", "prefix s1 s2 ..." or "topk <k> <max_len>" (see
// release/sequence_query.h).  The answer is printed per line.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "data/csv.h"
#include "dp/rng.h"
#include "release/builtin_methods.h"
#include "release/dataset.h"
#include "release/options.h"
#include "release/registry.h"
#include "release/sequence_query.h"
#include "release/serialization.h"
#include "seq/sequence.h"
#include "serve/parallel_runner.h"
#include "serve/thread_pool.h"
#include "server/client.h"
#include "server/request.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s list\n"
      "  %s run <data.csv> <dim|seq:alphabet> <epsilon> --method=<name> "
      "[--options=k=v,...] [--threads=N]\n"
      "  %s build <data.csv> <dim|seq:alphabet> <epsilon> <synopsis.out> "
      "[--method=<name>] [--options=k=v,...]\n"
      "  %s query <synopsis.out>   (queries on stdin)\n"
      "  %s query --connect=<host:port> <epsilon> [--method=<name>] "
      "[--options=k=v,...] [--deadline-ms=N] [--dataset=<name|fp>]\n"
      "  %s datasets --connect=<host:port>\n"
      "  %s stats --connect=<host:port>\n"
      "  %s shutdown --connect=<host:port>\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// What the <dim|seq:alphabet> positional selected.
struct InputKind {
  bool sequence = false;
  std::size_t dim = 0;  ///< Spatial dim, or the sequence alphabet size.
};

/// Parses "<dim>" (1..8) or "seq:<alphabet>" (1..4096); false on anything
/// else.
bool ParseDimArg(const char* arg, InputKind* out) {
  if (std::strncmp(arg, "seq:", 4) == 0) {
    const long alphabet = std::atol(arg + 4);
    if (alphabet < 1 ||
        alphabet > static_cast<long>(privtree::kMaxAlphabetSize)) {
      return false;
    }
    out->sequence = true;
    out->dim = static_cast<std::size_t>(alphabet);
    return true;
  }
  const long dim = std::atol(arg);
  if (dim < 1 || dim > 8) return false;
  out->sequence = false;
  out->dim = static_cast<std::size_t>(dim);
  return true;
}

/// Flags accepted after the positional arguments.
struct CliFlags {
  std::string method = "privtree";
  privtree::release::MethodOptions options;
  std::size_t threads = privtree::serve::DefaultThreadCount();
  std::int64_t deadline_ms = 0;  ///< Remote-request deadline; 0 = none.
  std::string dataset;  ///< Remote tenant (name or fingerprint); "" = default.
};

/// Parses trailing --method=/--options= flags; returns false (after a
/// diagnostic) on an unknown flag, unregistered method name, a method
/// whose registry kind does not match the input kind, malformed options
/// text, an option key the method does not accept, a value that fails the
/// key's type or declared range, or a method that cannot fit the input's
/// dimensionality.
bool ParseFlags(int argc, char** argv, int first_flag, InputKind input,
                CliFlags* flags) {
  if (input.sequence) flags->method = "pst_privtree";
  for (int i = first_flag; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--method=", 0) == 0) {
      flags->method = arg.substr(std::strlen("--method="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      const long parsed = std::atol(arg.c_str() + std::strlen("--threads="));
      if (parsed < 1) {
        std::fprintf(stderr, "error: --threads needs a positive integer\n");
        return false;
      }
      flags->threads = static_cast<std::size_t>(parsed);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      flags->deadline_ms = std::atol(arg.c_str() +
                                     std::strlen("--deadline-ms="));
      if (flags->deadline_ms < 0) {
        std::fprintf(stderr, "error: --deadline-ms needs a non-negative "
                             "integer\n");
        return false;
      }
    } else if (arg.rfind("--dataset=", 0) == 0) {
      flags->dataset = arg.substr(std::strlen("--dataset="));
    } else if (arg.rfind("--options=", 0) == 0) {
      std::string error;
      if (!privtree::release::MethodOptions::TryParse(
              arg.substr(std::strlen("--options=")), &flags->options,
              &error)) {
        std::fprintf(stderr, "error: --options: %s\n", error.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  const auto& registry = privtree::release::GlobalMethodRegistry();
  if (!registry.Contains(flags->method)) {
    std::fprintf(stderr,
                 "error: unknown method \"%s\" (see `privtree_cli list`)\n",
                 flags->method.c_str());
    return false;
  }
  const privtree::release::DatasetKind wanted =
      input.sequence ? privtree::release::DatasetKind::kSequence
                     : privtree::release::DatasetKind::kSpatial;
  if (registry.Kind(flags->method) != wanted) {
    std::fprintf(
        stderr,
        "error: method \"%s\" fits %s datasets; the input here is %s "
        "(use %s)\n",
        flags->method.c_str(),
        std::string(privtree::release::DatasetKindName(
                        registry.Kind(flags->method)))
            .c_str(),
        std::string(privtree::release::DatasetKindName(wanted)).c_str(),
        input.sequence ? "a sequence method, e.g. --method=pst_privtree"
                       : "a spatial method, e.g. --method=privtree");
    return false;
  }
  const std::size_t required_dim = registry.RequiredDim(flags->method);
  if (!input.sequence && required_dim != 0 && input.dim != required_dim) {
    std::fprintf(stderr,
                 "error: method \"%s\" requires %zu-dimensional data "
                 "(got dim=%zu)\n",
                 flags->method.c_str(), required_dim, input.dim);
    return false;
  }
  const auto& allowed = registry.AllowedKeys(flags->method);
  for (const std::string& key : flags->options.Keys()) {
    const auto it =
        std::find_if(allowed.begin(), allowed.end(),
                     [&](const auto& candidate) {
                       return candidate.name == key;
                     });
    if (it == allowed.end()) {
      std::fprintf(stderr, "error: method \"%s\" has no option \"%s\";",
                   flags->method.c_str(), key.c_str());
      std::fprintf(stderr, " allowed:");
      for (const auto& k : allowed) {
        std::fprintf(stderr, " %s", k.name.c_str());
      }
      std::fprintf(stderr, "\n");
      return false;
    }
    const std::string value = flags->options.GetString(key, "");
    if (auto s = privtree::release::CheckOptionValue(*it, value); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return false;
    }
  }
  return true;
}

int RunList() {
  const auto& registry = privtree::release::GlobalMethodRegistry();
  for (const std::string& name : registry.Names()) {
    std::printf("%-12s %s\n", name.c_str(),
                registry.Description(name).c_str());
  }
  return 0;
}

/// Reads "lo_1 hi_1 ... lo_d hi_d" lines from stdin until EOF.  Invalid
/// boxes (lo > hi) are skipped with a diagnostic; a non-numeric token or a
/// truncated final record stops reading with a warning so the caller can
/// tell the workload was cut short.
std::vector<privtree::Box> ReadQueryBoxes(std::size_t dim) {
  std::vector<privtree::Box> out;
  std::vector<double> bounds(2 * dim);
  while (true) {
    bool stop = false;
    for (std::size_t j = 0; j < 2 * dim; ++j) {
      if (std::scanf("%lf", &bounds[j]) != 1) {
        if (!std::feof(stdin)) {
          std::fprintf(stderr,
                       "warning: non-numeric query input after %zu boxes; "
                       "ignoring the rest\n",
                       out.size());
        } else if (j > 0) {
          std::fprintf(stderr,
                       "warning: truncated final query record (%zu of %zu "
                       "coordinates); ignoring it\n",
                       j, 2 * dim);
        }
        stop = true;
        break;
      }
    }
    if (stop) return out;
    std::vector<double> lo(dim), hi(dim);
    bool valid = true;
    for (std::size_t j = 0; j < dim; ++j) {
      lo[j] = bounds[2 * j];
      hi[j] = bounds[2 * j + 1];
      valid = valid && lo[j] <= hi[j];
    }
    if (!valid) {
      std::fprintf(stderr, "warning: skipping box with lo > hi\n");
      continue;
    }
    out.emplace_back(std::move(lo), std::move(hi));
  }
}

/// Reads sequence query lines from stdin until EOF:
///   freq s1 s2 ...      estimated occurrences of the string
///   prefix s1 s2 ...    estimated sequences beginning with the string
///   topk <k> <max_len>  estimated frequency of the k-th most frequent
///                       string of length <= max_len
/// Invalid lines are skipped with a diagnostic (same spirit as the box
/// reader: a typo must not silently shift the answer rows).
std::vector<privtree::release::SequenceQuery> ReadSequenceQueries(
    std::size_t alphabet_size) {
  using privtree::release::SequenceQuery;
  std::vector<SequenceQuery> out;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string verb;
    if (!(in >> verb)) continue;  // Blank line.
    SequenceQuery query;
    if (verb == "freq" || verb == "prefix") {
      query.kind = verb == "freq"
                       ? privtree::release::SequenceQueryKind::kFrequency
                       : privtree::release::SequenceQueryKind::kPrefixCount;
      long symbol = 0;
      while (in >> symbol) {
        if (symbol < 0 || symbol > 0xFFFF) {
          query.symbols.clear();
          break;
        }
        query.symbols.push_back(static_cast<privtree::Symbol>(symbol));
      }
      // A non-numeric trailing token must not silently shorten the query
      // (the answer row would belong to a different question).
      if (!in.eof()) query.symbols.clear();
    } else if (verb == "topk") {
      query.kind = privtree::release::SequenceQueryKind::kTopK;
      long k = 0, max_len = 0;
      std::string extra;
      // Exactly two positive integers; a trailing token must not silently
      // reshape the query (same contract as the freq/prefix branch).
      if (in >> k >> max_len && k > 0 && max_len > 0 && !(in >> extra)) {
        query.k = static_cast<std::uint32_t>(k);
        query.max_len = static_cast<std::uint32_t>(max_len);
      }
    } else {
      std::fprintf(stderr, "warning: skipping query line \"%s\"\n",
                   line.c_str());
      continue;
    }
    if (auto s = privtree::release::ValidateSequenceQuery(query,
                                                          alphabet_size);
        !s.ok()) {
      std::fprintf(stderr, "warning: skipping query line \"%s\": %s\n",
                   line.c_str(), s.message().c_str());
      continue;
    }
    out.push_back(std::move(query));
  }
  return out;
}

/// Loads the CSV; returns nullptr after printing a diagnostic.
std::unique_ptr<privtree::PointSet> LoadPoints(const char* path,
                                               std::size_t dim) {
  auto points = privtree::LoadPointsCsv(path, dim);
  if (!points.ok()) {
    std::fprintf(stderr, "error: %s\n", points.status().ToString().c_str());
    return nullptr;
  }
  if (points.value().empty()) {
    std::fprintf(stderr, "error: %s is empty\n", path);
    return nullptr;
  }
  return std::make_unique<privtree::PointSet>(std::move(points.value()));
}

/// Fits `flags.method` on the CSV through the serving layer (ParallelRunner
/// over the process cache), deriving the release randomness exactly as a
/// ReleaseSession(seed=0xC11) would, so `run` and `build` release the same
/// synopsis.  For spatial input the declared domain is the unit cube;
/// rescale your data accordingly (a data-derived bounding box would leak
/// information).  Sequence input loads one symbol row per line over the
/// declared alphabet.
std::shared_ptr<const privtree::release::Method> FitFromCsv(
    const char* csv_path, InputKind input, double epsilon,
    const CliFlags& flags, privtree::serve::ThreadPool& pool) {
  const privtree::serve::ParallelRunner runner(
      pool, &privtree::serve::SharedSynopsisCache());
  privtree::Rng session_rng(0xC11);
  privtree::serve::FitJob job{flags.method, flags.options, epsilon,
                              session_rng.Fork()};
  std::shared_ptr<const privtree::release::Method> method;
  if (input.sequence) {
    auto sequences = privtree::LoadSequencesCsv(csv_path, input.dim);
    if (!sequences.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   sequences.status().ToString().c_str());
      return nullptr;
    }
    if (sequences.value().empty()) {
      std::fprintf(stderr, "error: %s is empty\n", csv_path);
      return nullptr;
    }
    auto fitted = runner.FitAll(
        privtree::release::Dataset(sequences.value()), {std::move(job)});
    method = std::move(fitted.front());
  } else {
    const auto points = LoadPoints(csv_path, input.dim);
    if (points == nullptr) return nullptr;
    const privtree::Box domain = privtree::Box::UnitCube(input.dim);
    auto fitted = runner.FitAll(*points, domain, {std::move(job)});
    method = std::move(fitted.front());
  }
  const auto metadata = method->Metadata();
  std::fprintf(stderr,
               "fitted %s: synopsis size %zu, epsilon %.4g (%zu thread%s)\n",
               metadata.method.c_str(), metadata.synopsis_size,
               metadata.epsilon_spent, pool.worker_count(),
               pool.worker_count() == 1 ? "" : "s");
  return method;
}

int RunRun(int argc, char** argv) {
  if (argc < 5) return Usage(argv[0]);
  InputKind input;
  const double epsilon = std::atof(argv[4]);
  if (!ParseDimArg(argv[3], &input) || epsilon <= 0.0) return Usage(argv[0]);
  CliFlags flags;
  if (!ParseFlags(argc, argv, 5, input, &flags)) return 2;
  if (!flags.dataset.empty()) {
    std::fprintf(stderr, "error: --dataset only applies to --connect\n");
    return 2;
  }

  privtree::serve::SetDefaultThreadCount(flags.threads);
  privtree::serve::ThreadPool pool(flags.threads);
  const auto method = FitFromCsv(argv[2], input, epsilon, flags, pool);
  if (method == nullptr) return 1;

  if (input.sequence) {
    // One unsharded batch, exactly as the serving engine answers it: the
    // batch-level top-k memo then runs each distinct (k, max_len) mining
    // pass once instead of once per shard.
    const auto queries = ReadSequenceQueries(input.dim);
    for (const double answer : method->QueryBatch(std::span(queries))) {
      std::printf("%.2f\n", answer);
    }
    return 0;
  }
  const std::vector<privtree::Box> queries = ReadQueryBoxes(input.dim);
  for (const double answer :
       privtree::serve::ParallelQueryBatch(pool, *method, queries)) {
    std::printf("%.2f\n", answer);
  }
  return 0;
}

int RunBuild(int argc, char** argv) {
  if (argc < 6) return Usage(argv[0]);
  InputKind input;
  const double epsilon = std::atof(argv[4]);
  if (!ParseDimArg(argv[3], &input) || epsilon <= 0.0) return Usage(argv[0]);
  const std::string out_path = argv[5];
  CliFlags flags;
  if (!ParseFlags(argc, argv, 6, input, &flags)) return 2;
  if (!flags.dataset.empty()) {
    std::fprintf(stderr, "error: --dataset only applies to --connect\n");
    return 2;
  }

  // Every registered method persists through the universal synopsis
  // envelope; the fit is identical to `run` with the same arguments.
  privtree::serve::SetDefaultThreadCount(flags.threads);
  privtree::serve::ThreadPool pool(flags.threads);
  const auto method = FitFromCsv(argv[2], input, epsilon, flags, pool);
  if (method == nullptr) return 1;

  if (auto s = privtree::release::SaveMethodToFile(*method, out_path);
      !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto metadata = method->Metadata();
  std::fprintf(stderr,
               "wrote %s: method %s, synopsis size %zu, height %d, "
               "epsilon %.4g\n",
               out_path.c_str(), metadata.method.c_str(),
               metadata.synopsis_size, metadata.height,
               metadata.epsilon_spent);
  return 0;
}

/// Splits "--connect=host:port"; false (after a diagnostic) when malformed.
bool ParseConnect(const std::string& arg, std::string* host,
                  std::uint16_t* port) {
  const std::string value = arg.substr(std::strlen("--connect="));
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == value.size()) {
    std::fprintf(stderr, "error: --connect needs host:port (got \"%s\")\n",
                 value.c_str());
    return false;
  }
  const long parsed = std::atol(value.c_str() + colon + 1);
  if (parsed <= 0 || parsed > 65535) {
    std::fprintf(stderr, "error: --connect port out of range\n");
    return false;
  }
  *host = value.substr(0, colon);
  *port = static_cast<std::uint16_t>(parsed);
  return true;
}

/// The CLI's remote calls ride the resilient client: a few retries with
/// short backoff absorb transient resets and server restarts, while the
/// client itself keeps non-idempotent frames (Shutdown) single-shot.
privtree::server::ClientOptions ResilientClientOptions() {
  privtree::server::ClientOptions options;
  options.max_attempts = 4;
  options.base_backoff_millis = 25;
  options.max_backoff_millis = 1000;
  return options;
}

/// Resolves a --dataset selector (tenant name, or a fingerprint in decimal
/// or 0x-hex) against the Hello tenant table; false after a diagnostic.
bool ResolveTenant(const privtree::server::HelloReply& info,
                   const std::string& selector,
                   privtree::server::DatasetInfo* out) {
  for (const auto& dataset : info.datasets) {
    if (dataset.name == selector) {
      *out = dataset;
      return true;
    }
  }
  char* end = nullptr;
  const unsigned long long parsed =
      std::strtoull(selector.c_str(), &end, 0);
  if (end != nullptr && *end == '\0' && !selector.empty()) {
    for (const auto& dataset : info.datasets) {
      if (dataset.fingerprint == parsed) {
        *out = dataset;
        return true;
      }
    }
  }
  std::fprintf(stderr,
               "error: server hosts no dataset \"%s\" (see `privtree_cli "
               "datasets --connect=...`)\n",
               selector.c_str());
  return false;
}

/// `query --connect=<host:port> <epsilon> [--method=...]`: fit + query
/// through a running privtree_server.  The fit seed is the one `run` and
/// `build` use (0xC11), so the remote answers diff clean against local
/// execution on the same data.
int RunRemoteQuery(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  std::string host;
  std::uint16_t port = 0;
  if (!ParseConnect(argv[2], &host, &port)) return 2;
  const double epsilon = std::atof(argv[3]);
  if (epsilon <= 0.0) return Usage(argv[0]);

  auto connected = privtree::server::Client::Connect(host, port,
                                                  ResilientClientOptions());
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  privtree::server::Client client = std::move(connected).value();
  // The Hello handshake tells the client what is served: the dataset kind
  // picks the query frame, and dim is the spatial dim or the alphabet.
  // --dataset switches those to the selected tenant's shape, so scan for
  // it before validating the method against the input kind.
  InputKind input;
  input.sequence =
      client.info().kind == privtree::release::DatasetKind::kSequence;
  input.dim = static_cast<std::size_t>(client.info().dim);
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--dataset=", 0) != 0) continue;
    privtree::server::DatasetInfo tenant;
    if (!ResolveTenant(client.info(),
                       arg.substr(std::strlen("--dataset=")), &tenant)) {
      return 2;
    }
    client.SelectDataset(tenant.fingerprint);
    input.sequence =
        tenant.kind == privtree::release::DatasetKind::kSequence;
    input.dim = static_cast<std::size_t>(tenant.dim);
  }
  CliFlags flags;
  if (!ParseFlags(argc, argv, 4, input, &flags)) return 2;

  const privtree::server::FitSpec spec{flags.method, flags.options, epsilon,
                                       /*seed=*/0xC11};
  const auto fitted = client.Fit(spec, flags.deadline_ms);
  if (!fitted.ok()) {
    std::fprintf(stderr, "error: %s\n", fitted.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "fitted %s on %s:%u: synopsis size %zu, epsilon %.4g%s\n",
               fitted.value().metadata.method.c_str(), host.c_str(), port,
               fitted.value().metadata.synopsis_size,
               fitted.value().metadata.epsilon_spent,
               fitted.value().cache_hit ? " (cache hit)" : "");

  privtree::Result<std::vector<double>> answers =
      privtree::Status::Internal("unreachable");
  if (input.sequence) {
    const auto queries = ReadSequenceQueries(input.dim);
    answers = client.SeqQueryBatch(spec, queries, flags.deadline_ms);
  } else {
    const std::vector<privtree::Box> queries = ReadQueryBoxes(input.dim);
    answers = client.QueryBatch(spec, queries, flags.deadline_ms);
  }
  if (!answers.ok()) {
    std::fprintf(stderr, "error: %s\n", answers.status().ToString().c_str());
    return 1;
  }
  for (const double answer : answers.value()) {
    std::printf("%.2f\n", answer);
  }
  return 0;
}

/// `datasets --connect=<host:port>`: list every tenant the server hosts,
/// plus this session's ε budget when the server enforces one.
int RunDatasets(int argc, char** argv) {
  if (argc != 3 || std::strncmp(argv[2], "--connect=", 10) != 0) {
    return Usage(argv[0]);
  }
  std::string host;
  std::uint16_t port = 0;
  if (!ParseConnect(argv[2], &host, &port)) return 2;
  auto connected = privtree::server::Client::Connect(host, port,
                                                  ResilientClientOptions());
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  const privtree::server::HelloReply& info = connected.value().info();
  std::printf("%-16s %-8s %6s %10s  %s\n", "name", "kind", "dim", "records",
              "fingerprint");
  for (std::size_t i = 0; i < info.datasets.size(); ++i) {
    const auto& dataset = info.datasets[i];
    std::printf("%-16s %-8s %6llu %10llu  0x%016llx%s\n",
                dataset.name.c_str(),
                std::string(privtree::release::DatasetKindName(dataset.kind))
                    .c_str(),
                static_cast<unsigned long long>(dataset.dim),
                static_cast<unsigned long long>(dataset.point_count),
                static_cast<unsigned long long>(dataset.fingerprint),
                i == 0 ? "  (default)" : "");
  }
  if (info.budget_total > 0) {
    std::printf("session budget: %.4g of %.4g epsilon spent\n",
                info.budget_spent, info.budget_total);
  }
  return 0;
}

/// `stats --connect=<host:port>`: print the server's live observability
/// snapshot — the whole metrics registry plus trace-ring and fault-point
/// sections — as one JSON object (protocol v5 GetStats).
int RunStats(int argc, char** argv) {
  if (argc != 3 || std::strncmp(argv[2], "--connect=", 10) != 0) {
    return Usage(argv[0]);
  }
  std::string host;
  std::uint16_t port = 0;
  if (!ParseConnect(argv[2], &host, &port)) return 2;
  auto connected = privtree::server::Client::Connect(host, port,
                                                  ResilientClientOptions());
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  auto json = connected.value().GetStatsJson();
  if (!json.ok()) {
    std::fprintf(stderr, "error: %s\n", json.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", json.value().c_str());
  return 0;
}

int RunShutdown(int argc, char** argv) {
  if (argc != 3 || std::strncmp(argv[2], "--connect=", 10) != 0) {
    return Usage(argv[0]);
  }
  std::string host;
  std::uint16_t port = 0;
  if (!ParseConnect(argv[2], &host, &port)) return 2;
  auto connected = privtree::server::Client::Connect(host, port,
                                                  ResilientClientOptions());
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  if (privtree::Status s = connected.value().Shutdown(); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "asked %s:%u to shut down\n", host.c_str(), port);
  return 0;
}

int RunQuery(int argc, char** argv) {
  if (argc >= 3 && std::strncmp(argv[2], "--connect=", 10) == 0) {
    return RunRemoteQuery(argc, argv);
  }
  if (argc != 3) return Usage(argv[0]);
  auto method = privtree::release::LoadMethodFromFile(argv[2]);
  if (!method.ok()) {
    std::fprintf(stderr, "error: %s\n", method.status().ToString().c_str());
    return 1;
  }
  const auto metadata = method.value()->Metadata();
  const bool sequence =
      privtree::release::GlobalMethodRegistry().Kind(metadata.method) ==
      privtree::release::DatasetKind::kSequence;
  std::fprintf(stderr,
               "loaded %s: method %s, %s %zu, synopsis size %zu, "
               "epsilon %.4g\n",
               argv[2], metadata.method.c_str(),
               sequence ? "alphabet" : "dim", metadata.dim,
               metadata.synopsis_size, metadata.epsilon_spent);
  if (sequence) {
    const auto queries = ReadSequenceQueries(metadata.dim);
    for (const double answer :
         method.value()->QueryBatch(std::span(queries))) {
      std::printf("%.2f\n", answer);
    }
    return 0;
  }
  const std::vector<privtree::Box> queries = ReadQueryBoxes(metadata.dim);
  for (const double answer : method.value()->QueryBatch(queries)) {
    std::printf("%.2f\n", answer);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  if (std::strcmp(argv[1], "list") == 0) return RunList();
  if (std::strcmp(argv[1], "run") == 0) return RunRun(argc, argv);
  if (std::strcmp(argv[1], "build") == 0) return RunBuild(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return RunQuery(argc, argv);
  if (std::strcmp(argv[1], "datasets") == 0) return RunDatasets(argc, argv);
  if (std::strcmp(argv[1], "stats") == 0) return RunStats(argc, argv);
  if (std::strcmp(argv[1], "shutdown") == 0) return RunShutdown(argc, argv);
  return Usage(argv[0]);
}
