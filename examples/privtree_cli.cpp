// privtree_cli — build and query released synopses from the command line.
//
//   privtree_cli build <points.csv> <dim> <epsilon> <synopsis.out>
//   privtree_cli query <synopsis.out> < queries.txt
//
// Query lines are "lo_1 hi_1 ... lo_d hi_d"; the answer is printed per
// line.  `build` reads the sensitive data once and writes only the ε-DP
// synopsis; `query` never touches the data.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/csv.h"
#include "dp/rng.h"
#include "spatial/serialization.h"
#include "spatial/spatial_histogram.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s build <points.csv> <dim> <epsilon> <synopsis.out>\n"
               "  %s query <synopsis.out>   (query boxes on stdin)\n",
               argv0, argv0);
  return 2;
}

int RunBuild(int argc, char** argv) {
  if (argc != 6) return Usage(argv[0]);
  const std::string points_path = argv[2];
  const auto dim = static_cast<std::size_t>(std::atol(argv[3]));
  const double epsilon = std::atof(argv[4]);
  const std::string out_path = argv[5];
  if (dim == 0 || dim > 8 || epsilon <= 0.0) return Usage(argv[0]);

  auto points = privtree::LoadPointsCsv(points_path, dim);
  if (!points.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }
  if (points.value().empty()) {
    std::fprintf(stderr, "error: %s is empty\n", points_path.c_str());
    return 1;
  }
  // The declared domain is the unit cube; rescale your data accordingly,
  // or adjust here.  (A data-derived bounding box would leak information.)
  privtree::Rng rng(0xC11);
  const auto hist = privtree::BuildPrivTreeHistogram(
      points.value(), privtree::Box::UnitCube(dim), epsilon, {}, rng);
  if (auto s = privtree::SaveSpatialHistogram(out_path, hist); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s: %zu nodes, height %d, epsilon %.4g\n",
               out_path.c_str(), hist.tree.size(), hist.tree.Height(),
               epsilon);
  return 0;
}

int RunQuery(int argc, char** argv) {
  if (argc != 3) return Usage(argv[0]);
  auto hist = privtree::LoadSpatialHistogram(argv[2]);
  if (!hist.ok()) {
    std::fprintf(stderr, "error: %s\n", hist.status().ToString().c_str());
    return 1;
  }
  const std::size_t dim =
      hist.value().tree.node(0).domain.box.dim();
  std::vector<double> bounds(2 * dim);
  while (true) {
    for (std::size_t j = 0; j < 2 * dim; ++j) {
      if (std::scanf("%lf", &bounds[j]) != 1) return 0;  // EOF.
    }
    std::vector<double> lo(dim), hi(dim);
    bool valid = true;
    for (std::size_t j = 0; j < dim; ++j) {
      lo[j] = bounds[2 * j];
      hi[j] = bounds[2 * j + 1];
      valid = valid && lo[j] <= hi[j];
    }
    if (!valid) {
      std::printf("error: lo > hi\n");
      continue;
    }
    std::printf("%.2f\n",
                hist.value().Query(privtree::Box(lo, hi)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  if (std::strcmp(argv[1], "build") == 0) return RunBuild(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return RunQuery(argc, argv);
  return Usage(argv[0]);
}
