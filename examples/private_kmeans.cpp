// Differentially private k-means via synthetic data (the paper's
// introduction, application 2): build a PrivTree synopsis, sample a
// synthetic dataset from it (pure post-processing), run ordinary k-means
// on the synthetic points, and measure the centers' cost on the *real*
// data against a non-private run.
#include <cstdio>

#include "data/spatial_gen.h"
#include "dp/rng.h"
#include "eval/kmeans.h"
#include "spatial/spatial_histogram.h"
#include "spatial/synthetic_points.h"

int main() {
  privtree::Rng rng(21);
  const privtree::PointSet real = privtree::GenerateGowallaLike(80000, rng);
  const privtree::Box domain = privtree::Box::UnitCube(2);
  constexpr std::size_t kClusters = 8;

  // Non-private reference.
  const privtree::KMeansResult reference =
      privtree::KMeans(real, kClusters, 50, rng);
  const double reference_cost = privtree::KMeansCost(real, reference);
  std::printf("non-private k-means: cost %.6f (%zu iterations)\n",
              reference_cost, reference.iterations);

  std::printf("\n%8s %14s %14s\n", "epsilon", "private cost", "overhead");
  for (double epsilon : {0.1, 0.4, 1.6}) {
    const privtree::SpatialHistogram hist =
        privtree::BuildPrivTreeHistogram(real, domain, epsilon, {}, rng);
    const privtree::PointSet synthetic =
        privtree::SampleSyntheticDataset(hist, rng);
    const privtree::KMeansResult private_centers =
        privtree::KMeans(synthetic, kClusters, 50, rng);
    // Cost evaluated on the REAL data: how good are the private centers?
    const double private_cost = privtree::KMeansCost(real, private_centers);
    std::printf("%8.2f %14.6f %13.1f%%\n", epsilon, private_cost,
                100.0 * (private_cost / reference_cost - 1.0));
  }
  std::printf(
      "\nThe private centers come entirely from the released synopsis\n"
      "(sampling + clustering are post-processing), so each row is\n"
      "epsilon-DP with the epsilon shown.\n");
  return 0;
}
