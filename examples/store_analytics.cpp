// Mixed numeric/categorical release (the Section 3.5 extension): a retail
// purchase table with a numeric attribute (normalized spend) and a
// categorical attribute (product category with a two-level taxonomy),
// decomposed by PrivTree and queried by (price range × category subtree).
#include <cstdio>

#include "dp/rng.h"
#include "spatial/mixed_histogram.h"
#include "spatial/taxonomy.h"

int main() {
  // Product taxonomy: root → {food → {produce, dairy, bakery},
  //                           goods → {apparel, electronics}}.
  privtree::Taxonomy products;
  const privtree::NodeId root = products.AddRoot("products");
  const privtree::NodeId food = products.AddCategory(root, "food");
  const privtree::NodeId goods = products.AddCategory(root, "goods");
  products.AddCategory(food, "produce");
  products.AddCategory(food, "dairy");
  products.AddCategory(food, "bakery");
  products.AddCategory(goods, "apparel");
  products.AddCategory(goods, "electronics");
  products.Finalize();

  // The sensitive table: 50k purchases; food is cheap and frequent,
  // electronics expensive and rare.
  privtree::MixedDataset purchases(1, {&products});
  privtree::Rng rng(13);
  for (int i = 0; i < 50000; ++i) {
    privtree::MixedRecord record;
    const double u = rng.NextDouble();
    if (u < 0.75) {  // Food: values 0-2, spend ~ [0, 0.2).
      record.categories = {
          static_cast<privtree::CategoryValue>(rng.NextBounded(3))};
      record.numeric = {0.2 * rng.NextDouble()};
    } else if (u < 0.9) {  // Apparel.
      record.categories = {3};
      record.numeric = {0.2 + 0.3 * rng.NextDouble()};
    } else {  // Electronics.
      record.categories = {4};
      record.numeric = {0.5 + 0.5 * rng.NextDouble()};
    }
    purchases.Add(std::move(record));
  }
  std::printf("purchases: %zu records, %d product categories\n",
              purchases.size(), products.LeafValueCount());

  const double epsilon = 1.0;
  const privtree::MixedHistogram hist =
      privtree::BuildMixedHistogram(purchases, epsilon, {}, rng);
  std::printf("PrivTree synopsis: %zu nodes (epsilon = %.1f)\n\n",
              hist.tree.size(), epsilon);

  const auto report = [&](const char* label, privtree::NodeId category,
                          double lo, double hi) {
    privtree::MixedCell query;
    query.box = privtree::Box({lo}, {hi});
    query.category_nodes = {category};
    std::size_t exact = 0;
    for (std::size_t i = 0; i < purchases.size(); ++i) {
      if (query.Contains(purchases, purchases.record(i))) ++exact;
    }
    std::printf("%-44s private %8.0f   exact %8zu\n", label,
                hist.Query(query), exact);
  };
  report("all food purchases", food, 0.0, 1.0);
  report("food purchases with spend < 0.1", food, 0.0, 0.1);
  report("all goods purchases", goods, 0.0, 1.0);
  report("electronics with spend >= 0.5", products.NodeOf(4), 0.5, 1.0);
  report("dairy only", products.NodeOf(1), 0.0, 1.0);
  std::printf(
      "\nQueries mix price ranges with taxonomy subtrees; the synopsis\n"
      "answers all of them from one epsilon-DP release.\n");
  return 0;
}
