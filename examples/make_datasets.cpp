// Exports the six synthetic paper datasets (DESIGN.md §4) as CSV files,
// for inspection or for use with external tooling.
//
//   ./make_datasets <output-dir> [scale]
//
// scale in (0, 1] shrinks all cardinalities proportionally (default 0.1).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/csv.h"
#include "data/seq_gen.h"
#include "data/spatial_gen.h"
#include "dp/rng.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <output-dir> [scale]\n", argv[0]);
    return 1;
  }
  const std::string dir = argv[1];
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "scale must be in (0, 1]\n");
    return 1;
  }
  const auto scaled = [&](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(n * scale));
  };

  privtree::Rng rng(2026);
  const auto save_points = [&](const char* name,
                               const privtree::PointSet& points) {
    const std::string path = dir + "/" + name + ".csv";
    if (auto s = privtree::SavePointsCsv(path, points); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), s.ToString().c_str());
      std::exit(1);
    }
    std::printf("wrote %-14s %8zu points (d=%zu)\n", path.c_str(),
                points.size(), points.dim());
  };
  const auto save_sequences = [&](const char* name,
                                  const privtree::SequenceDataset& data) {
    const std::string path = dir + "/" + name + ".csv";
    if (auto s = privtree::SaveSequencesCsv(path, data); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), s.ToString().c_str());
      std::exit(1);
    }
    std::printf("wrote %-14s %8zu sequences (|I|=%zu, avg len %.2f)\n",
                path.c_str(), data.size(), data.alphabet_size(),
                data.AverageLength());
  };

  save_points("road", privtree::GenerateRoadLike(
                          scaled(privtree::kRoadCardinality), rng));
  save_points("gowalla", privtree::GenerateGowallaLike(
                             scaled(privtree::kGowallaCardinality), rng));
  save_points("nyc", privtree::GenerateNycLike(
                         scaled(privtree::kNycCardinality), rng));
  save_points("beijing", privtree::GenerateBeijingLike(
                             scaled(privtree::kBeijingCardinality), rng));
  save_sequences("mooc", privtree::GenerateMoocLike(
                             scaled(privtree::kMoocCardinality), rng));
  save_sequences("msnbc", privtree::GenerateMsnbcLike(
                              scaled(privtree::kMsnbcCardinality), rng));
  return 0;
}
