// A small work-stealing thread pool with no external dependencies.
//
// Each worker owns a deque: its own tasks are popped LIFO (newest first,
// cache-warm), and an idle worker steals FIFO from a sibling (oldest first,
// largest remaining work).  Submission round-robins across the deques, so a
// burst of fit jobs spreads out even before stealing kicks in.  The pool is
// deliberately minimal — fixed worker count, plain std::function tasks, one
// ParallelFor primitive — because the serving layer's units of work (whole
// synopsis fits, query-batch shards) are coarse enough that sophisticated
// scheduling would buy nothing.
#ifndef PRIVTREE_SERVE_THREAD_POOL_H_
#define PRIVTREE_SERVE_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/sync.h"

namespace privtree::serve {

/// Fixed-size work-stealing pool.  Tasks must not throw.
class ThreadPool {
 public:
  /// Starts `workers` threads (a request for 0 is clamped to 1).
  explicit ThreadPool(std::size_t workers);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueues `task` for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  /// Runs body(0) ... body(n-1), sharded across the workers, and returns
  /// when all calls have finished.  The calling thread participates, so the
  /// loop makes progress even when every worker is busy.  `body` must be
  /// safe to call concurrently for distinct indices.  Must not be called
  /// from inside a pool task (the inner wait could deadlock the worker).
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body);

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::function<void()>> tasks GUARDED_BY(mu);
  };

  /// Pops from the caller's own deque (back) or steals from a sibling
  /// (front); false when every deque is empty.
  bool TryPop(std::size_t self, std::function<void()>* task);
  void RunWorker(std::size_t self);
  void FinishTask();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  Mutex sleep_mu_;
  CondVar wake_cv_;  // Signalled on submit and stop.
  CondVar idle_cv_;  // Signalled when in_flight_ hits 0.
  // Tasks queued but not yet popped; may transiently undercount between a
  // push and its counter increment, which only costs a spurious wakeup.
  std::atomic<std::ptrdiff_t> queued_{0};
  // Tasks submitted and not yet finished (queued + running).
  std::atomic<std::ptrdiff_t> in_flight_{0};
  bool stop_ GUARDED_BY(sleep_mu_) = false;
  std::atomic<std::size_t> next_queue_{0};
};

}  // namespace privtree::serve

#endif  // PRIVTREE_SERVE_THREAD_POOL_H_
