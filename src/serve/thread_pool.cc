#include "serve/thread_pool.h"

#include <algorithm>
#include <utility>

#include "dp/check.h"

namespace privtree::serve {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = std::max<std::size_t>(workers, 1);
  queues_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { RunWorker(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(sleep_mu_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PRIVTREE_CHECK(task != nullptr);
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  // in_flight_ rises before the task becomes poppable: a worker that pops
  // and finishes it immediately must not drive the counter negative (which
  // would skip the idle notification), and a concurrent WaitIdle must not
  // return while the task is pending.
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lk(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    // The wait predicate reads queued_; raising it under sleep_mu_ closes
    // the window where a worker has evaluated the predicate as false but
    // not yet blocked — notifying in that window would be lost and could
    // leave every worker asleep with a task queued.
    MutexLock lk(sleep_mu_);
    queued_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.NotifyOne();
}

bool ThreadPool::TryPop(std::size_t self, std::function<void()>* task) {
  {
    WorkerQueue& own = *queues_[self];
    MutexLock lk(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % queues_.size()];
    MutexLock lk(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::FinishTask() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock before notifying so a WaitIdle caller between its predicate
    // check and its wait cannot miss the wakeup.
    MutexLock lk(sleep_mu_);
    idle_cv_.NotifyAll();
  }
}

void ThreadPool::RunWorker(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (TryPop(self, &task)) {
      task();
      FinishTask();
      continue;
    }
    MutexLock lk(sleep_mu_);
    while (!stop_ && queued_.load(std::memory_order_acquire) <= 0) {
      wake_cv_.Wait(lk);
    }
    if (stop_ && queued_.load(std::memory_order_acquire) <= 0) return;
  }
}

void ThreadPool::WaitIdle() {
  MutexLock lk(sleep_mu_);
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    idle_cv_.Wait(lk);
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // One claiming helper per worker; every participant (helpers and the
  // caller) claims indices from a shared counter until the range is
  // exhausted, so an uneven workload balances itself without up-front
  // partitioning.  The wait below is on *index completion*, not helper
  // completion: if the workers are stuck behind unrelated long-running
  // tasks, the caller finishes the whole range alone and returns, and the
  // helpers — which share ownership of the loop state — later wake, find
  // no indices left, and exit without touching anything stale.
  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    std::function<void(std::size_t)> body;
    Mutex mu;
    CondVar cv;
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->body = body;
  const auto run = [](const std::shared_ptr<LoopState>& s) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      s->body(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        // Lock so a waiter between its predicate check and its wait cannot
        // miss the notification.
        MutexLock lk(s->mu);
        s->cv.NotifyAll();
      }
    }
  };
  const std::size_t helpers = std::min(n, worker_count());
  for (std::size_t s = 0; s < helpers; ++s) {
    Submit([run, state] { run(state); });
  }
  run(state);
  MutexLock lk(state->mu);
  while (state->done.load(std::memory_order_acquire) != state->n) {
    state->cv.Wait(lk);
  }
}

}  // namespace privtree::serve
