#include "serve/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "dp/budget.h"
#include "dp/check.h"
#include "release/registry.h"

namespace privtree::serve {

ParallelRunner::ParallelRunner(ThreadPool& pool, SynopsisCache* cache)
    : pool_(pool), cache_(cache) {}

FitResult FitSynopsis(const release::Dataset& data,
                      std::uint64_t dataset_fingerprint, const FitJob& job,
                      SynopsisCache* cache) {
  FitResult result;
  const auto build = [&]() -> std::shared_ptr<const release::Method> {
    const auto start = std::chrono::steady_clock::now();
    auto method =
        release::GlobalMethodRegistry().Create(job.method, job.options);
    PrivacyBudget budget(job.epsilon);
    Rng rng = job.rng;  // Private copy: the job stays reusable.
    method->Fit(data, budget, rng);
    // The Fit contract: the method drains the slice it was handed.
    PRIVTREE_CHECK_LE(budget.remaining(), 1e-12 * job.epsilon);
    result.fit_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.cache_hit = false;
    return std::shared_ptr<const release::Method>(std::move(method));
  };
  if (cache == nullptr) {
    result.method = build();
    return result;
  }
  result.cache_hit = true;  // build() resets this if it actually runs.
  const SynopsisKey key{dataset_fingerprint, job.method,
                        CanonicalOptionsText(job.method, job.options),
                        job.epsilon, job.rng.Fingerprint()};
  result.method = cache->GetOrFit(key, build);
  return result;
}

FitResult ParallelRunner::FitOne(const release::Dataset& data,
                                 std::uint64_t dataset_fingerprint,
                                 const FitJob& job) const {
  return FitSynopsis(data, dataset_fingerprint, job, cache_);
}

std::vector<FitResult> ParallelRunner::FitAllTimed(
    const release::Dataset& data, std::vector<FitJob> jobs) const {
  std::vector<FitResult> fitted(jobs.size());
  if (jobs.empty()) return fitted;
  const std::uint64_t fingerprint =
      cache_ != nullptr ? data.Fingerprint() : 0;
  pool_.ParallelFor(jobs.size(), [&](std::size_t i) {
    fitted[i] = FitOne(data, fingerprint, jobs[i]);
  });
  return fitted;
}

std::vector<FitResult> ParallelRunner::FitAllTimed(
    const PointSet& points, const Box& domain, std::vector<FitJob> jobs) const {
  return FitAllTimed(release::Dataset(points, domain), std::move(jobs));
}

std::vector<std::shared_ptr<const release::Method>> ParallelRunner::FitAll(
    const release::Dataset& data, std::vector<FitJob> jobs) const {
  std::vector<FitResult> timed = FitAllTimed(data, std::move(jobs));
  std::vector<std::shared_ptr<const release::Method>> fitted;
  fitted.reserve(timed.size());
  for (FitResult& r : timed) fitted.push_back(std::move(r.method));
  return fitted;
}

std::vector<std::shared_ptr<const release::Method>> ParallelRunner::FitAll(
    const PointSet& points, const Box& domain,
    std::vector<FitJob> jobs) const {
  return FitAll(release::Dataset(points, domain), std::move(jobs));
}

void ParallelRunner::Prefetch(release::Dataset data,
                              std::vector<FitJob> jobs) const {
  PRIVTREE_CHECK(cache_ != nullptr);
  const std::uint64_t fingerprint = data.Fingerprint();
  auto shared_jobs = std::make_shared<std::vector<FitJob>>(std::move(jobs));
  for (std::size_t i = 0; i < shared_jobs->size(); ++i) {
    // `data` is a cheap view; each task captures its own copy (the viewed
    // dataset must outlive the pool drain, as before).
    pool_.Submit([this, data, fingerprint, shared_jobs, i] {
      FitOne(data, fingerprint, (*shared_jobs)[i]);
    });
  }
}

void ParallelRunner::Prefetch(const PointSet& points, const Box& domain,
                              std::vector<FitJob> jobs) const {
  Prefetch(release::Dataset(points, domain), std::move(jobs));
}

namespace {

/// Shards any QueryBatch-shaped workload into contiguous chunks.
template <typename Query>
std::vector<double> ShardedQueryBatch(ThreadPool& pool,
                                      const release::Method& method,
                                      std::span<const Query> queries) {
  std::vector<double> answers(queries.size(), 0.0);
  if (queries.empty()) return answers;
  // A few chunks per worker so an expensive straggler chunk rebalances.
  const std::size_t chunks =
      std::min(queries.size(), (pool.worker_count() + 1) * 4);
  pool.ParallelFor(chunks, [&](std::size_t c) {
    const std::size_t begin = queries.size() * c / chunks;
    const std::size_t end = queries.size() * (c + 1) / chunks;
    if (begin >= end) return;
    const std::vector<double> chunk =
        method.QueryBatch(queries.subspan(begin, end - begin));
    std::copy(chunk.begin(), chunk.end(), answers.begin() + begin);
  });
  return answers;
}

}  // namespace

std::vector<double> ParallelQueryBatch(ThreadPool& pool,
                                       const release::Method& method,
                                       std::span<const Box> queries) {
  return ShardedQueryBatch(pool, method, queries);
}

std::vector<double> ParallelQueryBatch(
    ThreadPool& pool, const release::Method& method,
    std::span<const release::SequenceQuery> queries) {
  return ShardedQueryBatch(pool, method, queries);
}

namespace {

std::atomic<std::size_t> g_default_threads{0};  // 0 = not set explicitly.

std::size_t EnvCount(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    const long parsed = std::strtol(value, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

std::size_t DefaultThreadCount() {
  const std::size_t set = g_default_threads.load(std::memory_order_relaxed);
  if (set > 0) return set;
  return EnvCount("PRIVTREE_THREADS", 1);
}

void SetDefaultThreadCount(std::size_t threads) {
  g_default_threads.store(std::max<std::size_t>(threads, 1),
                          std::memory_order_relaxed);
}

ThreadPool& SharedPool() {
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

SynopsisCache& SharedSynopsisCache() {
  static SynopsisCache* cache = [] {
    const std::size_t capacity = EnvCount("PRIVTREE_CACHE_CAPACITY", 64);
    // PRIVTREE_CACHE_MAX_BYTES caps the summed serialized size of resident
    // synopses (0 = unbounded); compression shrinks each entry's footprint,
    // so the same budget now holds more synopses.
    const std::size_t max_bytes = EnvCount("PRIVTREE_CACHE_MAX_BYTES", 0);
    // PRIVTREE_CACHE_SPILL_DIR turns on the disk tier: evicted synopses
    // persist there (bounded by PRIVTREE_CACHE_SPILL_ENTRIES) and survive
    // process restarts.
    const char* spill_dir = std::getenv("PRIVTREE_CACHE_SPILL_DIR");
    if (spill_dir == nullptr || *spill_dir == '\0') {
      return new SynopsisCache(capacity, SpillOptions{}, max_bytes);
    }
    return new SynopsisCache(
        capacity,
        SpillOptions{spill_dir, EnvCount("PRIVTREE_CACHE_SPILL_ENTRIES", 256)},
        max_bytes);
  }();
  return *cache;
}

}  // namespace privtree::serve
