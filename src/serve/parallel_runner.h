// Sharded synopsis fitting and batched query serving.
//
// A FitJob carries *all* the randomness its fit will consume as an explicit
// Rng value, derived deterministically by the caller (typically by forking
// a master seed once per job on one thread).  Because no job draws from a
// shared stream at execution time, the released synopses are bit-for-bit
// identical to the serial path at any worker count and any completion
// order — the property the determinism tests in tests/serve/ pin down.
//
// The runner optionally routes every fit through a SynopsisCache, so
// repeated sweeps over the same (dataset, method, options, ε, randomness)
// configurations — different query bands over one release, a re-run of a
// bench table — pay for each fit once, and Prefetch() can warm the cache
// before the queries arrive (fit-ahead, the histogram-server analogue of
// I/O read-ahead).
#ifndef PRIVTREE_SERVE_PARALLEL_RUNNER_H_
#define PRIVTREE_SERVE_PARALLEL_RUNNER_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dp/rng.h"
#include "release/dataset.h"
#include "release/method.h"
#include "release/options.h"
#include "release/sequence_query.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::serve {

/// One independent fit configuration: which method, with which options, how
/// much ε, and the exact randomness stream to consume.
struct FitJob {
  std::string method;               ///< Registry name ("privtree", ...).
  release::MethodOptions options;   ///< Method options (may be empty).
  double epsilon = 1.0;             ///< Total ε for this release.
  Rng rng;                          ///< The job's private randomness.
};

/// One fitted job plus serving telemetry.
struct FitResult {
  std::shared_ptr<const release::Method> method;
  double fit_seconds = 0.0;  ///< Wall time of the fit; 0 on a cache hit.
  bool cache_hit = false;    ///< True when the synopsis came from the cache.
};

/// Shards independent fits across a ThreadPool, optionally memoized.
class ParallelRunner {
 public:
  /// `pool` and `cache` (when non-null) must outlive the runner.
  explicit ParallelRunner(ThreadPool& pool, SynopsisCache* cache = nullptr);

  /// Fits every job (result[i] belongs to jobs[i]) over `data` — spatial or
  /// sequence — and blocks until all are done.  Each fit consumes exactly
  /// jobs[i].epsilon and checks that the method drained its budget slice.
  /// Job method names must match the dataset's kind (registry Entry::kind).
  std::vector<std::shared_ptr<const release::Method>> FitAll(
      const release::Dataset& data, std::vector<FitJob> jobs) const;

  /// Spatial convenience.
  std::vector<std::shared_ptr<const release::Method>> FitAll(
      const PointSet& points, const Box& domain,
      std::vector<FitJob> jobs) const;

  /// As FitAll, with per-job wall time and cache attribution (the runtime
  /// benches and serving telemetry read these).
  std::vector<FitResult> FitAllTimed(const release::Dataset& data,
                                     std::vector<FitJob> jobs) const;
  std::vector<FitResult> FitAllTimed(const PointSet& points, const Box& domain,
                                     std::vector<FitJob> jobs) const;

  /// Enqueues the jobs to warm the cache and returns immediately.  Requires
  /// a cache, and the data `data` views must stay alive until the pool
  /// drains (WaitIdle or destruction).
  void Prefetch(release::Dataset data, std::vector<FitJob> jobs) const;
  void Prefetch(const PointSet& points, const Box& domain,
                std::vector<FitJob> jobs) const;

  ThreadPool& pool() const { return pool_; }
  SynopsisCache* cache() const { return cache_; }

 private:
  FitResult FitOne(const release::Dataset& data,
                   std::uint64_t dataset_fingerprint, const FitJob& job) const;

  ThreadPool& pool_;
  SynopsisCache* cache_;
};

/// Fits one job with the runner's fit discipline — create via the global
/// registry, drain exactly `job.epsilon`, consume the job's private Rng
/// copy — memoized through `cache` when non-null.  This is the one fit
/// path shared by ParallelRunner and the async serving engine
/// (server/async_engine.h), so every serving surface releases bit-for-bit
/// identical synopses for either dataset kind.
FitResult FitSynopsis(const release::Dataset& data,
                      std::uint64_t dataset_fingerprint, const FitJob& job,
                      SynopsisCache* cache);

/// Answers `queries` through method.QueryBatch, sharded into contiguous
/// chunks across the pool.  Every built-in backend computes each query's
/// answer independently of its batch neighbours, so the result is identical
/// to a single QueryBatch call at any worker count.
std::vector<double> ParallelQueryBatch(ThreadPool& pool,
                                       const release::Method& method,
                                       std::span<const Box> queries);

/// The sequence counterpart: shards a SequenceQuery workload the same way.
/// Note that the sequence batch path memoizes top-k mining per QueryBatch
/// *call*, so a top-k-heavy workload is cheaper submitted as one unsharded
/// batch (what the AsyncEngine and the CLI do); shard when the workload is
/// dominated by per-string frequency/prefix chains.
std::vector<double> ParallelQueryBatch(
    ThreadPool& pool, const release::Method& method,
    std::span<const release::SequenceQuery> queries);

/// The serving thread count: the last SetDefaultThreadCount value, else the
/// PRIVTREE_THREADS environment variable, else 1.
std::size_t DefaultThreadCount();

/// Overrides DefaultThreadCount for this process (CLI/bench --threads
/// flags).  Call before the first SharedPool() use.
void SetDefaultThreadCount(std::size_t threads);

/// A process-wide pool of DefaultThreadCount() workers, created on first
/// use.  Registry-driven sweeps (eval/runner) draw from it so every bench
/// picks up --threads/PRIVTREE_THREADS for free.
ThreadPool& SharedPool();

/// A process-wide synopsis cache (capacity PRIVTREE_CACHE_CAPACITY, default
/// 64 synopses), created on first use.
SynopsisCache& SharedSynopsisCache();

}  // namespace privtree::serve

#endif  // PRIVTREE_SERVE_PARALLEL_RUNNER_H_
