#include "serve/synopsis_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <sstream>
#include <system_error>
#include <vector>

#include "core/fault.h"
#include "dp/check.h"
#include "obs/metrics.h"
#include "release/registry.h"
#include "release/serialization.h"

namespace privtree::serve {

namespace {

// The shared fingerprint mixer (core/byteio.h), used here for
// SynopsisKeyFingerprint (spill-file names).
constexpr auto MixWord = MixFingerprintWord;
constexpr auto MixDouble = MixFingerprintDouble;

}  // namespace

std::uint64_t DatasetFingerprint(const PointSet& points, const Box& domain) {
  return release::Dataset(points, domain).Fingerprint();
}

std::uint64_t DatasetFingerprint(const SequenceDataset& sequences) {
  return release::Dataset(sequences).Fingerprint();
}

std::string CanonicalOptionsText(std::string_view method,
                                 const release::MethodOptions& options) {
  const auto& allowed = release::GlobalMethodRegistry().AllowedKeys(method);
  std::string out;
  for (const std::string& key : options.Keys()) {  // Keys() is sorted.
    const auto it = std::find_if(
        allowed.begin(), allowed.end(),
        [&](const release::OptionKey& k) { return k.name == key; });
    std::string value;
    if (it == allowed.end()) {
      value = options.GetString(key, "");
    } else {
      char buffer[64];
      switch (it->type) {
        case release::OptionType::kDouble:
          std::snprintf(buffer, sizeof(buffer), "%.17g",
                        options.GetDouble(key, 0.0));
          value = buffer;
          break;
        case release::OptionType::kInt:
          std::snprintf(buffer, sizeof(buffer), "%" PRId64,
                        options.GetInt(key, 0));
          value = buffer;
          break;
        case release::OptionType::kBool:
          value = options.GetBool(key, false) ? "true" : "false";
          break;
      }
    }
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::string SynopsisKeyFingerprint(const SynopsisKey& key) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  hash = MixWord(hash, key.dataset_fingerprint);
  for (const char c : key.method) {
    hash = MixWord(hash, static_cast<unsigned char>(c));
  }
  hash = MixWord(hash, key.method.size());
  for (const char c : key.options) {
    hash = MixWord(hash, static_cast<unsigned char>(c));
  }
  hash = MixWord(hash, key.options.size());
  hash = MixDouble(hash, key.epsilon);
  hash = MixWord(hash, key.rng_fingerprint);
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, hash);
  return buffer;
}

namespace {

constexpr std::string_view kSpillExtension = ".synopsis";
constexpr std::string_view kQuarantineExtension = ".quarantined";

/// Flushes a directory's entry table (the rename) to disk; best-effort —
/// a failure here only weakens crash durability, never correctness.
void SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// The envelope size `method` would occupy on disk (what the resident byte
/// cap budgets); 0 for non-serializable methods (test stubs).
std::size_t SerializedSizeOf(const release::Method& method) {
  std::ostringstream out;
  if (!method.Save(out).ok()) return 0;
  return out.str().size();
}

/// Moves a corrupt spill file aside under `.quarantined` (evidence for
/// operators, invisible to the scan); deletes it when even that fails.
void QuarantineFile(const std::filesystem::path& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path aside = path;
  aside += kQuarantineExtension;
  fs::rename(path, aside, ec);
  if (ec) fs::remove(path, ec);
}

// Registry mirrors of the Stats fields, bumped at the same mutation sites
// (under mu_, so registry and struct stay in lockstep).  Counters are the
// cumulative tallies; the two level values (resident bytes, write-behind
// backlog) are gauges Set to the post-mutation value.
struct CacheMetrics {
  obs::Counter& hits = obs::Registry::Global().GetCounter("cache.hits");
  obs::Counter& misses = obs::Registry::Global().GetCounter("cache.misses");
  obs::Counter& evictions =
      obs::Registry::Global().GetCounter("cache.evictions");
  obs::Counter& spill_writes =
      obs::Registry::Global().GetCounter("cache.spill_writes");
  obs::Counter& spill_hits =
      obs::Registry::Global().GetCounter("cache.spill_hits");
  obs::Counter& spill_evictions =
      obs::Registry::Global().GetCounter("cache.spill_evictions");
  obs::Counter& spill_failures =
      obs::Registry::Global().GetCounter("cache.spill_failures");
  obs::Counter& spill_write_failures =
      obs::Registry::Global().GetCounter("cache.spill_write_failures");
  obs::Counter& spill_quarantined =
      obs::Registry::Global().GetCounter("cache.spill_quarantined");
  obs::Counter& writeback_hits =
      obs::Registry::Global().GetCounter("cache.writeback_hits");
  obs::Counter& spill_write_batches =
      obs::Registry::Global().GetCounter("cache.spill_write_batches");
  obs::Counter& spill_bytes_written =
      obs::Registry::Global().GetCounter("cache.spill_bytes_written");
  obs::Counter& spill_bytes_read =
      obs::Registry::Global().GetCounter("cache.spill_bytes_read");
  obs::Counter& spill_scan_bytes =
      obs::Registry::Global().GetCounter("cache.spill_scan_bytes");
  obs::Gauge& resident_bytes =
      obs::Registry::Global().GetGauge("cache.resident_bytes");
  obs::Gauge& spill_pending =
      obs::Registry::Global().GetGauge("cache.spill_pending");
};

CacheMetrics& Metrics() {
  static CacheMetrics* metrics = new CacheMetrics();
  return *metrics;
}

}  // namespace

SynopsisCache::SynopsisCache(std::size_t capacity)
    : SynopsisCache(capacity, SpillOptions{}) {}

SynopsisCache::SynopsisCache(std::size_t capacity, SpillOptions spill,
                             std::size_t max_resident_bytes)
    : capacity_(capacity),
      spill_(std::move(spill)),
      max_resident_bytes_(max_resident_bytes) {
  if (!spill_enabled()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(spill_.directory, ec);
  // Adopt files left by an earlier run (warm restart), oldest last so they
  // are the first trimmed.  The scan validates before it adopts: a stale
  // `.tmp` is a write the previous run never finished (deleted), and a
  // file the envelope probe rejects — truncated, bit-flipped, zero-length
  // — is quarantined, so a crash mid-spill can never poison serving; the
  // key simply re-fits on its next miss.
  std::vector<std::pair<fs::file_time_type, std::string>> found;
  for (const auto& entry : fs::directory_iterator(spill_.directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const fs::path& p = entry.path();
    if (p.extension() == ".tmp") {
      std::error_code remove_ec;
      fs::remove(p, remove_ec);
      continue;
    }
    if (p.extension() != kSpillExtension) continue;
    std::uint64_t scanned = 0;
    const Status probed = release::ProbeSynopsisFile(p.string(), &scanned);
    stats_.spill_scan_bytes += static_cast<std::size_t>(scanned);
    Metrics().spill_scan_bytes.Inc(scanned);
    if (!probed.ok()) {
      std::fprintf(stderr,
                   "privtree: quarantining corrupt spill file %s (%s)\n",
                   p.string().c_str(), probed.ToString().c_str());
      QuarantineFile(p);
      ++stats_.spill_quarantined;
      Metrics().spill_quarantined.Inc();
      continue;
    }
    found.emplace_back(fs::last_write_time(p, ec), p.filename().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (auto& [time, name] : found) {
    spill_lru_.push_back(name);
    spill_index_.insert(std::move(name));
  }
  if (spill_.background_writer) {
    spill_writer_ = std::thread(&SynopsisCache::RunSpillWriter, this);
  }
}

SynopsisCache::~SynopsisCache() {
  if (!spill_writer_.joinable()) return;
  {
    MutexLock lk(mu_);
    stop_writer_ = true;
  }
  spill_cv_.NotifyAll();
  spill_writer_.join();  // Drains the remaining backlog first.
}

std::string SynopsisCache::SpillPathFor(const std::string& file) const {
  return (std::filesystem::path(spill_.directory) / file).string();
}

void SynopsisCache::TouchSpillLocked(const std::string& file) {
  spill_lru_.remove(file);
  spill_lru_.push_front(file);
}

void SynopsisCache::InsertLocked(
    const SynopsisKey& key, std::shared_ptr<const release::Method> value,
    std::vector<Evicted>* evicted) {
  const std::size_t bytes = SerializedSizeOf(*value);
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  resident_size_[key] = bytes;
  stats_.resident_bytes += bytes;
  // Evict past the entry cap, then past the byte cap — but never the entry
  // just inserted, so one oversized synopsis still serves.
  while (lru_.size() > capacity_ ||
         (max_resident_bytes_ > 0 && lru_.size() > 1 &&
          stats_.resident_bytes > max_resident_bytes_)) {
    const SynopsisKey& victim = lru_.back().first;
    if (const auto it = resident_size_.find(victim);
        it != resident_size_.end()) {
      stats_.resident_bytes -= it->second;
      resident_size_.erase(it);
    }
    index_.erase(victim);
    if (spill_enabled()) evicted->push_back(std::move(lru_.back()));
    lru_.pop_back();
    ++stats_.evictions;
    Metrics().evictions.Inc();
  }
  Metrics().resident_bytes.Set(stats_.resident_bytes);
}

void SynopsisCache::SpillEvicted(const std::vector<Evicted>& evicted) {
  namespace fs = std::filesystem;
  for (const auto& [key, method] : evicted) {
    const std::string file =
        SynopsisKeyFingerprint(key) + std::string(kSpillExtension);
    {
      MutexLock lk(mu_);
      // A synopsis is immutable, so a file written for an earlier eviction
      // of the same key is still valid — skip the rewrite, but refresh its
      // LRU position: this key was hot enough to re-enter memory.
      if (spill_index_.contains(file)) {
        TouchSpillLocked(file);
        continue;
      }
    }
    // Write to a temp name, fsync, and rename so a crash mid-write never
    // leaves a torn file *under the final name* for a warm restart (or a
    // shared spill dir) to adopt: an unsynced write can be reordered past
    // the rename by the filesystem, so durability of the bytes must come
    // before visibility of the name.
    const std::string path = SpillPathFor(file);
    const std::string tmp_path = path + ".tmp";
    Status saved;
    if (auto f = PRIVTREE_FAULT("spill.write"); f && f.MaybeSleep()) {
      saved = f.ToStatus("spill.write");
    } else {
      saved = release::SaveMethodToFile(*method, tmp_path, /*durable=*/true);
    }
    std::error_code ec;
    std::uintmax_t written = 0;
    if (saved.ok()) {
      fs::rename(tmp_path, path, ec);
      if (!ec) {
        SyncDirectory(spill_.directory);
        std::error_code size_ec;
        written = fs::file_size(path, size_ec);
        if (size_ec) written = 0;
      }
    }

    MutexLock lk(mu_);
    if (!saved.ok() || ec) {
      ++stats_.spill_failures;  // E.g. a non-serializable test stub.
      ++stats_.spill_write_failures;
      Metrics().spill_failures.Inc();
      Metrics().spill_write_failures.Inc();
      if (logged_write_failures_.insert(file).second) {
        std::fprintf(stderr,
                     "privtree: spill write failed for %s (%s)\n",
                     path.c_str(),
                     saved.ok() ? ec.message().c_str()
                                : saved.ToString().c_str());
      }
      std::error_code cleanup_ec;
      fs::remove(tmp_path, cleanup_ec);
      continue;
    }
    ++stats_.spill_writes;
    stats_.spill_bytes_written += static_cast<std::size_t>(written);
    Metrics().spill_writes.Inc();
    Metrics().spill_bytes_written.Inc(written);
    if (spill_index_.insert(file).second) spill_lru_.push_front(file);
    while (spill_.max_entries > 0 && spill_lru_.size() > spill_.max_entries) {
      std::error_code remove_ec;
      fs::remove(SpillPathFor(spill_lru_.back()), remove_ec);
      spill_index_.erase(spill_lru_.back());
      spill_lru_.pop_back();
      ++stats_.spill_evictions;
      Metrics().spill_evictions.Inc();
    }
  }
}

bool SynopsisCache::EnqueueSpillLocked(std::vector<Evicted>* evicted) {
  if (evicted->empty() || !spill_.background_writer) return false;
  bool queued = false;
  for (Evicted& entry : *evicted) {
    // A key already awaiting its write keeps the one queue slot it has;
    // the synopsis is immutable, so one write covers every eviction.
    if (spill_pending_index_.contains(entry.first)) continue;
    spill_pending_index_.emplace(entry.first, entry.second);
    spill_queue_.push_back(std::move(entry));
    queued = true;
  }
  evicted->clear();
  Metrics().spill_pending.Set(spill_pending_index_.size());
  return queued;
}

void SynopsisCache::RunSpillWriter() {
  MutexLock lk(mu_);
  for (;;) {
    while (!stop_writer_ && spill_queue_.empty()) spill_cv_.Wait(lk);
    if (spill_queue_.empty()) {
      if (stop_writer_) return;
      continue;
    }
    // Write-behind batching: take the whole backlog in one swap, so a burst
    // of evictions costs one wakeup and one pass over the directory state.
    std::vector<Evicted> batch(std::make_move_iterator(spill_queue_.begin()),
                               std::make_move_iterator(spill_queue_.end()));
    spill_queue_.clear();
    ++stats_.spill_write_batches;
    Metrics().spill_write_batches.Inc();
    lk.Unlock();
    SpillEvicted(batch);
    lk.Lock();
    // Only now do the keys leave the write-behind buffer: a miss during the
    // write was still served from memory (writeback hit).
    for (const auto& [key, method] : batch) spill_pending_index_.erase(key);
    Metrics().spill_pending.Set(spill_pending_index_.size());
    if (spill_queue_.empty()) flush_cv_.NotifyAll();
  }
}

void SynopsisCache::FlushSpill() {
  MutexLock lk(mu_);
  if (!spill_enabled() || !spill_.background_writer) return;
  while (!spill_queue_.empty() || !spill_pending_index_.empty()) {
    flush_cv_.Wait(lk);
  }
}

std::shared_ptr<const release::Method> SynopsisCache::GetOrFit(
    const SynopsisKey& key, const FitFn& fit) {
  MutexLock lk(mu_);
  std::string spill_file;
  for (;;) {
    if (const auto it = index_.find(key); it != index_.end()) {
      ++stats_.hits;
      Metrics().hits.Inc();
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    // An eviction still waiting on (or undergoing) its background write is
    // served straight from the write-behind buffer and promoted back into
    // the memory tier — never re-fitted, never read back from disk.
    if (const auto it = spill_pending_index_.find(key);
        it != spill_pending_index_.end()) {
      ++stats_.writeback_hits;
      Metrics().writeback_hits.Inc();
      const std::shared_ptr<const release::Method> value = it->second;
      std::vector<Evicted> evicted;
      if (capacity_ > 0) InsertLocked(key, value, &evicted);
      const bool notify_writer = EnqueueSpillLocked(&evicted);
      lk.Unlock();
      if (notify_writer) spill_cv_.NotifyAll();
      if (!evicted.empty()) SpillEvicted(evicted);
      return value;
    }
    if (!inflight_.contains(key)) break;
    // Another thread is fitting (or rehydrating) this key; wait for it
    // rather than duplicating the work.
    inflight_cv_.Wait(lk);
  }
  ++stats_.misses;
  Metrics().misses.Inc();
  inflight_.insert(key);
  if (spill_enabled()) {
    const std::string file =
        SynopsisKeyFingerprint(key) + std::string(kSpillExtension);
    if (spill_index_.contains(file)) spill_file = file;
  }
  lk.Unlock();

  // Rehydrate from the spill tier if this key was evicted to disk; fall
  // back to a fresh fit when the file is missing or corrupt.
  std::shared_ptr<const release::Method> value;
  bool from_spill = false;
  bool spill_broken = false;
  std::uintmax_t read_bytes = 0;
  if (!spill_file.empty()) {
    const std::string path = SpillPathFor(spill_file);
    auto loaded = release::LoadMethodFromFile(path);
    if (loaded.ok()) {
      value = std::move(loaded).value();
      from_spill = true;
      std::error_code size_ec;
      read_bytes = std::filesystem::file_size(path, size_ec);
      if (size_ec) read_bytes = 0;
    } else {
      spill_broken = true;
    }
  }
  if (value == nullptr) {
    value = fit();
    PRIVTREE_CHECK(value != nullptr);
  }

  std::vector<Evicted> evicted;
  lk.Lock();
  inflight_.erase(key);
  if (from_spill) {
    ++stats_.spill_hits;
    stats_.spill_bytes_read += static_cast<std::size_t>(read_bytes);
    Metrics().spill_hits.Inc();
    Metrics().spill_bytes_read.Inc(read_bytes);
    TouchSpillLocked(spill_file);
  } else if (spill_broken) {
    ++stats_.spill_failures;
    Metrics().spill_failures.Inc();
    if (spill_index_.erase(spill_file) > 0) {
      spill_lru_.remove(spill_file);
      // Keep the corrupt bytes aside for diagnosis instead of destroying
      // them; the fresh fit above replaces the entry either way.
      QuarantineFile(SpillPathFor(spill_file));
      ++stats_.spill_quarantined;
      Metrics().spill_quarantined.Inc();
    }
  }
  if (capacity_ > 0) InsertLocked(key, value, &evicted);
  const bool notify_writer = EnqueueSpillLocked(&evicted);
  inflight_cv_.NotifyAll();
  lk.Unlock();

  if (notify_writer) spill_cv_.NotifyAll();
  if (!evicted.empty()) SpillEvicted(evicted);
  return value;
}

std::shared_ptr<const release::Method> SynopsisCache::Lookup(
    const SynopsisKey& key) {
  MutexLock lk(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

std::size_t SynopsisCache::size() const {
  MutexLock lk(mu_);
  return lru_.size();
}

std::size_t SynopsisCache::SpillFileCount() const {
  MutexLock lk(mu_);
  return spill_index_.size();
}

SynopsisCache::Stats SynopsisCache::stats() const {
  MutexLock lk(mu_);
  Stats out = stats_;
  out.spill_pending = spill_pending_index_.size();
  return out;
}

void SynopsisCache::Clear() {
  // Let in-flight background writes land first, so no writer re-registers a
  // file after we have deleted it.
  FlushSpill();
  MutexLock lk(mu_);
  lru_.clear();
  index_.clear();
  resident_size_.clear();
  stats_.resident_bytes = 0;
  Metrics().resident_bytes.Set(0);
  for (const std::string& file : spill_lru_) {
    std::error_code ec;
    std::filesystem::remove(SpillPathFor(file), ec);
  }
  spill_lru_.clear();
  spill_index_.clear();
}

}  // namespace privtree::serve
