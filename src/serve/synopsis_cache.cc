#include "serve/synopsis_cache.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "dp/check.h"
#include "release/registry.h"

namespace privtree::serve {

namespace {

/// Order-sensitive accumulation of one 64-bit word: xor-then-avalanche
/// (SplitMix64 finalizer).  Word-at-a-time keeps the whole-dataset hash to
/// a few ops per coordinate — it runs once per FitAll sweep, over every
/// point.
inline std::uint64_t MixWord(std::uint64_t hash, std::uint64_t word) {
  std::uint64_t x = hash ^ word;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x + 0x9e3779b97f4a7c15ULL;
}

inline std::uint64_t MixDouble(std::uint64_t hash, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return MixWord(hash, bits);
}

}  // namespace

std::uint64_t DatasetFingerprint(const PointSet& points, const Box& domain) {
  PRIVTREE_CHECK_EQ(points.dim(), domain.dim());
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  hash = MixWord(hash, points.dim());
  hash = MixWord(hash, points.size());
  for (const double c : points.coords()) hash = MixDouble(hash, c);
  for (std::size_t j = 0; j < domain.dim(); ++j) {
    hash = MixDouble(hash, domain.lo(j));
    hash = MixDouble(hash, domain.hi(j));
  }
  return hash;
}

std::string CanonicalOptionsText(std::string_view method,
                                 const release::MethodOptions& options) {
  const auto& allowed = release::GlobalMethodRegistry().AllowedKeys(method);
  std::string out;
  for (const std::string& key : options.Keys()) {  // Keys() is sorted.
    const auto it = std::find_if(
        allowed.begin(), allowed.end(),
        [&](const release::OptionKey& k) { return k.name == key; });
    std::string value;
    if (it == allowed.end()) {
      value = options.GetString(key, "");
    } else {
      char buffer[64];
      switch (it->type) {
        case release::OptionType::kDouble:
          std::snprintf(buffer, sizeof(buffer), "%.17g",
                        options.GetDouble(key, 0.0));
          value = buffer;
          break;
        case release::OptionType::kInt:
          std::snprintf(buffer, sizeof(buffer), "%" PRId64,
                        options.GetInt(key, 0));
          value = buffer;
          break;
        case release::OptionType::kBool:
          value = options.GetBool(key, false) ? "true" : "false";
          break;
      }
    }
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

SynopsisCache::SynopsisCache(std::size_t capacity) : capacity_(capacity) {}

void SynopsisCache::InsertLocked(
    const SynopsisKey& key, std::shared_ptr<const release::Method> value) {
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const release::Method> SynopsisCache::GetOrFit(
    const SynopsisKey& key, const FitFn& fit) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (const auto it = index_.find(key); it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    if (!inflight_.contains(key)) break;
    // Another thread is fitting this key; wait for it rather than fitting
    // the same synopsis twice.
    inflight_cv_.wait(lk);
  }
  ++stats_.misses;
  inflight_.insert(key);
  lk.unlock();

  std::shared_ptr<const release::Method> fitted = fit();
  PRIVTREE_CHECK(fitted != nullptr);

  lk.lock();
  inflight_.erase(key);
  if (capacity_ > 0) InsertLocked(key, fitted);
  inflight_cv_.notify_all();
  return fitted;
}

std::shared_ptr<const release::Method> SynopsisCache::Lookup(
    const SynopsisKey& key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

std::size_t SynopsisCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

SynopsisCache::Stats SynopsisCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void SynopsisCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace privtree::serve
