// Memoization of fitted release::Method synopses.
//
// A fitted synopsis is a pure function of (dataset, method, options, ε,
// randomness): re-fitting with the same inputs reproduces it bit for bit,
// so a serving layer that answers many workloads over the same releases can
// cache the fit — the expensive, data-touching step — and share one
// immutable synopsis across threads via shared_ptr.  Keys canonicalize the
// options text through the registry's type metadata ("cell_scale=3" and
// "cell_scale=3.0" are the same fit) and identify the dataset and the RNG
// stream by fingerprint, so the cache never conflates two releases that
// could differ.
//
// Concurrency: one mutex guards the LRU structures; a fit for a missing key
// runs *outside* the lock, with an in-flight set making concurrent callers
// of the same key wait for the single fit instead of duplicating it (the
// same memoization discipline I/O-co-designed systems use to keep one
// read-ahead per block).
//
// Disk spill: with SpillOptions, entries evicted from the in-memory LRU are
// serialized to `<directory>/<key fingerprint>.synopsis` through the
// universal release::Method envelope (release/serialization.h), and a later
// miss on the same key rehydrates from that file instead of re-fitting —
// the load shares the single-flight discipline with fits, so concurrent
// callers trigger one disk read.  The spill tier is itself capacity-bounded
// (oldest file evicted first) and survives process restarts: a fresh cache
// pointed at the same directory serves previous spills as warm hits.  A
// file that fails to load (corruption, version drift) is deleted and the
// synopsis silently re-fitted.
//
// Spill writes are write-behind: the evicting caller only enqueues the
// (key, synopsis) pair — a dedicated background writer thread drains the
// whole pending queue per wakeup (batching bursts of evictions into one
// pass) and does the serialize + rename off the serving path.  Until its
// file lands, a pending entry still serves misses directly from the
// write-behind buffer (a `writeback_hit`), so eviction never makes a hot
// synopsis transiently unfetchable.  `stats().spill_pending` exposes the
// writer's backlog — the admission controller sheds fit load when it grows
// (see server/admission.h) — and FlushSpill() blocks until the backlog is
// on disk (tests, clean shutdown).  Setting
// `SpillOptions::background_writer = false` restores synchronous
// eviction-time writes.
#ifndef PRIVTREE_SERVE_SYNOPSIS_CACHE_H_
#define PRIVTREE_SERVE_SYNOPSIS_CACHE_H_

#include <compare>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/sync.h"
#include "release/dataset.h"
#include "release/method.h"
#include "release/options.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::serve {

/// Identity of one fitted synopsis.
struct SynopsisKey {
  std::uint64_t dataset_fingerprint = 0;  ///< release::Dataset::Fingerprint.
  std::string method;                     ///< Registry name.
  std::string options;                    ///< CanonicalOptionsText().
  double epsilon = 0.0;                   ///< Total ε of the fit.
  std::uint64_t rng_fingerprint = 0;      ///< Rng::Fingerprint() at fit time.

  friend auto operator<=>(const SynopsisKey&, const SynopsisKey&) = default;
};

/// Spatial convenience for release::Dataset::Fingerprint — an
/// order-sensitive 64-bit digest of (content, kind).  The kind tag makes
/// fingerprints domain-separate: a sequence dataset can never collide with
/// a spatial one on a cache or spill key even when their raw content words
/// coincide.  Within a kind, collisions are astronomically unlikely but
/// not impossible; the cache trades that risk for never storing the data
/// itself.
std::uint64_t DatasetFingerprint(const PointSet& points, const Box& domain);

/// Sequence counterpart.
std::uint64_t DatasetFingerprint(const SequenceDataset& sequences);

/// Renders `options` with every key the registered `method` accepts
/// normalized through its declared type (so "3", "3.0" and "3.00" collapse
/// to one double spelling, "1"/"true" to one boolean).  Keys the method
/// does not declare are passed through verbatim — the factory will reject
/// them at Create.  Aborts on unregistered method names.
std::string CanonicalOptionsText(std::string_view method,
                                 const release::MethodOptions& options);

/// Filesystem-safe 16-hex-digit digest of a key, naming its spill file.
std::string SynopsisKeyFingerprint(const SynopsisKey& key);

/// Configuration of the disk-spill tier.
struct SpillOptions {
  /// Spill directory; created on construction.  Empty disables spilling.
  std::string directory;
  /// Max synopsis files kept on disk (oldest evicted first); 0 = unbounded.
  std::size_t max_entries = 256;
  /// Serialize evictions on a dedicated writer thread (write-behind, the
  /// default) instead of on the evicting caller's thread.
  bool background_writer = true;
};

/// A thread-safe LRU cache of fitted methods with an optional disk tier.
class SynopsisCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t spill_writes = 0;     ///< Evictions serialized to disk.
    std::size_t spill_hits = 0;       ///< Misses served by rehydration.
    std::size_t spill_evictions = 0;  ///< Spill files deleted for capacity.
    std::size_t spill_failures = 0;   ///< Unserializable or corrupt spills.
    /// Write-path failures specifically (serialize/rename errors on the
    /// background writer or the evicting caller); also counted in
    /// spill_failures.  Each failing key logs one stderr line, once.
    std::size_t spill_write_failures = 0;
    /// Corrupt envelopes quarantined (renamed to `.quarantined`) instead
    /// of served: warm-restart scan rejects + runtime load failures.
    std::size_t spill_quarantined = 0;
    /// Evictions enqueued for the background writer but not yet on disk
    /// (snapshot of the current backlog, not a cumulative count).
    std::size_t spill_pending = 0;
    /// Misses served straight from the pending write-behind buffer.
    std::size_t writeback_hits = 0;
    /// Background-writer wakeups that flushed at least one write.
    std::size_t spill_write_batches = 0;
    /// Serialized size of every resident synopsis (envelope bytes, the
    /// size its spill file would have), maintained incrementally.
    std::size_t resident_bytes = 0;
    /// Cumulative bytes of spill files written to disk.
    std::size_t spill_bytes_written = 0;
    /// Cumulative bytes of spill files read back on rehydration.
    std::size_t spill_bytes_read = 0;
    /// Bytes read by the warm-restart scan (header probes; full files only
    /// for legacy envelopes without a header checksum).
    std::size_t spill_scan_bytes = 0;
  };

  /// Builds the fitted method for a missing key; must not return null.
  using FitFn = std::function<std::shared_ptr<const release::Method>()>;

  /// Keeps at most `capacity` synopses (0 disables retention: every call
  /// fits, nothing is stored).
  explicit SynopsisCache(std::size_t capacity);

  /// As above, with evictions spilling to `spill.directory`.  Spill files
  /// already in the directory (from an earlier run or cache) are adopted,
  /// oldest-first.  `max_resident_bytes` additionally caps the summed
  /// serialized size of resident synopses (0 = unbounded): when the byte
  /// budget is exceeded the LRU evicts past `capacity`, always keeping at
  /// least the most recent entry.
  SynopsisCache(std::size_t capacity, SpillOptions spill,
                std::size_t max_resident_bytes = 0);

  /// Flushes the write-behind backlog to disk, then stops the writer.
  ~SynopsisCache();

  /// Returns the cached synopsis for `key`, fitting (and caching) it via
  /// `fit` on a miss.  Concurrent calls for the same key fit once.
  std::shared_ptr<const release::Method> GetOrFit(const SynopsisKey& key,
                                                  const FitFn& fit)
      EXCLUDES(mu_);

  /// The cached synopsis, or null without side effects beyond LRU touch.
  std::shared_ptr<const release::Method> Lookup(const SynopsisKey& key)
      EXCLUDES(mu_);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool spill_enabled() const { return !spill_.directory.empty(); }
  /// Number of synopsis files currently tracked in the spill directory.
  std::size_t SpillFileCount() const;
  Stats stats() const;
  /// Blocks until every pending write-behind eviction is on disk (no-op
  /// when spilling is disabled or nothing is pending).
  void FlushSpill() EXCLUDES(mu_);
  /// Drops every cached synopsis, including the spill files on disk and
  /// the pending write-behind backlog.
  void Clear() EXCLUDES(mu_);

 private:
  using LruList =
      std::list<std::pair<SynopsisKey, std::shared_ptr<const release::Method>>>;
  using Evicted =
      std::pair<SynopsisKey, std::shared_ptr<const release::Method>>;

  /// Inserts (key, value) at the front, evicting from the back into
  /// `*evicted` for the caller to spill after unlocking; caller holds mu_.
  void InsertLocked(const SynopsisKey& key,
                    std::shared_ptr<const release::Method> value,
                    std::vector<Evicted>* evicted) REQUIRES(mu_);

  /// Serializes evicted entries to the spill directory (temp-file + rename,
  /// no lock held during the write), then registers the files and trims the
  /// spill tier to capacity, oldest-or-coldest file first.
  void SpillEvicted(const std::vector<Evicted>& evicted) EXCLUDES(mu_);

  /// Queues evicted entries for the background writer (or hands them to
  /// SpillEvicted inline when the writer is disabled); caller holds mu_ and
  /// must call spill_cv_.NotifyAll() after unlocking when this returns
  /// true (entries were queued).
  bool EnqueueSpillLocked(std::vector<Evicted>* evicted) REQUIRES(mu_);

  /// Background writer main loop: drain the whole pending queue per wakeup.
  void RunSpillWriter() EXCLUDES(mu_);

  /// Full path of a spill file name (fingerprint + extension).
  std::string SpillPathFor(const std::string& file) const;

  /// Moves `file` to the front of the spill LRU; caller holds mu_.
  void TouchSpillLocked(const std::string& file) REQUIRES(mu_);

  const std::size_t capacity_;
  const SpillOptions spill_;
  const std::size_t max_resident_bytes_;
  mutable Mutex mu_;
  CondVar inflight_cv_;
  LruList lru_ GUARDED_BY(mu_);  // Front = most recently used.
  std::map<SynopsisKey, LruList::iterator> index_ GUARDED_BY(mu_);
  /// Serialized size per resident key, mirrored into
  /// stats_.resident_bytes; measured once at insert (Save to a string).
  std::map<SynopsisKey, std::size_t> resident_size_ GUARDED_BY(mu_);
  std::set<SynopsisKey> inflight_ GUARDED_BY(mu_);
  /// Spill-file names (fingerprint + extension), front = most recent; the
  /// set mirrors the list for O(log n) membership.
  std::list<std::string> spill_lru_ GUARDED_BY(mu_);
  std::set<std::string> spill_index_ GUARDED_BY(mu_);
  /// Spill-file names whose write failure was already logged (satellite
  /// contract: one stderr line per key, not one per retry).
  std::set<std::string> logged_write_failures_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
  /// Write-behind state: evictions queued for the writer, plus a key index
  /// over everything enqueued-or-being-written so a miss can be served from
  /// the buffer until its file lands.
  std::deque<Evicted> spill_queue_ GUARDED_BY(mu_);
  std::map<SynopsisKey, std::shared_ptr<const release::Method>>
      spill_pending_index_ GUARDED_BY(mu_);
  bool stop_writer_ GUARDED_BY(mu_) = false;
  CondVar spill_cv_;  // Wakes the writer.
  CondVar flush_cv_;  // Signalled when the backlog drains.
  std::thread spill_writer_;  // Joined by the destructor.
};

}  // namespace privtree::serve

#endif  // PRIVTREE_SERVE_SYNOPSIS_CACHE_H_
