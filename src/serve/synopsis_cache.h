// Memoization of fitted release::Method synopses.
//
// A fitted synopsis is a pure function of (dataset, method, options, ε,
// randomness): re-fitting with the same inputs reproduces it bit for bit,
// so a serving layer that answers many workloads over the same releases can
// cache the fit — the expensive, data-touching step — and share one
// immutable synopsis across threads via shared_ptr.  Keys canonicalize the
// options text through the registry's type metadata ("cell_scale=3" and
// "cell_scale=3.0" are the same fit) and identify the dataset and the RNG
// stream by fingerprint, so the cache never conflates two releases that
// could differ.
//
// Concurrency: one mutex guards the LRU structures; a fit for a missing key
// runs *outside* the lock, with an in-flight set making concurrent callers
// of the same key wait for the single fit instead of duplicating it (the
// same memoization discipline I/O-co-designed systems use to keep one
// read-ahead per block).
#ifndef PRIVTREE_SERVE_SYNOPSIS_CACHE_H_
#define PRIVTREE_SERVE_SYNOPSIS_CACHE_H_

#include <compare>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>

#include "release/method.h"
#include "release/options.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::serve {

/// Identity of one fitted synopsis.
struct SynopsisKey {
  std::uint64_t dataset_fingerprint = 0;  ///< DatasetFingerprint().
  std::string method;                     ///< Registry name.
  std::string options;                    ///< CanonicalOptionsText().
  double epsilon = 0.0;                   ///< Total ε of the fit.
  std::uint64_t rng_fingerprint = 0;      ///< Rng::Fingerprint() at fit time.

  friend auto operator<=>(const SynopsisKey&, const SynopsisKey&) = default;
};

/// Order-sensitive 64-bit digest of (dim, coordinates, domain bounds).
/// Collisions are astronomically unlikely but not impossible; the cache
/// trades that risk for never storing the data itself.
std::uint64_t DatasetFingerprint(const PointSet& points, const Box& domain);

/// Renders `options` with every key the registered `method` accepts
/// normalized through its declared type (so "3", "3.0" and "3.00" collapse
/// to one double spelling, "1"/"true" to one boolean).  Keys the method
/// does not declare are passed through verbatim — the factory will reject
/// them at Create.  Aborts on unregistered method names.
std::string CanonicalOptionsText(std::string_view method,
                                 const release::MethodOptions& options);

/// A thread-safe LRU cache of fitted methods.
class SynopsisCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
  };

  /// Builds the fitted method for a missing key; must not return null.
  using FitFn = std::function<std::shared_ptr<const release::Method>()>;

  /// Keeps at most `capacity` synopses (0 disables retention: every call
  /// fits, nothing is stored).
  explicit SynopsisCache(std::size_t capacity);

  /// Returns the cached synopsis for `key`, fitting (and caching) it via
  /// `fit` on a miss.  Concurrent calls for the same key fit once.
  std::shared_ptr<const release::Method> GetOrFit(const SynopsisKey& key,
                                                  const FitFn& fit);

  /// The cached synopsis, or null without side effects beyond LRU touch.
  std::shared_ptr<const release::Method> Lookup(const SynopsisKey& key);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  Stats stats() const;
  void Clear();

 private:
  using LruList =
      std::list<std::pair<SynopsisKey, std::shared_ptr<const release::Method>>>;

  /// Inserts (key, value) at the front, evicting from the back; caller
  /// holds mu_.
  void InsertLocked(const SynopsisKey& key,
                    std::shared_ptr<const release::Method> value);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable inflight_cv_;
  LruList lru_;  // Front = most recently used.
  std::map<SynopsisKey, LruList::iterator> index_;
  std::set<SynopsisKey> inflight_;
  Stats stats_;
};

}  // namespace privtree::serve

#endif  // PRIVTREE_SERVE_SYNOPSIS_CACHE_H_
