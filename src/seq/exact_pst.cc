#include "seq/exact_pst.h"

#include <deque>
#include <utility>

#include "dp/check.h"
#include "seq/pst_occurrences.h"

namespace privtree {

PstModel BuildExactPst(const SequenceDataset& data,
                       const ExactPstOptions& options) {
  PstModel model(data.alphabet_size());
  const PstOccurrences occurrences(data);

  struct Pending {
    NodeId node;
    std::vector<PstPosting> postings;
  };
  std::deque<Pending> queue;
  queue.push_back({model.AddRoot(), occurrences.RootPostings()});

  while (!queue.empty()) {
    Pending current = std::move(queue.front());
    queue.pop_front();
    auto& node = model.mutable_node(current.node);
    node.hist = occurrences.HistOf(current.postings);

    // C1: predictors starting with $ cannot be extended.
    const bool starts_with_dollar =
        !node.predictor.empty() && node.predictor.front() == model.dollar();
    if (starts_with_dollar) continue;
    if (node.predictor.size() >= options.max_depth) continue;
    // C2 and C3.
    double magnitude = 0.0;
    for (double h : node.hist) magnitude += h;
    if (magnitude < options.min_magnitude) continue;
    if (HistEntropy(node.hist) < options.min_entropy) continue;

    auto child_postings = occurrences.RefineAll(current.postings,
                                                node.predictor.size());
    const NodeId first_child = model.SplitNode(current.node);
    for (std::size_t c = 0; c < model.fanout(); ++c) {
      queue.push_back({static_cast<NodeId>(first_child + c),
                       std::move(child_postings[c])});
    }
  }
  return model;
}

}  // namespace privtree
