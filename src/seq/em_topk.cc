#include "seq/em_topk.h"

#include <algorithm>
#include <unordered_map>

#include "dp/check.h"
#include "dp/exponential_mechanism.h"

namespace privtree {

TopKStrings EmTopKStrings(const SequenceDataset& data, double epsilon,
                          std::size_t k, const EmTopKOptions& options,
                          Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GE(k, 1u);
  PRIVTREE_CHECK_GE(options.l_top, 1u);
  PRIVTREE_CHECK_LE(options.max_count_len, 7u);

  // Exact substring counts (up to the counting cap) computed once.
  const auto counts = CountAllSubstrings(data, options.max_count_len);
  const auto count_of = [&](const std::vector<Symbol>& s) -> double {
    if (s.size() > options.max_count_len) return 0.0;
    const auto it = counts.find(PackString(s));
    return it == counts.end() ? 0.0 : it->second;
  };

  const double round_epsilon = epsilon / static_cast<double>(k);
  const double sensitivity = static_cast<double>(options.l_top);

  // Candidate pool R, with cached qualities.
  std::vector<std::vector<Symbol>> pool;
  std::vector<double> quality;
  for (Symbol x = 0; x < data.alphabet_size(); ++x) {
    pool.push_back({x});
    quality.push_back(count_of(pool.back()));
  }

  TopKStrings out;
  for (std::size_t round = 0; round < k; ++round) {
    const std::size_t selected =
        ExponentialMechanismSelect(quality, round_epsilon, sensitivity, rng);
    std::vector<Symbol> r = pool[selected];
    out.strings.push_back(r);
    out.counts.push_back(quality[selected]);

    // Replace r with its one-symbol extensions (capped at length 7 to stay
    // representable; over-long extensions have quality 0 anyway).
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(selected));
    quality.erase(quality.begin() + static_cast<std::ptrdiff_t>(selected));
    for (Symbol x = 0; x < data.alphabet_size(); ++x) {
      std::vector<Symbol> extended = r;
      if (extended.size() < options.max_count_len) {
        extended.push_back(x);
        pool.push_back(extended);
        quality.push_back(count_of(pool.back()));
      }
    }
  }
  return out;
}

}  // namespace privtree
