// PrivTree for sequence data (Section 4.2): private construction of a
// prediction suffix tree.
//
// The decomposition policy scores a node by Equation (13),
// c(v) = ‖hist(v)‖₁ − max_x hist(v)[x], which is monotonic (Lemma 4.1) and
// changes by at most l⊤ under insertion of one (truncated) sequence, so
// PrivTree runs with noise scale λ >= (2β−1)/(β−1) · l⊤/ε₁ (Theorem 4.1).
// Post-processing adds Lap(l⊤/ε₂) noise to every leaf histogram count
// (Theorem 4.2), aggregates internal histograms from the leaves and zeroes
// negatives.  Following Section 4.2 the default budget split is
// ε₁ = ε/β for the tree and ε₂ = ε·(β−1)/β for the counts.
#ifndef PRIVTREE_SEQ_PST_PRIVTREE_H_
#define PRIVTREE_SEQ_PST_PRIVTREE_H_

#include <cstdint>

#include "core/privtree.h"
#include "dp/rng.h"
#include "seq/pst.h"
#include "seq/sequence.h"

namespace privtree {

/// Options for BuildPrivatePst.
struct PrivatePstOptions {
  /// The public sequence-length cap l⊤.  The input dataset must already be
  /// truncated to it (SequenceDataset::Truncate).
  std::size_t l_top = 50;
  /// Budget fraction for the tree shape; 0 selects the paper's 1/β.
  double tree_budget_fraction = 0.0;
  /// Structural recursion cap forwarded to PrivTreeParams.
  std::int32_t max_depth = 512;
};

/// Result of the private construction.
struct PrivatePstResult {
  PstModel model;
  DecompositionStats stats;
};

/// Builds an ε-differentially private PST over `data`.
PrivatePstResult BuildPrivatePst(const SequenceDataset& data, double epsilon,
                                 const PrivatePstOptions& options, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_SEQ_PST_PRIVTREE_H_
