#include "seq/sequence.h"

#include <algorithm>

#include "dp/check.h"

namespace privtree {

SequenceDataset::SequenceDataset(std::size_t alphabet_size)
    : alphabet_size_(alphabet_size), offsets_{0} {
  PRIVTREE_CHECK_GE(alphabet_size, 1u);
}

void SequenceDataset::Add(std::span<const Symbol> symbols, bool has_end) {
  for (Symbol x : symbols) {
    PRIVTREE_CHECK_LT(x, alphabet_size_);
  }
  symbols_.insert(symbols_.end(), symbols.begin(), symbols.end());
  offsets_.push_back(symbols_.size());
  has_end_.push_back(has_end);
}

std::span<const Symbol> SequenceDataset::sequence(std::size_t i) const {
  PRIVTREE_CHECK_LT(i, size());
  return {symbols_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
}

std::size_t SequenceDataset::length(std::size_t i) const {
  PRIVTREE_CHECK_LT(i, size());
  return offsets_[i + 1] - offsets_[i];
}

std::size_t SequenceDataset::LengthWithEnd(std::size_t i) const {
  return length(i) + (has_end(i) ? 1 : 0);
}

double SequenceDataset::AverageLength() const {
  if (empty()) return 0.0;
  return static_cast<double>(symbols_.size()) / static_cast<double>(size());
}

std::vector<std::size_t> SequenceDataset::LengthHistogram() const {
  std::size_t max_len = 0;
  for (std::size_t i = 0; i < size(); ++i) max_len = std::max(max_len, length(i));
  std::vector<std::size_t> hist(max_len + 1, 0);
  for (std::size_t i = 0; i < size(); ++i) ++hist[length(i)];
  return hist;
}

SequenceDataset SequenceDataset::Truncate(std::size_t l_top) const {
  PRIVTREE_CHECK_GE(l_top, 1u);
  SequenceDataset out(alphabet_size_);
  for (std::size_t i = 0; i < size(); ++i) {
    const auto s = sequence(i);
    if (LengthWithEnd(i) > l_top) {
      // Keep the first l_top symbols, drop the & marker (the kept part has
      // paper-length exactly l_top).
      out.Add(s.subspan(0, std::min(s.size(), l_top)), /*has_end=*/false);
    } else {
      out.Add(s, has_end(i));
    }
  }
  return out;
}

}  // namespace privtree
