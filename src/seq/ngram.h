// N-gram — the variable-length n-gram baseline (Chen, Acs, Castelluccia,
// CCS 2012), reimplemented for Section 6.2's comparison.
//
// An exploration tree over grams (strings over I ∪ {&}) is grown level by
// level up to a pre-defined height n_max: each node's occurrence count is
// released with Laplace noise (per-level budget ε/n_max, sensitivity l⊤ per
// level), and a node is extended only when its noisy count clears a
// noise-filtering threshold.  This is exactly the Algorithm-1-style design
// whose dependence on a pre-defined height the paper criticizes: Figure 12
// sweeps n_max.  The released counts define a Markov model (longest-suffix
// backoff) used for string-frequency estimation and synthetic generation.
#ifndef PRIVTREE_SEQ_NGRAM_H_
#define PRIVTREE_SEQ_NGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/tree.h"
#include "dp/rng.h"
#include "seq/model.h"
#include "seq/sequence.h"

namespace privtree {

/// Options for NgramModel.
struct NgramOptions {
  /// Maximum gram length n_max (the paper's suggested value is 5).
  std::size_t n_max = 5;
  /// The public sequence-length cap l⊤ (data must be pre-truncated).
  std::size_t l_top = 50;
  /// Expansion threshold in units of the per-count noise scale; a node is
  /// extended when its noisy count exceeds factor · scale.
  double threshold_factor = 3.0;
};

/// The released n-gram tree, exposed as a SequenceModel.
class NgramModel : public SequenceModel {
 public:
  /// Builds the ε-DP n-gram model over the (truncated) dataset.
  NgramModel(const SequenceDataset& data, double epsilon,
             const NgramOptions& options, Rng& rng);

  std::size_t alphabet_size() const override { return alphabet_size_; }

  /// SequenceModel: longest-suffix backoff over released gram counts.
  void NextDistribution(std::span<const Symbol> context,
                        bool context_starts_sequence,
                        std::vector<double>* dist) const override;

  /// SequenceModel: the noisy unigram count, clamped at zero.
  double InitialCount(Symbol x) const override;

  /// Number of released gram counts.
  std::size_t ReleasedGramCount() const { return nodes_.size() - 1; }

 private:
  struct GramNode {
    double count = 0.0;            ///< Noisy occurrence count.
    std::vector<NodeId> children;  ///< Size alphabet_size+1 when extended.
  };

  /// The deepest tree node reachable by following `context`'s suffix, that
  /// has children.  Returns the root when nothing longer matches.
  NodeId BackoffNode(std::span<const Symbol> context) const;

  std::size_t alphabet_size_;
  std::vector<GramNode> nodes_;  ///< nodes_[0] is the (uncounted) root.
};

}  // namespace privtree

#endif  // PRIVTREE_SEQ_NGRAM_H_
