// N-gram — the variable-length n-gram baseline (Chen, Acs, Castelluccia,
// CCS 2012), reimplemented for Section 6.2's comparison.
//
// An exploration tree over grams (strings over I ∪ {&}) is grown level by
// level up to a pre-defined height n_max: each node's occurrence count is
// released with Laplace noise (per-level budget ε/n_max, sensitivity l⊤ per
// level), and a node is extended only when its noisy count clears a
// noise-filtering threshold.  This is exactly the Algorithm-1-style design
// whose dependence on a pre-defined height the paper criticizes: Figure 12
// sweeps n_max.  The released counts define a Markov model (longest-suffix
// backoff) used for string-frequency estimation and synthetic generation.
#ifndef PRIVTREE_SEQ_NGRAM_H_
#define PRIVTREE_SEQ_NGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/tree.h"
#include "dp/rng.h"
#include "dp/status.h"
#include "seq/model.h"
#include "seq/sequence.h"

namespace privtree {

/// Options for NgramModel.
struct NgramOptions {
  /// Maximum gram length n_max (the paper's suggested value is 5).
  std::size_t n_max = 5;
  /// The public sequence-length cap l⊤ (data must be pre-truncated).
  std::size_t l_top = 50;
  /// Expansion threshold in units of the per-count noise scale; a node is
  /// extended when its noisy count exceeds factor · scale.
  double threshold_factor = 3.0;
};

/// The released n-gram tree, exposed as a SequenceModel.
class NgramModel : public SequenceModel {
 public:
  /// Builds the ε-DP n-gram model over the (truncated) dataset.
  NgramModel(const SequenceDataset& data, double epsilon,
             const NgramOptions& options, Rng& rng);

  std::size_t alphabet_size() const override { return alphabet_size_; }

  /// SequenceModel: longest-suffix backoff over released gram counts.
  void NextDistribution(std::span<const Symbol> context,
                        bool context_starts_sequence,
                        std::vector<double>* dist) const override;

  /// SequenceModel: the noisy unigram count, clamped at zero.
  double InitialCount(Symbol x) const override;

  /// Number of released gram counts.
  std::size_t ReleasedGramCount() const { return nodes_.size() - 1; }

  /// Total tree nodes (the uncounted root plus every released gram).
  std::size_t size() const { return nodes_.size(); }

  /// Height of the released tree: the longest gram's length.
  std::int32_t Height() const;

  /// The released noisy count of node `id` (0 for the root, which carries
  /// no count).
  double NodeCount(NodeId id) const;

  /// Flat parent links (entry i = parent of node i; kInvalidNode for the
  /// root), recovered from the children lists.  Together with NodeCount
  /// this is the whole released state — the envelope codec's row order
  /// (release/sequence_methods.cc).
  std::vector<NodeId> ParentLinks() const;

  /// Restores a released model from (parent, count) rows, the inverse of
  /// ParentLinks()/NodeCount(): children of one extended node are the
  /// alphabet_size+1 consecutive nodes naming it as parent, in prepended-
  /// symbol order (the invariant the building constructor produces).  Any
  /// structural inconsistency — fractured sibling groups, an extended
  /// &-child, a childless root — yields InvalidArgument, never a crash.
  static Result<NgramModel> Restore(std::size_t alphabet_size,
                                    std::span<const NodeId> parents,
                                    std::span<const double> counts);

 private:
  struct GramNode {
    double count = 0.0;            ///< Noisy occurrence count.
    std::vector<NodeId> children;  ///< Size alphabet_size+1 when extended.
  };

  /// Restore() shell: a model with no nodes yet.
  explicit NgramModel(std::size_t alphabet_size)
      : alphabet_size_(alphabet_size) {}

  /// The deepest tree node reachable by following `context`'s suffix, that
  /// has children.  Returns the root when nothing longer matches.
  NodeId BackoffNode(std::span<const Symbol> context) const;

  std::size_t alphabet_size_;
  std::vector<GramNode> nodes_;  ///< nodes_[0] is the (uncounted) root.
};

}  // namespace privtree

#endif  // PRIVTREE_SEQ_NGRAM_H_
