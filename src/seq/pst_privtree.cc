#include "seq/pst_privtree.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/privtree_params.h"
#include "core/tree.h"
#include "dp/budget.h"
#include "dp/check.h"
#include "dp/distributions.h"
#include "seq/pst_occurrences.h"

namespace privtree {

namespace {

/// The sub-domain descriptor of the PST decomposition: the predictor string
/// plus a slot into the policy's posting store.
struct PstCell {
  std::vector<Symbol> predictor;
  std::int32_t slot = -1;
};

/// DecompositionPolicy over PST nodes; Score is Equation (13).
class PstPolicy {
 public:
  using Domain = PstCell;

  PstPolicy(const PstOccurrences& occurrences, std::size_t max_predictor_len)
      : occurrences_(occurrences), max_predictor_len_(max_predictor_len) {
    slots_.push_back(occurrences_.RootPostings());
  }

  Domain Root() const { return PstCell{{}, 0}; }

  /// Structural constraints: C1 ($-prefixed predictors cannot grow) and the
  /// public length cap (a predictor longer than l⊤ matches no sequence).
  bool CanSplit(const Domain& cell) const {
    if (!cell.predictor.empty() &&
        cell.predictor.front() == occurrences_.dollar()) {
      return false;
    }
    return cell.predictor.size() < max_predictor_len_;
  }

  std::vector<Domain> Split(const Domain& cell) const {
    PRIVTREE_CHECK_GE(cell.slot, 0);
    auto child_postings = occurrences_.RefineAll(
        slots_[static_cast<std::size_t>(cell.slot)], cell.predictor.size());
    // The parent's postings are no longer needed; free them to keep live
    // memory proportional to one tree level.
    std::vector<PstPosting>().swap(
        slots_[static_cast<std::size_t>(cell.slot)]);

    std::vector<Domain> children;
    children.reserve(child_postings.size());
    for (std::size_t c = 0; c < child_postings.size(); ++c) {
      PstCell child;
      child.predictor.reserve(cell.predictor.size() + 1);
      child.predictor.push_back(static_cast<Symbol>(c));
      child.predictor.insert(child.predictor.end(), cell.predictor.begin(),
                             cell.predictor.end());
      child.slot = static_cast<std::int32_t>(slots_.size());
      slots_.push_back(std::move(child_postings[c]));
      children.push_back(std::move(child));
    }
    return children;
  }

  double Score(const Domain& cell) const {
    PRIVTREE_CHECK_GE(cell.slot, 0);
    return PstScore(occurrences_.HistOf(
        slots_[static_cast<std::size_t>(cell.slot)]));
  }

  int fanout() const {
    return static_cast<int>(occurrences_.data().alphabet_size()) + 1;
  }

 private:
  const PstOccurrences& occurrences_;
  std::size_t max_predictor_len_;
  mutable std::vector<std::vector<PstPosting>> slots_;
};

}  // namespace

PrivatePstResult BuildPrivatePst(const SequenceDataset& data, double epsilon,
                                 const PrivatePstOptions& options, Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GE(options.l_top, 1u);
  const std::size_t beta = data.alphabet_size() + 1;

  PrivacyBudget budget(epsilon);
  const double tree_fraction = options.tree_budget_fraction > 0.0
                                   ? options.tree_budget_fraction
                                   : 1.0 / static_cast<double>(beta);
  const double tree_epsilon = budget.SpendFraction(tree_fraction);
  const double count_epsilon = budget.SpendRemaining();

  const PstOccurrences occurrences(data);
  PstPolicy policy(occurrences, options.l_top);

  PrivTreeParams params = PrivTreeParams::ForEpsilon(
      tree_epsilon, static_cast<int>(beta),
      /*sensitivity=*/static_cast<double>(options.l_top));
  params.max_depth = options.max_depth;

  PrivatePstResult result{PstModel(data.alphabet_size()), {}};
  const DecompTree<PstCell> tree =
      RunPrivTree(policy, params, rng, &result.stats);

  // Mirror the decomposition tree into a PstModel.  DecompTree children and
  // PstModel::SplitNode both order children by prepended symbol, and both
  // containers append nodes in visit order, so ids line up one-to-one.
  result.model.AddRoot();
  for (std::size_t id = 0; id < tree.size(); ++id) {
    if (!tree.node(static_cast<NodeId>(id)).is_leaf()) {
      result.model.SplitNode(static_cast<NodeId>(id));
    }
  }
  PRIVTREE_CHECK_EQ(result.model.size(), tree.size());

  // Exact leaf histograms in one pass: every predicted position maps to
  // exactly one leaf (the walk consumes preceding symbols down to $).
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto s = data.sequence(i);
    const std::size_t last = s.size() + (data.has_end(i) ? 1 : 0);
    for (std::size_t p = 1; p <= last; ++p) {
      const NodeId leaf = result.model.LongestSuffixNode(
          s.subspan(0, p - 1), /*context_starts_sequence=*/true);
      const Symbol predicted =
          (p <= s.size()) ? s[p - 1]
                          : static_cast<Symbol>(result.model.end_slot());
      result.model.mutable_node(leaf).hist[predicted] += 1.0;
    }
  }

  // Theorem 4.2 post-processing: Lap(l⊤/ε₂) on every leaf histogram count.
  const double count_scale =
      static_cast<double>(options.l_top) / count_epsilon;
  for (std::size_t id = 0; id < result.model.size(); ++id) {
    auto& node = result.model.mutable_node(static_cast<NodeId>(id));
    if (!node.children.empty()) continue;
    for (double& h : node.hist) h += SampleLaplace(rng, count_scale);
  }
  result.model.AggregateAndClampHists();
  return result;
}

}  // namespace privtree
