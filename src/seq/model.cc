#include "seq/model.h"

#include <algorithm>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

double SequenceModel::EstimateStringFrequency(
    std::span<const Symbol> s) const {
  PRIVTREE_CHECK(!s.empty());
  double ans = InitialCount(s[0]);
  std::vector<double> dist;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (ans <= 0.0) return 0.0;
    NextDistribution(s.subspan(0, i), /*context_starts_sequence=*/false,
                     &dist);
    double magnitude = 0.0;
    for (double w : dist) magnitude += w;
    if (magnitude <= 0.0) return 0.0;
    ans *= dist[s[i]] / magnitude;
  }
  return std::max(ans, 0.0);
}

double SequenceModel::EstimatePrefixCount(std::span<const Symbol> s) const {
  PRIVTREE_CHECK(!s.empty());
  std::vector<double> dist;
  double ans = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    NextDistribution(s.subspan(0, i), /*context_starts_sequence=*/true,
                     &dist);
    if (i == 0) {
      // Count-scale anchor: the next-symbol weights after $ estimate how
      // many sequences start with each symbol.
      ans = std::max(dist[s[0]], 0.0);
    } else {
      double magnitude = 0.0;
      for (double w : dist) magnitude += w;
      if (magnitude <= 0.0) return 0.0;
      ans *= dist[s[i]] / magnitude;
    }
    if (ans <= 0.0) return 0.0;
  }
  return std::max(ans, 0.0);
}

std::vector<Symbol> SequenceModel::SampleSequence(Rng& rng,
                                                  std::size_t max_len) const {
  std::vector<Symbol> out;
  std::vector<double> dist;
  while (out.size() < max_len) {
    NextDistribution(out, /*context_starts_sequence=*/true, &dist);
    double magnitude = 0.0;
    for (double w : dist) magnitude += w;
    if (magnitude <= 0.0) break;  // Degenerate model: end the sequence.
    const std::size_t drawn = SampleDiscrete(rng, dist);
    if (drawn == alphabet_size()) break;  // & sampled.
    out.push_back(static_cast<Symbol>(drawn));
  }
  return out;
}

}  // namespace privtree
