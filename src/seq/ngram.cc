#include "seq/ngram.h"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

namespace {

/// Occurrence start positions of a gram: pos is the 1-based padded index of
/// the gram's first symbol.
struct GramPosting {
  std::uint32_t seq;
  std::uint16_t pos;
};

}  // namespace

NgramModel::NgramModel(const SequenceDataset& data, double epsilon,
                       const NgramOptions& options, Rng& rng)
    : alphabet_size_(data.alphabet_size()) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GE(options.n_max, 1u);
  PRIVTREE_CHECK_GE(options.l_top, 1u);
  const std::size_t end_symbol = alphabet_size_;  // & inside grams.

  // Padded symbol access: 1..l are symbols, l+1 is & (when present).
  // Returns alphabet_size_+1 ("none") past the end.
  const auto symbol_at = [&](std::uint32_t seq,
                             std::size_t pos) -> std::size_t {
    const auto s = data.sequence(seq);
    if (pos >= 1 && pos <= s.size()) return s[pos - 1];
    if (pos == s.size() + 1 && data.has_end(seq)) return end_symbol;
    return alphabet_size_ + 1;
  };

  const double scale = static_cast<double>(options.l_top) *
                       static_cast<double>(options.n_max) / epsilon;
  const double threshold = options.threshold_factor * scale;

  nodes_.push_back(GramNode{});  // Root.

  struct Pending {
    NodeId node;
    std::size_t level;
    bool ends_with_end;  ///< The gram's last symbol is & (never extended).
    std::vector<GramPosting> postings;
  };
  std::deque<Pending> queue;

  // Level 1: all unigrams (including &).
  {
    std::vector<std::vector<GramPosting>> buckets(alphabet_size_ + 1);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::size_t last =
          data.length(i) + (data.has_end(i) ? 1 : 0);
      for (std::size_t p = 1; p <= last; ++p) {
        buckets[symbol_at(static_cast<std::uint32_t>(i), p)].push_back(
            GramPosting{static_cast<std::uint32_t>(i),
                        static_cast<std::uint16_t>(p)});
      }
    }
    nodes_[0].children.resize(alphabet_size_ + 1);
    for (std::size_t c = 0; c <= alphabet_size_; ++c) {
      const NodeId id = static_cast<NodeId>(nodes_.size());
      nodes_.push_back(GramNode{});
      nodes_[0].children[c] = id;
      queue.push_back({id, 1, c == end_symbol, std::move(buckets[c])});
    }
  }

  while (!queue.empty()) {
    Pending current = std::move(queue.front());
    queue.pop_front();
    const double noisy =
        static_cast<double>(current.postings.size()) +
        SampleLaplace(rng, scale);
    nodes_[current.node].count = noisy;

    // Extend?  Grams ending in & cannot be extended (structural), height is
    // capped at n_max (structural), and the noisy count must clear the
    // noise-filtering threshold (the private decision).
    if (current.ends_with_end) continue;
    if (current.level >= options.n_max) continue;
    if (noisy <= threshold) continue;

    // Refine into children by the next symbol.
    std::vector<std::vector<GramPosting>> buckets(alphabet_size_ + 1);
    for (const GramPosting& posting : current.postings) {
      const std::size_t next =
          symbol_at(posting.seq, posting.pos + current.level);
      if (next > alphabet_size_) continue;  // Past the end of the sequence.
      buckets[next].push_back(posting);
    }
    nodes_[current.node].children.resize(alphabet_size_ + 1);
    for (std::size_t c = 0; c <= alphabet_size_; ++c) {
      const NodeId id = static_cast<NodeId>(nodes_.size());
      nodes_.push_back(GramNode{});
      nodes_[current.node].children[c] = id;
      queue.push_back(
          {id, current.level + 1, c == end_symbol, std::move(buckets[c])});
    }
  }
}

NodeId NgramModel::BackoffNode(std::span<const Symbol> context) const {
  // Try suffixes of the context from longest (n_max−1) to empty; return the
  // deepest node that exists and has children.
  const std::size_t max_ctx =
      std::min(context.size(), std::size_t{16});  // Grams are short anyway.
  for (std::size_t len = max_ctx; len > 0; --len) {
    NodeId v = 0;
    bool ok = true;
    for (std::size_t i = context.size() - len; i < context.size(); ++i) {
      const auto& node = nodes_[static_cast<std::size_t>(v)];
      if (node.children.empty()) {
        ok = false;
        break;
      }
      v = node.children[context[i]];
    }
    if (ok && !nodes_[static_cast<std::size_t>(v)].children.empty()) {
      return v;
    }
  }
  return 0;
}

void NgramModel::NextDistribution(std::span<const Symbol> context,
                                  bool /*context_starts_sequence*/,
                                  std::vector<double>* dist) const {
  dist->assign(alphabet_size_ + 1, 0.0);
  const NodeId v = BackoffNode(context);
  const auto& node = nodes_[static_cast<std::size_t>(v)];
  PRIVTREE_CHECK(!node.children.empty());  // The root always has children.
  for (std::size_t c = 0; c <= alphabet_size_; ++c) {
    (*dist)[c] = std::max(
        nodes_[static_cast<std::size_t>(node.children[c])].count, 0.0);
  }
}

std::int32_t NgramModel::Height() const {
  // Depth of each node is depth(parent) + 1; ids are topologically ordered
  // (a child's id always exceeds its parent's), so one forward pass works.
  std::vector<std::int32_t> depth(nodes_.size(), 0);
  std::int32_t height = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const NodeId child : nodes_[i].children) {
      depth[static_cast<std::size_t>(child)] = depth[i] + 1;
      height = std::max(height, depth[i] + 1);
    }
  }
  return height;
}

double NgramModel::NodeCount(NodeId id) const {
  return nodes_[static_cast<std::size_t>(id)].count;
}

std::vector<NodeId> NgramModel::ParentLinks() const {
  std::vector<NodeId> parents(nodes_.size(), kInvalidNode);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const NodeId child : nodes_[i].children) {
      parents[static_cast<std::size_t>(child)] = static_cast<NodeId>(i);
    }
  }
  return parents;
}

Result<NgramModel> NgramModel::Restore(std::size_t alphabet_size,
                                       std::span<const NodeId> parents,
                                       std::span<const double> counts) {
  if (alphabet_size < 1 || alphabet_size > kMaxAlphabetSize) {
    return Status::InvalidArgument("ngram restore: bad alphabet size");
  }
  const std::size_t beta = alphabet_size + 1;
  const std::size_t n = parents.size();
  if (counts.size() != n) {
    return Status::InvalidArgument("ngram restore: row count mismatch");
  }
  // The building constructor always extends the root, so a released model
  // has at least the beta unigram children.
  if (n < 1 + beta || (n - 1) % beta != 0) {
    return Status::InvalidArgument(
        "ngram restore: node count inconsistent with fanout");
  }
  if (parents[0] != kInvalidNode) {
    return Status::InvalidArgument("ngram restore: root must have parent -1");
  }
  NgramModel model(alphabet_size);
  model.nodes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) model.nodes_[i].count = counts[i];
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId p = parents[i];
    if (p < 0 || static_cast<std::size_t>(p) >= i) {
      return Status::InvalidArgument("ngram restore: bad parent at node " +
                                     std::to_string(i));
    }
    // Children of one parent arrive consecutively in groups of beta; the
    // first of each group claims the (so far childless) parent.
    if ((i - 1) % beta == 0) {
      auto& node = model.nodes_[static_cast<std::size_t>(p)];
      if (!node.children.empty()) {
        return Status::InvalidArgument(
            "ngram restore: parent extended twice at node " +
            std::to_string(i));
      }
      // An &-child (sibling index alphabet_size within its own group) is
      // structurally unextendable.
      if (p != 0) {
        const NodeId q = parents[static_cast<std::size_t>(p)];
        const NodeId first_sibling =
            model.nodes_[static_cast<std::size_t>(q)].children.front();
        if (static_cast<std::size_t>(p - first_sibling) == alphabet_size) {
          return Status::InvalidArgument(
              "ngram restore: extended &-gram at node " + std::to_string(p));
        }
      }
      node.children.reserve(beta);
      for (std::size_t c = 0; c < beta; ++c) {
        node.children.push_back(static_cast<NodeId>(i + c));
      }
    } else if (parents[i] != parents[i - 1]) {
      return Status::InvalidArgument(
          "ngram restore: fractured sibling group at node " +
          std::to_string(i));
    }
  }
  return model;
}

double NgramModel::InitialCount(Symbol x) const {
  PRIVTREE_CHECK_LT(x, alphabet_size_);
  const auto& root = nodes_[0];
  return std::max(
      nodes_[static_cast<std::size_t>(root.children[x])].count, 0.0);
}

}  // namespace privtree
