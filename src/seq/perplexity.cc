#include "seq/perplexity.h"

#include <cmath>
#include <vector>

#include "dp/check.h"

namespace privtree {

double AverageLogLoss(const SequenceModel& model, const SequenceDataset& data,
                      double smoothing) {
  PRIVTREE_CHECK_GT(smoothing, 0.0);
  PRIVTREE_CHECK_EQ(model.alphabet_size(), data.alphabet_size());
  const std::size_t slots = model.alphabet_size() + 1;
  double total_loss = 0.0;
  std::size_t predictions = 0;
  std::vector<double> dist;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto s = data.sequence(i);
    const std::size_t last = s.size() + (data.has_end(i) ? 1 : 0);
    for (std::size_t p = 0; p < last; ++p) {
      model.NextDistribution(s.subspan(0, p),
                             /*context_starts_sequence=*/true, &dist);
      double magnitude = 0.0;
      for (double w : dist) magnitude += std::max(w, 0.0);
      const std::size_t predicted =
          p < s.size() ? s[p] : model.alphabet_size();
      const double mass = std::max(dist[predicted], 0.0) + smoothing;
      const double normalizer =
          magnitude + smoothing * static_cast<double>(slots);
      total_loss -= std::log(mass / normalizer);
      ++predictions;
    }
  }
  if (predictions == 0) return 0.0;
  return total_loss / static_cast<double>(predictions);
}

double Perplexity(const SequenceModel& model, const SequenceDataset& data,
                  double smoothing) {
  return std::exp(AverageLogLoss(model, data, smoothing));
}

}  // namespace privtree
