// EM — the exponential-mechanism baseline for top-k frequent string mining
// (Section 6.2): maintain a candidate set R (initially all length-1
// strings); k times, privately select the most frequent string r in R with
// the exponential mechanism (budget ε/k, quality = occurrence count,
// sensitivity l⊤), report it, and replace it in R with its |I| one-symbol
// extensions.
#ifndef PRIVTREE_SEQ_EM_TOPK_H_
#define PRIVTREE_SEQ_EM_TOPK_H_

#include "dp/rng.h"
#include "seq/sequence.h"
#include "seq/topk.h"

namespace privtree {

/// Options for EmTopKStrings.
struct EmTopKOptions {
  /// The public length cap l⊤ = the sensitivity of string counts.
  std::size_t l_top = 50;
  /// Strings longer than this are treated as having count 0 (counting cap;
  /// must be <= 7 for the packed-key representation).
  std::size_t max_count_len = 7;
};

/// Returns k strings selected under ε-differential privacy.
TopKStrings EmTopKStrings(const SequenceDataset& data, double epsilon,
                          std::size_t k, const EmTopKOptions& options,
                          Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_SEQ_EM_TOPK_H_
