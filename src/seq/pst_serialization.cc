#include "seq/pst_serialization.h"

#include <fstream>
#include <istream>
#include <string>
#include <vector>

namespace privtree {

Status SavePstModel(const std::string& path, const PstModel& model) {
  if (model.size() == 0) {
    return Status::InvalidArgument("cannot save an empty model");
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.precision(17);
  out << "privtree-pst v1\n";
  out << "alphabet " << model.alphabet_size() << "\n";
  out << "nodes " << model.size() << "\n";
  // Parent of each node (kInvalidNode for the root), recovered from the
  // children lists.
  std::vector<NodeId> parent(model.size(), kInvalidNode);
  for (std::size_t i = 0; i < model.size(); ++i) {
    for (NodeId child : model.node(static_cast<NodeId>(i)).children) {
      parent[static_cast<std::size_t>(child)] = static_cast<NodeId>(i);
    }
  }
  for (std::size_t i = 0; i < model.size(); ++i) {
    out << parent[i];
    for (double h : model.node(static_cast<NodeId>(i)).hist) {
      out << ' ' << h;
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<PstModel> LoadPstModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadPstModelStream(in, path);
}

Result<PstModel> LoadPstModelStream(std::istream& in,
                                    const std::string& path) {
  std::string line;
  if (!std::getline(in, line) || line != kPstV1Magic) {
    return Status::InvalidArgument(path + ": bad magic line");
  }
  std::string keyword;
  std::size_t alphabet = 0, nodes = 0;
  if (!(in >> keyword >> alphabet) || keyword != "alphabet" ||
      alphabet == 0 || alphabet > kMaxAlphabetSize) {
    return Status::InvalidArgument(path + ": bad alphabet header");
  }
  // The node cap keeps a crafted header from forcing a huge up-front
  // allocation (the rows below would run out of input long before then).
  if (!(in >> keyword >> nodes) || keyword != "nodes" || nodes == 0 ||
      nodes > (std::size_t{1} << 22)) {
    return Status::InvalidArgument(path + ": bad nodes header");
  }
  const std::size_t beta = alphabet + 1;
  if ((nodes - 1) % beta != 0) {
    return Status::InvalidArgument(path +
                                   ": node count inconsistent with fanout");
  }

  PstModel model(alphabet);
  model.AddRoot();
  // First pass: read rows; split nodes in id order as parents appear.
  std::vector<std::vector<double>> hists(nodes);
  std::vector<NodeId> parents(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    if (!(in >> parents[i])) {
      return Status::InvalidArgument(path + ": truncated node " +
                                     std::to_string(i));
    }
    hists[i].resize(beta);
    for (double& h : hists[i]) {
      if (!(in >> h)) {
        return Status::InvalidArgument(path + ": truncated histogram at " +
                                       std::to_string(i));
      }
    }
    if (i == 0) {
      if (parents[0] != kInvalidNode) {
        return Status::InvalidArgument(path + ": root must have parent -1");
      }
    } else {
      if (parents[i] < 0 || static_cast<std::size_t>(parents[i]) >= i) {
        return Status::InvalidArgument(path + ": bad parent at node " +
                                       std::to_string(i));
      }
      // Children of one parent arrive consecutively in groups of β, and
      // the first of each group triggers the split.  A parent named by two
      // group starts is a crafted file — SplitNode would abort on it.
      if ((i - 1) % beta == 0) {
        if (!model.node(parents[i]).children.empty()) {
          return Status::InvalidArgument(
              path + ": parent split twice at node " + std::to_string(i));
        }
        if (model.SplitNode(parents[i]) != static_cast<NodeId>(i)) {
          return Status::InvalidArgument(
              path + ": children out of order at node " + std::to_string(i));
        }
      } else if (parents[i] != parents[i - 1]) {
        return Status::InvalidArgument(
            path + ": fractured sibling group at node " + std::to_string(i));
      }
    }
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    model.mutable_node(static_cast<NodeId>(i)).hist = std::move(hists[i]);
  }
  return model;
}

}  // namespace privtree
