#include "seq/pst.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

PstModel::PstModel(std::size_t alphabet_size)
    : alphabet_size_(alphabet_size) {
  PRIVTREE_CHECK_GE(alphabet_size, 1u);
}

const PstNode& PstModel::node(NodeId id) const {
  PRIVTREE_CHECK_GE(id, 0);
  PRIVTREE_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return nodes_[id];
}

PstNode& PstModel::mutable_node(NodeId id) {
  PRIVTREE_CHECK_GE(id, 0);
  PRIVTREE_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return nodes_[id];
}

NodeId PstModel::AddRoot() {
  PRIVTREE_CHECK(nodes_.empty());
  PstNode root;
  root.hist.assign(alphabet_size_ + 1, 0.0);
  nodes_.push_back(std::move(root));
  return 0;
}

NodeId PstModel::SplitNode(NodeId parent) {
  PRIVTREE_CHECK(node(parent).children.empty());
  const NodeId first = static_cast<NodeId>(nodes_.size());
  // Collect parent's predictor by value: nodes_ may reallocate below.
  const std::vector<Symbol> parent_predictor = node(parent).predictor;
  std::vector<NodeId> children;
  children.reserve(fanout());
  for (std::size_t c = 0; c < fanout(); ++c) {
    PstNode child;
    child.predictor.reserve(parent_predictor.size() + 1);
    child.predictor.push_back(static_cast<Symbol>(c));
    child.predictor.insert(child.predictor.end(), parent_predictor.begin(),
                           parent_predictor.end());
    child.hist.assign(alphabet_size_ + 1, 0.0);
    children.push_back(static_cast<NodeId>(nodes_.size()));
    nodes_.push_back(std::move(child));
  }
  nodes_[parent].children = std::move(children);
  return first;
}

NodeId PstModel::LongestSuffixNode(std::span<const Symbol> context,
                                   bool context_starts_sequence) const {
  PRIVTREE_CHECK(!nodes_.empty());
  NodeId v = root();
  std::size_t consumed = 0;
  while (!node(v).children.empty()) {
    Symbol key;
    if (consumed < context.size()) {
      key = context[context.size() - 1 - consumed];
    } else if (context_starts_sequence && consumed == context.size()) {
      key = dollar();
    } else {
      break;
    }
    PRIVTREE_CHECK_LE(key, dollar());
    v = node(v).children[key];
    ++consumed;
  }
  return v;
}

void PstModel::NextDistribution(std::span<const Symbol> context,
                                bool context_starts_sequence,
                                std::vector<double>* dist) const {
  PRIVTREE_CHECK(!nodes_.empty());
  const NodeId v = LongestSuffixNode(context, context_starts_sequence);
  *dist = node(v).hist;
}

double PstModel::InitialCount(Symbol x) const {
  PRIVTREE_CHECK(!nodes_.empty());
  PRIVTREE_CHECK_LE(x, dollar());
  return node(root()).hist[x];
}

void PstModel::AggregateAndClampHists() {
  // Children have larger ids than parents, so one reverse sweep aggregates
  // internal histograms from raw (possibly negative) leaf values...
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    auto& n = nodes_[i];
    if (n.children.empty()) continue;
    std::fill(n.hist.begin(), n.hist.end(), 0.0);
    for (NodeId child : n.children) {
      const auto& child_hist = nodes_[child].hist;
      for (std::size_t x = 0; x < n.hist.size(); ++x) {
        n.hist[x] += child_hist[x];
      }
    }
  }
  // ...and negatives are zeroed afterwards, as in Section 4.2.
  for (auto& n : nodes_) {
    for (double& h : n.hist) h = std::max(h, 0.0);
  }
}

std::size_t PstModel::LeafCount() const {
  std::size_t count = 0;
  for (const auto& n : nodes_) count += n.children.empty() ? 1 : 0;
  return count;
}

double HistEntropy(const std::vector<double>& hist) {
  double total = 0.0;
  for (double h : hist) total += std::max(h, 0.0);
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double h : hist) {
    if (h <= 0.0) continue;
    const double p = h / total;
    entropy -= p * std::log(p);
  }
  return entropy;
}

double PstScore(const std::vector<double>& hist) {
  double total = 0.0;
  double largest = 0.0;
  for (double h : hist) {
    total += h;
    largest = std::max(largest, h);
  }
  return total - largest;
}

}  // namespace privtree
