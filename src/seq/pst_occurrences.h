// Occurrence-posting machinery for building PSTs efficiently.
//
// For a PST node with predictor w, an occurrence is a "predicted position"
// p in a padded sequence $ x1 ... xl (&) such that the |w| symbols ending at
// position p−1 equal w.  The node's prediction histogram counts the symbol
// at each occurrence position.  Child postings are obtained from parent
// postings by filtering on the symbol immediately before the predictor, so
// a full level refines in one linear pass.
#ifndef PRIVTREE_SEQ_PST_OCCURRENCES_H_
#define PRIVTREE_SEQ_PST_OCCURRENCES_H_

#include <cstdint>
#include <vector>

#include "seq/sequence.h"

namespace privtree {

/// One occurrence: `pos` indexes the padded sequence of `seq`
/// (0 = $, 1..l = symbols, l+1 = & when the sequence has an end marker).
struct PstPosting {
  std::uint32_t seq;
  std::uint16_t pos;
};

/// Posting-list operations over one dataset.
class PstOccurrences {
 public:
  explicit PstOccurrences(const SequenceDataset& data);

  const SequenceDataset& data() const { return data_; }
  /// The symbol value encoding $.
  Symbol dollar() const {
    return static_cast<Symbol>(data_.alphabet_size());
  }
  /// The hist slot of &.
  std::size_t end_slot() const { return data_.alphabet_size(); }

  /// The padded-sequence symbol at (seq, pos): dollar() at pos 0, the
  /// regular symbol at 1..l, end_slot() (as a Symbol) at l+1.
  Symbol SymbolAt(std::uint32_t seq, std::int32_t pos) const;

  /// Occurrences of the empty predictor: every predicted position of every
  /// sequence (1..l, plus l+1 for sequences with an end marker).
  std::vector<PstPosting> RootPostings() const;

  /// Partitions `parent` (postings of a node whose predictor has length
  /// `predictor_len`) into the β = alphabet_size+1 child posting lists;
  /// out[c] receives the occurrences whose preceding symbol is c (c =
  /// alphabet_size means $).  Occurrences with no preceding symbol (the
  /// predictor already reaches $) are dropped.
  std::vector<std::vector<PstPosting>> RefineAll(
      const std::vector<PstPosting>& parent, std::size_t predictor_len) const;

  /// The prediction histogram of a posting list (size alphabet_size + 1).
  std::vector<double> HistOf(const std::vector<PstPosting>& postings) const;

 private:
  const SequenceDataset& data_;
};

}  // namespace privtree

#endif  // PRIVTREE_SEQ_PST_OCCURRENCES_H_
