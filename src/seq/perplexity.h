// Log-loss / perplexity evaluation of sequence models: the standard
// quality measure for variable-order Markov models (Begleiter et al.,
// JAIR 2004 — reference [3] of the paper), complementing the two task
// metrics of Section 6.2.
#ifndef PRIVTREE_SEQ_PERPLEXITY_H_
#define PRIVTREE_SEQ_PERPLEXITY_H_

#include "seq/model.h"
#include "seq/sequence.h"

namespace privtree {

/// Average negative log-likelihood (nats) per predicted symbol of
/// `data` under `model`, including the end-of-sequence predictions for
/// terminated sequences.  Model probabilities are smoothed with
/// `smoothing` pseudo-mass per symbol so zero-probability events yield a
/// finite loss.
double AverageLogLoss(const SequenceModel& model, const SequenceDataset& data,
                      double smoothing = 0.5);

/// exp(AverageLogLoss): the per-symbol perplexity.
double Perplexity(const SequenceModel& model, const SequenceDataset& data,
                  double smoothing = 0.5);

}  // namespace privtree

#endif  // PRIVTREE_SEQ_PERPLEXITY_H_
