// Non-private PST construction using the classic stopping conditions
// C1–C3 of Section 4.2 (Ron et al., 1996): a node is not split if its
// predictor starts with $, its histogram magnitude is small, or its
// histogram entropy is small.  Used as a reference model in tests and
// examples; the private construction lives in pst_privtree.h.
#ifndef PRIVTREE_SEQ_EXACT_PST_H_
#define PRIVTREE_SEQ_EXACT_PST_H_

#include <cstdint>

#include "seq/pst.h"
#include "seq/sequence.h"

namespace privtree {

/// Options for BuildExactPst.
struct ExactPstOptions {
  /// C2: a node is split only if ‖hist(v)‖₁ >= min_magnitude.
  double min_magnitude = 2.0;
  /// C3: ... and the entropy of hist(v) (nats) is >= min_entropy.
  double min_entropy = 0.0;
  /// Maximum predictor length.
  std::size_t max_depth = 64;
};

/// Builds the exact (non-private) PST of `data`, with exact prediction
/// histograms on every node.
PstModel BuildExactPst(const SequenceDataset& data,
                       const ExactPstOptions& options);

}  // namespace privtree

#endif  // PRIVTREE_SEQ_EXACT_PST_H_
