// The common interface of generative sequence models (the private PST of
// Section 4 and the N-gram baseline of Section 6.2): both expose a
// next-symbol distribution given a context, from which the two paper tasks
// derive — string-frequency estimation (Equation (12) chaining) and
// synthetic-sequence sampling.
#ifndef PRIVTREE_SEQ_MODEL_H_
#define PRIVTREE_SEQ_MODEL_H_

#include <span>
#include <vector>

#include "dp/rng.h"
#include "seq/sequence.h"

namespace privtree {

/// Abstract sequence model over an alphabet I of size alphabet_size().
class SequenceModel {
 public:
  virtual ~SequenceModel() = default;

  virtual std::size_t alphabet_size() const = 0;

  /// Writes the (unnormalized, non-negative) next-symbol weights given
  /// `context` into `dist`, sized alphabet_size() + 1 with the last slot
  /// being the end marker &.  `context_starts_sequence` is true when
  /// context[0] is the first symbol after $ (relevant for models that
  /// condition on the sequence start).
  virtual void NextDistribution(std::span<const Symbol> context,
                                bool context_starts_sequence,
                                std::vector<double>* dist) const = 0;

  /// Model estimate of the total number of occurrences of the single
  /// symbol x across the dataset (hist(v1)[x] in the paper).
  virtual double InitialCount(Symbol x) const = 0;

  /// Section 4.1's estimate of the number of occurrences of `s`:
  /// InitialCount(s[0]) chained with conditional probabilities.
  double EstimateStringFrequency(std::span<const Symbol> s) const;

  /// Estimated number of sequences that *begin* with `s`: the same chain,
  /// anchored at the sequence start — the first factor is the next-symbol
  /// count after $, and every conditional keeps the $-anchored context.
  double EstimatePrefixCount(std::span<const Symbol> s) const;

  /// Samples a synthetic sequence; stops at & or after max_len symbols.
  std::vector<Symbol> SampleSequence(Rng& rng, std::size_t max_len) const;
};

}  // namespace privtree

#endif  // PRIVTREE_SEQ_MODEL_H_
