// Top-k frequent string mining over sequence datasets (Section 6.2, task 1).
//
// A "string" is a contiguous run of alphabet symbols; its frequency is its
// number of occurrences across all sequences.  Exact mining enumerates all
// substrings up to a length cap; model-based mining enumerates candidate
// strings through a SequenceModel's frequency estimates with monotone
// pruning (extensions of a string never have larger estimates).
#ifndef PRIVTREE_SEQ_TOPK_H_
#define PRIVTREE_SEQ_TOPK_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "seq/model.h"
#include "seq/sequence.h"

namespace privtree {

/// A packed substring key: up to 7 symbols of 8 bits, length in the top
/// byte.  Symbols must be < 256.
std::uint64_t PackString(std::span<const Symbol> s);

/// Inverse of PackString.
std::vector<Symbol> UnpackString(std::uint64_t key);

/// Exact occurrence counts of every substring of length 1..max_len.
std::unordered_map<std::uint64_t, double> CountAllSubstrings(
    const SequenceDataset& data, std::size_t max_len);

/// A ranked list of strings with their (exact or estimated) frequencies.
struct TopKStrings {
  std::vector<std::vector<Symbol>> strings;  ///< Descending frequency.
  std::vector<double> counts;
};

/// The exact top-k most frequent strings of length 1..max_len.
TopKStrings ExactTopKStrings(const SequenceDataset& data, std::size_t k,
                             std::size_t max_len);

/// Top-k according to `counts` (e.g. a precomputed CountAllSubstrings map).
TopKStrings TopKFromCounts(
    const std::unordered_map<std::uint64_t, double>& counts, std::size_t k);

/// Model-based top-k: depth-first enumeration of strings up to max_len with
/// EstimateStringFrequency, pruning prefixes whose estimate already falls
/// below the current k-th best (valid because the chained estimate is
/// non-increasing under extension).
TopKStrings TopKFromModel(const SequenceModel& model, std::size_t k,
                          std::size_t max_len);

/// Precision of `found` against the ground truth `exact`:
/// |K(D) ∩ A(D)| / k (Section 6.2).
double TopKPrecision(const TopKStrings& exact, const TopKStrings& found);

}  // namespace privtree

#endif  // PRIVTREE_SEQ_TOPK_H_
