// Sequence datasets over a finite alphabet (Section 4.1).
//
// A sequence s = $ x1 x2 ... xl &: the symbols xi come from the alphabet
// I = {0, ..., alphabet_size-1}; $ (sequence start) and & (sequence end) are
// structural markers.  Truncation at the public length cap l⊤ (paper
// footnote 2 / Section 4.2) removes & from over-long sequences, making them
// open-ended.
#ifndef PRIVTREE_SEQ_SEQUENCE_H_
#define PRIVTREE_SEQ_SEQUENCE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace privtree {

/// A symbol of the alphabet I; values in [0, alphabet_size).
using Symbol = std::uint16_t;

/// Largest alphabet accepted anywhere in the pipeline — dataset loaders,
/// the persisted-synopsis `dim` bound, PST/n-gram restores, and the CLI /
/// server `seq:<alphabet>` parsers all enforce this one constant, so the
/// load-time, serve-time and parse-time bounds cannot drift apart.
inline constexpr std::size_t kMaxAlphabetSize = 4096;

/// A dataset of symbol sequences.
class SequenceDataset {
 public:
  /// Creates an empty dataset over an alphabet of the given size (>= 1).
  explicit SequenceDataset(std::size_t alphabet_size);

  std::size_t alphabet_size() const { return alphabet_size_; }
  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Appends a sequence; `has_end` is false for open-ended (truncated)
  /// sequences that lost their & marker.
  void Add(std::span<const Symbol> symbols, bool has_end = true);

  /// The symbols x1..xl of sequence i (excluding $ and &).
  std::span<const Symbol> sequence(std::size_t i) const;

  /// Whether sequence i terminates with & (false after truncation).
  bool has_end(std::size_t i) const { return has_end_[i]; }

  /// Number of symbols of sequence i (excluding $ and &).
  std::size_t length(std::size_t i) const;

  /// The paper's sequence length: symbols plus the & marker when present.
  std::size_t LengthWithEnd(std::size_t i) const;

  /// Mean of length(i) over the dataset.
  double AverageLength() const;

  /// Histogram of length(i); index j counts sequences with j symbols.
  std::vector<std::size_t> LengthHistogram() const;

  /// Returns a copy where every sequence with LengthWithEnd > l_top keeps
  /// only its first l_top symbols and becomes open-ended (Section 4.2).
  SequenceDataset Truncate(std::size_t l_top) const;

  /// Total number of symbols across all sequences.
  std::size_t TotalSymbols() const { return symbols_.size(); }

 private:
  std::size_t alphabet_size_;
  std::vector<Symbol> symbols_;        // All sequences, concatenated.
  std::vector<std::size_t> offsets_;   // size()+1 offsets into symbols_.
  std::vector<bool> has_end_;
};

}  // namespace privtree

#endif  // PRIVTREE_SEQ_SEQUENCE_H_
