// Serialization of released PST models (post-processing of the private
// output, like spatial/serialization.h).  Format:
//
//   privtree-pst v1
//   alphabet <A>
//   nodes <count>
//   <parent> <h_0> ... <h_A>          (per node, id order; parent -1 for
//                                      the root; children are implied by
//                                      parent links + creation order)
//
// Children of a node are the β = A+1 consecutive nodes that name it as
// parent, in prepended-symbol order — the same invariant PstModel::
// SplitNode produces.
#ifndef PRIVTREE_SEQ_PST_SERIALIZATION_H_
#define PRIVTREE_SEQ_PST_SERIALIZATION_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "dp/status.h"
#include "seq/pst.h"

namespace privtree {

/// The v1 magic line; release/serialization.cc's compat shim recognizes it
/// so legacy files load through release::LoadMethod as a "pst_privtree"
/// method (with unknown, i.e. zero, ε).
inline constexpr std::string_view kPstV1Magic = "privtree-pst v1";

/// Writes the model to `path`.
Status SavePstModel(const std::string& path, const PstModel& model);

/// Reads a model written by SavePstModel.
Result<PstModel> LoadPstModel(const std::string& path);

/// As LoadPstModel, from an already-open stream (`name` labels errors).
Result<PstModel> LoadPstModelStream(std::istream& in,
                                    const std::string& name);

}  // namespace privtree

#endif  // PRIVTREE_SEQ_PST_SERIALIZATION_H_
