// Serialization of released PST models (post-processing of the private
// output, like spatial/serialization.h).  Format:
//
//   privtree-pst v1
//   alphabet <A>
//   nodes <count>
//   <parent> <h_0> ... <h_A>          (per node, id order; parent -1 for
//                                      the root; children are implied by
//                                      parent links + creation order)
//
// Children of a node are the β = A+1 consecutive nodes that name it as
// parent, in prepended-symbol order — the same invariant PstModel::
// SplitNode produces.
#ifndef PRIVTREE_SEQ_PST_SERIALIZATION_H_
#define PRIVTREE_SEQ_PST_SERIALIZATION_H_

#include <string>

#include "dp/status.h"
#include "seq/pst.h"

namespace privtree {

/// Writes the model to `path`.
Status SavePstModel(const std::string& path, const PstModel& model);

/// Reads a model written by SavePstModel.
Result<PstModel> LoadPstModel(const std::string& path);

}  // namespace privtree

#endif  // PRIVTREE_SEQ_PST_SERIALIZATION_H_
