#include "seq/pst_occurrences.h"

#include "dp/check.h"

namespace privtree {

PstOccurrences::PstOccurrences(const SequenceDataset& data) : data_(data) {
  // Postings use 16-bit positions and 32-bit sequence ids.
  PRIVTREE_CHECK_LE(data.size(), std::size_t{0xffffffff});
}

Symbol PstOccurrences::SymbolAt(std::uint32_t seq, std::int32_t pos) const {
  PRIVTREE_CHECK_GE(pos, 0);
  if (pos == 0) return dollar();
  const auto s = data_.sequence(seq);
  const auto index = static_cast<std::size_t>(pos - 1);
  if (index < s.size()) return s[index];
  PRIVTREE_CHECK_EQ(index, s.size());
  PRIVTREE_CHECK(data_.has_end(seq));
  return static_cast<Symbol>(end_slot());
}

std::vector<PstPosting> PstOccurrences::RootPostings() const {
  std::vector<PstPosting> out;
  std::size_t total = data_.TotalSymbols();
  for (std::size_t i = 0; i < data_.size(); ++i) {
    total += data_.has_end(i) ? 1 : 0;
  }
  out.reserve(total);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const std::size_t len = data_.length(i);
    PRIVTREE_CHECK_LE(len + 1, std::size_t{0xffff});
    const std::size_t last = len + (data_.has_end(i) ? 1 : 0);
    for (std::size_t p = 1; p <= last; ++p) {
      out.push_back(PstPosting{static_cast<std::uint32_t>(i),
                               static_cast<std::uint16_t>(p)});
    }
  }
  return out;
}

std::vector<std::vector<PstPosting>> PstOccurrences::RefineAll(
    const std::vector<PstPosting>& parent, std::size_t predictor_len) const {
  std::vector<std::vector<PstPosting>> out(data_.alphabet_size() + 1);
  for (const PstPosting& posting : parent) {
    const std::int32_t before =
        static_cast<std::int32_t>(posting.pos) -
        static_cast<std::int32_t>(predictor_len) - 1;
    if (before < 0) continue;  // Predictor already reaches past $.
    const Symbol key = SymbolAt(posting.seq, before);
    out[key].push_back(posting);
  }
  return out;
}

std::vector<double> PstOccurrences::HistOf(
    const std::vector<PstPosting>& postings) const {
  std::vector<double> hist(data_.alphabet_size() + 1, 0.0);
  for (const PstPosting& posting : postings) {
    hist[SymbolAt(posting.seq, posting.pos)] += 1.0;
  }
  return hist;
}

}  // namespace privtree
