#include "seq/topk.h"

#include <algorithm>
#include <queue>

#include "dp/check.h"

namespace privtree {

std::uint64_t PackString(std::span<const Symbol> s) {
  PRIVTREE_CHECK_GE(s.size(), 1u);
  PRIVTREE_CHECK_LE(s.size(), 7u);
  std::uint64_t key = static_cast<std::uint64_t>(s.size()) << 56;
  for (std::size_t i = 0; i < s.size(); ++i) {
    PRIVTREE_CHECK_LT(s[i], 256);
    key |= static_cast<std::uint64_t>(s[i]) << (8 * i);
  }
  return key;
}

std::vector<Symbol> UnpackString(std::uint64_t key) {
  const std::size_t len = static_cast<std::size_t>(key >> 56);
  std::vector<Symbol> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = static_cast<Symbol>((key >> (8 * i)) & 0xff);
  }
  return out;
}

std::unordered_map<std::uint64_t, double> CountAllSubstrings(
    const SequenceDataset& data, std::size_t max_len) {
  PRIVTREE_CHECK_GE(max_len, 1u);
  PRIVTREE_CHECK_LE(max_len, 7u);
  std::unordered_map<std::uint64_t, double> counts;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto s = data.sequence(i);
    for (std::size_t start = 0; start < s.size(); ++start) {
      std::uint64_t key = 0;
      const std::size_t limit = std::min(max_len, s.size() - start);
      for (std::size_t len = 1; len <= limit; ++len) {
        key |= static_cast<std::uint64_t>(s[start + len - 1])
               << (8 * (len - 1));
        counts[key | (static_cast<std::uint64_t>(len) << 56)] += 1.0;
      }
    }
  }
  return counts;
}

TopKStrings TopKFromCounts(
    const std::unordered_map<std::uint64_t, double>& counts, std::size_t k) {
  std::vector<std::pair<double, std::uint64_t>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [key, count] : counts) ranked.emplace_back(count, key);
  const std::size_t take = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + take, ranked.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;  // Deterministic ties.
                    });
  TopKStrings out;
  for (std::size_t i = 0; i < take; ++i) {
    out.strings.push_back(UnpackString(ranked[i].second));
    out.counts.push_back(ranked[i].first);
  }
  return out;
}

TopKStrings ExactTopKStrings(const SequenceDataset& data, std::size_t k,
                             std::size_t max_len) {
  return TopKFromCounts(CountAllSubstrings(data, max_len), k);
}

namespace {

/// DFS state for model-based top-k with monotone pruning.
struct ModelTopKState {
  const SequenceModel* model;
  std::size_t k;
  std::size_t max_len;
  // Min-heap of (count, packed string) keeping the best k so far.
  std::priority_queue<std::pair<double, std::uint64_t>,
                      std::vector<std::pair<double, std::uint64_t>>,
                      std::greater<>>
      best;

  double Threshold() const {
    return best.size() < k ? 0.0 : best.top().first;
  }

  void Offer(std::span<const Symbol> s, double count) {
    if (count <= 0.0) return;
    if (best.size() < k) {
      best.emplace(count, PackString(s));
    } else if (count > best.top().first) {
      best.pop();
      best.emplace(count, PackString(s));
    }
  }

  void Visit(std::vector<Symbol>* prefix, double estimate) {
    Offer(*prefix, estimate);
    if (prefix->size() >= max_len) return;
    std::vector<double> dist;
    model->NextDistribution(*prefix, /*context_starts_sequence=*/false,
                            &dist);
    double magnitude = 0.0;
    for (double w : dist) magnitude += w;
    if (magnitude <= 0.0) return;
    for (Symbol x = 0; x < model->alphabet_size(); ++x) {
      const double child = estimate * dist[x] / magnitude;
      // Prune: extensions cannot beat the current k-th best.
      if (child <= Threshold()) continue;
      prefix->push_back(x);
      Visit(prefix, child);
      prefix->pop_back();
    }
  }
};

}  // namespace

TopKStrings TopKFromModel(const SequenceModel& model, std::size_t k,
                          std::size_t max_len) {
  PRIVTREE_CHECK_GE(k, 1u);
  PRIVTREE_CHECK_GE(max_len, 1u);
  PRIVTREE_CHECK_LE(max_len, 7u);
  ModelTopKState state{&model, k, max_len, {}};
  std::vector<Symbol> prefix;
  for (Symbol x = 0; x < model.alphabet_size(); ++x) {
    const double estimate = model.InitialCount(x);
    if (estimate <= state.Threshold()) continue;
    prefix.push_back(x);
    state.Visit(&prefix, estimate);
    prefix.pop_back();
  }
  // Drain the heap into descending order.
  TopKStrings out;
  std::vector<std::pair<double, std::uint64_t>> drained;
  while (!state.best.empty()) {
    drained.push_back(state.best.top());
    state.best.pop();
  }
  std::reverse(drained.begin(), drained.end());
  for (const auto& [count, key] : drained) {
    out.strings.push_back(UnpackString(key));
    out.counts.push_back(count);
  }
  return out;
}

double TopKPrecision(const TopKStrings& exact, const TopKStrings& found) {
  if (exact.strings.empty()) return 0.0;
  std::vector<std::uint64_t> truth;
  truth.reserve(exact.strings.size());
  for (const auto& s : exact.strings) truth.push_back(PackString(s));
  std::sort(truth.begin(), truth.end());
  std::size_t hits = 0;
  for (const auto& s : found.strings) {
    if (std::binary_search(truth.begin(), truth.end(), PackString(s))) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(exact.strings.size());
}

}  // namespace privtree
