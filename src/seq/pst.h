// Prediction suffix trees (PSTs) — the variable-length Markov model
// representation of Section 4.1 (Ron, Singer, Tishby 1996).
//
// Each node v carries a predictor string dom(v) over I ∪ {$} and a
// prediction histogram hist(v) with one count per symbol in I ∪ {&}.
// Children prepend a symbol to the parent's predictor, so looking up the
// deepest node whose predictor suffixes a context walks the tree by the
// context's symbols right-to-left.
#ifndef PRIVTREE_SEQ_PST_H_
#define PRIVTREE_SEQ_PST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/tree.h"
#include "dp/rng.h"
#include "seq/model.h"
#include "seq/sequence.h"

namespace privtree {

/// One PST node.  `children`, when non-empty, has alphabet_size + 1 entries:
/// index c < alphabet_size prepends symbol c, index alphabet_size prepends $.
struct PstNode {
  std::vector<Symbol> predictor;  ///< dom(v); most recent symbol last.
  std::vector<double> hist;       ///< Size alphabet_size + 1; last slot = &.
  std::vector<NodeId> children;   ///< Empty for leaves.
};

/// A complete PST with (possibly noisy) prediction histograms, supporting
/// the two query types of Section 4.1: string-frequency estimation and
/// synthetic-sequence sampling (both inherited from SequenceModel).
class PstModel : public SequenceModel {
 public:
  explicit PstModel(std::size_t alphabet_size);

  std::size_t alphabet_size() const override { return alphabet_size_; }
  /// The symbol value encoding $ inside predictor strings.
  Symbol dollar() const { return static_cast<Symbol>(alphabet_size_); }
  /// The hist slot of the & marker.
  std::size_t end_slot() const { return alphabet_size_; }
  /// Fanout β = |I| + 1.
  std::size_t fanout() const { return alphabet_size_ + 1; }

  std::size_t size() const { return nodes_.size(); }
  const PstNode& node(NodeId id) const;
  PstNode& mutable_node(NodeId id);
  NodeId root() const { return 0; }

  /// Creates the root (predictor ∅, zero histogram).  Must be first.
  NodeId AddRoot();

  /// Splits `parent`: creates the β children (predictors = symbol·dom(v)).
  /// Returns the id of the first child; the others follow consecutively.
  NodeId SplitNode(NodeId parent);

  /// The deepest node whose predictor is a suffix of `context`
  /// (right-aligned).  When `context_starts_sequence` is true the walk may
  /// additionally consume the $ marker preceding context[0].
  NodeId LongestSuffixNode(std::span<const Symbol> context,
                           bool context_starts_sequence) const;

  /// SequenceModel: the next-symbol weights are the histogram of the
  /// deepest node whose predictor suffixes the context.
  void NextDistribution(std::span<const Symbol> context,
                        bool context_starts_sequence,
                        std::vector<double>* dist) const override;

  /// SequenceModel: hist(root)[x].
  double InitialCount(Symbol x) const override;

  /// Sets every internal histogram to the sum of the histograms of the
  /// leaves below it, then clamps negative entries to zero everywhere (the
  /// post-processing order of Section 4.2).
  void AggregateAndClampHists();

  /// Number of leaves.
  std::size_t LeafCount() const;

 private:
  std::size_t alphabet_size_;
  std::vector<PstNode> nodes_;
};

/// Shannon entropy (nats) of a histogram viewed as a distribution; 0 for
/// empty histograms.  Used by condition C3 of Section 4.2.
double HistEntropy(const std::vector<double>& hist);

/// The paper's PST score function, Equation (13):
/// c(v) = ‖hist(v)‖₁ − max_x hist(v)[x].  Monotonic (Lemma 4.1).
double PstScore(const std::vector<double>& hist);

}  // namespace privtree

#endif  // PRIVTREE_SEQ_PST_H_
