#include "spatial/mixed_histogram.h"

#include <algorithm>

#include "core/privtree_params.h"
#include "dp/budget.h"
#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

double MixedHistogram::Query(const MixedCell& q) const {
  PRIVTREE_CHECK(data != nullptr);
  if (tree.empty()) return 0.0;
  double ans = 0.0;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const auto& node = tree.node(v);
    const MixedCell& cell = node.domain;

    // Numeric relation (a 0-dimensional box trivially intersects).
    if (!q.box.Intersects(cell.box)) continue;
    // Categorical relation per attribute: any two taxonomy nodes cover
    // nested or disjoint leaf-value ranges.
    bool disjoint = false;
    bool contained = q.box.ContainsBox(cell.box);
    double category_fraction = 1.0;
    for (std::size_t a = 0; a < cell.category_nodes.size(); ++a) {
      const Taxonomy& taxonomy = data->taxonomy(a);
      const NodeId qn = q.category_nodes[a];
      const NodeId cn = cell.category_nodes[a];
      // Covered value ranges.
      const std::int32_t q_leaves = taxonomy.LeafCountOf(qn);
      const std::int32_t c_leaves = taxonomy.LeafCountOf(cn);
      // Determine nesting via Covers on a representative value.
      // The first value covered by a node:
      const auto first_value_of = [&](NodeId n) {
        // Walk down to the leftmost leaf.
        NodeId cur = n;
        while (!taxonomy.is_leaf(cur)) cur = taxonomy.children(cur)[0];
        return taxonomy.ValueOf(cur);
      };
      const CategoryValue q_first = first_value_of(qn);
      const CategoryValue c_first = first_value_of(cn);
      if (taxonomy.Covers(qn, c_first) && q_leaves >= c_leaves) {
        // Query covers the cell's categories: no fraction needed.
        continue;
      }
      if (taxonomy.Covers(cn, q_first) && c_leaves >= q_leaves) {
        // Cell is coarser than the query: partial along this attribute.
        contained = false;
        category_fraction *= static_cast<double>(q_leaves) /
                             static_cast<double>(c_leaves);
        continue;
      }
      disjoint = true;
      break;
    }
    if (disjoint) continue;

    if (contained) {
      ans += count[v];
      continue;
    }
    if (!node.is_leaf()) {
      for (NodeId child : node.children) stack.push_back(child);
      continue;
    }
    // Partial leaf: uniformity across numeric volume × categorical values.
    double numeric_fraction = 1.0;
    const double volume = cell.box.Volume();
    if (volume > 0.0) {
      numeric_fraction = cell.box.IntersectionVolume(q.box) / volume;
    }
    ans += count[v] * numeric_fraction * category_fraction;
  }
  return ans;
}

MixedHistogram BuildMixedHistogram(const MixedDataset& data, double epsilon,
                                   const MixedHistogramOptions& options,
                                   Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GT(options.tree_budget_fraction, 0.0);
  PRIVTREE_CHECK_LT(options.tree_budget_fraction, 1.0);

  MixedPolicy policy(data, options.max_numeric_depth);
  PrivacyBudget budget(epsilon);
  const double tree_epsilon =
      budget.SpendFraction(options.tree_budget_fraction);
  const double count_epsilon = budget.SpendRemaining();

  PrivTreeParams params =
      PrivTreeParams::ForEpsilon(tree_epsilon, policy.fanout());
  params.max_depth = options.max_depth;

  MixedHistogram hist;
  hist.data = &data;
  hist.tree = RunPrivTree(policy, params, rng, &hist.stats);
  hist.count.assign(hist.tree.size(), 0.0);

  // Leaf counts: one record lies in exactly one leaf (leaves partition the
  // mixed domain), so the vector has sensitivity 1.
  const double scale = 1.0 / count_epsilon;
  // Assign each record to its leaf by descending the tree.
  for (std::size_t i = 0; i < data.size(); ++i) {
    const MixedRecord& record = data.record(i);
    NodeId v = hist.tree.root();
    while (!hist.tree.node(v).is_leaf()) {
      bool advanced = false;
      for (NodeId child : hist.tree.node(v).children) {
        if (hist.tree.node(child).domain.Contains(data, record)) {
          v = child;
          advanced = true;
          break;
        }
      }
      PRIVTREE_CHECK(advanced);
    }
    hist.count[v] += 1.0;
  }
  for (NodeId leaf : hist.tree.LeafIds()) {
    hist.count[leaf] += SampleLaplace(rng, scale);
  }
  // Aggregate upward for consistent internal counts.
  const auto& nodes = hist.tree.nodes();
  for (std::size_t i = nodes.size(); i-- > 0;) {
    if (nodes[i].is_leaf()) continue;
    double total = 0.0;
    for (NodeId child : nodes[i].children) total += hist.count[child];
    hist.count[i] = total;
  }
  return hist;
}

}  // namespace privtree
