// A flat, cache-friendly container of d-dimensional points.
#ifndef PRIVTREE_SPATIAL_POINT_SET_H_
#define PRIVTREE_SPATIAL_POINT_SET_H_

#include <cstddef>
#include <span>
#include <vector>

#include "spatial/box.h"

namespace privtree {

/// A multiset of points in R^d, stored as one contiguous coordinate array.
class PointSet {
 public:
  /// Creates an empty point set of the given dimensionality.
  explicit PointSet(std::size_t dim);

  /// Wraps pre-existing flattened coordinates (size must be a multiple of
  /// dim).
  PointSet(std::size_t dim, std::vector<double> coords);

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return coords_.size() / dim_; }
  bool empty() const { return coords_.empty(); }

  /// Appends one point (span of dim() coordinates).
  void Add(std::span<const double> point);

  /// The i-th point as a span of dim() coordinates.
  std::span<const double> point(std::size_t i) const {
    return {coords_.data() + i * dim_, dim_};
  }

  const std::vector<double>& coords() const { return coords_; }

  /// Exact number of points inside `box` (O(n) scan).  Used for ground
  /// truth; private algorithms must not release this directly.
  std::size_t ExactRangeCount(const Box& box) const;

  /// The tightest box containing all points (hi is nudged so that every
  /// point satisfies the half-open membership test).  Requires size() > 0.
  Box BoundingBox() const;

 private:
  std::size_t dim_;
  std::vector<double> coords_;
};

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_POINT_SET_H_
