// Private spatial histograms: a decomposition tree over a point domain plus
// a noisy count per node, answering arbitrary range-count queries via the
// top-down traversal of Section 2.2 (with the uniformity assumption inside
// partially covered leaves).
//
// Two constructions are provided:
//   * BuildPrivTreeHistogram — the paper's method (Section 3.4): PrivTree on
//     ε/2 produces the tree shape, the remaining ε/2 buys Laplace noise of
//     scale 2/ε on each *leaf* count, and every intermediate count is the
//     sum of the noisy leaf counts below it.
//   * BuildSimpleTreeHistogram — the Algorithm 1 baseline: noisy counts of
//     scale h/ε are released for every node during construction and reused
//     as the query counts.
#ifndef PRIVTREE_SPATIAL_SPATIAL_HISTOGRAM_H_
#define PRIVTREE_SPATIAL_SPATIAL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "core/privtree.h"
#include "core/tree.h"
#include "dp/rng.h"
#include "spatial/box.h"
#include "spatial/point_set.h"
#include "spatial/quadtree_policy.h"

namespace privtree {

/// A decomposition tree with one released (noisy) count per node.
struct SpatialHistogram {
  DecompTree<SpatialCell> tree;
  /// Released count per node id.  Intermediate counts are consistent by
  /// construction (sum of descendant leaf counts) for the PrivTree build.
  std::vector<double> count;
  /// Construction diagnostics.
  DecompositionStats stats;

  /// Estimated number of points in `q` (Section 2.2 traversal; partial
  /// leaves contribute count · |q ∩ dom| / |dom|).
  double Query(const Box& q) const;
};

/// Options for BuildPrivTreeHistogram.
struct PrivTreeHistogramOptions {
  /// Dimensions bisected per split; 0 means "all" (β = 2^d, the standard
  /// quadtree).  Values in [1, d) give the round-robin splits of Figure 8.
  int dims_per_split = 0;
  /// Fraction of ε spent on the tree shape (the paper uses 1/2).
  double tree_budget_fraction = 0.5;
  /// Structural depth cap forwarded to PrivTreeParams.
  std::int32_t max_depth = 512;
};

/// Builds the paper's ε-differentially private spatial histogram.
SpatialHistogram BuildPrivTreeHistogram(const PointSet& points,
                                        const Box& domain, double epsilon,
                                        const PrivTreeHistogramOptions& options,
                                        Rng& rng);

/// Options for BuildSimpleTreeHistogram.
struct SimpleTreeHistogramOptions {
  int dims_per_split = 0;       ///< As above.
  std::int32_t height = 6;      ///< The pre-defined h of Algorithm 1.
  double theta = 0.0;           ///< Split threshold.
};

/// Builds the Algorithm 1 baseline histogram (λ = h/ε).
SpatialHistogram BuildSimpleTreeHistogram(
    const PointSet& points, const Box& domain, double epsilon,
    const SimpleTreeHistogramOptions& options, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_SPATIAL_HISTOGRAM_H_
