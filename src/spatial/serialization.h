// Serialization of released spatial synopses.
//
// A SpatialHistogram is the *output* of the privacy mechanism; persisting
// and re-loading it is pure post-processing.  Two formats live here:
//
//  * The legacy v1 text format (SaveSpatialHistogram / LoadSpatialHistogram),
//    line-oriented and versioned:
//
//      privtree-histogram v1
//      dim <d>
//      nodes <count>
//      <parent> <noisy_count> <lo_1> <hi_1> ... <lo_d> <hi_d>   (per node,
//                                                               id order)
//
//    v1 files keep loading forever: release::LoadMethod recognizes the v1
//    magic line and routes through LoadSpatialHistogramText (the compat
//    shim), and the format is pinned by a regression test.
//
//  * The binary node-array body used inside the v2 synopsis envelope (see
//    release/serialization.h for the envelope spec).  The body is shared by
//    every tree-backed backend:
//
//      u64 node_count
//      per node, in id order:
//        i32 parent          (-1 for the root)
//        f64 released count
//        f64 lo_j, f64 hi_j  for j = 0..dim-1
//
// Morton metadata is intentionally not persisted in either format: a loaded
// synopsis can answer queries but is decoupled from the (sensitive) source
// data.
#ifndef PRIVTREE_SPATIAL_SERIALIZATION_H_
#define PRIVTREE_SPATIAL_SERIALIZATION_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/byteio.h"
#include "core/tree.h"
#include "dp/status.h"
#include "spatial/spatial_histogram.h"

namespace privtree {

/// Writes the synopsis to `path` in the legacy v1 text format.
Status SaveSpatialHistogram(const std::string& path,
                            const SpatialHistogram& hist);

/// Reads a synopsis written by SaveSpatialHistogram.
Result<SpatialHistogram> LoadSpatialHistogram(const std::string& path);

/// Parses the v1 text format from an open stream; `name` labels errors
/// (a path or "<v1 synopsis>").  LoadSpatialHistogram and the envelope
/// compat shim share this parser.
Result<SpatialHistogram> LoadSpatialHistogramText(std::istream& in,
                                                  const std::string& name);

/// Appends a box as dim() (lo, hi) pairs; the dimension is carried by the
/// enclosing record.
void WriteBox(ByteWriter& out, const Box& box);

/// Reads a `dim`-dimensional box; returns false (with `*error` set) on
/// truncation or bounds with !(lo <= hi) — NaNs fail that check too.
bool ReadBox(ByteReader& in, std::size_t dim, Box* out, std::string* error);

/// Binary node-array body of a spatial decomposition tree (v2 payload).
void WriteSpatialTreeBody(ByteWriter& out, const DecompTree<SpatialCell>& tree,
                          const std::vector<double>& counts);
Status ReadSpatialTreeBody(ByteReader& in, std::size_t dim,
                           DecompTree<SpatialCell>* tree,
                           std::vector<double>* counts);

/// Same body layout for plain-box trees (the k-d-tree backend).
void WriteBoxTreeBody(ByteWriter& out, const DecompTree<Box>& tree,
                      const std::vector<double>& counts);
Status ReadBoxTreeBody(ByteReader& in, std::size_t dim, DecompTree<Box>* tree,
                       std::vector<double>* counts);

/// The compressed tree body used inside v3 envelopes.  Decomposition trees
/// are highly redundant: every child bound either equals the parent's bound
/// or the parent's midpoint (`0.5 * (lo + hi)`, the BisectDim expression),
/// so boxes shrink to a 2-bit code per bound (0 = inherit, 1 = midpoint,
/// 2 = explicit f64 — matched *bitwise*, so decoding is exact by
/// construction) on top of delta-bit-packed parent links (core/codec.h).
/// Layout:
///
///   u64  node count n
///   str  packed parent ids            (PackDeltaI32, id order, root = -1)
///   box  root box                     (raw f64 pairs)
///   str  bound codes                  (nodes 1..n-1 × dim × {lo, hi},
///                                      2 bits each, LSB-first)
///   u64  explicit bound count
///   f64… explicit bounds              (in code-stream order)
///   u32  counts mode                  (0 = raw, 1 = quantized)
///   mode 0:  f64 × n  released counts
///   mode 1:  f64 quantum, str packed counts (PackVarintGB of
///            zigzag(count / quantum)); written only when every count is
///            *bitwise* reproducible as multiple × quantum (the
///            `count_quantum` knob quantized them at Fit), else mode 0
///
/// Reading validates everything (parents, code stream size, bound
/// finiteness and ordering, count sections) before constructing boxes, and
/// returns counts bit-for-bit equal to what was written.
void WriteSpatialTreeBodyCompressed(ByteWriter& out,
                                    const DecompTree<SpatialCell>& tree,
                                    const std::vector<double>& counts,
                                    double count_quantum = 0.0);
Status ReadSpatialTreeBodyCompressed(ByteReader& in, std::size_t dim,
                                     DecompTree<SpatialCell>* tree,
                                     std::vector<double>* counts);
void WriteBoxTreeBodyCompressed(ByteWriter& out, const DecompTree<Box>& tree,
                                const std::vector<double>& counts,
                                double count_quantum = 0.0);
Status ReadBoxTreeBodyCompressed(ByteReader& in, std::size_t dim,
                                 DecompTree<Box>* tree,
                                 std::vector<double>* counts);

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_SERIALIZATION_H_
