// Serialization of released spatial synopses.
//
// A SpatialHistogram is the *output* of the privacy mechanism; persisting
// and re-loading it is pure post-processing.  The text format is
// line-oriented and versioned:
//
//   privtree-histogram v1
//   dim <d>
//   nodes <count>
//   <parent> <noisy_count> <lo_1> <hi_1> ... <lo_d> <hi_d>   (per node,
//                                                             id order)
//
// Morton metadata is intentionally not persisted: a loaded synopsis can
// answer queries but is decoupled from the (sensitive) source data.
#ifndef PRIVTREE_SPATIAL_SERIALIZATION_H_
#define PRIVTREE_SPATIAL_SERIALIZATION_H_

#include <string>

#include "dp/status.h"
#include "spatial/spatial_histogram.h"

namespace privtree {

/// Writes the synopsis to `path`.
Status SaveSpatialHistogram(const std::string& path,
                            const SpatialHistogram& hist);

/// Reads a synopsis written by SaveSpatialHistogram.
Result<SpatialHistogram> LoadSpatialHistogram(const std::string& path);

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_SERIALIZATION_H_
