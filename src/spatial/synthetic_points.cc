#include "spatial/synthetic_points.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dp/check.h"
#include "dp/distributions.h"
#include "core/tree.h"

namespace privtree {

PointSet SampleSyntheticPoints(const SpatialHistogram& hist, std::size_t n,
                               Rng& rng) {
  PRIVTREE_CHECK(!hist.tree.empty());
  const std::size_t dim = hist.tree.node(hist.tree.root()).domain.box.dim();
  PointSet out(dim);
  const std::vector<NodeId> leaves = hist.tree.LeafIds();
  std::vector<double> weights(leaves.size());
  double total = 0.0;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    weights[i] = std::max(hist.count[leaves[i]], 0.0);
    total += weights[i];
  }
  if (total <= 0.0) return out;  // Degenerate synopsis: nothing to sample.

  std::vector<double> point(dim);
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t pick = SampleDiscrete(rng, weights);
    const Box& box = hist.tree.node(leaves[pick]).domain.box;
    for (std::size_t j = 0; j < dim; ++j) {
      point[j] = box.lo(j) + rng.NextDouble() * box.Width(j);
    }
    out.Add(point);
  }
  return out;
}

PointSet SampleSyntheticDataset(const SpatialHistogram& hist, Rng& rng) {
  PRIVTREE_CHECK(!hist.tree.empty());
  const double root = std::max(hist.count[hist.tree.root()], 0.0);
  return SampleSyntheticPoints(
      hist, static_cast<std::size_t>(std::llround(root)), rng);
}

}  // namespace privtree
