// A Morton-order (bit-interleaved) index for counting points in dyadic
// cells in O(log n).
//
// Every point is mapped to a 128-bit key by interleaving the bits of its
// per-dimension integer coordinates in *round-robin* order (level-major,
// dimension-minor): bit k of the key is bit (L-1-k/d) of dimension (k mod d).
// A cell produced by recursively bisecting the root box in the same
// round-robin dimension order corresponds to a key prefix, so its point
// count is one pair of binary searches over the sorted keys.
//
// This is exactly the family of cells PrivTree's spatial policies generate
// (both the full 2^d bisection and the lower-fanout round-robin splits of
// Figure 8), which makes tree construction O(nodes · log n) after an
// O(n log n) sort — crucial for the paper-scale road dataset (1.6M points).
#ifndef PRIVTREE_SPATIAL_MORTON_INDEX_H_
#define PRIVTREE_SPATIAL_MORTON_INDEX_H_

#include <cstdint>
#include <vector>

#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {

/// 128-bit Morton key.
using MortonKey = unsigned __int128;

/// Sorted Morton keys over a point set, supporting dyadic-prefix counting.
class MortonIndex {
 public:
  /// Builds the index.  `root` must contain all points.  Points are
  /// discretized to L = kTotalBits/dim bits per dimension; points outside
  /// the root box are clamped to it.
  MortonIndex(const PointSet& points, const Box& root);

  /// Total bit budget across dimensions.  126 instead of 128 keeps
  /// (prefix + 1) << shift from overflowing.
  static constexpr int kTotalBits = 126;

  std::size_t dim() const { return dim_; }
  /// Bits per dimension (L).
  int levels_per_dim() const { return levels_per_dim_; }
  /// Total usable prefix bits (d · L).
  int max_prefix_bits() const { return max_prefix_bits_; }
  std::size_t size() const { return keys_.size(); }

  /// Number of points whose key starts with the low `bits` bits of
  /// `prefix`.  bits == 0 returns size().
  std::size_t CountPrefix(MortonKey prefix, int bits) const;

  /// Computes the key of a single point (exposed for tests).
  MortonKey KeyOf(std::span<const double> point) const;

 private:
  std::size_t dim_;
  int levels_per_dim_;
  int max_prefix_bits_;
  std::vector<double> root_lo_;
  std::vector<double> inv_width_;  // 1 / side length per dimension.
  std::vector<MortonKey> keys_;    // Sorted ascending.
};

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_MORTON_INDEX_H_
