// Spatial decomposition policies: the quadtree-style splits used by the
// paper (Section 3: β = 2^d full bisection) and the round-robin lower-fanout
// variants of Appendix C / Figure 8 (β = 2^i with i < d, bisecting i
// dimensions per split, cycled round-robin).
#ifndef PRIVTREE_SPATIAL_QUADTREE_POLICY_H_
#define PRIVTREE_SPATIAL_QUADTREE_POLICY_H_

#include <vector>

#include "spatial/box.h"
#include "spatial/morton_index.h"

namespace privtree {

/// The sub-domain descriptor used by spatial decompositions: the geometric
/// box plus its dyadic address (Morton prefix) for O(log n) counting.
struct SpatialCell {
  Box box;
  MortonKey prefix = 0;  ///< Low `bits` bits hold the dyadic address.
  int bits = 0;          ///< Number of meaningful bits in `prefix`.
};

/// DecompositionPolicy over boxes; Score is the exact point count of the
/// cell, computed through a MortonIndex.
class QuadtreePolicy {
 public:
  using Domain = SpatialCell;

  /// `index` must outlive the policy.  `dims_per_split` (the i of β = 2^i)
  /// must be in [1, dim]; dims_per_split == dim is the standard quadtree.
  QuadtreePolicy(const MortonIndex& index, Box root, int dims_per_split);

  Domain Root() const;

  /// Structural splittability: enough Morton bits remain for one more
  /// split.  With 126 total bits this allows depth 63 for 2-d data —
  /// unreachable in practice (see PrivTreeParams::max_depth).
  bool CanSplit(const Domain& cell) const;

  /// 2^i children: all sign combinations of bisecting the next i
  /// round-robin dimensions.  Child order matches Morton bit order.
  std::vector<Domain> Split(const Domain& cell) const;

  /// Exact point count c(v) of the cell (sensitivity 1, monotonic).
  double Score(const Domain& cell) const;

  int fanout() const { return 1 << dims_per_split_; }
  int dims_per_split() const { return dims_per_split_; }

 private:
  const MortonIndex& index_;
  Box root_;
  int dims_per_split_;
};

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_QUADTREE_POLICY_H_
