// Private histograms over mixed numeric/categorical domains: PrivTree with
// the MixedPolicy of Section 3.5, plus noisy leaf counts and a query
// engine.  Queries are themselves MixedCells (a numeric box plus one
// taxonomy node per categorical attribute); partially covered leaves
// contribute under a uniformity assumption across both the numeric volume
// and the categorical leaf values.
#ifndef PRIVTREE_SPATIAL_MIXED_HISTOGRAM_H_
#define PRIVTREE_SPATIAL_MIXED_HISTOGRAM_H_

#include <vector>

#include "core/privtree.h"
#include "core/tree.h"
#include "dp/rng.h"
#include "spatial/mixed_policy.h"

namespace privtree {

/// A PrivTree decomposition of a mixed domain with released noisy counts.
struct MixedHistogram {
  const MixedDataset* data = nullptr;  ///< For taxonomy lookups only.
  DecompTree<MixedCell> tree;
  std::vector<double> count;
  DecompositionStats stats;

  /// Estimated number of records in the query cell.
  double Query(const MixedCell& q) const;
};

/// Options for BuildMixedHistogram.
struct MixedHistogramOptions {
  double tree_budget_fraction = 0.5;
  std::int32_t max_numeric_depth = 40;
  std::int32_t max_depth = 512;
};

/// Builds the ε-DP mixed-domain histogram.
MixedHistogram BuildMixedHistogram(const MixedDataset& data, double epsilon,
                                   const MixedHistogramOptions& options,
                                   Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_MIXED_HISTOGRAM_H_
