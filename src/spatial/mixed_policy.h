// PrivTree over mixed numeric + categorical domains (Section 3.5):
// numeric dimensions split by bisection, categorical dimensions by
// descending their taxonomies.  Splitting proceeds round-robin across all
// attributes; a categorical attribute whose taxonomy node is a leaf is
// skipped (its information is exhausted).
//
// Because different taxonomy nodes have different fanouts, the tree is not
// uniform; PrivTree's guarantee only needs β for the δ = λ·ln β setting,
// for which the *maximum* fanout is the conservative choice (a larger δ
// only decreases the split probabilities, and Theorem 3.1 holds for any
// δ = γλ with γ > 0).
#ifndef PRIVTREE_SPATIAL_MIXED_POLICY_H_
#define PRIVTREE_SPATIAL_MIXED_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/tree.h"
#include "spatial/box.h"
#include "spatial/taxonomy.h"

namespace privtree {

/// One record of a mixed dataset: numeric coordinates plus categorical
/// values (one per categorical attribute).
struct MixedRecord {
  std::vector<double> numeric;
  std::vector<CategoryValue> categories;
};

/// A dataset of mixed records.
class MixedDataset {
 public:
  /// `numeric_dims` numeric attributes over [0,1); one taxonomy per
  /// categorical attribute (pointers must outlive the dataset).
  MixedDataset(std::size_t numeric_dims,
               std::vector<const Taxonomy*> taxonomies);

  void Add(MixedRecord record);

  std::size_t size() const { return records_.size(); }
  std::size_t numeric_dims() const { return numeric_dims_; }
  std::size_t categorical_dims() const { return taxonomies_.size(); }
  const Taxonomy& taxonomy(std::size_t attribute) const;
  const MixedRecord& record(std::size_t i) const { return records_[i]; }

 private:
  std::size_t numeric_dims_;
  std::vector<const Taxonomy*> taxonomies_;
  std::vector<MixedRecord> records_;
};

/// A sub-domain of the mixed space: a numeric box plus one taxonomy node
/// per categorical attribute.
struct MixedCell {
  Box box;
  std::vector<NodeId> category_nodes;  ///< One per categorical attribute.
  /// Index of the attribute to split next (cycles over numeric dims then
  /// categorical attributes).
  std::int32_t next_attribute = 0;
  /// Remaining consecutive skips before the cell is declared unsplittable
  /// (all categorical nodes at leaves and numeric resolution exhausted).
  std::int32_t depth = 0;

  /// Whether a record falls into this cell.
  bool Contains(const MixedDataset& data, const MixedRecord& record) const;
};

/// DecompositionPolicy over MixedCell; Score is the exact record count.
class MixedPolicy {
 public:
  using Domain = MixedCell;

  /// `max_numeric_depth` caps bisections per numeric dimension.
  MixedPolicy(const MixedDataset& data, std::int32_t max_numeric_depth = 40);

  Domain Root() const;
  bool CanSplit(const Domain& cell) const;
  std::vector<Domain> Split(const Domain& cell) const;
  double Score(const Domain& cell) const;
  /// Maximum fanout across attributes (2 for numeric splits, the widest
  /// taxonomy branching for categorical ones).
  int fanout() const { return max_fanout_; }

 private:
  std::size_t attribute_count() const {
    return data_.numeric_dims() + data_.categorical_dims();
  }
  /// Whether attribute `a` of `cell` can currently be split.
  bool AttributeSplittable(const Domain& cell, std::size_t a) const;

  const MixedDataset& data_;
  std::int32_t max_numeric_depth_;
  int max_fanout_ = 2;
};

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_MIXED_POLICY_H_
