#include "spatial/svt_histogram.h"

#include "core/svt_tree.h"
#include "dp/budget.h"
#include "dp/check.h"
#include "dp/distributions.h"
#include "spatial/morton_index.h"
#include "spatial/quadtree_policy.h"

namespace privtree {

SpatialHistogram BuildSvtTreeHistogram(const PointSet& points,
                                       const Box& domain, double epsilon,
                                       const SvtHistogramOptions& options,
                                       Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GT(options.tree_budget_fraction, 0.0);
  PRIVTREE_CHECK_LT(options.tree_budget_fraction, 1.0);
  const int dims_per_split =
      options.dims_per_split > 0 ? options.dims_per_split
                                 : static_cast<int>(domain.dim());

  MortonIndex index(points, domain);
  QuadtreePolicy policy(index, domain, dims_per_split);

  PrivacyBudget budget(epsilon);
  const double tree_epsilon =
      budget.SpendFraction(options.tree_budget_fraction);
  const double count_epsilon = budget.SpendRemaining();

  // Sensitivity of the point-count queries is 1... per tree level, but the
  // improved SVT's guarantee is stated for a query *sequence*; one tuple
  // affects up to max_depth queries in the sequence, so a strictly ε-DP
  // deployment must scale by the depth cap.  Appendix A's comparison uses
  // sensitivity 1 to give SVT its best case; we follow that here and note
  // it in the bench output.
  SvtTreeParams params =
      SvtTreeParams::ForEpsilon(tree_epsilon, options.max_splits);
  params.theta = options.theta;

  SpatialHistogram hist;
  hist.tree = RunSvtTree(policy, params, rng);
  hist.stats.nodes_visited = hist.tree.size();
  hist.stats.nodes_split = hist.tree.size() - hist.tree.LeafCount();
  hist.stats.height = hist.tree.Height();

  hist.count.assign(hist.tree.size(), 0.0);
  const double scale = 1.0 / count_epsilon;
  for (NodeId leaf : hist.tree.LeafIds()) {
    const auto& cell = hist.tree.node(leaf).domain;
    hist.count[leaf] =
        static_cast<double>(index.CountPrefix(cell.prefix, cell.bits)) +
        SampleLaplace(rng, scale);
  }
  const auto& nodes = hist.tree.nodes();
  for (std::size_t i = nodes.size(); i-- > 0;) {
    if (nodes[i].is_leaf()) continue;
    double total = 0.0;
    for (NodeId child : nodes[i].children) total += hist.count[child];
    hist.count[i] = total;
  }
  return hist;
}

}  // namespace privtree
