#include "spatial/quadtree_policy.h"

#include "dp/check.h"

namespace privtree {

QuadtreePolicy::QuadtreePolicy(const MortonIndex& index, Box root,
                               int dims_per_split)
    : index_(index), root_(std::move(root)), dims_per_split_(dims_per_split) {
  PRIVTREE_CHECK_GE(dims_per_split, 1);
  PRIVTREE_CHECK_LE(static_cast<std::size_t>(dims_per_split), root_.dim());
  PRIVTREE_CHECK_EQ(root_.dim(), index.dim());
}

QuadtreePolicy::Domain QuadtreePolicy::Root() const {
  return SpatialCell{root_, 0, 0};
}

bool QuadtreePolicy::CanSplit(const Domain& cell) const {
  return cell.bits + dims_per_split_ <= index_.max_prefix_bits();
}

std::vector<QuadtreePolicy::Domain> QuadtreePolicy::Split(
    const Domain& cell) const {
  PRIVTREE_CHECK(CanSplit(cell));
  const std::size_t dim = root_.dim();
  // The next dimension to bisect follows the global round-robin bit order:
  // after `bits` consumed bits, it is bits mod d.
  std::vector<Domain> children;
  children.reserve(1u << dims_per_split_);
  children.push_back(
      Domain{cell.box, cell.prefix << dims_per_split_,
             cell.bits + dims_per_split_});
  // Grow the child list one bisected dimension at a time so child order
  // matches the Morton bit order (first bisected dimension is the most
  // significant of the appended bits).
  for (int step = 0; step < dims_per_split_; ++step) {
    const std::size_t j = (cell.bits + step) % dim;
    const int bit_pos = dims_per_split_ - 1 - step;
    std::vector<Domain> next;
    next.reserve(children.size() * 2);
    for (const Domain& child : children) {
      Domain lower = child;
      lower.box = child.box.BisectDim(j, 0);
      next.push_back(std::move(lower));
      Domain upper = child;
      upper.box = child.box.BisectDim(j, 1);
      upper.prefix |= static_cast<MortonKey>(1) << bit_pos;
      next.push_back(std::move(upper));
    }
    children = std::move(next);
  }
  return children;
}

double QuadtreePolicy::Score(const Domain& cell) const {
  return static_cast<double>(index_.CountPrefix(cell.prefix, cell.bits));
}

}  // namespace privtree
