#include "spatial/spatial_histogram.h"

#include <algorithm>

#include "core/privtree_params.h"
#include "core/simpletree.h"
#include "dp/budget.h"
#include "dp/check.h"
#include "dp/distributions.h"
#include "spatial/morton_index.h"

namespace privtree {

double SpatialHistogram::Query(const Box& q) const {
  if (tree.empty()) return 0.0;
  double ans = 0.0;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const auto& node = tree.node(v);
    const Box& dom = node.domain.box;
    if (!q.Intersects(dom)) continue;          // Case 1: disjoint.
    if (q.ContainsBox(dom)) {                  // Case 2: fully contained.
      ans += count[v];
      continue;
    }
    if (!node.is_leaf()) {                     // Case 3: partial, internal.
      for (NodeId child : node.children) stack.push_back(child);
      continue;
    }
    // Case 4: partial leaf — uniformity assumption.
    const double volume = dom.Volume();
    if (volume > 0.0) {
      ans += count[v] * (dom.IntersectionVolume(q) / volume);
    }
  }
  return ans;
}

namespace {

/// Propagates noisy leaf counts upward: each internal count becomes the sum
/// of the noisy counts of the leaves below it (Section 3.4).  Relies on
/// children having larger node ids than their parents.
void AggregateLeafCounts(const DecompTree<SpatialCell>& tree,
                         std::vector<double>* count) {
  const auto& nodes = tree.nodes();
  for (std::size_t i = nodes.size(); i-- > 0;) {
    if (nodes[i].is_leaf()) continue;
    double total = 0.0;
    for (NodeId child : nodes[i].children) total += (*count)[child];
    (*count)[i] = total;
  }
}

}  // namespace

SpatialHistogram BuildPrivTreeHistogram(const PointSet& points,
                                        const Box& domain, double epsilon,
                                        const PrivTreeHistogramOptions& options,
                                        Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GT(options.tree_budget_fraction, 0.0);
  PRIVTREE_CHECK_LT(options.tree_budget_fraction, 1.0);
  const int dims_per_split =
      options.dims_per_split > 0 ? options.dims_per_split
                                 : static_cast<int>(domain.dim());

  MortonIndex index(points, domain);
  QuadtreePolicy policy(index, domain, dims_per_split);

  PrivacyBudget budget(epsilon);
  const double tree_epsilon = budget.SpendFraction(options.tree_budget_fraction);
  const double count_epsilon = budget.SpendRemaining();

  PrivTreeParams params =
      PrivTreeParams::ForEpsilon(tree_epsilon, policy.fanout());
  params.max_depth = options.max_depth;

  SpatialHistogram hist;
  hist.tree = RunPrivTree(policy, params, rng, &hist.stats);

  // Post-processing: noisy leaf counts with the remaining budget.  One point
  // lies in exactly one leaf, so the leaf-count vector has sensitivity 1.
  hist.count.assign(hist.tree.size(), 0.0);
  const double count_scale = 1.0 / count_epsilon;
  for (NodeId leaf : hist.tree.LeafIds()) {
    const auto& cell = hist.tree.node(leaf).domain;
    const double exact =
        static_cast<double>(index.CountPrefix(cell.prefix, cell.bits));
    hist.count[leaf] = exact + SampleLaplace(rng, count_scale);
  }
  AggregateLeafCounts(hist.tree, &hist.count);
  return hist;
}

SpatialHistogram BuildSimpleTreeHistogram(
    const PointSet& points, const Box& domain, double epsilon,
    const SimpleTreeHistogramOptions& options, Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  const int dims_per_split =
      options.dims_per_split > 0 ? options.dims_per_split
                                 : static_cast<int>(domain.dim());

  MortonIndex index(points, domain);
  QuadtreePolicy policy(index, domain, dims_per_split);

  SimpleTreeParams params =
      SimpleTreeParams::ForEpsilon(epsilon, options.height);
  params.theta = options.theta;

  auto result = RunSimpleTree(policy, params, rng);
  SpatialHistogram hist;
  hist.tree = std::move(result.tree);
  hist.count = std::move(result.noisy_score);
  hist.count.resize(hist.tree.size(), 0.0);
  hist.stats.nodes_visited = hist.tree.size();
  hist.stats.height = hist.tree.Height();
  return hist;
}

}  // namespace privtree
