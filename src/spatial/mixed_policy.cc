#include "spatial/mixed_policy.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"

namespace privtree {

MixedDataset::MixedDataset(std::size_t numeric_dims,
                           std::vector<const Taxonomy*> taxonomies)
    : numeric_dims_(numeric_dims), taxonomies_(std::move(taxonomies)) {
  PRIVTREE_CHECK(numeric_dims_ + taxonomies_.size() > 0);
  for (const Taxonomy* taxonomy : taxonomies_) {
    PRIVTREE_CHECK(taxonomy != nullptr);
    PRIVTREE_CHECK(taxonomy->finalized());
  }
}

void MixedDataset::Add(MixedRecord record) {
  PRIVTREE_CHECK_EQ(record.numeric.size(), numeric_dims_);
  PRIVTREE_CHECK_EQ(record.categories.size(), taxonomies_.size());
  for (std::size_t j = 0; j < numeric_dims_; ++j) {
    PRIVTREE_CHECK_GE(record.numeric[j], 0.0);
    PRIVTREE_CHECK_LT(record.numeric[j], 1.0);
  }
  for (std::size_t a = 0; a < taxonomies_.size(); ++a) {
    PRIVTREE_CHECK_GE(record.categories[a], 0);
    PRIVTREE_CHECK_LT(record.categories[a],
                      taxonomies_[a]->LeafValueCount());
  }
  records_.push_back(std::move(record));
}

const Taxonomy& MixedDataset::taxonomy(std::size_t attribute) const {
  PRIVTREE_CHECK_LT(attribute, taxonomies_.size());
  return *taxonomies_[attribute];
}

bool MixedCell::Contains(const MixedDataset& data,
                         const MixedRecord& record) const {
  if (!box.Contains(record.numeric)) return false;
  for (std::size_t a = 0; a < category_nodes.size(); ++a) {
    if (!data.taxonomy(a).Covers(category_nodes[a], record.categories[a])) {
      return false;
    }
  }
  return true;
}

MixedPolicy::MixedPolicy(const MixedDataset& data,
                         std::int32_t max_numeric_depth)
    : data_(data), max_numeric_depth_(max_numeric_depth) {
  PRIVTREE_CHECK_GE(max_numeric_depth, 1);
  max_fanout_ = data.numeric_dims() > 0 ? 2 : 1;
  for (std::size_t a = 0; a < data.categorical_dims(); ++a) {
    const Taxonomy& taxonomy = data.taxonomy(a);
    for (std::size_t id = 0; id < taxonomy.size(); ++id) {
      max_fanout_ = std::max(
          max_fanout_,
          static_cast<int>(taxonomy.children(static_cast<NodeId>(id)).size()));
    }
  }
  PRIVTREE_CHECK_GE(max_fanout_, 2);
}

MixedPolicy::Domain MixedPolicy::Root() const {
  MixedCell cell;
  cell.box = Box::UnitCube(data_.numeric_dims());
  for (std::size_t a = 0; a < data_.categorical_dims(); ++a) {
    cell.category_nodes.push_back(data_.taxonomy(a).root());
  }
  return cell;
}

bool MixedPolicy::AttributeSplittable(const Domain& cell,
                                      std::size_t a) const {
  if (a < data_.numeric_dims()) {
    return cell.box.Width(a) > std::ldexp(1.0, -max_numeric_depth_);
  }
  const std::size_t c = a - data_.numeric_dims();
  return !data_.taxonomy(c).is_leaf(cell.category_nodes[c]);
}

bool MixedPolicy::CanSplit(const Domain& cell) const {
  for (std::size_t a = 0; a < attribute_count(); ++a) {
    if (AttributeSplittable(cell, a)) return true;
  }
  return false;
}

std::vector<MixedPolicy::Domain> MixedPolicy::Split(
    const Domain& cell) const {
  PRIVTREE_CHECK(CanSplit(cell));
  // Find the next splittable attribute in round-robin order.
  std::size_t attribute = static_cast<std::size_t>(cell.next_attribute);
  for (std::size_t tried = 0; tried < attribute_count(); ++tried) {
    if (AttributeSplittable(cell, attribute)) break;
    attribute = (attribute + 1) % attribute_count();
  }
  PRIVTREE_CHECK(AttributeSplittable(cell, attribute));

  std::vector<Domain> children;
  const auto next =
      static_cast<std::int32_t>((attribute + 1) % attribute_count());
  if (attribute < data_.numeric_dims()) {
    for (int half = 0; half < 2; ++half) {
      Domain child = cell;
      child.box = cell.box.BisectDim(attribute, half);
      child.next_attribute = next;
      child.depth = cell.depth + 1;
      children.push_back(std::move(child));
    }
    return children;
  }
  const std::size_t c = attribute - data_.numeric_dims();
  const Taxonomy& taxonomy = data_.taxonomy(c);
  for (NodeId category : taxonomy.children(cell.category_nodes[c])) {
    Domain child = cell;
    child.category_nodes[c] = category;
    child.next_attribute = next;
    child.depth = cell.depth + 1;
    children.push_back(std::move(child));
  }
  return children;
}

double MixedPolicy::Score(const Domain& cell) const {
  // O(n) per node; mixed datasets in this library are modest-sized.  For
  // large numeric-only data use QuadtreePolicy's Morton index instead.
  double count = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (cell.Contains(data_, data_.record(i))) count += 1.0;
  }
  return count;
}

}  // namespace privtree
