// A spatial histogram whose tree shape is produced by the improved-SVT
// decomposition of core/svt_tree.h (the Appendix-A alternative), with the
// usual noisy-leaf-count post-processing on the remaining budget.
#ifndef PRIVTREE_SPATIAL_SVT_HISTOGRAM_H_
#define PRIVTREE_SPATIAL_SVT_HISTOGRAM_H_

#include <cstdint>

#include "dp/rng.h"
#include "spatial/spatial_histogram.h"

namespace privtree {

/// Options for BuildSvtTreeHistogram.
struct SvtHistogramOptions {
  /// The split cap t (Appendix A: must be fixed a priori, which is the
  /// method's fundamental drawback).
  std::int32_t max_splits = 256;
  double tree_budget_fraction = 0.5;
  double theta = 0.0;
  int dims_per_split = 0;  ///< 0 = all dimensions (β = 2^d).
};

/// Builds an ε-DP spatial histogram with improved-SVT split decisions.
SpatialHistogram BuildSvtTreeHistogram(const PointSet& points,
                                       const Box& domain, double epsilon,
                                       const SvtHistogramOptions& options,
                                       Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_SVT_HISTOGRAM_H_
