#include "spatial/taxonomy.h"

#include <deque>

#include "dp/check.h"

namespace privtree {

Taxonomy Taxonomy::Flat(std::int32_t values) {
  PRIVTREE_CHECK_GE(values, 1);
  Taxonomy taxonomy;
  taxonomy.AddRoot("root");
  for (std::int32_t v = 0; v < values; ++v) {
    taxonomy.AddCategory(taxonomy.root(), "v" + std::to_string(v));
  }
  taxonomy.Finalize();
  return taxonomy;
}

Taxonomy Taxonomy::Balanced(std::int32_t values, std::int32_t arity) {
  PRIVTREE_CHECK_GE(values, 1);
  PRIVTREE_CHECK_GE(arity, 2);
  Taxonomy taxonomy;
  taxonomy.AddRoot("root");
  // Grow breadth-first until we have `values` leaves.
  std::deque<NodeId> frontier = {taxonomy.root()};
  std::int32_t leaves = 1;
  while (leaves < values) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    const std::int32_t fanout =
        std::min(arity, values - leaves + 1);
    for (std::int32_t c = 0; c < fanout; ++c) {
      std::string label = taxonomy.label(node);
      label += '.';
      label += std::to_string(c);
      frontier.push_back(taxonomy.AddCategory(node, std::move(label)));
    }
    leaves += fanout - 1;
  }
  taxonomy.Finalize();
  return taxonomy;
}

NodeId Taxonomy::AddRoot(std::string label) {
  PRIVTREE_CHECK(nodes_.empty());
  PRIVTREE_CHECK(!finalized_);
  Node node;
  node.label = std::move(label);
  nodes_.push_back(std::move(node));
  return 0;
}

NodeId Taxonomy::AddCategory(NodeId parent, std::string label) {
  PRIVTREE_CHECK(!finalized_);
  PRIVTREE_CHECK_GE(parent, 0);
  PRIVTREE_CHECK_LT(static_cast<std::size_t>(parent), nodes_.size());
  Node node;
  node.label = std::move(label);
  node.parent = parent;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

void Taxonomy::Finalize() {
  PRIVTREE_CHECK(!nodes_.empty());
  PRIVTREE_CHECK(!finalized_);
  // DFS assigning dense values to leaves and covered ranges to all nodes.
  leaf_of_value_.clear();
  struct Frame {
    NodeId node;
    std::size_t next_child;
  };
  std::vector<Frame> stack = {{0, 0}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    Node& node = nodes_[static_cast<std::size_t>(frame.node)];
    if (frame.next_child == 0) {
      node.leaf_begin = static_cast<std::int32_t>(leaf_of_value_.size());
      if (node.children.empty()) {
        node.value = static_cast<CategoryValue>(leaf_of_value_.size());
        leaf_of_value_.push_back(frame.node);
      }
    }
    if (frame.next_child < node.children.size()) {
      const NodeId child = node.children[frame.next_child++];
      stack.push_back({child, 0});
      continue;
    }
    node.leaf_end = static_cast<std::int32_t>(leaf_of_value_.size());
    stack.pop_back();
  }
  finalized_ = true;
}

const std::string& Taxonomy::label(NodeId id) const {
  PRIVTREE_CHECK_GE(id, 0);
  PRIVTREE_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].label;
}

const std::vector<NodeId>& Taxonomy::children(NodeId id) const {
  PRIVTREE_CHECK_GE(id, 0);
  PRIVTREE_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].children;
}

bool Taxonomy::is_leaf(NodeId id) const { return children(id).empty(); }

std::int32_t Taxonomy::LeafValueCount() const {
  PRIVTREE_CHECK(finalized_);
  return static_cast<std::int32_t>(leaf_of_value_.size());
}

CategoryValue Taxonomy::ValueOf(NodeId leaf) const {
  PRIVTREE_CHECK(finalized_);
  PRIVTREE_CHECK(is_leaf(leaf));
  return nodes_[static_cast<std::size_t>(leaf)].value;
}

NodeId Taxonomy::NodeOf(CategoryValue value) const {
  PRIVTREE_CHECK(finalized_);
  PRIVTREE_CHECK_GE(value, 0);
  PRIVTREE_CHECK_LT(static_cast<std::size_t>(value), leaf_of_value_.size());
  return leaf_of_value_[static_cast<std::size_t>(value)];
}

bool Taxonomy::Covers(NodeId node, CategoryValue value) const {
  PRIVTREE_CHECK(finalized_);
  PRIVTREE_CHECK_GE(node, 0);
  PRIVTREE_CHECK_LT(static_cast<std::size_t>(node), nodes_.size());
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  return value >= n.leaf_begin && value < n.leaf_end;
}

std::int32_t Taxonomy::LeafCountOf(NodeId node) const {
  PRIVTREE_CHECK(finalized_);
  PRIVTREE_CHECK_GE(node, 0);
  PRIVTREE_CHECK_LT(static_cast<std::size_t>(node), nodes_.size());
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  return n.leaf_end - n.leaf_begin;
}

}  // namespace privtree
