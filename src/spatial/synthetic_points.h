// Synthetic point generation from a private spatial histogram — the
// "coarsen the input data and inject noise, then mine the modified data"
// pattern the paper's introduction motivates (k-means [48], regression
// [29]).
//
// Sampling is pure post-processing of the released synopsis, so the output
// inherits its ε-DP guarantee.
#ifndef PRIVTREE_SPATIAL_SYNTHETIC_POINTS_H_
#define PRIVTREE_SPATIAL_SYNTHETIC_POINTS_H_

#include <cstddef>

#include "dp/rng.h"
#include "spatial/point_set.h"
#include "spatial/spatial_histogram.h"

namespace privtree {

/// Draws `n` synthetic points from the histogram's density: leaves are
/// selected with probability proportional to max(count, 0) and points are
/// uniform inside the selected leaf's box.
PointSet SampleSyntheticPoints(const SpatialHistogram& hist, std::size_t n,
                               Rng& rng);

/// Draws a synthetic dataset of noisy size: n is itself read from the
/// histogram's root count (clamped at 0), so no extra budget is spent.
PointSet SampleSyntheticDataset(const SpatialHistogram& hist, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_SYNTHETIC_POINTS_H_
