#include "spatial/morton_index.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"

namespace privtree {

MortonIndex::MortonIndex(const PointSet& points, const Box& root)
    : dim_(points.dim()) {
  PRIVTREE_CHECK_EQ(root.dim(), dim_);
  levels_per_dim_ = kTotalBits / static_cast<int>(dim_);
  // Ceiling at 63 so per-dimension integer coordinates fit in uint64.
  levels_per_dim_ = std::min(levels_per_dim_, 63);
  max_prefix_bits_ = levels_per_dim_ * static_cast<int>(dim_);

  root_lo_ = root.lo();
  inv_width_.resize(dim_);
  for (std::size_t j = 0; j < dim_; ++j) {
    const double width = root.Width(j);
    PRIVTREE_CHECK_GT(width, 0.0);
    inv_width_[j] = 1.0 / width;
  }

  keys_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    keys_.push_back(KeyOf(points.point(i)));
  }
  std::sort(keys_.begin(), keys_.end());
}

MortonKey MortonIndex::KeyOf(std::span<const double> point) const {
  PRIVTREE_CHECK_EQ(point.size(), dim_);
  const double cells = std::ldexp(1.0, levels_per_dim_);  // 2^L
  MortonKey key = 0;
  // Per-dimension integer coordinates with L bits each.
  std::uint64_t coord[8];
  PRIVTREE_CHECK_LE(dim_, 8u);
  const std::uint64_t max_coord =
      (std::uint64_t{1} << levels_per_dim_) - 1;
  for (std::size_t j = 0; j < dim_; ++j) {
    double normalized = (point[j] - root_lo_[j]) * inv_width_[j];
    normalized = std::clamp(normalized, 0.0, 1.0);
    const double scaled = normalized * cells;
    // Integer-side clamp: `cells - 1` is not representable as a double at
    // 63 bits, so a floating-point clamp would let coord reach 2^L and set
    // a bit the interleaving never reads.
    std::uint64_t c = static_cast<std::uint64_t>(scaled);
    if (scaled >= cells || c > max_coord) c = max_coord;
    coord[j] = c;
  }
  // Interleave level-major, dimension-minor: the first d key bits are the
  // most significant bit of each dimension, and so on.
  for (int level = 0; level < levels_per_dim_; ++level) {
    for (std::size_t j = 0; j < dim_; ++j) {
      const int bit = levels_per_dim_ - 1 - level;
      key = (key << 1) | ((coord[j] >> bit) & 1u);
    }
  }
  return key;
}

std::size_t MortonIndex::CountPrefix(MortonKey prefix, int bits) const {
  PRIVTREE_CHECK_GE(bits, 0);
  PRIVTREE_CHECK_LE(bits, max_prefix_bits_);
  if (bits == 0) return keys_.size();
  const int shift = max_prefix_bits_ - bits;
  const MortonKey lo = prefix << shift;
  const MortonKey hi = (prefix + 1) << shift;
  const auto begin = std::lower_bound(keys_.begin(), keys_.end(), lo);
  const auto end = std::lower_bound(keys_.begin(), keys_.end(), hi);
  return static_cast<std::size_t>(end - begin);
}

}  // namespace privtree
