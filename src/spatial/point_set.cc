#include "spatial/point_set.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/check.h"

namespace privtree {

PointSet::PointSet(std::size_t dim) : dim_(dim) { PRIVTREE_CHECK_GT(dim, 0u); }

PointSet::PointSet(std::size_t dim, std::vector<double> coords)
    : dim_(dim), coords_(std::move(coords)) {
  PRIVTREE_CHECK_GT(dim, 0u);
  PRIVTREE_CHECK_EQ(coords_.size() % dim, 0u);
}

void PointSet::Add(std::span<const double> point) {
  PRIVTREE_CHECK_EQ(point.size(), dim_);
  // Non-finite coordinates would propagate into undefined behaviour in the
  // Morton discretization; reject them at the boundary.
  for (double x : point) {
    PRIVTREE_CHECK(std::isfinite(x));
  }
  coords_.insert(coords_.end(), point.begin(), point.end());
}

std::size_t PointSet::ExactRangeCount(const Box& box) const {
  PRIVTREE_CHECK_EQ(box.dim(), dim_);
  std::size_t count = 0;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    if (box.Contains(point(i))) ++count;
  }
  return count;
}

Box PointSet::BoundingBox() const {
  PRIVTREE_CHECK(!empty());
  std::vector<double> lo(dim_, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dim_, -std::numeric_limits<double>::infinity());
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = point(i);
    for (std::size_t j = 0; j < dim_; ++j) {
      lo[j] = std::min(lo[j], p[j]);
      hi[j] = std::max(hi[j], p[j]);
    }
  }
  // Expand the upper bound so every point passes the half-open test.
  for (std::size_t j = 0; j < dim_; ++j) {
    const double width = hi[j] - lo[j];
    hi[j] += (width > 0.0 ? width : 1.0) * 1e-9 +
             std::numeric_limits<double>::min();
  }
  return Box(std::move(lo), std::move(hi));
}

}  // namespace privtree
