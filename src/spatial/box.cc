#include "spatial/box.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dp/check.h"

namespace privtree {

Box::Box(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  PRIVTREE_CHECK_EQ(lo_.size(), hi_.size());
  for (std::size_t j = 0; j < lo_.size(); ++j) {
    PRIVTREE_CHECK(std::isfinite(lo_[j]));
    PRIVTREE_CHECK(std::isfinite(hi_[j]));
    PRIVTREE_CHECK_LE(lo_[j], hi_[j]);
  }
}

Box Box::UnitCube(std::size_t dim) {
  return Box(std::vector<double>(dim, 0.0), std::vector<double>(dim, 1.0));
}

double Box::Volume() const {
  double volume = 1.0;
  for (std::size_t j = 0; j < dim(); ++j) volume *= Width(j);
  return volume;
}

bool Box::Contains(std::span<const double> point) const {
  PRIVTREE_CHECK_EQ(point.size(), dim());
  for (std::size_t j = 0; j < dim(); ++j) {
    if (point[j] < lo_[j] || point[j] >= hi_[j]) return false;
  }
  return true;
}

bool Box::ContainsBox(const Box& other) const {
  PRIVTREE_CHECK_EQ(other.dim(), dim());
  for (std::size_t j = 0; j < dim(); ++j) {
    if (other.lo_[j] < lo_[j] || other.hi_[j] > hi_[j]) return false;
  }
  return true;
}

bool Box::Intersects(const Box& other) const {
  PRIVTREE_CHECK_EQ(other.dim(), dim());
  for (std::size_t j = 0; j < dim(); ++j) {
    if (std::min(hi_[j], other.hi_[j]) <= std::max(lo_[j], other.lo_[j])) {
      return false;
    }
  }
  return true;
}

double Box::IntersectionVolume(const Box& other) const {
  PRIVTREE_CHECK_EQ(other.dim(), dim());
  double volume = 1.0;
  for (std::size_t j = 0; j < dim(); ++j) {
    const double width = std::min(hi_[j], other.hi_[j]) -
                         std::max(lo_[j], other.lo_[j]);
    if (width <= 0.0) return 0.0;
    volume *= width;
  }
  return volume;
}

Box Box::BisectDim(std::size_t j, int half) const {
  PRIVTREE_CHECK_LT(j, dim());
  PRIVTREE_CHECK(half == 0 || half == 1);
  Box out = *this;
  const double mid = 0.5 * (lo_[j] + hi_[j]);
  if (half == 0) {
    out.hi_[j] = mid;
  } else {
    out.lo_[j] = mid;
  }
  return out;
}

std::string Box::ToString() const {
  std::string out;
  char buf[64];
  for (std::size_t j = 0; j < dim(); ++j) {
    std::snprintf(buf, sizeof(buf), "%s[%g,%g)", j == 0 ? "" : "x", lo_[j],
                  hi_[j]);
    out += buf;
  }
  return out;
}

}  // namespace privtree
