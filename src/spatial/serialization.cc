#include "spatial/serialization.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace privtree {

Status SaveSpatialHistogram(const std::string& path,
                            const SpatialHistogram& hist) {
  if (hist.tree.empty()) {
    return Status::InvalidArgument("cannot save an empty histogram");
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.precision(17);
  const std::size_t dim = hist.tree.node(0).domain.box.dim();
  out << "privtree-histogram v1\n";
  out << "dim " << dim << "\n";
  out << "nodes " << hist.tree.size() << "\n";
  for (std::size_t i = 0; i < hist.tree.size(); ++i) {
    const auto& node = hist.tree.node(static_cast<NodeId>(i));
    out << node.parent << ' ' << hist.count[i];
    for (std::size_t j = 0; j < dim; ++j) {
      out << ' ' << node.domain.box.lo(j) << ' ' << node.domain.box.hi(j);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<SpatialHistogram> LoadSpatialHistogramText(std::istream& in,
                                                  const std::string& name) {
  std::string line;
  if (!std::getline(in, line) || line != "privtree-histogram v1") {
    return Status::InvalidArgument(name + ": bad magic line");
  }
  std::string keyword;
  std::size_t dim = 0, nodes = 0;
  if (!(in >> keyword >> dim) || keyword != "dim" || dim == 0 || dim > 8) {
    return Status::InvalidArgument(name + ": bad dim header");
  }
  if (!(in >> keyword >> nodes) || keyword != "nodes" || nodes == 0) {
    return Status::InvalidArgument(name + ": bad nodes header");
  }

  SpatialHistogram hist;
  hist.count.reserve(nodes);
  std::vector<double> lo(dim), hi(dim);
  for (std::size_t i = 0; i < nodes; ++i) {
    NodeId parent = kInvalidNode;
    double count = 0.0;
    if (!(in >> parent >> count)) {
      return Status::InvalidArgument(name + ": truncated node " +
                                     std::to_string(i));
    }
    for (std::size_t j = 0; j < dim; ++j) {
      if (!(in >> lo[j] >> hi[j]) || !(lo[j] <= hi[j])) {
        return Status::InvalidArgument(name + ": bad bounds at node " +
                                       std::to_string(i));
      }
    }
    SpatialCell cell;
    cell.box = Box(lo, hi);
    if (i == 0) {
      if (parent != kInvalidNode) {
        return Status::InvalidArgument(name + ": root must have parent -1");
      }
      hist.tree.AddRoot(std::move(cell));
    } else {
      if (parent < 0 || static_cast<std::size_t>(parent) >= i) {
        return Status::InvalidArgument(name + ": bad parent at node " +
                                       std::to_string(i));
      }
      hist.tree.AddChild(parent, std::move(cell));
    }
    hist.count.push_back(count);
  }
  return hist;
}

Result<SpatialHistogram> LoadSpatialHistogram(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadSpatialHistogramText(in, path);
}

void WriteBox(ByteWriter& out, const Box& box) {
  for (std::size_t j = 0; j < box.dim(); ++j) {
    out.F64(box.lo(j));
    out.F64(box.hi(j));
  }
}

bool ReadBox(ByteReader& in, std::size_t dim, Box* out, std::string* error) {
  std::vector<double> lo(dim), hi(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    if (!in.F64(&lo[j]) || !in.F64(&hi[j])) {
      *error = "truncated box";
      return false;
    }
    if (!(lo[j] <= hi[j])) {  // Also rejects NaN bounds.
      *error = "box with lo > hi";
      return false;
    }
  }
  *out = Box(std::move(lo), std::move(hi));
  return true;
}

namespace {

/// Shared body codec over the two tree flavors; `make_domain` converts a
/// Box into the node's Domain and `box_of` extracts it back.
template <typename Domain, typename BoxOf>
void WriteTreeBodyImpl(ByteWriter& out, const DecompTree<Domain>& tree,
                       const std::vector<double>& counts, BoxOf box_of) {
  out.U64(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto& node = tree.node(static_cast<NodeId>(i));
    out.I32(node.parent);
    out.F64(counts[i]);
    WriteBox(out, box_of(node.domain));
  }
}

template <typename Domain, typename MakeDomain>
Status ReadTreeBodyImpl(ByteReader& in, std::size_t dim,
                        DecompTree<Domain>* tree, std::vector<double>* counts,
                        MakeDomain make_domain) {
  std::uint64_t nodes = 0;
  if (!in.U64(&nodes) || nodes == 0) {
    return Status::InvalidArgument("tree body: bad node count");
  }
  // Each node record is 4 + 8 + 16·dim bytes; reject counts the remaining
  // payload cannot possibly hold before reserving anything.
  const std::uint64_t record_bytes = 4 + 8 + 16 * static_cast<std::uint64_t>(dim);
  if (nodes > in.remaining() / record_bytes) {
    return Status::InvalidArgument("tree body: node count exceeds payload");
  }
  counts->reserve(nodes);
  std::string box_error;
  for (std::uint64_t i = 0; i < nodes; ++i) {
    std::int32_t parent = kInvalidNode;
    double count = 0.0;
    Box box;
    if (!in.I32(&parent) || !in.F64(&count) ||
        !ReadBox(in, dim, &box, &box_error)) {
      return Status::InvalidArgument("tree body: truncated node " +
                                     std::to_string(i) +
                                     (box_error.empty() ? "" : ": " + box_error));
    }
    if (i == 0) {
      if (parent != kInvalidNode) {
        return Status::InvalidArgument("tree body: root must have parent -1");
      }
      tree->AddRoot(make_domain(std::move(box)));
    } else {
      if (parent < 0 || static_cast<std::uint64_t>(parent) >= i) {
        return Status::InvalidArgument("tree body: bad parent at node " +
                                       std::to_string(i));
      }
      tree->AddChild(parent, make_domain(std::move(box)));
    }
    counts->push_back(count);
  }
  return Status::OK();
}

}  // namespace

void WriteSpatialTreeBody(ByteWriter& out, const DecompTree<SpatialCell>& tree,
                          const std::vector<double>& counts) {
  WriteTreeBodyImpl(out, tree, counts,
                    [](const SpatialCell& c) -> const Box& { return c.box; });
}

Status ReadSpatialTreeBody(ByteReader& in, std::size_t dim,
                           DecompTree<SpatialCell>* tree,
                           std::vector<double>* counts) {
  return ReadTreeBodyImpl(in, dim, tree, counts, [](Box box) {
    SpatialCell cell;
    cell.box = std::move(box);
    return cell;
  });
}

void WriteBoxTreeBody(ByteWriter& out, const DecompTree<Box>& tree,
                      const std::vector<double>& counts) {
  WriteTreeBodyImpl(out, tree, counts,
                    [](const Box& b) -> const Box& { return b; });
}

Status ReadBoxTreeBody(ByteReader& in, std::size_t dim, DecompTree<Box>* tree,
                       std::vector<double>* counts) {
  return ReadTreeBodyImpl(in, dim, tree, counts,
                          [](Box box) { return box; });
}

}  // namespace privtree
