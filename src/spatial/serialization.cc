#include "spatial/serialization.h"

#include <bit>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "core/codec.h"

namespace privtree {

Status SaveSpatialHistogram(const std::string& path,
                            const SpatialHistogram& hist) {
  if (hist.tree.empty()) {
    return Status::InvalidArgument("cannot save an empty histogram");
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.precision(17);
  const std::size_t dim = hist.tree.node(0).domain.box.dim();
  out << "privtree-histogram v1\n";
  out << "dim " << dim << "\n";
  out << "nodes " << hist.tree.size() << "\n";
  for (std::size_t i = 0; i < hist.tree.size(); ++i) {
    const auto& node = hist.tree.node(static_cast<NodeId>(i));
    out << node.parent << ' ' << hist.count[i];
    for (std::size_t j = 0; j < dim; ++j) {
      out << ' ' << node.domain.box.lo(j) << ' ' << node.domain.box.hi(j);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<SpatialHistogram> LoadSpatialHistogramText(std::istream& in,
                                                  const std::string& name) {
  std::string line;
  if (!std::getline(in, line) || line != "privtree-histogram v1") {
    return Status::InvalidArgument(name + ": bad magic line");
  }
  std::string keyword;
  std::size_t dim = 0, nodes = 0;
  if (!(in >> keyword >> dim) || keyword != "dim" || dim == 0 || dim > 8) {
    return Status::InvalidArgument(name + ": bad dim header");
  }
  if (!(in >> keyword >> nodes) || keyword != "nodes" || nodes == 0) {
    return Status::InvalidArgument(name + ": bad nodes header");
  }

  SpatialHistogram hist;
  hist.count.reserve(nodes);
  std::vector<double> lo(dim), hi(dim);
  for (std::size_t i = 0; i < nodes; ++i) {
    NodeId parent = kInvalidNode;
    double count = 0.0;
    if (!(in >> parent >> count)) {
      return Status::InvalidArgument(name + ": truncated node " +
                                     std::to_string(i));
    }
    for (std::size_t j = 0; j < dim; ++j) {
      if (!(in >> lo[j] >> hi[j]) || !(lo[j] <= hi[j])) {
        return Status::InvalidArgument(name + ": bad bounds at node " +
                                       std::to_string(i));
      }
    }
    SpatialCell cell;
    cell.box = Box(lo, hi);
    if (i == 0) {
      if (parent != kInvalidNode) {
        return Status::InvalidArgument(name + ": root must have parent -1");
      }
      hist.tree.AddRoot(std::move(cell));
    } else {
      if (parent < 0 || static_cast<std::size_t>(parent) >= i) {
        return Status::InvalidArgument(name + ": bad parent at node " +
                                       std::to_string(i));
      }
      hist.tree.AddChild(parent, std::move(cell));
    }
    hist.count.push_back(count);
  }
  return hist;
}

Result<SpatialHistogram> LoadSpatialHistogram(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadSpatialHistogramText(in, path);
}

void WriteBox(ByteWriter& out, const Box& box) {
  for (std::size_t j = 0; j < box.dim(); ++j) {
    out.F64(box.lo(j));
    out.F64(box.hi(j));
  }
}

bool ReadBox(ByteReader& in, std::size_t dim, Box* out, std::string* error) {
  std::vector<double> lo(dim), hi(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    if (!in.F64(&lo[j]) || !in.F64(&hi[j])) {
      *error = "truncated box";
      return false;
    }
    if (!(lo[j] <= hi[j])) {  // Also rejects NaN bounds.
      *error = "box with lo > hi";
      return false;
    }
  }
  *out = Box(std::move(lo), std::move(hi));
  return true;
}

namespace {

/// Shared body codec over the two tree flavors; `make_domain` converts a
/// Box into the node's Domain and `box_of` extracts it back.
template <typename Domain, typename BoxOf>
void WriteTreeBodyImpl(ByteWriter& out, const DecompTree<Domain>& tree,
                       const std::vector<double>& counts, BoxOf box_of) {
  out.U64(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto& node = tree.node(static_cast<NodeId>(i));
    out.I32(node.parent);
    out.F64(counts[i]);
    WriteBox(out, box_of(node.domain));
  }
}

template <typename Domain, typename MakeDomain>
Status ReadTreeBodyImpl(ByteReader& in, std::size_t dim,
                        DecompTree<Domain>* tree, std::vector<double>* counts,
                        MakeDomain make_domain) {
  std::uint64_t nodes = 0;
  if (!in.U64(&nodes) || nodes == 0) {
    return Status::InvalidArgument("tree body: bad node count");
  }
  // Each node record is 4 + 8 + 16·dim bytes; reject counts the remaining
  // payload cannot possibly hold before reserving anything.
  const std::uint64_t record_bytes = 4 + 8 + 16 * static_cast<std::uint64_t>(dim);
  if (nodes > in.remaining() / record_bytes) {
    return Status::InvalidArgument("tree body: node count exceeds payload");
  }
  counts->reserve(nodes);
  std::string box_error;
  for (std::uint64_t i = 0; i < nodes; ++i) {
    std::int32_t parent = kInvalidNode;
    double count = 0.0;
    Box box;
    if (!in.I32(&parent) || !in.F64(&count) ||
        !ReadBox(in, dim, &box, &box_error)) {
      return Status::InvalidArgument("tree body: truncated node " +
                                     std::to_string(i) +
                                     (box_error.empty() ? "" : ": " + box_error));
    }
    if (i == 0) {
      if (parent != kInvalidNode) {
        return Status::InvalidArgument("tree body: root must have parent -1");
      }
      tree->AddRoot(make_domain(std::move(box)));
    } else {
      if (parent < 0 || static_cast<std::uint64_t>(parent) >= i) {
        return Status::InvalidArgument("tree body: bad parent at node " +
                                       std::to_string(i));
      }
      tree->AddChild(parent, make_domain(std::move(box)));
    }
    counts->push_back(count);
  }
  return Status::OK();
}

/// Bitwise double equality: the bound codes must survive ±0 and round-trip
/// exactly, so value comparison (`==`) is not enough.
bool SameBits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// 2-bit bound codes of the compressed tree body.
constexpr std::uint32_t kBoundInherit = 0;   // Equals the parent's bound.
constexpr std::uint32_t kBoundMidpoint = 1;  // Equals the parent's midpoint.
constexpr std::uint32_t kBoundExplicit = 2;  // Stored as a raw f64.

// Counts-section modes.
constexpr std::uint32_t kCountsRaw = 0;
constexpr std::uint32_t kCountsQuantized = 1;

/// Appends the counts section: quantized (group-varint multiples) when
/// `quantum` reproduces every count bitwise, raw doubles otherwise.
void WriteCountsSection(ByteWriter& out, const std::vector<double>& counts,
                        double quantum) {
  if (quantum > 0.0 && std::isfinite(quantum)) {
    std::vector<std::uint64_t> multiples;
    multiples.reserve(counts.size());
    bool exact = true;
    for (const double c : counts) {
      if (!std::isfinite(c)) {
        exact = false;
        break;
      }
      const double k = std::nearbyint(c / quantum);
      if (!(std::fabs(k) < 9007199254740992.0) /* 2^53 */ ||
          !SameBits(k * quantum, c)) {
        exact = false;
        break;
      }
      multiples.push_back(ZigZag64(static_cast<std::int64_t>(k)));
    }
    if (exact) {
      out.U32(kCountsQuantized);
      out.F64(quantum);
      out.Str(PackVarintGB(multiples));
      return;
    }
  }
  out.U32(kCountsRaw);
  out.F64Span(counts);
}

/// Reads either counts-section mode; `n` counts exactly.
Status ReadCountsSection(ByteReader& in, std::uint64_t n,
                         std::vector<double>* counts) {
  std::uint32_t mode = 0;
  if (!in.U32(&mode)) {
    return Status::InvalidArgument("tree body: truncated counts mode");
  }
  if (mode == kCountsRaw) {
    if (n > in.remaining() / 8 || !in.F64Vec(n, counts)) {
      return Status::InvalidArgument("tree body: truncated counts");
    }
    return Status::OK();
  }
  if (mode != kCountsQuantized) {
    return Status::InvalidArgument("tree body: unknown counts mode");
  }
  double quantum = 0.0;
  std::string packed;
  if (!in.F64(&quantum) || !in.Str(&packed)) {
    return Status::InvalidArgument("tree body: truncated quantized counts");
  }
  if (!(quantum > 0.0) || !std::isfinite(quantum)) {
    return Status::InvalidArgument("tree body: bad count quantum");
  }
  std::vector<std::uint64_t> multiples;
  if (!UnpackVarintGB(packed, n, &multiples)) {
    return Status::InvalidArgument("tree body: bad quantized counts");
  }
  counts->reserve(n);
  for (const std::uint64_t zz : multiples) {
    // double(k) is exact (the encoder bounded |k| < 2^53), and k * quantum
    // is the very multiply the encoder verified bitwise.
    counts->push_back(static_cast<double>(UnZigZag64(zz)) * quantum);
  }
  return Status::OK();
}

template <typename Domain, typename BoxOf>
void WriteTreeBodyCompressedImpl(ByteWriter& out,
                                 const DecompTree<Domain>& tree,
                                 const std::vector<double>& counts,
                                 double quantum, BoxOf box_of) {
  const std::size_t n = tree.size();
  out.U64(n);
  std::vector<std::int32_t> parents(n);
  for (std::size_t i = 0; i < n; ++i) {
    parents[i] = tree.node(static_cast<NodeId>(i)).parent;
  }
  out.Str(PackDeltaI32(parents));

  const Box& root = box_of(tree.node(0).domain);
  WriteBox(out, root);
  const std::size_t dim = root.dim();

  std::string codes;
  BitWriter bits(&codes);
  std::vector<double> explicit_bounds;
  const auto encode_bound = [&](double v, double inherited, double mid) {
    if (SameBits(v, inherited)) {
      bits.Put(kBoundInherit, 2);
    } else if (SameBits(v, mid)) {
      bits.Put(kBoundMidpoint, 2);
    } else {
      bits.Put(kBoundExplicit, 2);
      explicit_bounds.push_back(v);
    }
  };
  for (std::size_t i = 1; i < n; ++i) {
    const Box& box = box_of(tree.node(static_cast<NodeId>(i)).domain);
    const Box& parent = box_of(tree.node(parents[i]).domain);
    for (std::size_t j = 0; j < dim; ++j) {
      // The midpoint expression matches Box::BisectDim bit for bit, so
      // bisection trees (all of PrivTree/SimpleTree, the kd-tree's
      // non-split dims) need no explicit bounds at all.
      const double mid = 0.5 * (parent.lo(j) + parent.hi(j));
      encode_bound(box.lo(j), parent.lo(j), mid);
      encode_bound(box.hi(j), parent.hi(j), mid);
    }
  }
  bits.Finish();
  out.Str(codes);
  out.U64(explicit_bounds.size());
  out.F64Span(explicit_bounds);

  WriteCountsSection(out, counts, quantum);
}

template <typename Domain, typename MakeDomain>
Status ReadTreeBodyCompressedImpl(ByteReader& in, std::size_t dim,
                                  DecompTree<Domain>* tree,
                                  std::vector<double>* counts,
                                  MakeDomain make_domain) {
  std::uint64_t nodes = 0;
  if (!in.U64(&nodes) || nodes == 0) {
    return Status::InvalidArgument("tree body: bad node count");
  }
  // Packed parents cost at least one width byte per 128 nodes; reject node
  // counts the remaining payload cannot possibly describe before any
  // count-sized allocation happens.
  if (nodes / 128 + 1 > in.remaining()) {
    return Status::InvalidArgument("tree body: node count exceeds payload");
  }
  std::string packed_parents;
  if (!in.Str(&packed_parents)) {
    return Status::InvalidArgument("tree body: truncated parent links");
  }
  std::vector<std::int32_t> parents;
  if (!UnpackDeltaI32(packed_parents, nodes, &parents)) {
    return Status::InvalidArgument("tree body: bad parent links");
  }
  if (parents[0] != kInvalidNode) {
    return Status::InvalidArgument("tree body: root must have parent -1");
  }
  for (std::uint64_t i = 1; i < nodes; ++i) {
    if (parents[i] < 0 || static_cast<std::uint64_t>(parents[i]) >= i) {
      return Status::InvalidArgument("tree body: bad parent at node " +
                                     std::to_string(i));
    }
  }

  Box root_box;
  std::string box_error;
  if (!ReadBox(in, dim, &root_box, &box_error)) {
    return Status::InvalidArgument("tree body: root box: " + box_error);
  }
  for (std::size_t j = 0; j < dim; ++j) {
    if (!std::isfinite(root_box.lo(j)) || !std::isfinite(root_box.hi(j))) {
      return Status::InvalidArgument("tree body: non-finite root bound");
    }
  }

  std::string codes;
  if (!in.Str(&codes)) {
    return Status::InvalidArgument("tree body: truncated bound codes");
  }
  const std::uint64_t code_bits = (nodes - 1) * dim * 2 * 2;
  if (codes.size() != (code_bits + 7) / 8) {
    return Status::InvalidArgument("tree body: bound code size mismatch");
  }
  std::uint64_t explicit_count = 0;
  if (!in.U64(&explicit_count) || explicit_count > in.remaining() / 8) {
    return Status::InvalidArgument("tree body: bad explicit bound count");
  }
  std::vector<double> explicit_bounds;
  if (!in.F64Vec(explicit_count, &explicit_bounds)) {
    return Status::InvalidArgument("tree body: truncated explicit bounds");
  }

  std::vector<Box> boxes(nodes);
  boxes[0] = std::move(root_box);
  BitReader bits(codes);
  std::size_t next_explicit = 0;
  std::vector<double> lo(dim), hi(dim);
  for (std::uint64_t i = 1; i < nodes; ++i) {
    const Box& parent = boxes[static_cast<std::size_t>(parents[i])];
    for (std::size_t j = 0; j < dim; ++j) {
      const double mid = 0.5 * (parent.lo(j) + parent.hi(j));
      double* const bound[2] = {&lo[j], &hi[j]};
      const double inherited[2] = {parent.lo(j), parent.hi(j)};
      for (int side = 0; side < 2; ++side) {
        std::uint32_t code = 0;
        if (!bits.Get(2, &code)) {
          return Status::InvalidArgument("tree body: truncated bound codes");
        }
        switch (code) {
          case kBoundInherit:
            *bound[side] = inherited[side];
            break;
          case kBoundMidpoint:
            *bound[side] = mid;
            break;
          case kBoundExplicit:
            if (next_explicit >= explicit_bounds.size()) {
              return Status::InvalidArgument(
                  "tree body: missing explicit bound");
            }
            *bound[side] = explicit_bounds[next_explicit++];
            break;
          default:
            return Status::InvalidArgument("tree body: bad bound code");
        }
      }
      // Box's constructor aborts on invalid bounds; a corrupt or crafted
      // file must fail with a Status instead.
      if (!std::isfinite(lo[j]) || !std::isfinite(hi[j]) ||
          !(lo[j] <= hi[j])) {
        return Status::InvalidArgument("tree body: bad bounds at node " +
                                       std::to_string(i));
      }
    }
    boxes[i] = Box(lo, hi);
  }
  if (next_explicit != explicit_bounds.size()) {
    return Status::InvalidArgument("tree body: unused explicit bounds");
  }

  if (Status s = ReadCountsSection(in, nodes, counts); !s.ok()) return s;

  for (std::uint64_t i = 0; i < nodes; ++i) {
    if (i == 0) {
      tree->AddRoot(make_domain(std::move(boxes[i])));
    } else {
      tree->AddChild(parents[i], make_domain(std::move(boxes[i])));
    }
  }
  return Status::OK();
}

}  // namespace

void WriteSpatialTreeBody(ByteWriter& out, const DecompTree<SpatialCell>& tree,
                          const std::vector<double>& counts) {
  WriteTreeBodyImpl(out, tree, counts,
                    [](const SpatialCell& c) -> const Box& { return c.box; });
}

Status ReadSpatialTreeBody(ByteReader& in, std::size_t dim,
                           DecompTree<SpatialCell>* tree,
                           std::vector<double>* counts) {
  return ReadTreeBodyImpl(in, dim, tree, counts, [](Box box) {
    SpatialCell cell;
    cell.box = std::move(box);
    return cell;
  });
}

void WriteBoxTreeBody(ByteWriter& out, const DecompTree<Box>& tree,
                      const std::vector<double>& counts) {
  WriteTreeBodyImpl(out, tree, counts,
                    [](const Box& b) -> const Box& { return b; });
}

Status ReadBoxTreeBody(ByteReader& in, std::size_t dim, DecompTree<Box>* tree,
                       std::vector<double>* counts) {
  return ReadTreeBodyImpl(in, dim, tree, counts,
                          [](Box box) { return box; });
}

void WriteSpatialTreeBodyCompressed(ByteWriter& out,
                                    const DecompTree<SpatialCell>& tree,
                                    const std::vector<double>& counts,
                                    double count_quantum) {
  WriteTreeBodyCompressedImpl(
      out, tree, counts, count_quantum,
      [](const SpatialCell& c) -> const Box& { return c.box; });
}

Status ReadSpatialTreeBodyCompressed(ByteReader& in, std::size_t dim,
                                     DecompTree<SpatialCell>* tree,
                                     std::vector<double>* counts) {
  return ReadTreeBodyCompressedImpl(in, dim, tree, counts, [](Box box) {
    SpatialCell cell;
    cell.box = std::move(box);
    return cell;
  });
}

void WriteBoxTreeBodyCompressed(ByteWriter& out, const DecompTree<Box>& tree,
                                const std::vector<double>& counts,
                                double count_quantum) {
  WriteTreeBodyCompressedImpl(out, tree, counts, count_quantum,
                              [](const Box& b) -> const Box& { return b; });
}

Status ReadBoxTreeBodyCompressed(ByteReader& in, std::size_t dim,
                                 DecompTree<Box>* tree,
                                 std::vector<double>* counts) {
  return ReadTreeBodyCompressedImpl(in, dim, tree, counts,
                                    [](Box box) { return box; });
}

}  // namespace privtree
