#include "spatial/serialization.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace privtree {

Status SaveSpatialHistogram(const std::string& path,
                            const SpatialHistogram& hist) {
  if (hist.tree.empty()) {
    return Status::InvalidArgument("cannot save an empty histogram");
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.precision(17);
  const std::size_t dim = hist.tree.node(0).domain.box.dim();
  out << "privtree-histogram v1\n";
  out << "dim " << dim << "\n";
  out << "nodes " << hist.tree.size() << "\n";
  for (std::size_t i = 0; i < hist.tree.size(); ++i) {
    const auto& node = hist.tree.node(static_cast<NodeId>(i));
    out << node.parent << ' ' << hist.count[i];
    for (std::size_t j = 0; j < dim; ++j) {
      out << ' ' << node.domain.box.lo(j) << ' ' << node.domain.box.hi(j);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<SpatialHistogram> LoadSpatialHistogram(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != "privtree-histogram v1") {
    return Status::InvalidArgument(path + ": bad magic line");
  }
  std::string keyword;
  std::size_t dim = 0, nodes = 0;
  if (!(in >> keyword >> dim) || keyword != "dim" || dim == 0 || dim > 8) {
    return Status::InvalidArgument(path + ": bad dim header");
  }
  if (!(in >> keyword >> nodes) || keyword != "nodes" || nodes == 0) {
    return Status::InvalidArgument(path + ": bad nodes header");
  }

  SpatialHistogram hist;
  hist.count.reserve(nodes);
  std::vector<double> lo(dim), hi(dim);
  for (std::size_t i = 0; i < nodes; ++i) {
    NodeId parent = kInvalidNode;
    double count = 0.0;
    if (!(in >> parent >> count)) {
      return Status::InvalidArgument(path + ": truncated node " +
                                     std::to_string(i));
    }
    for (std::size_t j = 0; j < dim; ++j) {
      if (!(in >> lo[j] >> hi[j]) || !(lo[j] <= hi[j])) {
        return Status::InvalidArgument(path + ": bad bounds at node " +
                                       std::to_string(i));
      }
    }
    SpatialCell cell;
    cell.box = Box(lo, hi);
    if (i == 0) {
      if (parent != kInvalidNode) {
        return Status::InvalidArgument(path + ": root must have parent -1");
      }
      hist.tree.AddRoot(std::move(cell));
    } else {
      if (parent < 0 || static_cast<std::size_t>(parent) >= i) {
        return Status::InvalidArgument(path + ": bad parent at node " +
                                       std::to_string(i));
      }
      hist.tree.AddChild(parent, std::move(cell));
    }
    hist.count.push_back(count);
  }
  return hist;
}

}  // namespace privtree
