// Taxonomies for categorical attributes (Section 3.5, first extension):
// "we can still apply PrivTree ... by splitting each numeric dimension
// according to a binary tree and each categorical dimension based on its
// taxonomy."
//
// A Taxonomy is a rooted tree whose leaves are the attribute's values;
// internal nodes are coarser categories (e.g. beverages → {hot, cold} →
// {coffee, tea | soda, juice}).
#ifndef PRIVTREE_SPATIAL_TAXONOMY_H_
#define PRIVTREE_SPATIAL_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/tree.h"

namespace privtree {

/// A categorical value, identified by its leaf index in the taxonomy
/// (dense, in [0, LeafValueCount())).
using CategoryValue = std::int32_t;

/// A rooted category tree over a categorical attribute.
class Taxonomy {
 public:
  Taxonomy() = default;

  /// Builds a flat taxonomy: the root directly covers `values` leaves.
  static Taxonomy Flat(std::int32_t values);

  /// Builds a balanced b-ary taxonomy over `values` leaves (useful when no
  /// domain taxonomy exists but hierarchical splitting is still wanted).
  static Taxonomy Balanced(std::int32_t values, std::int32_t arity);

  /// Creates the root node with a label; returns its id (0).
  NodeId AddRoot(std::string label);

  /// Adds a category under `parent`; returns the new node id.
  NodeId AddCategory(NodeId parent, std::string label);

  /// Finalizes the taxonomy: assigns each *leaf* node a dense
  /// CategoryValue in DFS order.  Must be called after construction and
  /// before value lookups.
  void Finalize();

  bool finalized() const { return finalized_; }
  std::size_t size() const { return nodes_.size(); }
  NodeId root() const { return 0; }

  const std::string& label(NodeId id) const;
  const std::vector<NodeId>& children(NodeId id) const;
  bool is_leaf(NodeId id) const;

  /// Number of leaf values.  Requires Finalize().
  std::int32_t LeafValueCount() const;

  /// The dense value of a leaf node.  Requires Finalize().
  CategoryValue ValueOf(NodeId leaf) const;

  /// The leaf node of a dense value.  Requires Finalize().
  NodeId NodeOf(CategoryValue value) const;

  /// Whether the category `node` covers the value (i.e. the value's leaf
  /// is in `node`'s subtree).  Requires Finalize().
  bool Covers(NodeId node, CategoryValue value) const;

  /// Number of leaf values covered by `node`.  Requires Finalize().
  std::int32_t LeafCountOf(NodeId node) const;

 private:
  struct Node {
    std::string label;
    NodeId parent = kInvalidNode;
    std::vector<NodeId> children;
    CategoryValue value = -1;        // Dense value for leaves.
    std::int32_t leaf_begin = 0;     // Covered value range [begin, end).
    std::int32_t leaf_end = 0;
  };
  std::vector<Node> nodes_;
  std::vector<NodeId> leaf_of_value_;
  bool finalized_ = false;
};

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_TAXONOMY_H_
