// Axis-aligned boxes in d-dimensional space.
//
// A box is the half-open product ∏ [lo_j, hi_j); half-openness makes the
// children of a bisection a true partition of the parent.
#ifndef PRIVTREE_SPATIAL_BOX_H_
#define PRIVTREE_SPATIAL_BOX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace privtree {

/// An axis-aligned half-open box ∏_j [lo[j], hi[j]).
class Box {
 public:
  Box() = default;

  /// Constructs from explicit bounds; lo.size() == hi.size() and
  /// lo[j] <= hi[j] for all j are required.
  Box(std::vector<double> lo, std::vector<double> hi);

  /// The unit cube [0,1)^dim.
  static Box UnitCube(std::size_t dim);

  std::size_t dim() const { return lo_.size(); }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }
  double lo(std::size_t j) const { return lo_[j]; }
  double hi(std::size_t j) const { return hi_[j]; }
  double Width(std::size_t j) const { return hi_[j] - lo_[j]; }

  /// Product of side lengths.
  double Volume() const;

  /// Whether the point (given as a dim()-element span) lies in the box.
  bool Contains(std::span<const double> point) const;

  /// Whether `other` is fully contained in this box.
  bool ContainsBox(const Box& other) const;

  /// Whether the two boxes share positive volume... more precisely, whether
  /// their closed intersection is non-empty in every dimension with
  /// lo < hi (touching boundaries do not count, consistent with
  /// half-openness).
  bool Intersects(const Box& other) const;

  /// Volume of the intersection (0 if disjoint).
  double IntersectionVolume(const Box& other) const;

  /// Returns a copy with dimension `j` bisected; `half` is 0 for the lower
  /// half and 1 for the upper half.
  Box BisectDim(std::size_t j, int half) const;

  /// Human-readable form, e.g. "[0,0.5)x[0.25,0.5)".
  std::string ToString() const;

  bool operator==(const Box& other) const = default;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace privtree

#endif  // PRIVTREE_SPATIAL_BOX_H_
