#include "svt/svt.h"

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

std::vector<int> BinarySvt(const std::vector<double>& answers, double theta,
                           double lambda, Rng& rng) {
  PRIVTREE_CHECK_GT(lambda, 0.0);
  const double noisy_theta = theta + SampleLaplace(rng, lambda);
  std::vector<int> out;
  out.reserve(answers.size());
  for (double answer : answers) {
    const double noisy = answer + SampleLaplace(rng, lambda);
    out.push_back(noisy > noisy_theta ? 1 : 0);
  }
  return out;
}

std::vector<std::optional<double>> VanillaSvt(
    const std::vector<double>& answers, double theta, double lambda,
    std::int32_t t, Rng& rng) {
  PRIVTREE_CHECK_GT(lambda, 0.0);
  PRIVTREE_CHECK_GE(t, 1);
  const double noisy_theta = theta + SampleLaplace(rng, lambda);
  const double query_scale = static_cast<double>(t) * lambda;
  std::vector<std::optional<double>> out;
  std::int32_t released = 0;
  for (double answer : answers) {
    const double noisy = answer + SampleLaplace(rng, query_scale);
    if (noisy > noisy_theta) {
      out.push_back(noisy);
      if (++released >= t) return out;
    } else {
      out.push_back(std::nullopt);
    }
  }
  return out;
}

std::vector<int> ReducedSvt(const std::vector<double>& answers, double theta,
                            double lambda, std::int32_t t, Rng& rng) {
  PRIVTREE_CHECK_GT(lambda, 0.0);
  PRIVTREE_CHECK_GE(t, 1);
  const double scale = static_cast<double>(t) * lambda;
  double noisy_theta = theta + SampleLaplace(rng, scale);
  std::vector<int> out;
  std::int32_t released = 0;
  for (double answer : answers) {
    const double noisy = answer + SampleLaplace(rng, scale);
    if (noisy > noisy_theta) {
      out.push_back(1);
      // Line 7: re-draw the noisy threshold after each positive output.
      noisy_theta = theta + SampleLaplace(rng, scale);
      if (++released >= t) return out;
    } else {
      out.push_back(0);
    }
  }
  return out;
}

std::vector<int> ImprovedSvt(const std::vector<double>& answers, double theta,
                             double lambda, std::int32_t t, Rng& rng) {
  PRIVTREE_CHECK_GT(lambda, 0.0);
  PRIVTREE_CHECK_GE(t, 1);
  // A single, less-noisy threshold draw (scale λ, not t·λ).
  const double noisy_theta = theta + SampleLaplace(rng, lambda);
  const double query_scale = static_cast<double>(t) * lambda;
  std::vector<int> out;
  std::int32_t released = 0;
  for (double answer : answers) {
    const double noisy = answer + SampleLaplace(rng, query_scale);
    if (noisy > noisy_theta) {
      out.push_back(1);
      if (++released >= t) return out;
    } else {
      out.push_back(0);
    }
  }
  return out;
}

}  // namespace privtree
