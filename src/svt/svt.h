// The four sparse-vector-technique variants analyzed in Section 5 and
// Appendix A.  All operate on a pre-evaluated sequence of counting-query
// answers (each of sensitivity 1):
//
//   * BinarySvt    (Algorithm 3) — outputs 0/1 per query against a noisy
//                    threshold.  Claim 1 (ε-DP with λ = 2/ε) is FALSE
//                    (Lemma 5.1); the algorithm needs λ = Ω(k/ε).
//   * VanillaSvt   (Algorithm 4) — outputs the noisy answer itself for
//                    above-threshold queries, at most t of them.  Claim 2
//                    (ε-DP with λ = 2/ε) is FALSE (Appendix A).
//   * ReducedSvt   (Algorithm 5) — 0/1 outputs, threshold noise t·λ
//                    re-drawn after every positive; ε-DP with λ >= 2/ε
//                    (Dwork & Roth).
//   * ImprovedSvt  (Algorithm 6) — the paper's improvement: a single
//                    threshold draw of scale λ; ε-DP with λ >= 2/ε
//                    (Lemma A.1) and more accurate than ReducedSvt.
#ifndef PRIVTREE_SVT_SVT_H_
#define PRIVTREE_SVT_SVT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "dp/rng.h"

namespace privtree {

/// Algorithm 3.  Returns one 0/1 answer per query.
std::vector<int> BinarySvt(const std::vector<double>& answers, double theta,
                           double lambda, Rng& rng);

/// Algorithm 4.  Returns, per processed query, either the released noisy
/// answer or nullopt (⊥); processing stops after `t` releases, so the
/// result may be shorter than `answers`.
std::vector<std::optional<double>> VanillaSvt(
    const std::vector<double>& answers, double theta, double lambda,
    std::int32_t t, Rng& rng);

/// Algorithm 5.  Returns 0/1 answers; stops after `t` ones.
std::vector<int> ReducedSvt(const std::vector<double>& answers, double theta,
                            double lambda, std::int32_t t, Rng& rng);

/// Algorithm 6.  Returns 0/1 answers; stops after `t` ones.
std::vector<int> ImprovedSvt(const std::vector<double>& answers, double theta,
                             double lambda, std::int32_t t, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_SVT_SVT_H_
