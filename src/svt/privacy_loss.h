// Privacy-loss evaluation of the SVT counterexamples (Lemma 5.1 and the
// Appendix-A refutation of Claim 2).
//
// Both counterexamples fix an output event E and three datasets
// D1, D2, D3 with (D1, D2) and (D2, D3) neighboring, and show that
// ln(Pr[D1→E] / Pr[D3→E]) grows linearly in the number of queries k —
// hence the algorithm cannot be ε-DP with a k-independent noise scale.
// The probabilities are one-dimensional integrals over the noisy threshold
// and are evaluated here by log-space quadrature; Monte-Carlo estimators
// over the actual algorithm are provided as an independent check.
#ifndef PRIVTREE_SVT_PRIVACY_LOSS_H_
#define PRIVTREE_SVT_PRIVACY_LOSS_H_

#include <cstdint>

#include "dp/rng.h"

namespace privtree {

/// Lemma 5.1 counterexample for BinarySvt: D1 = {a,b}, D2 = {a,b,b},
/// D3 = {b,b}; Q = k/2 copies of q_a then k/2 copies of q_b; θ = 1;
/// E = (1,...,1,0,...,0).  Returns ln(Pr[D1→E]/Pr[D3→E]); the paper proves
/// this exceeds k/(2λ), so ε-DP fails whenever λ <= k/(4ε).
double BinarySvtLossLemma51(std::int32_t k, double lambda);

/// Monte-Carlo estimate of the same log-ratio by running Algorithm 3
/// `trials` times on each dataset.  Subject to sampling error; use k and λ
/// for which Pr[E] is not astronomically small.
double BinarySvtLossLemma51MonteCarlo(std::int32_t k, double lambda,
                                      std::size_t trials, Rng& rng);

/// Appendix-A counterexample for VanillaSvt (Claim 2): D1 = {a,b},
/// D2 = {a,a,b}, D3 = {a,a}; Q = k−1 copies of q_a then q_b; θ = 0; t = 1;
/// E = (⊥,...,⊥, output 1).  Returns ln(Pr[D1→E]/Pr[D3→E]) (a density
/// ratio in the released value); the paper derives exactly k/λ.
double VanillaSvtLossClaim2(std::int32_t k, double lambda);

}  // namespace privtree

#endif  // PRIVTREE_SVT_PRIVACY_LOSS_H_
