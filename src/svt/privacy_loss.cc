#include "svt/privacy_loss.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "dp/check.h"
#include "dp/distributions.h"
#include "svt/svt.h"

namespace privtree {

namespace {

/// log Pr[Lap(λ) > x] and log Pr[Lap(λ) <= x], stable in both tails.
double LogLaplaceSf(double x, double lambda) {
  if (x >= 0.0) return std::log(0.5) - x / lambda;
  return std::log1p(-0.5 * std::exp(x / lambda));
}

double LogLaplaceCdf(double x, double lambda) {
  if (x < 0.0) return std::log(0.5) + x / lambda;
  return std::log1p(-0.5 * std::exp(-x / lambda));
}

double LogLaplacePdf(double x, double lambda) {
  return -std::log(2.0 * lambda) - std::abs(x) / lambda;
}

/// log ∫ exp(log_integrand(x)) dx over [lo, hi] by the composite midpoint
/// rule in log space.
template <typename F>
double LogIntegrate(F log_integrand, double lo, double hi, int steps) {
  PRIVTREE_CHECK_LT(lo, hi);
  PRIVTREE_CHECK_GT(steps, 0);
  const double dx = (hi - lo) / steps;
  double max_log = -std::numeric_limits<double>::infinity();
  std::vector<double> logs(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double x = lo + (i + 0.5) * dx;
    logs[static_cast<std::size_t>(i)] = log_integrand(x);
    max_log = std::max(max_log, logs[static_cast<std::size_t>(i)]);
  }
  if (!std::isfinite(max_log)) return max_log;
  double sum = 0.0;
  for (double lg : logs) sum += std::exp(lg - max_log);
  return max_log + std::log(sum) + std::log(dx);
}

}  // namespace

double BinarySvtLossLemma51(std::int32_t k, double lambda) {
  PRIVTREE_CHECK_GE(k, 2);
  PRIVTREE_CHECK_EQ(k % 2, 0);
  PRIVTREE_CHECK_GT(lambda, 0.0);
  const double theta = 1.0;
  const double half_k = static_cast<double>(k) / 2.0;
  // q_a(D1) = 1, q_b(D1) = 1;  q_a(D3) = 0, q_b(D3) = 2.
  const auto log_pr = [&](double qa, double qb) {
    const auto log_integrand = [&](double x) {
      return LogLaplacePdf(x - theta, lambda) +
             half_k * LogLaplaceSf(x - qa, lambda) +
             half_k * LogLaplaceCdf(x - qb, lambda);
    };
    // The threshold density is centered at θ = 1; ±60λ covers all mass.
    return LogIntegrate(log_integrand, theta - 60.0 * lambda,
                        theta + 60.0 * lambda, 200000);
  };
  return log_pr(1.0, 1.0) - log_pr(0.0, 2.0);
}

double BinarySvtLossLemma51MonteCarlo(std::int32_t k, double lambda,
                                      std::size_t trials, Rng& rng) {
  PRIVTREE_CHECK_GE(k, 2);
  PRIVTREE_CHECK_EQ(k % 2, 0);
  PRIVTREE_CHECK_GE(trials, 1u);
  const double theta = 1.0;
  const auto count_event = [&](double qa, double qb) {
    std::vector<double> answers(static_cast<std::size_t>(k));
    for (std::int32_t i = 0; i < k; ++i) {
      answers[static_cast<std::size_t>(i)] = (i < k / 2) ? qa : qb;
    }
    std::size_t hits = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const std::vector<int> out = BinarySvt(answers, theta, lambda, rng);
      bool match = true;
      for (std::int32_t i = 0; i < k && match; ++i) {
        match = out[static_cast<std::size_t>(i)] == ((i < k / 2) ? 1 : 0);
      }
      hits += match ? 1 : 0;
    }
    return hits;
  };
  const std::size_t hits1 = count_event(1.0, 1.0);
  const std::size_t hits3 = count_event(0.0, 2.0);
  PRIVTREE_CHECK_GT(hits1, 0u);
  PRIVTREE_CHECK_GT(hits3, 0u);
  return std::log(static_cast<double>(hits1)) -
         std::log(static_cast<double>(hits3));
}

double VanillaSvtLossClaim2(std::int32_t k, double lambda) {
  PRIVTREE_CHECK_GE(k, 2);
  PRIVTREE_CHECK_GT(lambda, 0.0);
  const double theta = 0.0;
  // t = 1, so the query-noise scale equals λ.  E: ⊥ for the k−1 q_a
  // queries, then the released value is exactly 1 for q_b (a density).
  // q_a(D1) = 1, q_b(D1) = 1;  q_a(D3) = 2, q_b(D3) = 0.  The threshold
  // must lie below the released value (x < 1).
  const double km1 = static_cast<double>(k - 1);
  const auto log_pr = [&](double qa, double qb) {
    const auto log_integrand = [&](double x) {
      return LogLaplacePdf(x - theta, lambda) +
             km1 * LogLaplaceCdf(x - qa, lambda) +
             LogLaplacePdf(1.0 - qb, lambda);
    };
    return LogIntegrate(log_integrand, -60.0 * lambda, 1.0, 200000);
  };
  return log_pr(1.0, 1.0) - log_pr(2.0, 0.0);
}

}  // namespace privtree
