// Samplers and density/CDF helpers for the distributions used by the
// differential-privacy mechanisms, most importantly the Laplace distribution
// Lap(λ) of Equation (1) in the paper:
//
//   Pr[η = x] = (1 / 2λ) · exp(−|x| / λ).
#ifndef PRIVTREE_DP_DISTRIBUTIONS_H_
#define PRIVTREE_DP_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "dp/rng.h"

namespace privtree {

/// Draws one sample from Lap(scale) (zero mean).  `scale` must be positive.
double SampleLaplace(Rng& rng, double scale);

/// Probability density of Lap(scale) at x.
double LaplacePdf(double x, double scale);

/// CDF of Lap(scale): Pr[Lap(scale) <= x].
double LaplaceCdf(double x, double scale);

/// Tail probability Pr[Lap(scale) > x]; computed directly for numerical
/// stability in the far tail (avoids 1 - CDF cancellation).
double LaplaceSf(double x, double scale);

/// Draws from the exponential distribution with the given rate (mean 1/rate).
double SampleExponential(Rng& rng, double rate);

/// Draws from the geometric distribution on {0, 1, 2, ...} with success
/// probability p in (0, 1].
std::uint64_t SampleGeometric(Rng& rng, double p);

/// Draws a standard normal via the Box–Muller transform.
double SampleNormal(Rng& rng, double mean = 0.0, double stddev = 1.0);

/// Draws an index in [0, weights.size()) with probability proportional to
/// weights[i].  Weights must be non-negative with a positive sum.
std::size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights);

/// Draws an index in [0, log_weights.size()) with probability proportional to
/// exp(log_weights[i]).  Stable for large-magnitude log weights; this is the
/// workhorse of the exponential mechanism.
std::size_t SampleDiscreteLog(Rng& rng, const std::vector<double>& log_weights);

}  // namespace privtree

#endif  // PRIVTREE_DP_DISTRIBUTIONS_H_
