// Differentially private quantile estimation via the exponential mechanism
// (Smith, STOC 2011; used in the paper's footnote 2 to pick the sequence
// length cap l⊤ as a private ~95% quantile).
#ifndef PRIVTREE_DP_QUANTILE_H_
#define PRIVTREE_DP_QUANTILE_H_

#include <vector>

#include "dp/rng.h"

namespace privtree {

/// Returns an ε-differentially private estimate of the q-quantile
/// (q in (0, 1)) of `values`, which must lie within [lo, hi].
///
/// The mechanism scores each inter-order-statistic interval by
/// −|rank − q·n| and samples an interval with probability proportional to
/// exp(ε·score/2)·length, then returns a uniform point inside it.  The score
/// has sensitivity 1, so the release is ε-DP.
double PrivateQuantile(const std::vector<double>& values, double q, double lo,
                       double hi, double epsilon, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_DP_QUANTILE_H_
