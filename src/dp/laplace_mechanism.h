// The Laplace mechanism (Dwork et al., TCC 2006): releasing f(D) + Lap(λ)
// with λ >= S(f)/ε satisfies ε-differential privacy, where S(f) is the L1
// sensitivity of f (Definition 2.3 in the paper).
#ifndef PRIVTREE_DP_LAPLACE_MECHANISM_H_
#define PRIVTREE_DP_LAPLACE_MECHANISM_H_

#include <vector>

#include "dp/rng.h"

namespace privtree {

/// Adds Laplace noise calibrated to `sensitivity / epsilon` to a scalar.
class LaplaceMechanism {
 public:
  /// `epsilon` and `sensitivity` must be positive.
  LaplaceMechanism(double epsilon, double sensitivity = 1.0);

  /// Releases value + Lap(sensitivity/epsilon).
  double AddNoise(double value, Rng& rng) const;

  /// Releases a noisy copy of `values` with i.i.d. noise per entry.
  std::vector<double> AddNoise(const std::vector<double>& values,
                               Rng& rng) const;

  /// The Laplace scale λ = sensitivity / epsilon in use.
  double scale() const { return scale_; }
  double epsilon() const { return epsilon_; }
  double sensitivity() const { return sensitivity_; }

 private:
  double epsilon_;
  double sensitivity_;
  double scale_;
};

}  // namespace privtree

#endif  // PRIVTREE_DP_LAPLACE_MECHANISM_H_
