#include "dp/distributions.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"

namespace privtree {

double SampleLaplace(Rng& rng, double scale) {
  PRIVTREE_CHECK_GT(scale, 0.0);
  // Inverse-CDF: u uniform on (-1/2, 1/2), x = -λ·sgn(u)·ln(1 - 2|u|).
  const double u = rng.NextOpenDouble() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double LaplacePdf(double x, double scale) {
  PRIVTREE_CHECK_GT(scale, 0.0);
  return std::exp(-std::abs(x) / scale) / (2.0 * scale);
}

double LaplaceCdf(double x, double scale) {
  PRIVTREE_CHECK_GT(scale, 0.0);
  if (x < 0.0) {
    return 0.5 * std::exp(x / scale);
  }
  return 1.0 - 0.5 * std::exp(-x / scale);
}

double LaplaceSf(double x, double scale) {
  PRIVTREE_CHECK_GT(scale, 0.0);
  if (x >= 0.0) {
    return 0.5 * std::exp(-x / scale);
  }
  return 1.0 - 0.5 * std::exp(x / scale);
}

double SampleExponential(Rng& rng, double rate) {
  PRIVTREE_CHECK_GT(rate, 0.0);
  return -std::log(rng.NextOpenDouble()) / rate;
}

std::uint64_t SampleGeometric(Rng& rng, double p) {
  PRIVTREE_CHECK_GT(p, 0.0);
  PRIVTREE_CHECK_LE(p, 1.0);
  if (p == 1.0) return 0;
  const double u = rng.NextOpenDouble();
  return static_cast<std::uint64_t>(std::floor(std::log(u) /
                                               std::log1p(-p)));
}

double SampleNormal(Rng& rng, double mean, double stddev) {
  PRIVTREE_CHECK_GE(stddev, 0.0);
  const double u1 = rng.NextOpenDouble();
  const double u2 = rng.NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  return mean + stddev * radius * std::cos(angle);
}

std::size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights) {
  PRIVTREE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PRIVTREE_CHECK_GE(w, 0.0);
    total += w;
  }
  PRIVTREE_CHECK_GT(total, 0.0);
  double target = rng.NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slop: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::size_t SampleDiscreteLog(Rng& rng,
                              const std::vector<double>& log_weights) {
  PRIVTREE_CHECK(!log_weights.empty());
  const double max_log =
      *std::max_element(log_weights.begin(), log_weights.end());
  std::vector<double> weights(log_weights.size());
  for (std::size_t i = 0; i < log_weights.size(); ++i) {
    weights[i] = std::exp(log_weights[i] - max_log);
  }
  return SampleDiscrete(rng, weights);
}

}  // namespace privtree
