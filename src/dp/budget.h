// Privacy-budget accounting under sequential composition (Lemma 2.1): the
// composition of k algorithms satisfying ε_i-DP satisfies (Σ ε_i)-DP.
//
// A PrivacyBudget starts with a total ε and hands out slices; over-spending
// is a programming error and aborts (spending more budget than exists would
// silently void the privacy guarantee).
#ifndef PRIVTREE_DP_BUDGET_H_
#define PRIVTREE_DP_BUDGET_H_

namespace privtree {

/// Tracks the remaining ε of a sequential-composition budget.
class PrivacyBudget {
 public:
  /// Creates a budget with the given total ε > 0.
  explicit PrivacyBudget(double total_epsilon);

  /// Consumes `epsilon` from the budget.  Aborts if the remaining budget is
  /// insufficient (up to a small relative tolerance for floating-point
  /// round-off when splitting a budget into fractions).
  void Spend(double epsilon);

  /// Consumes `fraction` (in (0, 1]) of the *total* budget and returns the
  /// ε amount spent.
  double SpendFraction(double fraction);

  /// Consumes everything that is left and returns that amount.
  double SpendRemaining();

  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }

 private:
  double total_;
  double spent_ = 0.0;
};

}  // namespace privtree

#endif  // PRIVTREE_DP_BUDGET_H_
