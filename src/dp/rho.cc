#include "dp/rho.h"

#include <cmath>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

double Rho(double x, double lambda, double theta) {
  PRIVTREE_CHECK_GT(lambda, 0.0);
  const double p_x = LaplaceSf(theta - x, lambda);
  const double p_xm1 = LaplaceSf(theta - (x - 1.0), lambda);
  return std::log(p_x) - std::log(p_xm1);
}

double RhoUpperBound(double x, double lambda, double theta) {
  PRIVTREE_CHECK_GT(lambda, 0.0);
  if (x < theta + 1.0) {
    return 1.0 / lambda;
  }
  return std::exp((theta + 1.0 - x) / lambda) / lambda;
}

double PrivTreeCostBound(double lambda, double delta) {
  PRIVTREE_CHECK_GT(lambda, 0.0);
  PRIVTREE_CHECK_GT(delta, 0.0);
  const double gamma = delta / lambda;
  return (2.0 * std::exp(gamma) - 1.0) / (std::exp(gamma) - 1.0) / lambda;
}

}  // namespace privtree
