// The exponential mechanism (McSherry & Talwar, FOCS 2007): selects a
// candidate r with probability proportional to exp(ε·u(r, D) / (2·S(u))),
// which satisfies ε-differential privacy for any quality function u with
// sensitivity S(u).
#ifndef PRIVTREE_DP_EXPONENTIAL_MECHANISM_H_
#define PRIVTREE_DP_EXPONENTIAL_MECHANISM_H_

#include <cstddef>
#include <vector>

#include "dp/check.h"
#include "dp/distributions.h"
#include "dp/rng.h"

namespace privtree {

/// Selects an index into `qualities` via the exponential mechanism.
///
/// `qualities[i]` is the (data-dependent) quality score u(r_i, D) of the i-th
/// candidate; `sensitivity` is S(u).  Returns an index in
/// [0, qualities.size()).
inline std::size_t ExponentialMechanismSelect(
    const std::vector<double>& qualities, double epsilon, double sensitivity,
    Rng& rng) {
  PRIVTREE_CHECK(!qualities.empty());
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GT(sensitivity, 0.0);
  std::vector<double> log_weights(qualities.size());
  const double factor = epsilon / (2.0 * sensitivity);
  for (std::size_t i = 0; i < qualities.size(); ++i) {
    log_weights[i] = factor * qualities[i];
  }
  return SampleDiscreteLog(rng, log_weights);
}

}  // namespace privtree

#endif  // PRIVTREE_DP_EXPONENTIAL_MECHANISM_H_
