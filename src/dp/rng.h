// Deterministic pseudo-random number generation.
//
// All randomized components in the library take an explicit Rng&, so that
// experiments are reproducible given a seed.  The generator is PCG64
// (O'Neill, 2014): a small, fast, statistically strong 128-bit-state
// generator, implemented here so the library has no external dependency.
#ifndef PRIVTREE_DP_RNG_H_
#define PRIVTREE_DP_RNG_H_

#include <cstdint>
#include <limits>

namespace privtree {

/// PCG64 (XSL-RR variant) pseudo-random generator.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can be used
/// with <random> distributions as well as the samplers in distributions.h.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator.  Two Rngs with the same (seed, stream) produce
  /// identical output.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    Seed(seed, stream);
  }

  /// Re-seeds in place.
  void Seed(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Returns the next 64 random bits.
  std::uint64_t operator()() { return Next(); }
  std::uint64_t Next();

  /// Returns a double uniform in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Returns a double uniform in (0, 1) (never exactly 0 or 1); suitable for
  /// inverse-CDF sampling where log(0) must be avoided.
  double NextOpenDouble();

  /// Returns an integer uniform in [0, bound) using Lemire's method.
  /// `bound` must be positive.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Spawns an independent child generator; successive calls yield distinct
  /// streams.  Useful for giving each repetition of an experiment its own
  /// deterministic randomness.
  Rng Fork();

  /// A 64-bit digest of the generator's current (state, stream) pair,
  /// without advancing it.  Two Rngs with equal fingerprints produce the
  /// same output sequence, so the fingerprint can stand in for "the
  /// randomness of this fit" in cache keys (see serve/synopsis_cache.h).
  std::uint64_t Fingerprint() const;

 private:
  unsigned __int128 state_ = 0;
  unsigned __int128 inc_ = 0;  // Stream selector; always odd.
};

}  // namespace privtree

#endif  // PRIVTREE_DP_RNG_H_
