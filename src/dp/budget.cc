#include "dp/budget.h"

#include "dp/check.h"

namespace privtree {

namespace {
// Relative tolerance for floating-point round-off when a caller splits the
// budget into fractions that should sum to exactly 1.
constexpr double kSlack = 1e-9;
}  // namespace

PrivacyBudget::PrivacyBudget(double total_epsilon) : total_(total_epsilon) {
  PRIVTREE_CHECK_GT(total_epsilon, 0.0);
}

void PrivacyBudget::Spend(double epsilon) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_LE(epsilon, remaining() + kSlack * total_);
  spent_ += epsilon;
  if (spent_ > total_) spent_ = total_;
}

double PrivacyBudget::SpendFraction(double fraction) {
  PRIVTREE_CHECK_GT(fraction, 0.0);
  PRIVTREE_CHECK_LE(fraction, 1.0);
  const double amount = fraction * total_;
  Spend(amount);
  return amount;
}

double PrivacyBudget::SpendRemaining() {
  const double amount = remaining();
  PRIVTREE_CHECK_GT(amount, 0.0);
  Spend(amount);
  return amount;
}

}  // namespace privtree
