#include "dp/laplace_mechanism.h"

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

LaplaceMechanism::LaplaceMechanism(double epsilon, double sensitivity)
    : epsilon_(epsilon),
      sensitivity_(sensitivity),
      scale_(sensitivity / epsilon) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GT(sensitivity, 0.0);
}

double LaplaceMechanism::AddNoise(double value, Rng& rng) const {
  return value + SampleLaplace(rng, scale_);
}

std::vector<double> LaplaceMechanism::AddNoise(
    const std::vector<double>& values, Rng& rng) const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = values[i] + SampleLaplace(rng, scale_);
  }
  return out;
}

}  // namespace privtree
