// The privacy-cost function ρ(x) of Equation (5) and its closed-form upper
// bound ρ⊤(x) of Lemma 3.1.  These are the analytical heart of PrivTree:
// ρ(x) = ln( Pr[x + Lap(λ) > θ] / Pr[x − 1 + Lap(λ) > θ] ) decays
// exponentially once x ≥ θ + 1, which is what lets PrivTree release an
// unbounded sequence of split decisions with O(1) noise.
#ifndef PRIVTREE_DP_RHO_H_
#define PRIVTREE_DP_RHO_H_

namespace privtree {

/// ρ(x) of Equation (5): the log-ratio of split probabilities for a node
/// whose biased count decreases from x to x − 1 when a tuple is removed.
/// `lambda` is the Laplace scale and `theta` the split threshold.
double Rho(double x, double lambda, double theta);

/// ρ⊤(x) of Lemma 3.1 (Equation (7)):
///   ρ⊤(x) = 1/λ                         if x < θ + 1,
///   ρ⊤(x) = (1/λ)·exp((θ + 1 − x)/λ)    otherwise.
double RhoUpperBound(double x, double lambda, double theta);

/// Total privacy-cost bound of the telescoping sum in Section 3.3:
///   Σ ρ(b(v_i)) ≤ (1/λ)·(2e^γ − 1)/(e^γ − 1)   with γ = δ/λ.
/// Returns that bound for the given λ and δ.
double PrivTreeCostBound(double lambda, double delta);

}  // namespace privtree

#endif  // PRIVTREE_DP_RHO_H_
