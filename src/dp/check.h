// Lightweight invariant-checking macros.
//
// PRIVTREE_CHECK is used for programming errors (contract violations) that
// indicate a bug in the caller or in the library itself.  Recoverable errors
// (e.g. malformed input files) are reported through privtree::Status instead.
#ifndef PRIVTREE_DP_CHECK_H_
#define PRIVTREE_DP_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace privtree {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "PRIVTREE_CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace internal
}  // namespace privtree

/// Aborts with a diagnostic if `expr` is false.  Enabled in all build modes:
/// differential-privacy code must not silently continue past a broken
/// invariant, since that can translate into a privacy violation.
#define PRIVTREE_CHECK(expr)                                        \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::privtree::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                               \
  } while (0)

/// Convenience comparison forms.
#define PRIVTREE_CHECK_GT(a, b) PRIVTREE_CHECK((a) > (b))
#define PRIVTREE_CHECK_GE(a, b) PRIVTREE_CHECK((a) >= (b))
#define PRIVTREE_CHECK_LT(a, b) PRIVTREE_CHECK((a) < (b))
#define PRIVTREE_CHECK_LE(a, b) PRIVTREE_CHECK((a) <= (b))
#define PRIVTREE_CHECK_EQ(a, b) PRIVTREE_CHECK((a) == (b))
#define PRIVTREE_CHECK_NE(a, b) PRIVTREE_CHECK((a) != (b))

#endif  // PRIVTREE_DP_CHECK_H_
