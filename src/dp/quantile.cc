#include "dp/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

double PrivateQuantile(const std::vector<double>& values, double q, double lo,
                       double hi, double epsilon, Rng& rng) {
  PRIVTREE_CHECK_GT(q, 0.0);
  PRIVTREE_CHECK_LT(q, 1.0);
  PRIVTREE_CHECK_LT(lo, hi);
  PRIVTREE_CHECK_GT(epsilon, 0.0);

  std::vector<double> sorted(values);
  for (double& v : sorted) v = std::clamp(v, lo, hi);
  std::sort(sorted.begin(), sorted.end());

  const std::size_t n = sorted.size();
  // Interval i spans [z_i, z_{i+1}] with z_0 = lo, z_{n+1} = hi; a value in
  // interval i has rank i among the data.
  const double target_rank = q * static_cast<double>(n);
  std::vector<double> log_weights(n + 1);
  std::vector<double> left(n + 1), right(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    left[i] = (i == 0) ? lo : sorted[i - 1];
    right[i] = (i == n) ? hi : sorted[i];
    const double len = std::max(right[i] - left[i], 0.0);
    const double utility = -std::abs(static_cast<double>(i) - target_rank);
    log_weights[i] = (len > 0.0)
                         ? std::log(len) + 0.5 * epsilon * utility
                         : -std::numeric_limits<double>::infinity();
  }
  // Guard against the degenerate all-empty-intervals case (all data equal to
  // both bounds simultaneously is impossible since lo < hi, so at least one
  // interval has positive length).
  const std::size_t idx = SampleDiscreteLog(rng, log_weights);
  return left[idx] + rng.NextDouble() * (right[idx] - left[idx]);
}

}  // namespace privtree
