#include "dp/rng.h"

#include <initializer_list>

#include "dp/check.h"

namespace privtree {

namespace {

constexpr unsigned __int128 kMultiplier =
    (static_cast<unsigned __int128>(2549297995355413924ULL) << 64) |
    4865540595714422341ULL;

inline std::uint64_t RotR64(std::uint64_t value, unsigned rot) {
  return (value >> rot) | (value << ((64 - rot) & 63));
}

}  // namespace

void Rng::Seed(std::uint64_t seed, std::uint64_t stream) {
  inc_ = (static_cast<unsigned __int128>(stream) << 1) | 1;
  state_ = 0;
  Next();
  state_ += static_cast<unsigned __int128>(seed) ^
            (static_cast<unsigned __int128>(seed) << 64);
  Next();
}

std::uint64_t Rng::Next() {
  state_ = state_ * kMultiplier + inc_;
  // XSL-RR output function: xor-fold the 128-bit state, rotate by the top
  // bits.
  const std::uint64_t xored =
      static_cast<std::uint64_t>(state_ >> 64) ^
      static_cast<std::uint64_t>(state_);
  const unsigned rot = static_cast<unsigned>(state_ >> 122);
  return RotR64(xored, rot);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextOpenDouble() {
  // (x + 0.5) / 2^53 lies strictly inside (0, 1).
  return (static_cast<double>(Next() >> 11) + 0.5) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  PRIVTREE_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless bounded sampling.
  unsigned __int128 product =
      static_cast<unsigned __int128>(Next()) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(product);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      product = static_cast<unsigned __int128>(Next()) * bound;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<std::uint64_t>(product >> 64);
}

Rng Rng::Fork() {
  const std::uint64_t seed = Next();
  const std::uint64_t stream = Next();
  return Rng(seed, stream);
}

std::uint64_t Rng::Fingerprint() const {
  // SplitMix64 finalizer over the four 64-bit words of (state_, inc_).
  auto mix = [](std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  };
  std::uint64_t digest = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t word :
       {static_cast<std::uint64_t>(state_),
        static_cast<std::uint64_t>(state_ >> 64),
        static_cast<std::uint64_t>(inc_),
        static_cast<std::uint64_t>(inc_ >> 64)}) {
    digest = mix(digest ^ word) + 0x9e3779b97f4a7c15ULL;
  }
  return digest;
}

}  // namespace privtree
