// Status / Result error plumbing, in the spirit of RocksDB's rocksdb::Status.
//
// The library does not throw exceptions across its public boundary; fallible
// operations (I/O, parameter validation on user-supplied values) return a
// Status or a Result<T>.
#ifndef PRIVTREE_DP_STATUS_H_
#define PRIVTREE_DP_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "dp/check.h"

namespace privtree {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kInternal,
  kUnavailable,        ///< Transient overload; retrying later may succeed.
  kDeadlineExceeded,   ///< The request's deadline passed before execution.
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.  Class-level [[nodiscard]]:
/// every function returning a Status by value must have its result checked
/// (or explicitly discarded with a justified cast — see tools/privtree_lint).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Transient-error hint: how long the issuer suggests waiting before a
  /// retry, in milliseconds (0 = no hint).  Carried across the wire on
  /// ErrorReply frames; resilient clients pace their backoff with it.
  std::uint64_t retry_after_millis() const { return retry_after_millis_; }

  /// Attaches a retry-after hint (chainable on the factory results, e.g.
  /// `Status::Unavailable("shed").WithRetryAfter(50)`).
  Status&& WithRetryAfter(std::uint64_t millis) && {
    retry_after_millis_ = millis;
    return std::move(*this);
  }
  Status& WithRetryAfter(std::uint64_t millis) & {
    retry_after_millis_ = millis;
    return *this;
  }

  /// Renders as e.g. "IOError: cannot open foo.csv"; "OK" when ok().
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
  std::uint64_t retry_after_millis_ = 0;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PRIVTREE_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; the result must be ok().
  const T& value() const& {
    PRIVTREE_CHECK(ok());
    return *value_;
  }
  T& value() & {
    PRIVTREE_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    PRIVTREE_CHECK(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ holds a value.
};

}  // namespace privtree

#endif  // PRIVTREE_DP_STATUS_H_
