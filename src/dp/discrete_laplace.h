// The discrete Laplace (two-sided geometric) distribution and the
// geometric mechanism (Ghosh, Roughgarden, Sundararajan, STOC 2009).
//
// Releasing f(D) + Z with Z ~ DLap(exp(-ε/Δ)) is ε-DP for integer-valued f
// of sensitivity Δ, and — unlike continuous Laplace samples — is immune to
// the floating-point-representation attacks of Mironov (CCS 2012).  The
// library's algorithms default to continuous noise for fidelity to the
// paper; this mechanism is the recommended production substitute.
#ifndef PRIVTREE_DP_DISCRETE_LAPLACE_H_
#define PRIVTREE_DP_DISCRETE_LAPLACE_H_

#include <cstdint>

#include "dp/rng.h"

namespace privtree {

/// Draws from the discrete Laplace distribution on the integers:
/// Pr[Z = z] ∝ alpha^|z| for alpha in (0, 1).
std::int64_t SampleDiscreteLaplace(Rng& rng, double alpha);

/// Probability mass Pr[Z = z] of DLap(alpha).
double DiscreteLaplacePmf(std::int64_t z, double alpha);

/// The geometric mechanism: value + DLap(exp(-epsilon/sensitivity)).
/// `value` should be an integer-valued statistic (e.g. a count).
std::int64_t GeometricMechanism(std::int64_t value, double epsilon,
                                double sensitivity, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_DP_DISCRETE_LAPLACE_H_
