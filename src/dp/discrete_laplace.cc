#include "dp/discrete_laplace.h"

#include <cmath>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

std::int64_t SampleDiscreteLaplace(Rng& rng, double alpha) {
  PRIVTREE_CHECK_GT(alpha, 0.0);
  PRIVTREE_CHECK_LT(alpha, 1.0);
  // Difference of two i.i.d. geometric(1-alpha) variables on {0,1,...} is
  // DLap(alpha).
  const auto g1 =
      static_cast<std::int64_t>(SampleGeometric(rng, 1.0 - alpha));
  const auto g2 =
      static_cast<std::int64_t>(SampleGeometric(rng, 1.0 - alpha));
  return g1 - g2;
}

double DiscreteLaplacePmf(std::int64_t z, double alpha) {
  PRIVTREE_CHECK_GT(alpha, 0.0);
  PRIVTREE_CHECK_LT(alpha, 1.0);
  const double normalizer = (1.0 - alpha) / (1.0 + alpha);
  return normalizer * std::pow(alpha, std::abs(static_cast<double>(z)));
}

std::int64_t GeometricMechanism(std::int64_t value, double epsilon,
                                double sensitivity, Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GT(sensitivity, 0.0);
  return value + SampleDiscreteLaplace(rng, std::exp(-epsilon / sensitivity));
}

}  // namespace privtree
