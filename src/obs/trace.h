// Per-request tracing: a TraceContext follows one frame from socket read
// to socket write and records how long each pipeline stage took.
//
// The trace id is a u64 carried in the optional protocol-v5 kTraced frame
// header; when a client does not send one (all v4 traffic), the server
// generates a process-unique id so every request is still traceable in
// logs.  Spans are recorded as microsecond durations; a span the request
// never reached stays -1 (e.g. kKernel for a Fit, or everything past
// kAdmission for a shed request).
//
// Finished traces land in a fixed-capacity ring (TraceRing::Global()) for
// post-hoc inspection from tests and the slow-request log: when a
// request's total time crosses the --trace-slow-ms threshold, the full
// span breakdown is printed to stderr.  Finishing also feeds the
// "server.request_us" registry histogram, so GetStats snapshots carry the
// end-to-end latency distribution with zero extra bookkeeping.
#ifndef PRIVTREE_OBS_TRACE_H_
#define PRIVTREE_OBS_TRACE_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sync.h"

namespace privtree::obs {

enum class Span : unsigned {
  kSocketRead = 0,  // recv() until the frame was fully buffered
  kDispatch,        // frame decode + handler dispatch
  kAdmission,       // admission control decision (shed/coalesce/admit)
  kQueueWait,       // sitting in the engine queue before a worker ran it
  kFit,             // synopsis fit or cache lookup (see cache_hit)
  kKernel,          // batch-query kernel execution
  kSerialize,       // reply encoding
  kSocketWrite,     // reply framed until the last byte hit the socket
  kCount,
};

inline constexpr std::size_t kSpanCount =
    static_cast<std::size_t>(Span::kCount);

const char* SpanName(Span span);

struct TraceContext {
  TraceContext() { span_us.fill(-1); }

  void Record(Span span, std::int64_t us) {
    span_us[static_cast<std::size_t>(span)] = us;
  }

  std::int64_t span(Span s) const {
    return span_us[static_cast<std::size_t>(s)];
  }

  std::uint64_t trace_id = 0;
  /// True when the id arrived in a kTraced header rather than being
  /// generated server-side.
  bool client_supplied_id = false;
  /// True when the fit stage was answered from the synopsis cache.
  bool cache_hit = false;
  std::array<std::int64_t, kSpanCount> span_us;
  std::int64_t total_us = -1;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};

using TracePtr = std::shared_ptr<TraceContext>;

/// A process-unique, never-zero trace id (SplitMix64-whitened sequence).
std::uint64_t NextTraceId();

/// New heap trace; id 0 means "generate one".
TracePtr StartTrace(std::uint64_t id = 0);

/// One line per span, e.g. for the slow-request log:
///   trace=0x1234 total=132.4ms cache_miss socket_read=0.1ms ...
std::string FormatTrace(const TraceContext& trace);

/// Fixed-capacity ring of recently finished traces plus the slow-request
/// threshold.  All methods are thread-safe.
class TraceRing {
 public:
  static TraceRing& Global();

  void SetCapacity(std::size_t n);
  /// Requests slower than this print FormatTrace to stderr; 0 disables.
  void SetSlowThresholdMillis(std::int64_t ms);
  std::int64_t slow_threshold_millis() const;

  void Push(const TraceContext& trace);
  std::vector<TraceContext> Recent() const;
  /// Total traces finished since start (or Reset), beyond ring capacity.
  std::uint64_t finished() const;
  void Reset();

 private:
  TraceRing();

  mutable Mutex mu_;
  std::vector<TraceContext> ring_ GUARDED_BY(mu_);
  std::size_t capacity_ GUARDED_BY(mu_);
  std::size_t next_ GUARDED_BY(mu_) = 0;
  std::uint64_t finished_ GUARDED_BY(mu_) = 0;
  std::int64_t slow_threshold_ms_ GUARDED_BY(mu_) = 0;
};

/// Stamps total_us from trace.start, records "server.request_us", pushes
/// onto the global ring, and emits the slow-request log line if due.
void FinishTrace(TraceContext& trace);

}  // namespace privtree::obs

#endif  // PRIVTREE_OBS_TRACE_H_
