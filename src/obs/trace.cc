#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace privtree::obs {

const char* SpanName(Span span) {
  switch (span) {
    case Span::kSocketRead:
      return "socket_read";
    case Span::kDispatch:
      return "dispatch";
    case Span::kAdmission:
      return "admission";
    case Span::kQueueWait:
      return "queue_wait";
    case Span::kFit:
      return "fit";
    case Span::kKernel:
      return "kernel";
    case Span::kSerialize:
      return "serialize";
    case Span::kSocketWrite:
      return "socket_write";
    case Span::kCount:
      break;
  }
  return "unknown";
}

std::uint64_t NextTraceId() {
  // SplitMix64 finalizer over a process-wide sequence: unique, non-zero,
  // and well-mixed so ids from concurrent servers rarely collide.
  static std::atomic<std::uint64_t> sequence{0x9e3779b97f4a7c15ull};
  std::uint64_t x =
      sequence.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

TracePtr StartTrace(std::uint64_t id) {
  auto trace = std::make_shared<TraceContext>();
  if (id == 0) {
    trace->trace_id = NextTraceId();
  } else {
    trace->trace_id = id;
    trace->client_supplied_id = true;
  }
  return trace;
}

std::string FormatTrace(const TraceContext& trace) {
  std::ostringstream out;
  char id_hex[32];
  std::snprintf(id_hex, sizeof id_hex, "0x%016llx",
                static_cast<unsigned long long>(trace.trace_id));
  out << "trace=" << id_hex;
  if (trace.total_us >= 0) {
    out << " total=" << static_cast<double>(trace.total_us) / 1000.0 << "ms";
  }
  out << (trace.cache_hit ? " cache_hit" : " cache_miss");
  for (std::size_t i = 0; i < kSpanCount; ++i) {
    const std::int64_t us = trace.span_us[i];
    if (us < 0) continue;
    out << ' ' << SpanName(static_cast<Span>(i)) << '='
        << static_cast<double>(us) / 1000.0 << "ms";
  }
  return out.str();
}

TraceRing::TraceRing() : capacity_(256) { ring_.reserve(capacity_); }

TraceRing& TraceRing::Global() {
  static TraceRing* instance = new TraceRing();
  return *instance;
}

void TraceRing::SetCapacity(std::size_t n) {
  MutexLock lock(mu_);
  capacity_ = n == 0 ? 1 : n;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
}

void TraceRing::SetSlowThresholdMillis(std::int64_t ms) {
  MutexLock lock(mu_);
  slow_threshold_ms_ = ms;
}

std::int64_t TraceRing::slow_threshold_millis() const {
  MutexLock lock(mu_);
  return slow_threshold_ms_;
}

void TraceRing::Push(const TraceContext& trace) {
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_ % capacity_] = trace;
  }
  ++next_;
  ++finished_;
}

std::vector<TraceContext> TraceRing::Recent() const {
  MutexLock lock(mu_);
  return ring_;
}

std::uint64_t TraceRing::finished() const {
  MutexLock lock(mu_);
  return finished_;
}

void TraceRing::Reset() {
  MutexLock lock(mu_);
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  finished_ = 0;
}

void FinishTrace(TraceContext& trace) {
  const auto now = std::chrono::steady_clock::now();
  trace.total_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       now - trace.start)
                       .count();
  static Histogram& request_us =
      Registry::Global().GetHistogram("server.request_us");
  request_us.Observe(
      trace.total_us < 0 ? 0 : static_cast<std::uint64_t>(trace.total_us));
  TraceRing& ring = TraceRing::Global();
  ring.Push(trace);
  const std::int64_t slow_ms = ring.slow_threshold_millis();
  if (slow_ms > 0 && trace.total_us >= slow_ms * 1000) {
    std::fprintf(stderr, "[privtree_server] slow request: %s\n",
                 FormatTrace(trace).c_str());
  }
}

}  // namespace privtree::obs
