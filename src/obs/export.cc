#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privtree::obs {

std::string ProcessStatsJson() {
  std::string registry_json = Registry::Global().ToJson();
  // Registry::ToJson returns "{...}"; splice the trace and fault sections
  // into the same top-level object.
  std::ostringstream out;
  out << registry_json.substr(0, registry_json.size() - 1);
  const TraceRing& ring = TraceRing::Global();
  out << ",\"traces\":{\"finished\":" << ring.finished()
      << ",\"slow_threshold_ms\":" << ring.slow_threshold_millis() << '}';
  out << ",\"faults\":{";
  auto fault_stats = fault::Injector::Global().AllStats();
  std::sort(fault_stats.begin(), fault_stats.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  bool first = true;
  for (const auto& [point, stats] : fault_stats) {
    if (!first) out << ',';
    first = false;
    out << '"';
    for (char c : point) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\":{\"hits\":" << stats.hits << ",\"fired\":" << stats.fired
        << '}';
  }
  out << "}}";
  return out.str();
}

bool WriteStatsFile(const std::string& path) {
  const std::string json = ProcessStatsJson();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
      std::fputc('\n', f) != EOF;
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace privtree::obs
