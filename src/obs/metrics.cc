#include "obs/metrics.h"

#include <cmath>
#include <sstream>

namespace privtree::obs {

#ifndef PRIVTREE_NO_METRICS

std::size_t Counter::ShardIndex() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::Quantile(double q) const {
  const auto counts = Buckets();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0;
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) return HistogramBucketLowerBound(i);
  }
  return HistogramBucketLowerBound(kHistogramBuckets - 1);
}

std::array<std::uint64_t, kHistogramBuckets> Histogram::Buckets() const {
  std::array<std::uint64_t, kHistogramBuckets> out{};
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<std::string> Registry::CounterNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, unused] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::GaugeNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, unused] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::HistogramNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, unused] : histograms_) names.push_back(name);
  return names;
}

void Registry::Reset() {
  MutexLock lock(mu_);
  for (auto& [unused, counter] : counters_) counter->Reset();
  for (auto& [unused, gauge] : gauges_) gauge->Reset();
  for (auto& [unused, histogram] : histograms_) histogram->Reset();
}

namespace {

// Metric names are dotted identifiers under our control, but escape the
// JSON-significant bytes anyway so a hostile name cannot corrupt a snapshot.
void AppendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
              << "0123456789abcdef"[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string Registry::ToJson() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(out, name);
    out << ':' << counter->Value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(out, name);
    out << ':' << gauge->Value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(out, name);
    out << ":{\"count\":" << histogram->Count()
        << ",\"sum_us\":" << histogram->SumMicros()
        << ",\"p50_us\":" << histogram->Quantile(0.50)
        << ",\"p99_us\":" << histogram->Quantile(0.99)
        << ",\"p999_us\":" << histogram->Quantile(0.999) << '}';
  }
  out << "}}";
  return out.str();
}

#else  // PRIVTREE_NO_METRICS

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

#endif  // PRIVTREE_NO_METRICS

}  // namespace privtree::obs
