// Process-wide metrics registry: named counters, gauges, and log-bucket
// latency histograms for the serving stack.
//
// Design goals, in order: (1) a hot path cheap enough to leave in every
// increment site — Counter::Inc is one relaxed fetch_add on a cache-line
// private shard (single-digit nanoseconds, see bench_obs_metrics); (2) one
// process snapshot that captures every subsystem — the event loop, the
// admission controller, the synopsis cache, the engines, and client
// telemetry all register here by dotted name ("event.accepted",
// "cache.hits", "engine.queue_wait_us"); (3) a compile-out mirroring the
// fault-injection pattern (core/fault.h): -DPRIVTREE_NO_METRICS turns
// every recording call into an inline no-op constant while keeping the
// types and call sites intact.
//
// Registration (Registry::GetCounter and friends) takes a lock and is the
// slow path: components resolve their handles once (constructor or a
// function-local static) and hold references.  Handles stay valid for the
// process lifetime — Reset() zeroes values but never invalidates them.
//
// Histograms record unsigned microsecond latencies into fixed log-spaced
// buckets: 16 exact buckets for 0..15us, then four sub-buckets per
// power-of-two octave up to 2^63 (256 buckets total, ≤25% relative error).
// Quantile(q) is the nearest-rank estimator over the buckets: it returns
// the *lower bound* of the bucket containing the rank-⌈q·n⌉ sample, so a
// sample set drawn exactly on bucket boundaries reproduces the
// sorted-vector nearest-rank oracle bit for bit (tests/obs rely on this).
#ifndef PRIVTREE_OBS_METRICS_H_
#define PRIVTREE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.h"

namespace privtree::obs {

/// Number of cache-line-private shards one counter spreads its increments
/// over; threads pick a shard round-robin at first use.
inline constexpr std::size_t kCounterShards = 16;

/// Total histogram buckets: 16 exact + 4 sub-buckets × 60 octaves.
inline constexpr std::size_t kHistogramBuckets = 256;

/// Index of the bucket holding a microsecond value (see the header comment
/// for the layout).  Exposed so tests can construct boundary-exact samples.
constexpr std::size_t HistogramBucketIndex(std::uint64_t us) {
  if (us < 16) return static_cast<std::size_t>(us);
  const int exponent = 63 - std::countl_zero(us);  // >= 4
  const std::uint64_t sub = (us >> (exponent - 2)) & 3;
  return 16 + static_cast<std::size_t>(exponent - 4) * 4 +
         static_cast<std::size_t>(sub);
}

/// Lower bound (inclusive) of bucket `index`; the value Quantile reports
/// for samples landing in it.
constexpr std::uint64_t HistogramBucketLowerBound(std::size_t index) {
  if (index < 16) return index;
  const std::size_t octave = (index - 16) / 4 + 4;
  const std::uint64_t sub = (index - 16) % 4;
  return (std::uint64_t{1} << octave) + (sub << (octave - 2));
}

#ifndef PRIVTREE_NO_METRICS

/// A named monotone counter.  Inc is wait-free: one relaxed fetch_add on
/// this thread's shard; Value sums the shards (monotone but not a
/// linearizable snapshot — exact once writers quiesce).
class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  static std::size_t ShardIndex();

  std::array<Shard, kCounterShards> shards_{};
};

/// A named level value (queue backlogs, resident bytes, peaks).
class Gauge {
 public:
  void Set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }

  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }

  void Sub(std::uint64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if larger (peak tracking).
  void SetMax(std::uint64_t v) {
    std::uint64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < v && !value_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A fixed-bucket log-spaced latency histogram over microseconds.
class Histogram {
 public:
  /// One relaxed increment on the value's bucket plus one on the sum.
  void Observe(std::uint64_t us) {
    buckets_[HistogramBucketIndex(us)].fetch_add(1,
                                                 std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
  }

  std::uint64_t Count() const;
  std::uint64_t SumMicros() const {
    return sum_us_.load(std::memory_order_relaxed);
  }

  /// Nearest-rank quantile: the lower bound of the bucket holding the
  /// rank-⌈q·n⌉ sample (q clamped to (0, 1]); 0 when empty.
  std::uint64_t Quantile(double q) const;

  /// Bucket counts, index-aligned with HistogramBucketLowerBound.
  std::array<std::uint64_t, kHistogramBuckets> Buckets() const;

  void Reset();

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// The process-wide metric registry.  Lookup is locked (resolve handles
/// once); recording through handles never locks.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Sorted metric names currently registered, for export.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

  /// Zeroes every metric value.  Handles stay valid (benches reset between
  /// phases; tests reset between cases).
  void Reset();

  /// The whole registry as one JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum_us":..,
  ///                          "p50_us":..,"p99_us":..,"p999_us":..}}}
  /// Every value is an unsigned integer, so snapshots diff bit for bit.
  std::string ToJson() const;

 private:
  Registry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

#else  // PRIVTREE_NO_METRICS

// The compiled-out registry: identical API, every recording call an inline
// no-op, every read zero.  Call sites stay unconditional, exactly like the
// PRIVTREE_FAULT points under PRIVTREE_NO_FAULT_INJECTION.

class Counter {
 public:
  void Inc(std::uint64_t = 1) {}
  std::uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(std::uint64_t) {}
  void Add(std::uint64_t) {}
  void Sub(std::uint64_t) {}
  void SetMax(std::uint64_t) {}
  std::uint64_t Value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  void Observe(std::uint64_t) {}
  std::uint64_t Count() const { return 0; }
  std::uint64_t SumMicros() const { return 0; }
  std::uint64_t Quantile(double) const { return 0; }
  std::array<std::uint64_t, kHistogramBuckets> Buckets() const { return {}; }
  void Reset() {}
};

class Registry {
 public:
  static Registry& Global();
  Counter& GetCounter(std::string_view) { return counter_; }
  Gauge& GetGauge(std::string_view) { return gauge_; }
  Histogram& GetHistogram(std::string_view) { return histogram_; }
  std::vector<std::string> CounterNames() const { return {}; }
  std::vector<std::string> GaugeNames() const { return {}; }
  std::vector<std::string> HistogramNames() const { return {}; }
  void Reset() {}
  std::string ToJson() const {
    return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
  }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // PRIVTREE_NO_METRICS

}  // namespace privtree::obs

#endif  // PRIVTREE_OBS_METRICS_H_
