// Snapshot export: the whole process's observable state as one JSON
// object — the metrics registry (counters/gauges/histograms), trace-ring
// totals, and fault-injection point hit counts.  This is the payload of
// the GetStats protocol frame, the `privtree_cli stats` verb, and the
// --stats-file periodic snapshot.
#ifndef PRIVTREE_OBS_EXPORT_H_
#define PRIVTREE_OBS_EXPORT_H_

#include <string>

namespace privtree::obs {

/// {"counters":{...},"gauges":{...},"histograms":{...},
///  "traces":{"finished":N,"slow_threshold_ms":M},
///  "faults":{"point":{"hits":H,"fired":F},...}}
std::string ProcessStatsJson();

/// Atomically replaces `path` with the current ProcessStatsJson (write to
/// `path`.tmp then rename, so readers never see a torn snapshot).
/// Returns false on I/O failure.
bool WriteStatsFile(const std::string& path);

}  // namespace privtree::obs

#endif  // PRIVTREE_OBS_EXPORT_H_
