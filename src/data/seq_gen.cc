#include "data/seq_gen.h"

#include <cmath>
#include <vector>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

SequenceDataset GenerateMoocLike(std::size_t n, Rng& rng) {
  PRIVTREE_CHECK_GT(n, 0u);
  constexpr std::size_t kA = kMoocAlphabet;
  // Second-order transition tensor T[prev2][prev1][next], built from a
  // deterministic structural rule so the data has the variable-order
  // structure a PST exploits: most contexts have one dominant continuation
  // plus background diversity.
  static_assert(kA == 7);
  std::vector<double> transitions(kA * kA * kA);
  Rng structure_rng(0x6d6f6f63ULL);  // Fixed structure, independent of data.
  for (std::size_t a = 0; a < kA; ++a) {
    for (std::size_t b = 0; b < kA; ++b) {
      const std::size_t dominant = (2 * a + 3 * b + 1) % kA;
      double total = 0.0;
      for (std::size_t c = 0; c < kA; ++c) {
        double w = 0.05 + 0.25 * structure_rng.NextDouble();
        if (c == dominant) w += 2.0;
        if (c == b) w += 0.6;  // Behaviour repetition (e.g. video binges).
        transitions[(a * kA + b) * kA + c] = w;
        total += w;
      }
      for (std::size_t c = 0; c < kA; ++c) {
        transitions[(a * kA + b) * kA + c] /= total;
      }
    }
  }
  // Per-step termination probability tuned for mean length ≈ 13.5, with a
  // minimum session length of 2.
  const double end_prob = 1.0 / 12.0;

  SequenceDataset data(kA);
  std::vector<Symbol> sequence;
  std::vector<double> row(kA);
  for (std::size_t i = 0; i < n; ++i) {
    sequence.clear();
    // Sessions start with "navigate" (5) or a popular action.
    sequence.push_back(static_cast<Symbol>(
        rng.NextDouble() < 0.5 ? 5 : rng.NextBounded(kA)));
    sequence.push_back(static_cast<Symbol>(rng.NextBounded(kA)));
    while (sequence.size() < 200) {
      if (rng.NextDouble() < end_prob) break;
      const std::size_t a = sequence[sequence.size() - 2];
      const std::size_t b = sequence[sequence.size() - 1];
      for (std::size_t c = 0; c < kA; ++c) {
        row[c] = transitions[(a * kA + b) * kA + c];
      }
      sequence.push_back(static_cast<Symbol>(SampleDiscrete(rng, row)));
    }
    data.Add(sequence);
  }
  return data;
}

SequenceDataset GenerateMsnbcLike(std::size_t n, Rng& rng) {
  PRIVTREE_CHECK_GT(n, 0u);
  constexpr std::size_t kA = kMsnbcAlphabet;
  // Zipfian category popularity.
  std::vector<double> popularity(kA);
  for (std::size_t c = 0; c < kA; ++c) {
    popularity[c] = 1.0 / std::pow(static_cast<double>(c + 1), 1.05);
  }
  const double end_prob = 1.0 / 4.75;

  SequenceDataset data(kA);
  std::vector<Symbol> sequence;
  std::vector<double> row(kA);
  for (std::size_t i = 0; i < n; ++i) {
    sequence.clear();
    sequence.push_back(static_cast<Symbol>(SampleDiscrete(rng, popularity)));
    while (sequence.size() < 200) {
      if (rng.NextDouble() < end_prob) break;
      const Symbol prev = sequence.back();
      // Strong self-transition (users stay in a section), otherwise jump
      // by popularity with a slight preference for adjacent categories.
      for (std::size_t c = 0; c < kA; ++c) {
        row[c] = popularity[c];
        if (c == prev) row[c] += 1.2;
        if (c + 1 == prev || c == prev + 1u) row[c] += 0.1;
      }
      sequence.push_back(static_cast<Symbol>(SampleDiscrete(rng, row)));
    }
    data.Add(sequence);
  }
  return data;
}

}  // namespace privtree
