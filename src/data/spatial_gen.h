// Synthetic spatial datasets emulating the paper's four evaluation datasets
// (Table 2).  The real data (road junctions, Gowalla check-ins, NYC/Beijing
// taxi records) is not redistributable; these generators match the
// published cardinality/dimensionality and, critically for the paper's
// claims, the *skewness ordering*: road ≫ Gowalla (2-d) and NYC ≫ Beijing
// (4-d).  See DESIGN.md §4 for the substitution rationale.
//
// All generators emit points in the unit cube [0,1)^d.
#ifndef PRIVTREE_DATA_SPATIAL_GEN_H_
#define PRIVTREE_DATA_SPATIAL_GEN_H_

#include <cstddef>

#include "dp/rng.h"
#include "spatial/point_set.h"

namespace privtree {

/// Paper cardinalities (Table 2), used at paper scale.
inline constexpr std::size_t kRoadCardinality = 1634165;
inline constexpr std::size_t kGowallaCardinality = 107091;
inline constexpr std::size_t kNycCardinality = 98013;
inline constexpr std::size_t kBeijingCardinality = 30000;

/// road-like: 2-d, extremely skewed.  Hierarchical city clusters connected
/// by noisy polyline corridors (road filaments) over a sparse background.
PointSet GenerateRoadLike(std::size_t n, Rng& rng);

/// Gowalla-like: 2-d, moderately skewed.  A heavy-tailed Gaussian mixture
/// of "cities" plus a uniform background.
PointSet GenerateGowallaLike(std::size_t n, Rng& rng);

/// NYC-like: 4-d (pickup x/y, dropoff x/y), highly skewed.  Pickups
/// concentrate in a tiny dense downtown; dropoffs correlate with pickups.
PointSet GenerateNycLike(std::size_t n, Rng& rng);

/// Beijing-like: 4-d, mildly skewed.  A broad mixture with weak
/// pickup–dropoff correlation.
PointSet GenerateBeijingLike(std::size_t n, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_DATA_SPATIAL_GEN_H_
