#include "data/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace privtree {

Result<PointSet> LoadPointsCsv(const std::string& path, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  PointSet points(dim);
  std::vector<double> row(dim);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string field;
    std::size_t j = 0;
    while (std::getline(ss, field, ',')) {
      if (j >= dim) {
        return Status::InvalidArgument(
            path + ":" + std::to_string(line_number) + ": expected " +
            std::to_string(dim) + " fields, got more");
      }
      errno = 0;
      char* end = nullptr;
      row[j] = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || errno != 0) {
        return Status::InvalidArgument(path + ":" +
                                       std::to_string(line_number) +
                                       ": bad numeric field '" + field + "'");
      }
      ++j;
    }
    if (j != dim) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": expected " +
          std::to_string(dim) + " fields, got " + std::to_string(j));
    }
    points.Add(row);
  }
  return points;
}

Status SavePointsCsv(const std::string& path, const PointSet& points) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.precision(17);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points.point(i);
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (j > 0) out << ',';
      out << p[j];
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<SequenceDataset> LoadSequencesCsv(const std::string& path,
                                         std::size_t alphabet_size) {
  if (alphabet_size == 0) {
    return Status::InvalidArgument("alphabet_size must be positive");
  }
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  SequenceDataset data(alphabet_size);
  std::string line;
  std::size_t line_number = 0;
  std::vector<Symbol> sequence;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    sequence.clear();
    long value = 0;
    while (ss >> value) {
      if (value < 0 || static_cast<std::size_t>(value) >= alphabet_size) {
        return Status::InvalidArgument(
            path + ":" + std::to_string(line_number) + ": symbol " +
            std::to_string(value) + " outside [0, " +
            std::to_string(alphabet_size) + ")");
      }
      sequence.push_back(static_cast<Symbol>(value));
    }
    if (!ss.eof()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": bad symbol field");
    }
    if (!sequence.empty()) data.Add(sequence);
  }
  return data;
}

Status SaveSequencesCsv(const std::string& path,
                        const SequenceDataset& data) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto s = data.sequence(i);
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (j > 0) out << ' ';
      out << s[j];
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

}  // namespace privtree
