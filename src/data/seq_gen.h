// Synthetic sequence datasets emulating the paper's two evaluation datasets
// (Table 3): mooc (80,362 learner behaviour sequences over 7 action
// categories, average length 13.46) and msnbc (989,818 browsing sequences
// over 17 URL categories, average length 4.75).  See DESIGN.md §4.
#ifndef PRIVTREE_DATA_SEQ_GEN_H_
#define PRIVTREE_DATA_SEQ_GEN_H_

#include <cstddef>

#include "dp/rng.h"
#include "seq/sequence.h"

namespace privtree {

/// Paper cardinalities (Table 3).
inline constexpr std::size_t kMoocCardinality = 80362;
inline constexpr std::size_t kMsnbcCardinality = 989818;
/// Paper alphabet sizes and length caps (Table 3).
inline constexpr std::size_t kMoocAlphabet = 7;
inline constexpr std::size_t kMsnbcAlphabet = 17;
inline constexpr std::size_t kMoocLTop = 50;
inline constexpr std::size_t kMsnbcLTop = 20;

/// mooc-like: second-order Markov behaviour sequences with session
/// structure (some contexts near-deterministic, others diverse), average
/// length ≈ 13.5.
SequenceDataset GenerateMoocLike(std::size_t n, Rng& rng);

/// msnbc-like: first-order browsing sequences with Zipfian category
/// popularity and strong self-transitions, average length ≈ 4.75.
SequenceDataset GenerateMsnbcLike(std::size_t n, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_DATA_SEQ_GEN_H_
