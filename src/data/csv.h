// Plain-text I/O so the benchmarks can run on the real datasets when the
// user has them: points as one comma-separated row of d coordinates per
// line, sequences as one whitespace-separated row of integer symbols per
// line.
#ifndef PRIVTREE_DATA_CSV_H_
#define PRIVTREE_DATA_CSV_H_

#include <string>

#include "dp/status.h"
#include "seq/sequence.h"
#include "spatial/point_set.h"

namespace privtree {

/// Loads a d-dimensional point set; every line must have exactly `dim`
/// comma-separated numeric fields.  Lines starting with '#' are skipped.
Result<PointSet> LoadPointsCsv(const std::string& path, std::size_t dim);

/// Writes a point set in the format LoadPointsCsv reads.
Status SavePointsCsv(const std::string& path, const PointSet& points);

/// Loads a sequence dataset; every line is a whitespace-separated list of
/// integer symbols in [0, alphabet_size).  Lines starting with '#' are
/// skipped; empty lines are ignored.
Result<SequenceDataset> LoadSequencesCsv(const std::string& path,
                                         std::size_t alphabet_size);

/// Writes a sequence dataset in the format LoadSequencesCsv reads.
Status SaveSequencesCsv(const std::string& path, const SequenceDataset& data);

}  // namespace privtree

#endif  // PRIVTREE_DATA_CSV_H_
