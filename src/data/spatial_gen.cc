#include "data/spatial_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

namespace {

double Clamp01(double x) {
  return std::clamp(x, 0.0, std::nextafter(1.0, 0.0));
}

/// Zipf-ish weights w_i ∝ 1/(i+1)^s.
std::vector<double> ZipfWeights(std::size_t count, double s) {
  std::vector<double> weights(count);
  for (std::size_t i = 0; i < count; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return weights;
}

struct Cluster {
  double x, y, sigma;
};

}  // namespace

PointSet GenerateRoadLike(std::size_t n, Rng& rng) {
  PRIVTREE_CHECK_GT(n, 0u);
  // Cities: tight clusters with Zipf-weighted popularity.
  constexpr std::size_t kCities = 48;
  std::vector<Cluster> cities(kCities);
  for (auto& city : cities) {
    city.x = rng.NextDouble();
    city.y = rng.NextDouble();
    city.sigma = 0.002 + 0.004 * rng.NextDouble();
  }
  const std::vector<double> city_weights = ZipfWeights(kCities, 1.1);

  // Corridors: each city connects to its two nearest neighbours.
  struct Segment {
    double x0, y0, x1, y1, weight;
  };
  std::vector<Segment> segments;
  for (std::size_t i = 0; i < kCities; ++i) {
    std::vector<std::pair<double, std::size_t>> by_distance;
    for (std::size_t j = 0; j < kCities; ++j) {
      if (j == i) continue;
      const double dx = cities[i].x - cities[j].x;
      const double dy = cities[i].y - cities[j].y;
      by_distance.emplace_back(dx * dx + dy * dy, j);
    }
    std::partial_sort(by_distance.begin(), by_distance.begin() + 2,
                      by_distance.end());
    for (int e = 0; e < 2; ++e) {
      const std::size_t j = by_distance[static_cast<std::size_t>(e)].second;
      segments.push_back(Segment{cities[i].x, cities[i].y, cities[j].x,
                                 cities[j].y,
                                 city_weights[i] + city_weights[j]});
    }
  }
  std::vector<double> segment_weights;
  segment_weights.reserve(segments.size());
  for (const auto& s : segments) segment_weights.push_back(s.weight);

  PointSet points(2);
  double p[2];
  for (std::size_t i = 0; i < n; ++i) {
    const double mode = rng.NextDouble();
    if (mode < 0.55) {
      // Junction cluster: dense blob around a city.
      const std::size_t c = SampleDiscrete(rng, city_weights);
      p[0] = Clamp01(SampleNormal(rng, cities[c].x, cities[c].sigma));
      p[1] = Clamp01(SampleNormal(rng, cities[c].y, cities[c].sigma));
    } else if (mode < 0.97) {
      // Road corridor: 1-d filament with tiny lateral jitter.
      const std::size_t s = SampleDiscrete(rng, segment_weights);
      const double t = rng.NextDouble();
      const auto& seg = segments[s];
      p[0] = Clamp01(seg.x0 + t * (seg.x1 - seg.x0) +
                     SampleNormal(rng, 0.0, 0.0015));
      p[1] = Clamp01(seg.y0 + t * (seg.y1 - seg.y0) +
                     SampleNormal(rng, 0.0, 0.0015));
    } else {
      // Sparse rural background.
      p[0] = rng.NextDouble();
      p[1] = rng.NextDouble();
    }
    points.Add(p);
  }
  return points;
}

PointSet GenerateGowallaLike(std::size_t n, Rng& rng) {
  PRIVTREE_CHECK_GT(n, 0u);
  constexpr std::size_t kClusters = 64;
  std::vector<Cluster> clusters(kClusters);
  for (auto& c : clusters) {
    c.x = rng.NextDouble();
    c.y = rng.NextDouble();
    // Log-uniform spreads: some tight metros, some diffuse regions.
    c.sigma = 0.01 * std::pow(6.0, rng.NextDouble());
  }
  const std::vector<double> weights = ZipfWeights(kClusters, 0.9);

  PointSet points(2);
  double p[2];
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.9) {
      const std::size_t c = SampleDiscrete(rng, weights);
      p[0] = Clamp01(SampleNormal(rng, clusters[c].x, clusters[c].sigma));
      p[1] = Clamp01(SampleNormal(rng, clusters[c].y, clusters[c].sigma));
    } else {
      p[0] = rng.NextDouble();
      p[1] = rng.NextDouble();
    }
    points.Add(p);
  }
  return points;
}

PointSet GenerateNycLike(std::size_t n, Rng& rng) {
  PRIVTREE_CHECK_GT(n, 0u);
  // Downtown: a tiny dense core around (0.5, 0.5) with sub-clusters.
  constexpr std::size_t kHotspots = 12;
  std::vector<Cluster> hotspots(kHotspots);
  for (auto& h : hotspots) {
    h.x = 0.48 + 0.04 * rng.NextDouble();
    h.y = 0.48 + 0.04 * rng.NextDouble();
    h.sigma = 0.002 + 0.003 * rng.NextDouble();
  }
  const std::vector<double> weights = ZipfWeights(kHotspots, 1.0);

  const auto sample_location = [&](double* x, double* y) {
    if (rng.NextDouble() < 0.85) {
      const std::size_t h = SampleDiscrete(rng, weights);
      *x = Clamp01(SampleNormal(rng, hotspots[h].x, hotspots[h].sigma));
      *y = Clamp01(SampleNormal(rng, hotspots[h].y, hotspots[h].sigma));
    } else {
      // Outer boroughs: wide blob around the core.
      *x = Clamp01(SampleNormal(rng, 0.5, 0.12));
      *y = Clamp01(SampleNormal(rng, 0.5, 0.12));
    }
  };

  PointSet points(4);
  double p[4];
  for (std::size_t i = 0; i < n; ++i) {
    sample_location(&p[0], &p[1]);
    if (rng.NextDouble() < 0.7) {
      // Short trip: dropoff near the pickup.
      p[2] = Clamp01(p[0] + SampleLaplace(rng, 0.015));
      p[3] = Clamp01(p[1] + SampleLaplace(rng, 0.015));
    } else {
      sample_location(&p[2], &p[3]);
    }
    points.Add(p);
  }
  return points;
}

PointSet GenerateBeijingLike(std::size_t n, Rng& rng) {
  PRIVTREE_CHECK_GT(n, 0u);
  constexpr std::size_t kDistricts = 10;
  std::vector<Cluster> districts(kDistricts);
  for (auto& d : districts) {
    d.x = 0.2 + 0.6 * rng.NextDouble();
    d.y = 0.2 + 0.6 * rng.NextDouble();
    d.sigma = 0.04 + 0.06 * rng.NextDouble();
  }
  const std::vector<double> weights = ZipfWeights(kDistricts, 0.6);

  const auto sample_location = [&](double* x, double* y) {
    const std::size_t d = SampleDiscrete(rng, weights);
    *x = Clamp01(SampleNormal(rng, districts[d].x, districts[d].sigma));
    *y = Clamp01(SampleNormal(rng, districts[d].y, districts[d].sigma));
  };

  PointSet points(4);
  double p[4];
  for (std::size_t i = 0; i < n; ++i) {
    sample_location(&p[0], &p[1]);
    if (rng.NextDouble() < 0.4) {
      p[2] = Clamp01(p[0] + SampleLaplace(rng, 0.05));
      p[3] = Clamp01(p[1] + SampleLaplace(rng, 0.05));
    } else {
      sample_location(&p[2], &p[3]);
    }
    points.Add(p);
  }
  return points;
}

}  // namespace privtree
