// Name → factory registry for release methods.
//
// The registry is the single point where a method name ("privtree", "ug",
// "dawa", ...) becomes a Method instance, the idiom large multi-backend
// engines use to keep interchangeable implementations behind one stable
// interface.  Adding a new backend is a one-file change: implement Method,
// register a factory, and every registry-driven bench, test and CLI picks
// it up.
#ifndef PRIVTREE_RELEASE_REGISTRY_H_
#define PRIVTREE_RELEASE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/byteio.h"
#include "dp/status.h"
#include "release/dataset.h"
#include "release/method.h"
#include "release/options.h"

namespace privtree::release {

/// Builds a Method from an options bag.  Factories parse (and validate)
/// their options eagerly, so a typo fails at Create rather than at Fit.
using MethodFactory =
    std::function<std::unique_ptr<Method>(const MethodOptions&)>;

/// Reconstructs a fitted Method from a deserialized envelope and its
/// payload bytes (see release/serialization.h).  The envelope's options
/// text has been validated against the entry's allowed keys and the payload
/// checksum verified before a loader runs; the loader must consume the
/// payload exactly and return a method whose Metadata() reproduces the
/// envelope's.  Corrupt payloads yield a Status error, never a crash.
using MethodLoader = std::function<Result<std::unique_ptr<Method>>(
    const SynopsisEnvelope& envelope, ByteReader& payload)>;

/// A string-keyed collection of method factories.
class MethodRegistry {
 public:
  /// One registered backend.  `allowed_keys` lists every option key the
  /// factory accepts (with its value type) and `required_dim` the hard
  /// dimensionality constraint (0 = any), so user-facing surfaces can
  /// reject a typo or an unsupported input gracefully before the aborting
  /// contract checks run.
  struct Entry {
    std::string description;  ///< One-line summary for `--list` surfaces.
    std::string display;      ///< Column label for tables ("PrivTree").
    std::vector<OptionKey> allowed_keys;  ///< Valid option keys + types.
    /// Input shape the method fits: spatial (PointSet + Box) or sequence
    /// (SequenceDataset).  User-facing surfaces screen a dataset's kind
    /// against this before Create/Fit, so a sequence method asked to fit
    /// points (or vice versa) fails with a clean error, never an abort.
    DatasetKind kind = DatasetKind::kSpatial;
    std::size_t required_dim = 0;  ///< Exact input dim required; 0 = any.
    /// Largest dimensionality the method is practical at (cost grows too
    /// fast beyond it — e.g. complete hierarchies); 0 = no limit.
    /// Evaluation lineups use it to decide inclusion; it is advisory, not
    /// enforced at Fit.
    std::size_t max_practical_dim = 0;
    MethodFactory factory;
    /// Payload codec for LoadMethod; null means the backend's synopses
    /// cannot be re-loaded (every built-in registers one).
    MethodLoader loader;
  };

  /// Registers a backend under `name`; duplicate names abort.
  void Register(std::string name, Entry entry);

  bool Contains(std::string_view name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  /// The full registration record; aborts on unknown names.
  const Entry& Get(std::string_view name) const;

  /// Description of a registered method; aborts on unknown names.
  const std::string& Description(std::string_view name) const;

  /// Option keys the named method accepts; aborts on unknown names.
  const std::vector<OptionKey>& AllowedKeys(std::string_view name) const;

  /// The exact input dimensionality the named method requires, or 0 when
  /// any dimension is supported; aborts on unknown names.
  std::size_t RequiredDim(std::string_view name) const;

  /// The dataset kind the named method fits; aborts on unknown names.
  DatasetKind Kind(std::string_view name) const;

  /// Registered names of one dataset kind, sorted.
  std::vector<std::string> Names(DatasetKind kind) const;

  /// Instantiates (but does not fit) the named method.  Unknown names
  /// abort; call Contains first when the name comes from user input.
  std::unique_ptr<Method> Create(std::string_view name,
                                 const MethodOptions& options = {}) const;

 private:
  std::map<std::string, Entry, std::less<>> methods_;
};

/// The process-wide registry, with all built-in backends (see
/// release/builtin_methods.h) registered on first use.
MethodRegistry& GlobalMethodRegistry();

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_REGISTRY_H_
