#include "release/sequence_methods.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/byteio.h"
#include "core/codec.h"
#include "core/tree.h"
#include "dp/check.h"
#include "release/options.h"
#include "release/serialization.h"
#include "release/sequence_query.h"
#include "seq/model.h"
#include "seq/ngram.h"
#include "seq/pst_privtree.h"
#include "seq/sequence.h"
#include "seq/topk.h"

namespace privtree::release {
namespace {

/// Largest alphabet a persisted sequence synopsis may declare (the one
/// pipeline-wide bound; see seq/sequence.h).
constexpr std::size_t kMaxAlphabet = kMaxAlphabetSize;

/// State every sequence adapter tracks across Fit (or restores from an
/// envelope) — the sequence twin of builtin_methods.cc's FitState.
struct FitState {
  bool fitted = false;
  std::size_t alphabet = 0;  ///< Reported as MethodMetadata::dim.
  double epsilon_spent = 0.0;
};

/// One double per SequenceQuery, against any fitted SequenceModel.  The
/// specs have been screened by ValidateSequenceQuery upstream (serving
/// engine / CLI), so symbol and rank ranges are in-contract here.  Top-k
/// answers are memoized per (k, max_len) within the batch: each is a full
/// model-wide mining pass, and served workloads repeat the same spec.
std::vector<double> AnswerSequenceQueries(
    const SequenceModel& model, std::span<const SequenceQuery> queries) {
  std::vector<double> out;
  out.reserve(queries.size());
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> topk_memo;
  for (const SequenceQuery& q : queries) {
    switch (q.kind) {
      case SequenceQueryKind::kFrequency:
        out.push_back(model.EstimateStringFrequency(q.symbols));
        break;
      case SequenceQueryKind::kPrefixCount:
        out.push_back(model.EstimatePrefixCount(q.symbols));
        break;
      case SequenceQueryKind::kTopK: {
        const auto key = std::make_pair(q.k, q.max_len);
        auto it = topk_memo.find(key);
        if (it == topk_memo.end()) {
          const TopKStrings top = TopKFromModel(model, q.k, q.max_len);
          it = topk_memo
                   .emplace(key, q.k <= top.counts.size()
                                     ? top.counts[q.k - 1]
                                     : 0.0)
                   .first;
        }
        out.push_back(it->second);
        break;
      }
      default:
        // An out-of-enum kind skipped validation — abort loudly rather
        // than silently shifting every later answer off its query.
        PRIVTREE_CHECK(false);
    }
  }
  return out;
}

/// Max predictor length = decomposition height of a PST.
std::int32_t PstHeight(const PstModel& model) {
  std::size_t height = 0;
  for (std::size_t id = 0; id < model.size(); ++id) {
    height = std::max(height,
                      model.node(static_cast<NodeId>(id)).predictor.size());
  }
  return static_cast<std::int32_t>(height);
}

/// Shared bookkeeping of the two sequence adapters.
class SequenceMethodBase : public Method {
 protected:
  explicit SequenceMethodBase(const MethodOptions& o)
      : options_text_(o.ToString()) {}
  explicit SequenceMethodBase(const SynopsisEnvelope& env)
      : options_text_(env.options_text),
        state_{true, env.metadata.dim, env.metadata.epsilon_spent} {}

  Status SaveSynopsis(std::ostream& out, std::string_view payload) const {
    return WriteSynopsis(out, Metadata(), options_text_, payload);
  }

  Status NotFitted() const {
    return Status::InvalidArgument("Save requires a fitted method");
  }

  std::string options_text_;
  FitState state_;
};

/// PrivTree over sequence data (Section 4.2): private PST construction.
class PstPrivTreeMethod final : public SequenceMethodBase {
 public:
  explicit PstPrivTreeMethod(const MethodOptions& o)
      : SequenceMethodBase(o), options_(ParseOptions(o)) {}

  PstPrivTreeMethod(const SynopsisEnvelope& env, PstModel model)
      : SequenceMethodBase(env),
        options_(ParseOptions(MethodOptions::Parse(env.options_text))) {
    model_.emplace(std::move(model));
  }

  void Fit(const Dataset& data, PrivacyBudget& budget, Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    PRIVTREE_CHECK(data.is_sequence());
    state_ = {true, data.sequences().alphabet_size(),
              budget.SpendRemaining()};
    // The builder requires its input truncated at l⊤; truncating an
    // already-truncated dataset is the identity, so fitting pre-truncated
    // data matches the direct BuildPrivatePst path bit for bit.
    const SequenceDataset truncated =
        data.sequences().Truncate(options_.l_top);
    model_.emplace(BuildPrivatePst(truncated, state_.epsilon_spent, options_,
                                   rng)
                       .model);
  }

  std::vector<double> QueryBatch(
      std::span<const SequenceQuery> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return AnswerSequenceQueries(*model_, queries);
  }

  MethodMetadata Metadata() const override {
    return {"pst_privtree", state_.alphabet, state_.epsilon_spent,
            model_ ? model_->size() : 0, model_ ? PstHeight(*model_) : 0};
  }

  Status Save(std::ostream& out) const override {
    if (!state_.fitted) return NotFitted();
    // v3 payload: node count, delta-bit-packed parent links (children are
    // implied by parent links + creation order, the SplitNode invariant),
    // then the histograms concatenated in id order.  The parents are
    // near-sequential, so they pack to a few bits each.
    std::string payload;
    ByteWriter w(&payload);
    w.U64(model_->size());
    std::vector<NodeId> parents(model_->size(), kInvalidNode);
    for (std::size_t i = 0; i < model_->size(); ++i) {
      for (const NodeId child :
           model_->node(static_cast<NodeId>(i)).children) {
        parents[static_cast<std::size_t>(child)] = static_cast<NodeId>(i);
      }
    }
    w.Str(PackDeltaI32(parents));
    for (std::size_t i = 0; i < model_->size(); ++i) {
      w.F64Span(model_->node(static_cast<NodeId>(i)).hist);
    }
    return SaveSynopsis(out, payload);
  }

  const SequenceModel* sequence_model() const override {
    return model_ ? &*model_ : nullptr;
  }

 private:
  static PrivatePstOptions ParseOptions(const MethodOptions& o) {
    RequireKnownKeys(o, {"l_top", "tree_budget_fraction", "max_depth"});
    PrivatePstOptions out;
    out.l_top = static_cast<std::size_t>(
        o.GetInt("l_top", static_cast<std::int64_t>(out.l_top)));
    out.tree_budget_fraction =
        o.GetDouble("tree_budget_fraction", out.tree_budget_fraction);
    out.max_depth =
        static_cast<std::int32_t>(o.GetInt("max_depth", out.max_depth));
    return out;
  }

  PrivatePstOptions options_;
  std::optional<PstModel> model_;
};

/// The variable-length n-gram baseline (Section 6.2).
class NgramMethod final : public SequenceMethodBase {
 public:
  explicit NgramMethod(const MethodOptions& o)
      : SequenceMethodBase(o), options_(ParseOptions(o)) {}

  NgramMethod(const SynopsisEnvelope& env, NgramModel model)
      : SequenceMethodBase(env),
        options_(ParseOptions(MethodOptions::Parse(env.options_text))) {
    model_.emplace(std::move(model));
  }

  void Fit(const Dataset& data, PrivacyBudget& budget, Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    PRIVTREE_CHECK(data.is_sequence());
    state_ = {true, data.sequences().alphabet_size(),
              budget.SpendRemaining()};
    const SequenceDataset truncated =
        data.sequences().Truncate(options_.l_top);
    model_.emplace(truncated, state_.epsilon_spent, options_, rng);
  }

  std::vector<double> QueryBatch(
      std::span<const SequenceQuery> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return AnswerSequenceQueries(*model_, queries);
  }

  MethodMetadata Metadata() const override {
    return {"ngram", state_.alphabet, state_.epsilon_spent,
            model_ ? model_->ReleasedGramCount() : 0,
            model_ ? model_->Height() : 0};
  }

  Status Save(std::ostream& out) const override {
    if (!state_.fitted) return NotFitted();
    // v3 payload: node count, delta-bit-packed parent links, raw released
    // counts in id order.
    std::string payload;
    ByteWriter w(&payload);
    w.U64(model_->size());
    w.Str(PackDeltaI32(model_->ParentLinks()));
    for (std::size_t i = 0; i < model_->size(); ++i) {
      w.F64(model_->NodeCount(static_cast<NodeId>(i)));
    }
    return SaveSynopsis(out, payload);
  }

  const SequenceModel* sequence_model() const override {
    return model_ ? &*model_ : nullptr;
  }

 private:
  static NgramOptions ParseOptions(const MethodOptions& o) {
    RequireKnownKeys(o, {"n_max", "l_top", "threshold_factor"});
    NgramOptions out;
    out.n_max = static_cast<std::size_t>(
        o.GetInt("n_max", static_cast<std::int64_t>(out.n_max)));
    out.l_top = static_cast<std::size_t>(
        o.GetInt("l_top", static_cast<std::int64_t>(out.l_top)));
    out.threshold_factor =
        o.GetDouble("threshold_factor", out.threshold_factor);
    return out;
  }

  NgramOptions options_;
  std::optional<NgramModel> model_;
};

/// Reconstructs a PstModel from the flat (parent, histogram) payload rows,
/// enforcing the SplitNode sibling-group invariant exactly like the v1
/// text loader.
Result<PstModel> RestorePstModel(std::size_t alphabet,
                                 std::span<const NodeId> parents,
                                 std::vector<std::vector<double>> hists) {
  const std::size_t beta = alphabet + 1;
  const std::size_t n = parents.size();
  if (n == 0 || (n - 1) % beta != 0) {
    return Status::InvalidArgument(
        "pst payload: node count inconsistent with fanout");
  }
  if (parents[0] != kInvalidNode) {
    return Status::InvalidArgument("pst payload: root must have parent -1");
  }
  PstModel model(alphabet);
  model.AddRoot();
  for (std::size_t i = 1; i < n; ++i) {
    if (parents[i] < 0 || static_cast<std::size_t>(parents[i]) >= i) {
      return Status::InvalidArgument("pst payload: bad parent at node " +
                                     std::to_string(i));
    }
    if ((i - 1) % beta == 0) {
      if (model.node(parents[i]).children.empty()) {
        if (model.SplitNode(parents[i]) != static_cast<NodeId>(i)) {
          return Status::InvalidArgument(
              "pst payload: children out of order at node " +
              std::to_string(i));
        }
      } else {
        return Status::InvalidArgument(
            "pst payload: parent split twice at node " + std::to_string(i));
      }
    } else if (parents[i] != parents[i - 1]) {
      return Status::InvalidArgument(
          "pst payload: fractured sibling group at node " +
          std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    model.mutable_node(static_cast<NodeId>(i)).hist = std::move(hists[i]);
  }
  return model;
}

Result<std::unique_ptr<Method>> LoadPstPrivTree(const SynopsisEnvelope& env,
                                                ByteReader& payload) {
  const std::size_t alphabet = env.metadata.dim;
  if (alphabet < 1 || alphabet > kMaxAlphabet) {
    return Status::InvalidArgument("pst payload: bad alphabet size");
  }
  const std::size_t beta = alphabet + 1;
  const bool packed = env.format_version >= kSynopsisFormatVersion;
  std::uint64_t n = 0;
  // Histograms alone cost 8·beta bytes per node (plus 4 for the inline v2
  // parent); bounding n before allocating keeps a lying count from forcing
  // a huge allocation.
  if (!payload.U64(&n) || n == 0 ||
      n > payload.remaining() / (packed ? 8 * beta : 4 + 8 * beta)) {
    return Status::InvalidArgument("pst payload: bad node count");
  }
  std::vector<NodeId> parents(n);
  std::vector<std::vector<double>> hists(n);
  if (packed) {
    std::string packed_parents;
    if (!payload.Str(&packed_parents) ||
        !UnpackDeltaI32(packed_parents, n, &parents)) {
      return Status::InvalidArgument("pst payload: bad parent links");
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!payload.F64Vec(beta, &hists[i])) {
        return Status::InvalidArgument("pst payload: truncated node " +
                                       std::to_string(i));
      }
    }
  } else {
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!payload.I32(&parents[i]) || !payload.F64Vec(beta, &hists[i])) {
        return Status::InvalidArgument("pst payload: truncated node " +
                                       std::to_string(i));
      }
    }
  }
  auto model = RestorePstModel(alphabet, parents, std::move(hists));
  if (!model.ok()) return model.status();
  return std::unique_ptr<Method>(std::make_unique<PstPrivTreeMethod>(
      env, std::move(model).value()));
}

Result<std::unique_ptr<Method>> LoadNgram(const SynopsisEnvelope& env,
                                          ByteReader& payload) {
  const std::size_t alphabet = env.metadata.dim;
  if (alphabet < 1 || alphabet > kMaxAlphabet) {
    return Status::InvalidArgument("ngram payload: bad alphabet size");
  }
  const bool packed = env.format_version >= kSynopsisFormatVersion;
  std::uint64_t n = 0;
  if (!payload.U64(&n) || n == 0 ||
      n > payload.remaining() / (packed ? 8 : 12)) {
    return Status::InvalidArgument("ngram payload: bad node count");
  }
  std::vector<NodeId> parents(n);
  std::vector<double> counts(n);
  if (packed) {
    std::string packed_parents;
    if (!payload.Str(&packed_parents) ||
        !UnpackDeltaI32(packed_parents, n, &parents)) {
      return Status::InvalidArgument("ngram payload: bad parent links");
    }
    if (!payload.F64Vec(n, &counts)) {
      return Status::InvalidArgument("ngram payload: truncated counts");
    }
  } else {
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!payload.I32(&parents[i]) || !payload.F64(&counts[i])) {
        return Status::InvalidArgument("ngram payload: truncated node " +
                                       std::to_string(i));
      }
    }
  }
  auto model = NgramModel::Restore(alphabet, parents, counts);
  if (!model.ok()) return model.status();
  return std::unique_ptr<Method>(
      std::make_unique<NgramMethod>(env, std::move(model).value()));
}

}  // namespace

std::unique_ptr<Method> WrapPstModel(PstModel model, double epsilon_spent) {
  PRIVTREE_CHECK(model.size() > 0);
  SynopsisEnvelope env;
  env.metadata.method = "pst_privtree";
  env.metadata.dim = model.alphabet_size();
  env.metadata.epsilon_spent = epsilon_spent;
  return std::make_unique<PstPrivTreeMethod>(env, std::move(model));
}

void RegisterSequenceMethods(MethodRegistry& registry) {
  using enum OptionType;
  // The per-key ranges mirror the fitters' aborting contract checks
  // (l⊤ >= 1, n_max >= 1) plus sanity caps, so a hostile socket client's
  // out-of-range value yields a clean Status upstream.  The PST fan-out
  // β = alphabet+1 >= 2 is a property of the served dataset, not an
  // option; top-k query ranks are screened per query
  // (ValidateSequenceQuery, k >= 1).
  registry.Register(
      "pst_privtree",
      {.description =
           "PrivTree prediction suffix tree over sequences (Sec. 4.2)",
       .display = "PST",
       .allowed_keys = {{"l_top", kInt, 1, 4096},
                        {"tree_budget_fraction", kDouble, 0, 1, true},
                        {"max_depth", kInt, 1, 4096}},
       .kind = DatasetKind::kSequence,
       .factory =
           [](const MethodOptions& options) -> std::unique_ptr<Method> {
         return std::make_unique<PstPrivTreeMethod>(options);
       },
       .loader = LoadPstPrivTree});
  registry.Register(
      "ngram",
      {.description =
           "variable-length n-gram baseline (Chen et al., CCS 2012)",
       .display = "N-gram",
       .allowed_keys = {{"n_max", kInt, 1, 16},
                        {"l_top", kInt, 1, 4096},
                        {"threshold_factor", kDouble, 0, 1e6}},
       .kind = DatasetKind::kSequence,
       .factory =
           [](const MethodOptions& options) -> std::unique_ptr<Method> {
         return std::make_unique<NgramMethod>(options);
       },
       .loader = LoadNgram});
}

}  // namespace privtree::release
