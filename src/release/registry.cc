#include "release/registry.h"

#include <cstdio>
#include <utility>

#include "dp/check.h"
#include "release/builtin_methods.h"

namespace privtree::release {

void MethodRegistry::Register(std::string name, Entry entry) {
  PRIVTREE_CHECK(!name.empty());
  PRIVTREE_CHECK(entry.factory != nullptr);
  const auto [it, inserted] = methods_.emplace(std::move(name),
                                               std::move(entry));
  if (!inserted) {
    std::fprintf(stderr, "MethodRegistry: duplicate method \"%s\"\n",
                 it->first.c_str());
    PRIVTREE_CHECK(false);
  }
}

bool MethodRegistry::Contains(std::string_view name) const {
  return methods_.find(name) != methods_.end();
}

std::vector<std::string> MethodRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(methods_.size());
  for (const auto& [name, entry] : methods_) out.push_back(name);
  return out;
}

const MethodRegistry::Entry& MethodRegistry::Get(
    std::string_view name) const {
  const auto it = methods_.find(name);
  PRIVTREE_CHECK(it != methods_.end());
  return it->second;
}

const std::string& MethodRegistry::Description(std::string_view name) const {
  return Get(name).description;
}

const std::vector<OptionKey>& MethodRegistry::AllowedKeys(
    std::string_view name) const {
  return Get(name).allowed_keys;
}

std::size_t MethodRegistry::RequiredDim(std::string_view name) const {
  return Get(name).required_dim;
}

DatasetKind MethodRegistry::Kind(std::string_view name) const {
  return Get(name).kind;
}

std::vector<std::string> MethodRegistry::Names(DatasetKind kind) const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : methods_) {
    if (entry.kind == kind) out.push_back(name);
  }
  return out;
}

std::unique_ptr<Method> MethodRegistry::Create(
    std::string_view name, const MethodOptions& options) const {
  const auto it = methods_.find(name);
  if (it == methods_.end()) {
    std::fprintf(stderr, "MethodRegistry: unknown method \"%.*s\"\n",
                 static_cast<int>(name.size()), name.data());
    PRIVTREE_CHECK(false);
  }
  return it->second.factory(options);
}

MethodRegistry& GlobalMethodRegistry() {
  static MethodRegistry* registry = [] {
    auto* r = new MethodRegistry();
    RegisterBuiltinMethods(*r);
    return r;
  }();
  return *registry;
}

}  // namespace privtree::release
