#include "release/builtin_methods.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "dp/check.h"
#include "hist/ag.h"
#include "hist/dawa.h"
#include "hist/grid.h"
#include "hist/hierarchy.h"
#include "hist/kdtree.h"
#include "hist/ug.h"
#include "hist/wavelet.h"
#include "release/method.h"
#include "release/options.h"
#include "release/tree_batch.h"
#include "spatial/spatial_histogram.h"

namespace privtree::release {
namespace {

/// State every adapter tracks across Fit.
struct FitState {
  bool fitted = false;
  std::size_t dim = 0;
  double epsilon_spent = 0.0;
};

/// PrivTree (Section 3.4): the paper's method.
class PrivTreeMethod final : public Method {
 public:
  explicit PrivTreeMethod(const MethodOptions& o)
      : options_(ParsePrivTreeHistogramOptions(o)) {}

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    hist_ = BuildPrivTreeHistogram(points, domain, state_.epsilon_spent,
                                   options_, rng);
  }

  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return hist_.Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return BatchQueryTree(hist_.tree, hist_.count, queries,
                          [](const SpatialCell& c) -> const Box& {
                            return c.box;
                          });
  }

  MethodMetadata Metadata() const override {
    return {"privtree", state_.dim, state_.epsilon_spent, hist_.tree.size(),
            hist_.tree.empty() ? 0 : hist_.tree.Height()};
  }

 private:
  PrivTreeHistogramOptions options_;
  FitState state_;
  SpatialHistogram hist_;
};

/// SimpleTree (Algorithm 1): the fixed-height baseline.
class SimpleTreeMethod final : public Method {
 public:
  explicit SimpleTreeMethod(const MethodOptions& o)
      : options_(ParseSimpleTreeHistogramOptions(o)) {}

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    hist_ = BuildSimpleTreeHistogram(points, domain, state_.epsilon_spent,
                                     options_, rng);
  }

  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return hist_.Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return BatchQueryTree(hist_.tree, hist_.count, queries,
                          [](const SpatialCell& c) -> const Box& {
                            return c.box;
                          });
  }

  MethodMetadata Metadata() const override {
    return {"simpletree", state_.dim, state_.epsilon_spent,
            hist_.tree.size(), hist_.tree.empty() ? 0 : hist_.tree.Height()};
  }

 private:
  SimpleTreeHistogramOptions options_;
  FitState state_;
  SpatialHistogram hist_;
};

/// Shared adapter for the builders that return a flat GridHistogram (UG,
/// DAWA, Privelet*); queries go through the O(4^d) prefix-sum lattice, and
/// QueryBatch through the grid's allocation-free one-pass batch path.
class GridMethodBase : public Method {
 public:
  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return grid_->Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return grid_->QueryBatch(queries);
  }

 protected:
  FitState state_;
  std::optional<GridHistogram> grid_;
};

class UniformGridMethod final : public GridMethodBase {
 public:
  explicit UniformGridMethod(const MethodOptions& o) {
    RequireKnownKeys(o, {"cell_scale", "c0"});
    options_.cell_scale = o.GetDouble("cell_scale", options_.cell_scale);
    options_.c0 = o.GetDouble("c0", options_.c0);
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    grid_.emplace(BuildUniformGrid(points, domain, state_.epsilon_spent,
                                   options_, rng));
  }

  MethodMetadata Metadata() const override {
    return {"ug", state_.dim, state_.epsilon_spent,
            grid_ ? grid_->total_cells() : 0, 0};
  }

 private:
  UniformGridOptions options_;
};

class DawaMethod final : public GridMethodBase {
 public:
  explicit DawaMethod(const MethodOptions& o) {
    RequireKnownKeys(o, {"target_total_cells", "partition_budget_fraction",
                         "measure_branching"});
    options_.target_total_cells =
        o.GetInt("target_total_cells", options_.target_total_cells);
    options_.partition_budget_fraction = o.GetDouble(
        "partition_budget_fraction", options_.partition_budget_fraction);
    options_.measure_branching =
        o.GetInt("measure_branching", options_.measure_branching);
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    grid_.emplace(BuildDawaHistogram(points, domain, state_.epsilon_spent,
                                     options_, rng));
  }

  MethodMetadata Metadata() const override {
    return {"dawa", state_.dim, state_.epsilon_spent,
            grid_ ? grid_->total_cells() : 0, 0};
  }

 private:
  DawaOptions options_;
};

class WaveletMethod final : public GridMethodBase {
 public:
  explicit WaveletMethod(const MethodOptions& o) {
    RequireKnownKeys(o, {"target_total_cells"});
    options_.target_total_cells =
        o.GetInt("target_total_cells", options_.target_total_cells);
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    grid_.emplace(BuildPriveletHistogram(points, domain, state_.epsilon_spent,
                                         options_, rng));
  }

  MethodMetadata Metadata() const override {
    return {"wavelet", state_.dim, state_.epsilon_spent,
            grid_ ? grid_->total_cells() : 0, 0};
  }

 private:
  PriveletOptions options_;
};

class AdaptiveGridMethod final : public Method {
 public:
  explicit AdaptiveGridMethod(const MethodOptions& o) {
    RequireKnownKeys(o, {"alpha", "c1", "c2", "cell_scale"});
    options_.alpha = o.GetDouble("alpha", options_.alpha);
    options_.c1 = o.GetDouble("c1", options_.c1);
    options_.c2 = o.GetDouble("c2", options_.c2);
    options_.cell_scale = o.GetDouble("cell_scale", options_.cell_scale);
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    grid_.emplace(points, domain, state_.epsilon_spent, options_, rng);
  }

  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return grid_->Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return grid_->QueryBatch(queries);
  }

  MethodMetadata Metadata() const override {
    return {"ag", state_.dim, state_.epsilon_spent,
            grid_ ? grid_->TotalCells() : 0, 2};
  }

 private:
  AdaptiveGridOptions options_;
  FitState state_;
  std::optional<AdaptiveGrid> grid_;
};

class KdTreeMethod final : public Method {
 public:
  explicit KdTreeMethod(const MethodOptions& o) {
    RequireKnownKeys(o, {"height", "split_budget_fraction"});
    options_.height =
        static_cast<std::int32_t>(o.GetInt("height", options_.height));
    options_.split_budget_fraction =
        o.GetDouble("split_budget_fraction", options_.split_budget_fraction);
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    tree_.emplace(points, domain, state_.epsilon_spent, options_, rng);
  }

  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return tree_->Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return BatchQueryTree(tree_->tree(), tree_->counts(), queries,
                          [](const Box& b) -> const Box& { return b; });
  }

  MethodMetadata Metadata() const override {
    return {"kdtree", state_.dim, state_.epsilon_spent,
            tree_ ? tree_->tree().size() : 0,
            tree_ ? tree_->tree().Height() : 0};
  }

 private:
  KdTreeOptions options_;
  FitState state_;
  std::optional<KdTreeHistogram> tree_;
};

class HierarchyMethod final : public Method {
 public:
  explicit HierarchyMethod(const MethodOptions& o) {
    RequireKnownKeys(o, {"height", "target_leaf_resolution",
                         "constrained_inference"});
    options_.height =
        static_cast<std::int32_t>(o.GetInt("height", options_.height));
    options_.target_leaf_resolution =
        o.GetInt("target_leaf_resolution", options_.target_leaf_resolution);
    options_.constrained_inference =
        o.GetBool("constrained_inference", options_.constrained_inference);
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    hier_.emplace(points, domain, state_.epsilon_spent, options_, rng);
  }

  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return hier_->Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return hier_->QueryBatch(queries);
  }

  MethodMetadata Metadata() const override {
    return {"hierarchy", state_.dim, state_.epsilon_spent,
            hier_ ? hier_->TotalCounts() : 0,
            hier_ ? options_.height - 1 : 0};
  }

 private:
  HierarchyOptions options_;
  FitState state_;
  std::optional<HierarchyHistogram> hier_;
};

template <typename T>
MethodFactory FactoryFor() {
  return [](const MethodOptions& options) -> std::unique_ptr<Method> {
    return std::make_unique<T>(options);
  };
}

}  // namespace

PrivTreeHistogramOptions ParsePrivTreeHistogramOptions(
    const MethodOptions& options) {
  RequireKnownKeys(options,
                   {"dims_per_split", "tree_budget_fraction", "max_depth"});
  PrivTreeHistogramOptions out;
  out.dims_per_split =
      static_cast<int>(options.GetInt("dims_per_split", out.dims_per_split));
  out.tree_budget_fraction =
      options.GetDouble("tree_budget_fraction", out.tree_budget_fraction);
  out.max_depth =
      static_cast<std::int32_t>(options.GetInt("max_depth", out.max_depth));
  return out;
}

SimpleTreeHistogramOptions ParseSimpleTreeHistogramOptions(
    const MethodOptions& options) {
  RequireKnownKeys(options, {"dims_per_split", "height", "theta"});
  SimpleTreeHistogramOptions out;
  out.dims_per_split =
      static_cast<int>(options.GetInt("dims_per_split", out.dims_per_split));
  out.height = static_cast<std::int32_t>(options.GetInt("height", out.height));
  out.theta = options.GetDouble("theta", out.theta);
  return out;
}

void RegisterBuiltinMethods(MethodRegistry& registry) {
  using enum OptionType;
  registry.Register(
      "privtree",
      {.description = "PrivTree decomposition + noisy leaf counts (Sec. 3.4)",
       .display = "PrivTree",
       .allowed_keys = {{"dims_per_split", kInt},
                        {"tree_budget_fraction", kDouble},
                        {"max_depth", kInt}},
       .factory = FactoryFor<PrivTreeMethod>()});
  registry.Register(
      "simpletree",
      {.description = "fixed-height noisy quadtree baseline (Algorithm 1)",
       .display = "SimpleTree",
       .allowed_keys = {{"dims_per_split", kInt},
                        {"height", kInt},
                        {"theta", kDouble}},
       .factory = FactoryFor<SimpleTreeMethod>()});
  registry.Register(
      "ug",
      {.description = "uniform grid (Qardaji et al., ICDE 2013)",
       .display = "UG",
       .allowed_keys = {{"cell_scale", kDouble}, {"c0", kDouble}},
       .factory = FactoryFor<UniformGridMethod>()});
  registry.Register(
      "ag",
      {.description = "two-level adaptive grid, 2-d only (ICDE 2013)",
       .display = "AG",
       .allowed_keys = {{"alpha", kDouble},
                        {"c1", kDouble},
                        {"c2", kDouble},
                        {"cell_scale", kDouble}},
       .required_dim = 2,
       .factory = FactoryFor<AdaptiveGridMethod>()});
  registry.Register(
      "kdtree",
      {.description = "private k-d tree with noisy-median splits ([51])",
       .display = "KD",
       .allowed_keys = {{"height", kInt},
                        {"split_budget_fraction", kDouble}},
       .factory = FactoryFor<KdTreeMethod>()});
  registry.Register(
      "dawa",
      {.description = "data-aware partition + hierarchical measurement "
                      "(Li et al., PVLDB 2014)",
       .display = "DAWA",
       .allowed_keys = {{"target_total_cells", kInt},
                        {"partition_budget_fraction", kDouble},
                        {"measure_branching", kInt}},
       .factory = FactoryFor<DawaMethod>()});
  registry.Register(
      "hierarchy",
      {.description = "complete noisy-count tree with constrained inference "
                      "(Qardaji et al., PVLDB 2013)",
       .display = "Hierarchy",
       .allowed_keys = {{"height", kInt},
                        {"target_leaf_resolution", kInt},
                        {"constrained_inference", kBool}},
       // The complete tree's leaf level grows as resolution^d; the paper
       // evaluates it on 2-d data only.
       .max_practical_dim = 2,
       .factory = FactoryFor<HierarchyMethod>()});
  registry.Register(
      "wavelet",
      {.description = "Privelet*: noisy Haar coefficients (Xiao et al., "
                      "TKDE 2011)",
       .display = "Privelet*",
       .allowed_keys = {{"target_total_cells", kInt}},
       .factory = FactoryFor<WaveletMethod>()});
}

}  // namespace privtree::release
