#include "release/builtin_methods.h"

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/byteio.h"
#include "core/codec.h"
#include "dp/check.h"
#include "hist/ag.h"
#include "hist/dawa.h"
#include "hist/grid.h"
#include "hist/grid_codec.h"
#include "hist/hierarchy.h"
#include "hist/kdtree.h"
#include "hist/ug.h"
#include "hist/wavelet.h"
#include "release/method.h"
#include "release/options.h"
#include "release/sequence_methods.h"
#include "release/serialization.h"
#include "release/tree_batch.h"
#include "spatial/serialization.h"
#include "spatial/spatial_histogram.h"

namespace privtree::release {
namespace {

/// State every adapter tracks across Fit (or restores from an envelope).
struct FitState {
  bool fitted = false;
  std::size_t dim = 0;
  double epsilon_spent = 0.0;
};

/// Shared bookkeeping for the built-in adapters: the canonical options text
/// the method was created with (persisted in the envelope) and the fit
/// state — restored verbatim when a synopsis is loaded from disk.
class BuiltinMethod : public Method {
 protected:
  explicit BuiltinMethod(const MethodOptions& o)
      : options_text_(o.ToString()) {}
  explicit BuiltinMethod(const SynopsisEnvelope& env)
      : options_text_(env.options_text),
        state_{true, env.metadata.dim, env.metadata.epsilon_spent} {}

  /// Envelope + payload write shared by every Save override; callers have
  /// checked state_.fitted.
  Status SaveSynopsis(std::ostream& out, std::string_view payload) const {
    return WriteSynopsis(out, Metadata(), options_text_, payload);
  }

  Status NotFitted() const {
    return Status::InvalidArgument("Save requires a fitted method");
  }

  std::string options_text_;
  FitState state_;
};

/// The `count_quantum` knob of the tree-family methods: released counts are
/// snapped to multiples of the quantum as post-processing (DP-safe), which
/// lets the v3 payload store them as group-varint integers instead of raw
/// doubles.  0 (the default) disables quantization.
double ParseCountQuantum(const MethodOptions& o) {
  return o.GetDouble("count_quantum", 0.0);
}

/// PrivTree (Section 3.4): the paper's method.
class PrivTreeMethod final : public BuiltinMethod {
 public:
  explicit PrivTreeMethod(const MethodOptions& o)
      : BuiltinMethod(o),
        options_(ParsePrivTreeHistogramOptions(o)),
        count_quantum_(ParseCountQuantum(o)) {}

  PrivTreeMethod(const SynopsisEnvelope& env, SpatialHistogram hist)
      : BuiltinMethod(env),
        options_(ParsePrivTreeHistogramOptions(
            MethodOptions::Parse(env.options_text))),
        count_quantum_(
            ParseCountQuantum(MethodOptions::Parse(env.options_text))),
        hist_(std::move(hist)) {
    RebuildBatchIndex();
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    hist_ = BuildPrivTreeHistogram(points, domain, state_.epsilon_spent,
                                   options_, rng);
    for (double& c : hist_.count) c = QuantizeCount(c, count_quantum_);
    RebuildBatchIndex();
  }

  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return hist_.Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return batch_.Query(queries);
  }

  MethodMetadata Metadata() const override {
    return {"privtree", state_.dim, state_.epsilon_spent, hist_.tree.size(),
            hist_.tree.empty() ? 0 : hist_.tree.Height()};
  }

  Status Save(std::ostream& out) const override {
    if (!state_.fitted) return NotFitted();
    std::string payload;
    ByteWriter w(&payload);
    WriteSpatialTreeBodyCompressed(w, hist_.tree, hist_.count,
                                   count_quantum_);
    return SaveSynopsis(out, payload);
  }

 private:
  void RebuildBatchIndex() {
    batch_ = TreeBatchIndex(hist_.tree, hist_.count,
                            [](const SpatialCell& c) -> const Box& {
                              return c.box;
                            });
  }

  PrivTreeHistogramOptions options_;
  double count_quantum_ = 0.0;
  SpatialHistogram hist_;
  TreeBatchIndex batch_;
};

/// SimpleTree (Algorithm 1): the fixed-height baseline.
class SimpleTreeMethod final : public BuiltinMethod {
 public:
  explicit SimpleTreeMethod(const MethodOptions& o)
      : BuiltinMethod(o),
        options_(ParseSimpleTreeHistogramOptions(o)),
        count_quantum_(ParseCountQuantum(o)) {}

  SimpleTreeMethod(const SynopsisEnvelope& env, SpatialHistogram hist)
      : BuiltinMethod(env),
        options_(ParseSimpleTreeHistogramOptions(
            MethodOptions::Parse(env.options_text))),
        count_quantum_(
            ParseCountQuantum(MethodOptions::Parse(env.options_text))),
        hist_(std::move(hist)) {
    RebuildBatchIndex();
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    hist_ = BuildSimpleTreeHistogram(points, domain, state_.epsilon_spent,
                                     options_, rng);
    for (double& c : hist_.count) c = QuantizeCount(c, count_quantum_);
    RebuildBatchIndex();
  }

  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return hist_.Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return batch_.Query(queries);
  }

  MethodMetadata Metadata() const override {
    return {"simpletree", state_.dim, state_.epsilon_spent,
            hist_.tree.size(), hist_.tree.empty() ? 0 : hist_.tree.Height()};
  }

  Status Save(std::ostream& out) const override {
    if (!state_.fitted) return NotFitted();
    std::string payload;
    ByteWriter w(&payload);
    WriteSpatialTreeBodyCompressed(w, hist_.tree, hist_.count,
                                   count_quantum_);
    return SaveSynopsis(out, payload);
  }

 private:
  void RebuildBatchIndex() {
    batch_ = TreeBatchIndex(hist_.tree, hist_.count,
                            [](const SpatialCell& c) -> const Box& {
                              return c.box;
                            });
  }

  SimpleTreeHistogramOptions options_;
  double count_quantum_ = 0.0;
  SpatialHistogram hist_;
  TreeBatchIndex batch_;
};

/// Shared adapter for the builders that return a flat GridHistogram (UG,
/// DAWA, Privelet*); queries go through the O(4^d) prefix-sum lattice, and
/// QueryBatch through the grid's allocation-free one-pass batch path.  The
/// whole family shares one payload codec (hist/grid_codec.h).
class GridMethodBase : public BuiltinMethod {
 public:
  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return grid_->Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return grid_->QueryBatch(queries);
  }

  Status Save(std::ostream& out) const override {
    if (!state_.fitted) return NotFitted();
    std::string payload;
    ByteWriter w(&payload);
    WriteGridHistogram(w, *grid_);
    return SaveSynopsis(out, payload);
  }

 protected:
  explicit GridMethodBase(const MethodOptions& o) : BuiltinMethod(o) {}
  GridMethodBase(const SynopsisEnvelope& env, GridHistogram grid)
      : BuiltinMethod(env) {
    grid_.emplace(std::move(grid));
  }

  std::optional<GridHistogram> grid_;
};

class UniformGridMethod final : public GridMethodBase {
 public:
  explicit UniformGridMethod(const MethodOptions& o)
      : GridMethodBase(o), options_(ParseOptions(o)) {}

  UniformGridMethod(const SynopsisEnvelope& env, GridHistogram grid)
      : GridMethodBase(env, std::move(grid)),
        options_(ParseOptions(MethodOptions::Parse(env.options_text))) {}

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    grid_.emplace(BuildUniformGrid(points, domain, state_.epsilon_spent,
                                   options_, rng));
  }

  MethodMetadata Metadata() const override {
    return {"ug", state_.dim, state_.epsilon_spent,
            grid_ ? grid_->total_cells() : 0, 0};
  }

 private:
  static UniformGridOptions ParseOptions(const MethodOptions& o) {
    RequireKnownKeys(o, {"cell_scale", "c0"});
    UniformGridOptions out;
    out.cell_scale = o.GetDouble("cell_scale", out.cell_scale);
    out.c0 = o.GetDouble("c0", out.c0);
    return out;
  }

  UniformGridOptions options_;
};

class DawaMethod final : public GridMethodBase {
 public:
  explicit DawaMethod(const MethodOptions& o)
      : GridMethodBase(o), options_(ParseOptions(o)) {}

  DawaMethod(const SynopsisEnvelope& env, GridHistogram grid)
      : GridMethodBase(env, std::move(grid)),
        options_(ParseOptions(MethodOptions::Parse(env.options_text))) {}

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    grid_.emplace(BuildDawaHistogram(points, domain, state_.epsilon_spent,
                                     options_, rng));
  }

  MethodMetadata Metadata() const override {
    return {"dawa", state_.dim, state_.epsilon_spent,
            grid_ ? grid_->total_cells() : 0, 0};
  }

 private:
  static DawaOptions ParseOptions(const MethodOptions& o) {
    RequireKnownKeys(o, {"target_total_cells", "partition_budget_fraction",
                         "measure_branching"});
    DawaOptions out;
    out.target_total_cells =
        o.GetInt("target_total_cells", out.target_total_cells);
    out.partition_budget_fraction = o.GetDouble(
        "partition_budget_fraction", out.partition_budget_fraction);
    out.measure_branching =
        o.GetInt("measure_branching", out.measure_branching);
    return out;
  }

  DawaOptions options_;
};

class WaveletMethod final : public GridMethodBase {
 public:
  explicit WaveletMethod(const MethodOptions& o)
      : GridMethodBase(o), options_(ParseOptions(o)) {}

  WaveletMethod(const SynopsisEnvelope& env, GridHistogram grid)
      : GridMethodBase(env, std::move(grid)),
        options_(ParseOptions(MethodOptions::Parse(env.options_text))) {}

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    grid_.emplace(BuildPriveletHistogram(points, domain, state_.epsilon_spent,
                                         options_, rng));
  }

  MethodMetadata Metadata() const override {
    return {"wavelet", state_.dim, state_.epsilon_spent,
            grid_ ? grid_->total_cells() : 0, 0};
  }

 private:
  static PriveletOptions ParseOptions(const MethodOptions& o) {
    RequireKnownKeys(o, {"target_total_cells"});
    PriveletOptions out;
    out.target_total_cells =
        o.GetInt("target_total_cells", out.target_total_cells);
    return out;
  }

  PriveletOptions options_;
};

class AdaptiveGridMethod final : public BuiltinMethod {
 public:
  explicit AdaptiveGridMethod(const MethodOptions& o)
      : BuiltinMethod(o), options_(ParseOptions(o)) {}

  AdaptiveGridMethod(const SynopsisEnvelope& env, AdaptiveGrid grid)
      : BuiltinMethod(env),
        options_(ParseOptions(MethodOptions::Parse(env.options_text))) {
    grid_.emplace(std::move(grid));
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    grid_.emplace(points, domain, state_.epsilon_spent, options_, rng);
  }

  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return grid_->Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return grid_->QueryBatch(queries);
  }

  MethodMetadata Metadata() const override {
    return {"ag", state_.dim, state_.epsilon_spent,
            grid_ ? grid_->TotalCells() : 0, 2};
  }

  Status Save(std::ostream& out) const override {
    if (!state_.fitted) return NotFitted();
    std::string payload;
    ByteWriter w(&payload);
    WriteAdaptiveGridBodyCompressed(w, *grid_);
    return SaveSynopsis(out, payload);
  }

 private:
  static AdaptiveGridOptions ParseOptions(const MethodOptions& o) {
    RequireKnownKeys(o, {"alpha", "c1", "c2", "cell_scale"});
    AdaptiveGridOptions out;
    out.alpha = o.GetDouble("alpha", out.alpha);
    out.c1 = o.GetDouble("c1", out.c1);
    out.c2 = o.GetDouble("c2", out.c2);
    out.cell_scale = o.GetDouble("cell_scale", out.cell_scale);
    return out;
  }

  AdaptiveGridOptions options_;
  std::optional<AdaptiveGrid> grid_;
};

class KdTreeMethod final : public BuiltinMethod {
 public:
  explicit KdTreeMethod(const MethodOptions& o)
      : BuiltinMethod(o),
        options_(ParseOptions(o)),
        count_quantum_(ParseCountQuantum(o)) {}

  KdTreeMethod(const SynopsisEnvelope& env, KdTreeHistogram hist)
      : BuiltinMethod(env),
        options_(ParseOptions(MethodOptions::Parse(env.options_text))),
        count_quantum_(
            ParseCountQuantum(MethodOptions::Parse(env.options_text))) {
    tree_.emplace(std::move(hist));
    RebuildBatchIndex();
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    tree_.emplace(points, domain, state_.epsilon_spent, options_, rng);
    if (count_quantum_ > 0.0) {
      DecompTree<Box> tree = tree_->tree();
      std::vector<double> counts = tree_->counts();
      for (double& c : counts) c = QuantizeCount(c, count_quantum_);
      tree_.emplace(
          KdTreeHistogram::Restore(std::move(tree), std::move(counts)));
    }
    RebuildBatchIndex();
  }

  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return tree_->Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return batch_.Query(queries);
  }

  MethodMetadata Metadata() const override {
    return {"kdtree", state_.dim, state_.epsilon_spent,
            tree_ ? tree_->tree().size() : 0,
            tree_ ? tree_->tree().Height() : 0};
  }

  Status Save(std::ostream& out) const override {
    if (!state_.fitted) return NotFitted();
    std::string payload;
    ByteWriter w(&payload);
    WriteBoxTreeBodyCompressed(w, tree_->tree(), tree_->counts(),
                               count_quantum_);
    return SaveSynopsis(out, payload);
  }

 private:
  static KdTreeOptions ParseOptions(const MethodOptions& o) {
    RequireKnownKeys(o, {"height", "split_budget_fraction", "count_quantum"});
    KdTreeOptions out;
    out.height = static_cast<std::int32_t>(o.GetInt("height", out.height));
    out.split_budget_fraction =
        o.GetDouble("split_budget_fraction", out.split_budget_fraction);
    return out;
  }

  void RebuildBatchIndex() {
    batch_ = TreeBatchIndex(tree_->tree(), tree_->counts(),
                            [](const Box& b) -> const Box& { return b; });
  }

  KdTreeOptions options_;
  double count_quantum_ = 0.0;
  std::optional<KdTreeHistogram> tree_;
  TreeBatchIndex batch_;
};

class HierarchyMethod final : public BuiltinMethod {
 public:
  explicit HierarchyMethod(const MethodOptions& o)
      : BuiltinMethod(o), options_(ParseOptions(o)) {}

  HierarchyMethod(const SynopsisEnvelope& env, HierarchyHistogram hier)
      : BuiltinMethod(env),
        options_(ParseOptions(MethodOptions::Parse(env.options_text))) {
    hier_.emplace(std::move(hier));
  }

  void Fit(const PointSet& points, const Box& domain, PrivacyBudget& budget,
           Rng& rng) override {
    PRIVTREE_CHECK(!state_.fitted);
    state_ = {true, domain.dim(), budget.SpendRemaining()};
    hier_.emplace(points, domain, state_.epsilon_spent, options_, rng);
  }

  double Query(const Box& q) const override {
    PRIVTREE_CHECK(state_.fitted);
    return hier_->Query(q);
  }

  std::vector<double> QueryBatch(std::span<const Box> queries) const override {
    PRIVTREE_CHECK(state_.fitted);
    return hier_->QueryBatch(queries);
  }

  MethodMetadata Metadata() const override {
    return {"hierarchy", state_.dim, state_.epsilon_spent,
            hier_ ? hier_->TotalCounts() : 0,
            hier_ ? hier_->height() - 1 : 0};
  }

  Status Save(std::ostream& out) const override {
    if (!state_.fitted) return NotFitted();
    std::string payload;
    ByteWriter w(&payload);
    WriteBox(w, hier_->domain());
    w.I32(hier_->height());
    w.I64(hier_->branching());
    w.U32(hier_->consistent() ? 1 : 0);
    const auto& levels = hier_->level_counts();
    for (std::int32_t l = 1; l < hier_->height(); ++l) {
      w.F64Span(levels[l]);
    }
    return SaveSynopsis(out, payload);
  }

 private:
  static HierarchyOptions ParseOptions(const MethodOptions& o) {
    RequireKnownKeys(o, {"height", "target_leaf_resolution",
                         "constrained_inference"});
    HierarchyOptions out;
    out.height = static_cast<std::int32_t>(o.GetInt("height", out.height));
    out.target_leaf_resolution =
        o.GetInt("target_leaf_resolution", out.target_leaf_resolution);
    out.constrained_inference =
        o.GetBool("constrained_inference", out.constrained_inference);
    return out;
  }

  HierarchyOptions options_;
  std::optional<HierarchyHistogram> hier_;
};

template <typename T>
MethodFactory FactoryFor() {
  return [](const MethodOptions& options) -> std::unique_ptr<Method> {
    return std::make_unique<T>(options);
  };
}

/// Loader for the spatial tree family (PrivTree, SimpleTree).  v3 payloads
/// carry the compressed tree body, v2 the raw node array; both restore the
/// same histogram bit for bit.
template <typename T>
MethodLoader SpatialTreeLoaderFor() {
  return [](const SynopsisEnvelope& env,
            ByteReader& payload) -> Result<std::unique_ptr<Method>> {
    SpatialHistogram hist;
    Status s = env.format_version >= kSynopsisFormatVersion
                   ? ReadSpatialTreeBodyCompressed(payload, env.metadata.dim,
                                                   &hist.tree, &hist.count)
                   : ReadSpatialTreeBody(payload, env.metadata.dim,
                                         &hist.tree, &hist.count);
    if (!s.ok()) return s;
    return std::unique_ptr<Method>(
        std::make_unique<T>(env, std::move(hist)));
  };
}

/// Loader for the flat-grid family (UG, DAWA, Privelet*).
template <typename T>
MethodLoader GridLoaderFor() {
  return [](const SynopsisEnvelope& env,
            ByteReader& payload) -> Result<std::unique_ptr<Method>> {
    auto grid = ReadGridHistogram(payload, env.metadata.dim);
    if (!grid.ok()) return grid.status();
    return std::unique_ptr<Method>(
        std::make_unique<T>(env, std::move(grid).value()));
  };
}

Result<std::unique_ptr<Method>> LoadKdTree(const SynopsisEnvelope& env,
                                           ByteReader& payload) {
  DecompTree<Box> tree;
  std::vector<double> counts;
  Status s = env.format_version >= kSynopsisFormatVersion
                 ? ReadBoxTreeBodyCompressed(payload, env.metadata.dim, &tree,
                                             &counts)
                 : ReadBoxTreeBody(payload, env.metadata.dim, &tree, &counts);
  if (!s.ok()) return s;
  return std::unique_ptr<Method>(std::make_unique<KdTreeMethod>(
      env, KdTreeHistogram::Restore(std::move(tree), std::move(counts))));
}

/// The v2 AG payload: one full WriteGridHistogram record per level-1 cell.
Result<std::unique_ptr<Method>> LoadAdaptiveGridV2(const SynopsisEnvelope& env,
                                                   ByteReader& payload) {
  std::int64_t m1 = 0;
  if (!payload.I64(&m1) || m1 < 1) {
    return Status::InvalidArgument("ag payload: bad level-1 granularity");
  }
  Box domain;
  std::string box_error;
  if (!ReadBox(payload, 2, &domain, &box_error)) {
    return Status::InvalidArgument("ag payload: " + box_error);
  }
  const std::uint64_t cells =
      static_cast<std::uint64_t>(m1) * static_cast<std::uint64_t>(m1);
  std::vector<double> level1;
  if (m1 > 1'000'000 || !payload.F64Vec(cells, &level1)) {
    return Status::InvalidArgument("ag payload: truncated level-1 counts");
  }
  std::vector<GridHistogram> level2;
  for (std::uint64_t i = 0; i < cells; ++i) {
    auto sub = ReadGridHistogram(payload, 2);
    if (!sub.ok()) return sub.status();
    level2.push_back(std::move(sub).value());
  }
  return std::unique_ptr<Method>(std::make_unique<AdaptiveGridMethod>(
      env, AdaptiveGrid(std::move(domain), m1, std::move(level1),
                        std::move(level2))));
}

Result<std::unique_ptr<Method>> LoadAdaptiveGrid(const SynopsisEnvelope& env,
                                                 ByteReader& payload) {
  if (env.format_version < kSynopsisFormatVersion) {
    return LoadAdaptiveGridV2(env, payload);
  }
  auto grid = ReadAdaptiveGridBodyCompressed(payload);
  if (!grid.ok()) return grid.status();
  return std::unique_ptr<Method>(
      std::make_unique<AdaptiveGridMethod>(env, std::move(grid).value()));
}

Result<std::unique_ptr<Method>> LoadHierarchy(const SynopsisEnvelope& env,
                                              ByteReader& payload) {
  Box domain;
  std::string box_error;
  if (!ReadBox(payload, env.metadata.dim, &domain, &box_error)) {
    return Status::InvalidArgument("hierarchy payload: " + box_error);
  }
  std::int32_t height = 0;
  std::int64_t branching = 0;
  std::uint32_t consistent = 0;
  if (!payload.I32(&height) || !payload.I64(&branching) ||
      !payload.U32(&consistent) || height < 2 || height > 64 ||
      branching < 2 || branching > (std::int64_t{1} << 20) ||
      consistent > 1) {
    return Status::InvalidArgument("hierarchy payload: bad header");
  }
  const std::size_t d = env.metadata.dim;
  std::vector<std::vector<double>> counts(height);
  std::uint64_t res = 1;
  for (std::int32_t l = 1; l < height; ++l) {
    // res^d cells must fit in the bytes actually present, checked with
    // overflow-safe arithmetic so a corrupted header can never force a huge
    // allocation.
    bool too_big =
        res > payload.remaining() / 8 / static_cast<std::uint64_t>(branching);
    if (!too_big) res *= static_cast<std::uint64_t>(branching);
    std::uint64_t cells = 1;
    for (std::size_t j = 0; !too_big && j < d; ++j) {
      if (cells > payload.remaining() / 8 / res) {
        too_big = true;
        break;
      }
      cells *= res;
    }
    if (too_big || !payload.F64Vec(cells, &counts[l])) {
      return Status::InvalidArgument("hierarchy payload: truncated level " +
                                     std::to_string(l));
    }
  }
  return std::unique_ptr<Method>(std::make_unique<HierarchyMethod>(
      env, HierarchyHistogram::Restore(std::move(domain), height, branching,
                                       std::move(counts), consistent == 1)));
}

}  // namespace

std::unique_ptr<Method> WrapSpatialHistogram(std::string_view method,
                                             SpatialHistogram hist,
                                             double epsilon_spent) {
  PRIVTREE_CHECK(!hist.tree.empty());
  SynopsisEnvelope env;
  env.metadata.method = std::string(method);
  env.metadata.dim = hist.tree.node(0).domain.box.dim();
  env.metadata.epsilon_spent = epsilon_spent;
  if (method == "simpletree") {
    return std::make_unique<SimpleTreeMethod>(env, std::move(hist));
  }
  PRIVTREE_CHECK(method == "privtree");
  return std::make_unique<PrivTreeMethod>(env, std::move(hist));
}

PrivTreeHistogramOptions ParsePrivTreeHistogramOptions(
    const MethodOptions& options) {
  RequireKnownKeys(options, {"dims_per_split", "tree_budget_fraction",
                             "max_depth", "count_quantum"});
  PrivTreeHistogramOptions out;
  out.dims_per_split =
      static_cast<int>(options.GetInt("dims_per_split", out.dims_per_split));
  out.tree_budget_fraction =
      options.GetDouble("tree_budget_fraction", out.tree_budget_fraction);
  out.max_depth =
      static_cast<std::int32_t>(options.GetInt("max_depth", out.max_depth));
  return out;
}

SimpleTreeHistogramOptions ParseSimpleTreeHistogramOptions(
    const MethodOptions& options) {
  RequireKnownKeys(options,
                   {"dims_per_split", "height", "theta", "count_quantum"});
  SimpleTreeHistogramOptions out;
  out.dims_per_split =
      static_cast<int>(options.GetInt("dims_per_split", out.dims_per_split));
  out.height = static_cast<std::int32_t>(options.GetInt("height", out.height));
  out.theta = options.GetDouble("theta", out.theta);
  return out;
}

void RegisterBuiltinMethods(MethodRegistry& registry) {
  using enum OptionType;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // The per-key ranges mirror the contract checks the fitters enforce
  // (fractions in (0,1), heights/branchings with hard minima) plus sanity
  // caps on size-driving knobs, so user-facing surfaces can reject an
  // out-of-range value with a clean error before an aborting
  // PRIVTREE_CHECK — a requirement once specs arrive over a socket.
  registry.Register(
      "privtree",
      {.description = "PrivTree decomposition + noisy leaf counts (Sec. 3.4)",
       .display = "PrivTree",
       // dims_per_split <= 0 means "use the default"; the upper bound is
       // the global dimensionality cap (ValidateSpec additionally checks
       // it against the served dataset's dim).
       .allowed_keys = {{"dims_per_split", kInt, 0, 8},
                        {"tree_budget_fraction", kDouble, 0, 1, true},
                        {"max_depth", kInt, 1, 4096},
                        {"count_quantum", kDouble, 0, kInf}},
       .factory = FactoryFor<PrivTreeMethod>(),
       .loader = SpatialTreeLoaderFor<PrivTreeMethod>()});
  registry.Register(
      "simpletree",
      {.description = "fixed-height noisy quadtree baseline (Algorithm 1)",
       .display = "SimpleTree",
       .allowed_keys = {{"dims_per_split", kInt, 0, 8},
                        {"height", kInt, 1, 64},
                        {"theta", kDouble},
                        {"count_quantum", kDouble, 0, kInf}},
       .factory = FactoryFor<SimpleTreeMethod>(),
       .loader = SpatialTreeLoaderFor<SimpleTreeMethod>()});
  registry.Register(
      "ug",
      {.description = "uniform grid (Qardaji et al., ICDE 2013)",
       .display = "UG",
       .allowed_keys = {{"cell_scale", kDouble, 0, 1024, true},
                        {"c0", kDouble, 0, kInf, true}},
       .factory = FactoryFor<UniformGridMethod>(),
       .loader = GridLoaderFor<UniformGridMethod>()});
  registry.Register(
      "ag",
      {.description = "two-level adaptive grid, 2-d only (ICDE 2013)",
       .display = "AG",
       .allowed_keys = {{"alpha", kDouble, 0, 1, true},
                        {"c1", kDouble, 0, kInf, true},
                        {"c2", kDouble, 0, kInf, true},
                        {"cell_scale", kDouble, 0, 1024, true}},
       .required_dim = 2,
       .factory = FactoryFor<AdaptiveGridMethod>(),
       .loader = LoadAdaptiveGrid});
  registry.Register(
      "kdtree",
      {.description = "private k-d tree with noisy-median splits ([51])",
       .display = "KD",
       .allowed_keys = {{"height", kInt, 1, 64},
                        {"split_budget_fraction", kDouble, 0, 1, true},
                        {"count_quantum", kDouble, 0, kInf}},
       .factory = FactoryFor<KdTreeMethod>(),
       .loader = LoadKdTree});
  registry.Register(
      "dawa",
      {.description = "data-aware partition + hierarchical measurement "
                      "(Li et al., PVLDB 2014)",
       .display = "DAWA",
       .allowed_keys = {{"target_total_cells", kInt, 1, 1 << 24},
                        {"partition_budget_fraction", kDouble, 0, 1, true},
                        {"measure_branching", kInt, 2, 1024}},
       .factory = FactoryFor<DawaMethod>(),
       .loader = GridLoaderFor<DawaMethod>()});
  registry.Register(
      "hierarchy",
      {.description = "complete noisy-count tree with constrained inference "
                      "(Qardaji et al., PVLDB 2013)",
       .display = "Hierarchy",
       .allowed_keys = {{"height", kInt, 2, 64},
                        {"target_leaf_resolution", kInt, 2, 1 << 20},
                        {"constrained_inference", kBool}},
       // The complete tree's leaf level grows as resolution^d; the paper
       // evaluates it on 2-d data only.
       .max_practical_dim = 2,
       .factory = FactoryFor<HierarchyMethod>(),
       .loader = LoadHierarchy});
  registry.Register(
      "wavelet",
      {.description = "Privelet*: noisy Haar coefficients (Xiao et al., "
                      "TKDE 2011)",
       .display = "Privelet*",
       .allowed_keys = {{"target_total_cells", kInt, 1, 1 << 24}},
       .factory = FactoryFor<WaveletMethod>(),
       .loader = GridLoaderFor<WaveletMethod>()});
  // The sequence pipeline of Sections 4–5 registers alongside the spatial
  // backends, so every registry-driven surface sees both kinds.
  RegisterSequenceMethods(registry);
}

}  // namespace privtree::release
