// String-keyed configuration for release methods.
//
// Every registered method accepts a MethodOptions bag; keys are parsed into
// the method's native option struct by its factory.  A flat string map keeps
// the registry, the CLI (`--options=k=v,...`) and config files decoupled
// from the per-method option structs.
#ifndef PRIVTREE_RELEASE_OPTIONS_H_
#define PRIVTREE_RELEASE_OPTIONS_H_

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dp/status.h"

namespace privtree::release {

/// Value type of a method option, for user-facing validation.
enum class OptionType { kDouble, kInt, kBool };

/// One advertised option key of a registered method, with the numeric
/// range its method accepts.  User-facing surfaces (the CLI, the serving
/// front end) screen values against the range *before* the method sees
/// them, so an out-of-range value from an untrusted client yields a clean
/// error instead of tripping the method's aborting contract checks.
struct OptionKey {
  std::string name;
  OptionType type = OptionType::kDouble;
  /// Valid numeric range (ignored for kBool).  `open_bounds` makes both
  /// ends strict — the "fraction in (0, 1)" case; an infinite end is
  /// always satisfied either way.
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  bool open_bounds = false;
};

/// Whether `value` parses completely as `type` ("1"/"0" are valid for all
/// three; "true"/"false" only for kBool).  Non-aborting — this is how
/// user-facing surfaces screen values before the aborting typed getters
/// see them.
bool ValueParsesAs(OptionType type, const std::string& value);

/// Full non-aborting screen of one option value against its key: type
/// parse plus declared range.  OK, or InvalidArgument with a diagnostic
/// naming the key and its valid range.
Status CheckOptionValue(const OptionKey& key, const std::string& value);

/// An ordered bag of `key=value` strings with typed accessors.
class MethodOptions {
 public:
  MethodOptions() = default;
  MethodOptions(
      std::initializer_list<std::pair<std::string, std::string>> entries);

  /// Parses "k1=v1,k2=v2" (empty text gives empty options).  Malformed
  /// entries (no '=', empty key) abort: option strings come from
  /// developer-controlled surfaces and a typo must not be silently dropped.
  /// User-facing surfaces (the CLI) should use TryParse instead.
  static MethodOptions Parse(std::string_view text);

  /// Non-aborting variant for user-supplied text: on success fills `out`
  /// and returns true; on a malformed entry fills `error` with a
  /// diagnostic and returns false.
  static bool TryParse(std::string_view text, MethodOptions* out,
                       std::string* error);

  void Set(std::string key, std::string value);

  bool Has(const std::string& key) const { return entries_.contains(key); }
  bool empty() const { return entries_.empty(); }

  /// Typed getters; return `fallback` when the key is absent and abort when
  /// the stored value does not parse as the requested type.
  std::string GetString(const std::string& key, std::string fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// All keys, sorted.
  std::vector<std::string> Keys() const;

  /// Canonical "k1=v1,k2=v2" form (keys sorted).
  std::string ToString() const;

 private:
  std::map<std::string, std::string> entries_;
};

/// Aborts with a diagnostic if `options` holds any key outside `allowed`.
/// Method factories call this so that a mistyped option name fails loudly
/// instead of silently running with defaults.
void RequireKnownKeys(const MethodOptions& options,
                      std::initializer_list<std::string_view> allowed);

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_OPTIONS_H_
