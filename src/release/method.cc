#include "release/method.h"

#include <string>

#include "dp/check.h"

namespace privtree::release {

Method::~Method() = default;

void Method::Fit(const Dataset& data, PrivacyBudget& budget, Rng& rng) {
  // Spatial methods only override the spatial overload; a sequence-kind
  // dataset reaching one of them means a caller skipped the registry-kind
  // screen (see registry.h Entry::kind).
  PRIVTREE_CHECK(data.is_spatial());
  Fit(data.points(), data.domain(), budget, rng);
}

void Method::Fit(const PointSet&, const Box&, PrivacyBudget&, Rng&) {
  PRIVTREE_CHECK(false);  // Sequence-only methods fit through Fit(Dataset).
}

double Method::Query(const Box&) const {
  PRIVTREE_CHECK(false);  // Sequence methods answer SequenceQuery batches.
  return 0.0;
}

std::vector<double> Method::QueryBatch(std::span<const Box> queries) const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const Box& q : queries) out.push_back(Query(q));
  return out;
}

std::vector<double> Method::QueryBatch(
    std::span<const SequenceQuery>) const {
  PRIVTREE_CHECK(false);  // Spatial methods answer Box batches.
  return {};
}

Status Method::Save(std::ostream&) const {
  return Status::InvalidArgument("method \"" + Metadata().method +
                                 "\" does not support serialization");
}

}  // namespace privtree::release
