#include "release/method.h"

namespace privtree::release {

Method::~Method() = default;

std::vector<double> Method::QueryBatch(std::span<const Box> queries) const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const Box& q : queries) out.push_back(Query(q));
  return out;
}

Status Method::Save(std::ostream&) const {
  return Status::InvalidArgument("method \"" + Metadata().method +
                                 "\" does not support serialization");
}

}  // namespace privtree::release
