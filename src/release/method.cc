#include "release/method.h"

namespace privtree::release {

Method::~Method() = default;

std::vector<double> Method::QueryBatch(std::span<const Box> queries) const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const Box& q : queries) out.push_back(Query(q));
  return out;
}

}  // namespace privtree::release
