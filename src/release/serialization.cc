#include "release/serialization.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/byteio.h"
#include "core/fault.h"
#include "release/builtin_methods.h"
#include "release/options.h"
#include "release/sequence_methods.h"
#include "seq/pst_serialization.h"
#include "spatial/serialization.h"

namespace privtree::release {

namespace {

constexpr std::string_view kV1Magic = "privtree-histogram v1";

/// v2 header: magic (8) + version (4) + body size (8) + body checksum (8).
constexpr std::size_t kHeaderBytesV2 = 28;
/// v3 appends a u64 header checksum over the first 28 bytes.
constexpr std::size_t kHeaderBytesV3 = 36;

Status ValidateOptionsText(const MethodRegistry& registry,
                           const std::string& method,
                           const std::string& options_text,
                           MethodOptions* out) {
  std::string error;
  if (!MethodOptions::TryParse(options_text, out, &error)) {
    return Status::InvalidArgument("synopsis options: " + error);
  }
  const auto& allowed = registry.AllowedKeys(method);
  for (const std::string& key : out->Keys()) {
    const auto it = std::find_if(
        allowed.begin(), allowed.end(),
        [&](const OptionKey& k) { return k.name == key; });
    if (it == allowed.end()) {
      return Status::InvalidArgument("synopsis options: method \"" + method +
                                     "\" has no option \"" + key + "\"");
    }
    if (!ValueParsesAs(it->type, out->GetString(key, ""))) {
      return Status::InvalidArgument("synopsis options: bad value for \"" +
                                     key + "\"");
    }
  }
  return Status::OK();
}

}  // namespace

Status WriteSynopsis(std::ostream& out, const MethodMetadata& metadata,
                     std::string_view options_text, std::string_view payload,
                     std::uint32_t version) {
  if (version != kSynopsisFormatVersion &&
      version != kSynopsisFormatVersionV2) {
    return Status::InvalidArgument("synopsis: unwritable format version " +
                                   std::to_string(version));
  }
  std::string body;
  ByteWriter w(&body);
  w.Str(metadata.method);
  w.Str(options_text);
  w.U64(metadata.dim);
  w.F64(metadata.epsilon_spent);
  w.U64(metadata.synopsis_size);
  w.I32(metadata.height);
  body.append(payload.data(), payload.size());

  std::string header;
  ByteWriter h(&header);
  header.append(kSynopsisMagic.data(), kSynopsisMagic.size());
  h.U32(version);
  h.U64(body.size());
  h.U64(ByteChecksum(body));
  if (version >= kSynopsisFormatVersion) {
    h.U64(ByteChecksum(header));  // Header checksum over bytes [0, 28).
  }

  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) return Status::IOError("synopsis write failure");
  return Status::OK();
}

Result<std::unique_ptr<Method>> LoadMethod(std::istream& in,
                                           const MethodRegistry& registry) {
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("synopsis read failure");

  // Legacy v1 text files load through compat shims: the persisted releases
  // carry no method name or ε, so they come back as a "privtree" (spatial
  // tree) or "pst_privtree" (sequence PST) synopsis with epsilon_spent = 0.
  if (data.size() >= kV1Magic.size() &&
      std::string_view(data).substr(0, kV1Magic.size()) == kV1Magic) {
    std::istringstream text(data);
    auto hist = LoadSpatialHistogramText(text, "<v1 synopsis>");
    if (!hist.ok()) return hist.status();
    return WrapSpatialHistogram("privtree", std::move(hist).value(),
                                /*epsilon_spent=*/0.0);
  }
  if (data.size() >= kPstV1Magic.size() &&
      std::string_view(data).substr(0, kPstV1Magic.size()) == kPstV1Magic) {
    std::istringstream text(data);
    auto model = LoadPstModelStream(text, "<pst v1 synopsis>");
    if (!model.ok()) return model.status();
    return WrapPstModel(std::move(model).value(), /*epsilon_spent=*/0.0);
  }

  if (data.size() < kHeaderBytesV2 ||
      std::string_view(data).substr(0, kSynopsisMagic.size()) !=
          kSynopsisMagic) {
    return Status::InvalidArgument("synopsis: bad magic");
  }
  ByteReader header(std::string_view(data).substr(kSynopsisMagic.size()));
  std::uint32_t version = 0;
  std::uint64_t body_size = 0, checksum = 0;
  header.U32(&version);
  header.U64(&body_size);
  header.U64(&checksum);
  if (version != kSynopsisFormatVersion &&
      version != kSynopsisFormatVersionV2) {
    return Status::InvalidArgument("synopsis: unsupported format version " +
                                   std::to_string(version));
  }
  std::size_t header_bytes = kHeaderBytesV2;
  if (version >= kSynopsisFormatVersion) {
    header_bytes = kHeaderBytesV3;
    std::uint64_t header_checksum = 0;
    if (data.size() < kHeaderBytesV3 || !header.U64(&header_checksum)) {
      return Status::InvalidArgument("synopsis: truncated header");
    }
    if (ByteChecksum(std::string_view(data).substr(0, kHeaderBytesV2)) !=
        header_checksum) {
      return Status::InvalidArgument("synopsis: header checksum mismatch");
    }
  }
  const std::string_view body =
      std::string_view(data).substr(header_bytes);
  if (body_size != body.size()) {
    return Status::InvalidArgument(
        body_size > body.size() ? "synopsis: truncated body"
                                : "synopsis: trailing bytes after body");
  }
  if (ByteChecksum(body) != checksum) {
    return Status::InvalidArgument("synopsis: checksum mismatch");
  }

  ByteReader r(body);
  SynopsisEnvelope envelope;
  envelope.format_version = version;
  std::uint64_t dim = 0, synopsis_size = 0;
  if (!r.Str(&envelope.metadata.method) || !r.Str(&envelope.options_text) ||
      !r.U64(&dim) || !r.F64(&envelope.metadata.epsilon_spent) ||
      !r.U64(&synopsis_size) || !r.I32(&envelope.metadata.height)) {
    return Status::InvalidArgument("synopsis: truncated envelope");
  }
  if (!(envelope.metadata.epsilon_spent >= 0.0) ||
      !std::isfinite(envelope.metadata.epsilon_spent)) {
    return Status::InvalidArgument("synopsis: bad epsilon");
  }
  envelope.metadata.dim = dim;
  envelope.metadata.synopsis_size = synopsis_size;

  const std::string& name = envelope.metadata.method;
  if (!registry.Contains(name)) {
    return Status::NotFound("synopsis: unknown method \"" + name + "\"");
  }
  const MethodRegistry::Entry& entry = registry.Get(name);
  if (!entry.loader) {
    return Status::InvalidArgument("synopsis: method \"" + name +
                                   "\" has no registered loader");
  }
  // `dim` is kind-relative: spatial methods fit 1..8-dimensional domains;
  // sequence methods report the alphabet size.  The bound is checked only
  // after the registry lookup names the kind.
  const std::uint64_t max_dim =
      entry.kind == DatasetKind::kSequence ? kMaxAlphabetSize : 8;
  if (dim == 0 || dim > max_dim) {
    return Status::InvalidArgument("synopsis: bad dimensionality " +
                                   std::to_string(dim));
  }
  if (entry.required_dim != 0 && dim != entry.required_dim) {
    return Status::InvalidArgument(
        "synopsis: method \"" + name + "\" requires dim " +
        std::to_string(entry.required_dim) + ", file has " +
        std::to_string(dim));
  }
  MethodOptions options;
  if (Status s = ValidateOptionsText(registry, name, envelope.options_text,
                                     &options);
      !s.ok()) {
    return s;
  }

  auto loaded = entry.loader(envelope, r);
  if (!loaded.ok()) return loaded.status();
  if (!r.AtEnd()) {
    return Status::InvalidArgument("synopsis: trailing payload bytes");
  }

  // Cross-check the loader's reconstruction against the envelope: a
  // mismatch means a codec bug or a crafted file, and either way the
  // synopsis must not be served.
  const MethodMetadata metadata = loaded.value()->Metadata();
  if (metadata.method != name || metadata.dim != envelope.metadata.dim ||
      metadata.epsilon_spent != envelope.metadata.epsilon_spent ||
      metadata.synopsis_size != envelope.metadata.synopsis_size ||
      metadata.height != envelope.metadata.height) {
    return Status::InvalidArgument(
        "synopsis: loaded metadata does not match envelope");
  }
  return loaded;
}

Result<std::unique_ptr<Method>> LoadMethod(std::istream& in) {
  return LoadMethod(in, GlobalMethodRegistry());
}

Status SaveMethodToFile(const Method& method, const std::string& path,
                        bool durable) {
  // Serialize to memory first: the envelope is small, and a byte buffer
  // lets both the `partial` fault (a torn prefix, simulating a crash
  // mid-write) and the fsync path work on one code path.
  std::ostringstream buffer;
  if (Status s = method.Save(buffer); !s.ok()) return s;
  const std::string data = std::move(buffer).str();
  std::size_t write_size = data.size();
  if (auto f = PRIVTREE_FAULT("envelope.save"); f && f.MaybeSleep()) {
    if (f.kind == fault::Kind::kPartialWrite) {
      // A torn write *appears* to succeed — exactly what a crash between
      // write and rename leaves behind.  Recovery (quarantine scan,
      // checksum-verified loads) is what the chaos tests pin down.
      write_size /= 2;
    } else {
      return f.ToStatus("envelope.save");
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(data.data(), static_cast<std::streamsize>(write_size));
  out.flush();
  if (!out) return Status::IOError("write failure on " + path);
  out.close();
  if (durable) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) return Status::IOError("cannot reopen " + path + " to sync");
    const int synced = ::fsync(fd);
    ::close(fd);
    if (synced != 0) return Status::IOError("fsync failure on " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<Method>> LoadMethodFromFile(const std::string& path) {
  if (auto f = PRIVTREE_FAULT("envelope.load"); f && f.MaybeSleep()) {
    return f.ToStatus("envelope.load");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadMethod(in);
}

Status ProbeSynopsisFile(const std::string& path,
                         std::uint64_t* bytes_scanned) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  // One small read covers every header this probe can rule on: the v3
  // binary header (36 bytes) and both legacy text magic lines.
  char head[64];
  in.read(head, sizeof(head));
  const auto head_size = static_cast<std::size_t>(in.gcount());
  if (in.bad()) return Status::IOError("read failure on " + path);
  if (bytes_scanned != nullptr) *bytes_scanned += head_size;
  const std::string_view data(head, head_size);

  // Legacy v1 text formats carry no checksum; their magic is the best
  // cheap evidence available, and LoadMethod's parser rejects the rest.
  if (data.substr(0, kV1Magic.size()) == kV1Magic) return Status::OK();
  if (data.substr(0, kPstV1Magic.size()) == kPstV1Magic) return Status::OK();

  if (data.size() < kHeaderBytesV2 ||
      data.substr(0, kSynopsisMagic.size()) != kSynopsisMagic) {
    return Status::InvalidArgument("synopsis: bad magic");
  }
  ByteReader header(data.substr(kSynopsisMagic.size()));
  std::uint32_t version = 0;
  std::uint64_t body_size = 0, checksum = 0;
  header.U32(&version);
  header.U64(&body_size);
  header.U64(&checksum);
  if (version != kSynopsisFormatVersion &&
      version != kSynopsisFormatVersionV2) {
    return Status::InvalidArgument("synopsis: unsupported format version " +
                                   std::to_string(version));
  }

  if (version >= kSynopsisFormatVersion) {
    // v3: the header carries its own checksum and declares the body size,
    // so structural integrity (a damaged header, truncation, a torn tail)
    // is decidable without touching the body.  Silent body bit rot is
    // caught by the body checksum on first LoadMethod.
    std::uint64_t header_checksum = 0;
    if (data.size() < kHeaderBytesV3 || !header.U64(&header_checksum)) {
      return Status::InvalidArgument("synopsis: truncated header");
    }
    if (ByteChecksum(data.substr(0, kHeaderBytesV2)) != header_checksum) {
      return Status::InvalidArgument("synopsis: header checksum mismatch");
    }
    in.clear();
    in.seekg(0, std::ios::end);
    const auto file_size = in.tellg();
    if (file_size < 0) return Status::IOError("cannot stat " + path);
    const auto actual =
        static_cast<std::uint64_t>(file_size) - kHeaderBytesV3;
    if (body_size != actual) {
      return Status::InvalidArgument(
          body_size > actual ? "synopsis: truncated body"
                             : "synopsis: trailing bytes after body");
    }
    return Status::OK();
  }

  // v2: no header checksum — the only integrity evidence is the body
  // checksum, so the legacy probe reads the whole file.
  in.clear();
  in.seekg(0);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failure on " + path);
  if (bytes_scanned != nullptr && full.size() > head_size) {
    *bytes_scanned += full.size() - head_size;
  }
  const std::string_view body = std::string_view(full).substr(kHeaderBytesV2);
  if (body_size != body.size()) {
    return Status::InvalidArgument(
        body_size > body.size() ? "synopsis: truncated body"
                                : "synopsis: trailing bytes after body");
  }
  if (ByteChecksum(body) != checksum) {
    return Status::InvalidArgument("synopsis: checksum mismatch");
  }
  return Status::OK();
}

}  // namespace privtree::release
