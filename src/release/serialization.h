// The universal synopsis on-disk format: every registered release::Method
// persists through one versioned, self-describing binary envelope, so
// `privtree_cli build`/`query` and the SynopsisCache spill tier work for
// all backends, not just the spatial tree.
//
// ── Format spec (v3) ───────────────────────────────────────────────────────
//
// A synopsis file is a fixed header followed by a checksummed body.  All
// integers are little-endian; doubles are IEEE-754 binary64 bit patterns
// (so released values round-trip bit for bit).
//
//   offset  size  field
//   0       8     magic "PRIVTSYN"
//   8       4     u32 format version (currently 3; v1 is the legacy text
//                 format of spatial/serialization.h)
//   12      8     u64 body size in bytes
//   20      8     u64 body checksum (core/byteio.h ByteChecksum)
//   28      8     u64 header checksum (ByteChecksum of bytes [0, 28); v3+
//                 only) — lets the spill tier's warm-restart scan verify a
//                 file header-only, without reading the body
//   36      ...   body (exactly `body size` bytes; nothing may follow)
//
// v2 files have no header checksum (the body starts at offset 28) and
// carry the raw per-backend payloads documented below; they keep loading
// forever through the same LoadMethod entry point.  v3 bodies share the
// envelope fields but compress the structured payload sections with the
// core/codec.h primitives (delta + bit-packed tree topology, 2-bit
// box-bound codes against the parent, group-varint quantized counts — see
// spatial/serialization.h for the compressed tree body and the per-backend
// notes below).  Released doubles are stored verbatim unless the method
// opted into `count_quantum`, so loading stays bit-for-bit lossless.
//
//   body:
//     str   method name          (u32 length + bytes; a registry name)
//     str   options text         (canonical "k1=v1,k2=v2", sorted keys —
//                                 exactly what the method was created with)
//     u64   dim                  (dimensionality of the fitted domain;
//                                 sequence methods record the alphabet
//                                 size here)
//     f64   epsilon spent        (total ε consumed by Fit)
//     u64   synopsis size        (released nodes / cells, as Metadata())
//     i32   height               (decomposition height, as Metadata())
//     ...   per-backend payload  (the rest of the body)
//
// Per-backend payloads (v2 form; the → notes give the v3 compressed form):
//   privtree, simpletree   spatial tree body (spatial/serialization.h):
//                          u64 node count, then per node in id order
//                          {i32 parent, f64 count, f64 lo_j/hi_j × dim}
//                          → v3: compressed tree body (packed parents,
//                          root box + 2-bit bound codes, counts section)
//   kdtree                 the same body over plain boxes (v2 and v3)
//   ug, dawa, wavelet      grid body (hist/grid_codec.h): domain box,
//                          u64 cells per dim, f64 counts row-major
//                          (unchanged in v3 — noisy doubles don't pack)
//   ag                     v2: i64 m1, domain box, f64 level-1 counts
//                          (m1²), then m1² grid bodies (the level-2
//                          sub-grids, post-constrained-inference)
//                          → v3: i64 m1, domain box, f64 level-1 counts,
//                          group-varint per-cell granularities (2 per
//                          cell), then the concatenated raw sub-grid
//                          counts — sub-grid boxes are recomputed from the
//                          level-1 cell geometry, which is deterministic
//   hierarchy              domain box, i32 height, i64 branching,
//                          u32 consistent flag (0/1), then per level
//                          1..height-1 the flat f64 counts (sizes derived
//                          from branching; post-inference; unchanged in v3)
//   pst_privtree           u64 node count, then per node in id order
//                          {i32 parent, f64 hist × (alphabet+1)}; children
//                          are implied by parent links + creation order
//                          (the SplitNode sibling-group invariant)
//                          → v3: u64 node count, packed parents
//                          (core/codec.h PackDeltaI32), then the f64
//                          histograms in id order
//   ngram                  u64 node count, then per node in id order
//                          {i32 parent, f64 noisy count} under the same
//                          sibling-group invariant
//                          → v3: u64 node count, packed parents, then the
//                          f64 noisy counts in id order
//
// Loading re-derives every piece of derived state (prefix-sum lattices,
// summed-area tables, tree depths) deterministically from the released
// values, so a loaded synopsis answers Query/QueryBatch bit-for-bit
// identically to the in-memory fit, and Metadata() reports identical
// accounting.  Any corruption — truncation, bit flips, a wrong magic, an
// unknown method, trailing bytes — surfaces as a clean Status error.
#ifndef PRIVTREE_RELEASE_SERIALIZATION_H_
#define PRIVTREE_RELEASE_SERIALIZATION_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "dp/status.h"
#include "release/method.h"
#include "release/registry.h"

namespace privtree::release {

inline constexpr std::string_view kSynopsisMagic = "PRIVTSYN";
inline constexpr std::uint32_t kSynopsisFormatVersion = 3;
/// The previous raw-payload format, still loadable (spill dirs written
/// before the compressed envelopes landed keep warm-restarting).
inline constexpr std::uint32_t kSynopsisFormatVersionV2 = 2;

/// Writes the envelope header + body for a fitted method; backends call
/// this from their Save overrides with the payload they encoded.  `version`
/// selects the header layout and must match the payload encoding the
/// caller produced — production writers always use the default; tests use
/// kSynopsisFormatVersionV2 to pin the legacy format.
Status WriteSynopsis(std::ostream& out, const MethodMetadata& metadata,
                     std::string_view options_text, std::string_view payload,
                     std::uint32_t version = kSynopsisFormatVersion);

/// Reads one serialized synopsis from `in` (the whole remaining stream) and
/// reconstructs the fitted method through `registry`'s loader for the
/// recorded method name.  v1 text files — the legacy spatial tree format
/// and the legacy `privtree-pst v1` sequence format — are recognized by
/// their magic lines and loaded through compat shims as a "privtree" /
/// "pst_privtree" method with unknown (zero) ε.  Every malformed input
/// yields a Status error, never a crash or a partial synopsis.
Result<std::unique_ptr<Method>> LoadMethod(std::istream& in,
                                           const MethodRegistry& registry);

/// As above, against the global registry.
Result<std::unique_ptr<Method>> LoadMethod(std::istream& in);

/// File-path convenience wrappers (binary mode, whole-file).  `durable`
/// fsyncs the file before returning — the crash-safety contract the spill
/// tier's temp-write + atomic-rename discipline needs (a rename can outlive
/// an unsynced write in a crash, leaving a torn file under the final name).
Status SaveMethodToFile(const Method& method, const std::string& path,
                        bool durable = false);
Result<std::unique_ptr<Method>> LoadMethodFromFile(const std::string& path);

/// Cheap integrity probe of a synopsis file — no payload decode, no
/// registry lookup.  For v3 files this is header-only: magic, version,
/// header checksum, and declared body size vs the file's actual size, all
/// from one small read (the body checksum is deferred to LoadMethod, which
/// verifies it on first access).  v2 files, which carry no header
/// checksum, fall back to the legacy full read + body checksum; legacy v1
/// text files pass on magic alone.  OK means "worth loading"; any
/// structural corruption (truncation, a torn tail, a damaged header, zero
/// length) yields the reason.  The spill tier's warm-restart scan
/// quarantines files this rejects.  `bytes_scanned`, when non-null, is
/// incremented by the number of file bytes actually read — the startup-cost
/// stat the cache surfaces.
Status ProbeSynopsisFile(const std::string& path,
                         std::uint64_t* bytes_scanned = nullptr);

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_SERIALIZATION_H_
