// The universal synopsis on-disk format: every registered release::Method
// persists through one versioned, self-describing binary envelope, so
// `privtree_cli build`/`query` and the SynopsisCache spill tier work for
// all backends, not just the spatial tree.
//
// ── Format spec (v2) ───────────────────────────────────────────────────────
//
// A synopsis file is a fixed header followed by a checksummed body.  All
// integers are little-endian; doubles are IEEE-754 binary64 bit patterns
// (so released values round-trip bit for bit).
//
//   offset  size  field
//   0       8     magic "PRIVTSYN"
//   8       4     u32 format version (currently 2; v1 is the legacy text
//                 format of spatial/serialization.h)
//   12      8     u64 body size in bytes
//   20      8     u64 body checksum (core/byteio.h ByteChecksum)
//   28      ...   body (exactly `body size` bytes; nothing may follow)
//
//   body:
//     str   method name          (u32 length + bytes; a registry name)
//     str   options text         (canonical "k1=v1,k2=v2", sorted keys —
//                                 exactly what the method was created with)
//     u64   dim                  (dimensionality of the fitted domain;
//                                 sequence methods record the alphabet
//                                 size here)
//     f64   epsilon spent        (total ε consumed by Fit)
//     u64   synopsis size        (released nodes / cells, as Metadata())
//     i32   height               (decomposition height, as Metadata())
//     ...   per-backend payload  (the rest of the body)
//
// Per-backend payloads:
//   privtree, simpletree   spatial tree body (spatial/serialization.h):
//                          u64 node count, then per node in id order
//                          {i32 parent, f64 count, f64 lo_j/hi_j × dim}
//   kdtree                 the same body over plain boxes
//   ug, dawa, wavelet      grid body (hist/grid_codec.h): domain box,
//                          u64 cells per dim, f64 counts row-major
//   ag                     i64 m1, domain box, f64 level-1 counts (m1²),
//                          then m1² grid bodies (the level-2 sub-grids,
//                          post-constrained-inference)
//   hierarchy              domain box, i32 height, i64 branching,
//                          u32 consistent flag (0/1), then per level
//                          1..height-1 the flat f64 counts (sizes derived
//                          from branching; post-inference)
//   pst_privtree           u64 node count, then per node in id order
//                          {i32 parent, f64 hist × (alphabet+1)}; children
//                          are implied by parent links + creation order
//                          (the SplitNode sibling-group invariant)
//   ngram                  u64 node count, then per node in id order
//                          {i32 parent, f64 noisy count} under the same
//                          sibling-group invariant
//
// Loading re-derives every piece of derived state (prefix-sum lattices,
// summed-area tables, tree depths) deterministically from the released
// values, so a loaded synopsis answers Query/QueryBatch bit-for-bit
// identically to the in-memory fit, and Metadata() reports identical
// accounting.  Any corruption — truncation, bit flips, a wrong magic, an
// unknown method, trailing bytes — surfaces as a clean Status error.
#ifndef PRIVTREE_RELEASE_SERIALIZATION_H_
#define PRIVTREE_RELEASE_SERIALIZATION_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "dp/status.h"
#include "release/method.h"
#include "release/registry.h"

namespace privtree::release {

inline constexpr std::string_view kSynopsisMagic = "PRIVTSYN";
inline constexpr std::uint32_t kSynopsisFormatVersion = 2;

/// Writes the envelope header + body for a fitted method; backends call
/// this from their Save overrides with the payload they encoded.
Status WriteSynopsis(std::ostream& out, const MethodMetadata& metadata,
                     std::string_view options_text, std::string_view payload);

/// Reads one serialized synopsis from `in` (the whole remaining stream) and
/// reconstructs the fitted method through `registry`'s loader for the
/// recorded method name.  v1 text files — the legacy spatial tree format
/// and the legacy `privtree-pst v1` sequence format — are recognized by
/// their magic lines and loaded through compat shims as a "privtree" /
/// "pst_privtree" method with unknown (zero) ε.  Every malformed input
/// yields a Status error, never a crash or a partial synopsis.
Result<std::unique_ptr<Method>> LoadMethod(std::istream& in,
                                           const MethodRegistry& registry);

/// As above, against the global registry.
Result<std::unique_ptr<Method>> LoadMethod(std::istream& in);

/// File-path convenience wrappers (binary mode, whole-file).  `durable`
/// fsyncs the file before returning — the crash-safety contract the spill
/// tier's temp-write + atomic-rename discipline needs (a rename can outlive
/// an unsynced write in a crash, leaving a torn file under the final name).
Status SaveMethodToFile(const Method& method, const std::string& path,
                        bool durable = false);
Result<std::unique_ptr<Method>> LoadMethodFromFile(const std::string& path);

/// Cheap integrity probe of a synopsis file: magic, version, declared body
/// size vs actual, and body checksum — no payload decode, no registry
/// lookup.  OK means "worth loading"; any corruption (truncation, a torn
/// tail, bit flips, zero length) yields the reason.  Legacy v1 text files
/// pass on magic alone (they carry no checksum).  The spill tier's
/// warm-restart scan quarantines files this rejects.
Status ProbeSynopsisFile(const std::string& path);

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_SERIALIZATION_H_
