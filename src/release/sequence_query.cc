#include "release/sequence_query.h"

#include <string>

namespace privtree::release {

Status ValidateSequenceQuery(const SequenceQuery& query,
                             std::size_t alphabet_size) {
  switch (query.kind) {
    case SequenceQueryKind::kFrequency:
    case SequenceQueryKind::kPrefixCount: {
      if (query.symbols.empty()) {
        return Status::InvalidArgument(
            "sequence query needs at least one symbol");
      }
      if (query.symbols.size() > kMaxSequenceQuerySymbols) {
        return Status::InvalidArgument(
            "sequence query has " + std::to_string(query.symbols.size()) +
            " symbols (max " + std::to_string(kMaxSequenceQuerySymbols) + ")");
      }
      for (const Symbol s : query.symbols) {
        if (s >= alphabet_size) {
          return Status::InvalidArgument(
              "sequence query symbol " + std::to_string(s) +
              " outside alphabet [0, " + std::to_string(alphabet_size) + ")");
        }
      }
      return Status::OK();
    }
    case SequenceQueryKind::kTopK: {
      if (query.k < 1 || query.k > kMaxTopKRank) {
        return Status::InvalidArgument(
            "top-k rank must be in [1, " + std::to_string(kMaxTopKRank) +
            "] (got " + std::to_string(query.k) + ")");
      }
      if (query.max_len < 1 || query.max_len > kMaxTopKLen) {
        return Status::InvalidArgument(
            "top-k max_len must be in [1, " + std::to_string(kMaxTopKLen) +
            "] (got " + std::to_string(query.max_len) + ")");
      }
      if (alphabet_size > 255) {
        return Status::InvalidArgument(
            "top-k queries require alphabet_size <= 255 (packed candidate "
            "keys); serving alphabet is " + std::to_string(alphabet_size));
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument(
      "unknown sequence query kind " +
      std::to_string(static_cast<std::uint32_t>(query.kind)));
}

}  // namespace privtree::release
