#include "release/session.h"

#include <utility>

#include "dp/check.h"
#include "release/registry.h"

namespace privtree::release {

ReleaseSession::ReleaseSession(Dataset data, double total_epsilon,
                               std::uint64_t seed)
    : data_(std::move(data)), budget_(total_epsilon), rng_(seed) {}

ReleaseSession::ReleaseSession(const PointSet& points, Box domain,
                               double total_epsilon, std::uint64_t seed)
    : ReleaseSession(Dataset(points, std::move(domain)), total_epsilon,
                     seed) {}

ReleaseSession::ReleaseSession(const SequenceDataset& sequences,
                               double total_epsilon, std::uint64_t seed)
    : ReleaseSession(Dataset(sequences), total_epsilon, seed) {}

std::unique_ptr<Method> ReleaseSession::Release(std::string_view method,
                                                double epsilon,
                                                const MethodOptions& options) {
  // A method of the wrong kind would abort inside Fit with a less helpful
  // message; check here where the registry name is still in hand.
  PRIVTREE_CHECK(GlobalMethodRegistry().Kind(method) == data_.kind());
  auto instance = GlobalMethodRegistry().Create(method, options);
  // Account against the session first, then hand the method its own slice;
  // the method must drain the slice completely (Fit contract).
  budget_.Spend(epsilon);
  PrivacyBudget slice(epsilon);
  Rng rng = rng_.Fork();
  instance->Fit(data_, slice, rng);
  PRIVTREE_CHECK_LE(slice.remaining(), 1e-12 * epsilon);
  return instance;
}

std::unique_ptr<Method> ReleaseSession::ReleaseRemaining(
    std::string_view method, const MethodOptions& options) {
  return Release(method, budget_.remaining(), options);
}

}  // namespace privtree::release
