#include "release/session.h"

#include <utility>

#include "dp/check.h"
#include "release/registry.h"

namespace privtree::release {

ReleaseSession::ReleaseSession(const PointSet& points, Box domain,
                               double total_epsilon, std::uint64_t seed)
    : points_(points),
      domain_(std::move(domain)),
      budget_(total_epsilon),
      rng_(seed) {
  PRIVTREE_CHECK_EQ(points_.dim(), domain_.dim());
}

std::unique_ptr<Method> ReleaseSession::Release(std::string_view method,
                                                double epsilon,
                                                const MethodOptions& options) {
  auto instance = GlobalMethodRegistry().Create(method, options);
  // Account against the session first, then hand the method its own slice;
  // the method must drain the slice completely (Fit contract).
  budget_.Spend(epsilon);
  PrivacyBudget slice(epsilon);
  Rng rng = rng_.Fork();
  instance->Fit(points_, domain_, slice, rng);
  PRIVTREE_CHECK_LE(slice.remaining(), 1e-12 * epsilon);
  return instance;
}

std::unique_ptr<Method> ReleaseSession::ReleaseRemaining(
    std::string_view method, const MethodOptions& options) {
  return Release(method, budget_.remaining(), options);
}

}  // namespace privtree::release
