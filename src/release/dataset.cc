#include "release/dataset.h"

#include <utility>

#include "core/byteio.h"
#include "dp/check.h"

namespace privtree::release {

namespace {

// The shared fingerprint mixer (core/byteio.h); word-at-a-time keeps the
// whole-dataset hash to a few ops per coordinate/symbol.
constexpr auto MixWord = MixFingerprintWord;
constexpr auto MixDouble = MixFingerprintDouble;

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

/// Per-kind domain-separation tags (arbitrary distinct constants).
constexpr std::uint64_t kKindTag[] = {0x53504154'49414C00ULL,   // spatial
                                      0x53455155'454E4345ULL};  // sequence

}  // namespace

std::string_view DatasetKindName(DatasetKind kind) {
  return kind == DatasetKind::kSpatial ? "spatial" : "sequence";
}

Dataset::Dataset(const PointSet& points, Box domain)
    : kind_(DatasetKind::kSpatial),
      points_(&points),
      domain_(std::move(domain)) {
  PRIVTREE_CHECK_EQ(points.dim(), domain_.dim());
}

Dataset::Dataset(const SequenceDataset& sequences)
    : kind_(DatasetKind::kSequence), sequences_(&sequences) {
  PRIVTREE_CHECK_GE(sequences.alphabet_size(), 1u);
}

const PointSet& Dataset::points() const {
  PRIVTREE_CHECK(is_spatial());
  return *points_;
}

const Box& Dataset::domain() const {
  PRIVTREE_CHECK(is_spatial());
  return domain_;
}

const SequenceDataset& Dataset::sequences() const {
  PRIVTREE_CHECK(is_sequence());
  return *sequences_;
}

std::size_t Dataset::size() const {
  return is_spatial() ? points_->size() : sequences_->size();
}

std::size_t Dataset::dim() const {
  return is_spatial() ? points_->dim() : sequences_->alphabet_size();
}

std::uint64_t Dataset::UntaggedContentDigest() const {
  std::uint64_t hash = kFnvBasis;
  if (is_spatial()) {
    hash = MixWord(hash, points_->dim());
    hash = MixWord(hash, points_->size());
    for (const double c : points_->coords()) hash = MixDouble(hash, c);
    for (std::size_t j = 0; j < domain_.dim(); ++j) {
      hash = MixDouble(hash, domain_.lo(j));
      hash = MixDouble(hash, domain_.hi(j));
    }
    return hash;
  }
  const SequenceDataset& data = *sequences_;
  hash = MixWord(hash, data.alphabet_size());
  hash = MixWord(hash, data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    hash = MixWord(hash, (static_cast<std::uint64_t>(data.length(i)) << 1) |
                             (data.has_end(i) ? 1 : 0));
    for (const Symbol s : data.sequence(i)) hash = MixWord(hash, s);
  }
  return hash;
}

std::uint64_t Dataset::Fingerprint() const {
  // The kind tag is mixed on top of the content digest, so equal content
  // words under different kinds can never produce equal fingerprints.
  return MixWord(UntaggedContentDigest(),
                 kKindTag[static_cast<std::size_t>(kind_)]);
}

}  // namespace privtree::release
