// Query specs for sequence-kind release methods (the PST of Section 4 and
// the n-gram baseline of Section 6.2).  Every spec evaluates to one double,
// so a sequence QueryBatch has exactly the shape of a spatial one — a
// vector of answers that crosses caches, sockets and benches unchanged.
//
// The three kinds map to the paper's sequence tasks:
//   * kFrequency    — estimated number of occurrences of the symbol string
//                     anywhere in the dataset (Equation (12) chaining).
//   * kPrefixCount  — estimated number of sequences that *begin* with the
//                     symbol string (the chain anchored at the $ marker).
//   * kTopK         — the estimated frequency of the k-th most frequent
//                     string of length <= max_len (Section 6.2's top-k
//                     mining, reduced to its rank-k support value; 0 when
//                     the model yields fewer than k strings).
//
// Validation is non-aborting: specs arrive from sockets and CLIs, so
// ValidateSequenceQuery screens symbols/ranks against the served alphabet
// and returns a clean Status — the models' aborting contract checks never
// see a hostile spec.
#ifndef PRIVTREE_RELEASE_SEQUENCE_QUERY_H_
#define PRIVTREE_RELEASE_SEQUENCE_QUERY_H_

#include <cstdint>
#include <vector>

#include "dp/status.h"
#include "seq/sequence.h"

namespace privtree::release {

enum class SequenceQueryKind : std::uint32_t {
  kFrequency = 1,
  kPrefixCount = 2,
  kTopK = 3,
};

/// One sequence query.  `symbols` carries the string for kFrequency /
/// kPrefixCount; `k` and `max_len` parameterize kTopK (symbols unused).
struct SequenceQuery {
  SequenceQueryKind kind = SequenceQueryKind::kFrequency;
  std::vector<Symbol> symbols;
  std::uint32_t k = 0;
  std::uint32_t max_len = 0;

  static SequenceQuery Frequency(std::vector<Symbol> symbols) {
    return {SequenceQueryKind::kFrequency, std::move(symbols), 0, 0};
  }
  static SequenceQuery PrefixCount(std::vector<Symbol> symbols) {
    return {SequenceQueryKind::kPrefixCount, std::move(symbols), 0, 0};
  }
  static SequenceQuery TopK(std::uint32_t k, std::uint32_t max_len) {
    return {SequenceQueryKind::kTopK, {}, k, max_len};
  }
};

/// Longest string accepted in a frequency/prefix query (a sanity cap: the
/// public length cap l⊤ is at most 4096 everywhere in this repo).
inline constexpr std::size_t kMaxSequenceQuerySymbols = 4096;
/// Largest enumeration depth a kTopK query may request (TopKFromModel packs
/// candidate strings into 8-bit symbol slots, 7 per key).
inline constexpr std::uint32_t kMaxTopKLen = 7;
/// Largest rank a kTopK query may request.  Deliberately small: the top-k
/// DFS prunes nothing until k candidates exist, so a huge rank from a
/// hostile client would force a near-exhaustive alphabet^max_len walk —
/// unbounded CPU on the serving path.
inline constexpr std::uint32_t kMaxTopKRank = 1024;

/// Full non-aborting screen of one query against the served alphabet:
/// known kind, symbols in [0, alphabet_size), non-empty string for
/// frequency/prefix kinds, k >= 1 and 1 <= max_len <= kMaxTopKLen for
/// top-k (top-k additionally requires alphabet_size <= 255, the packed
/// candidate-key limit).  OK, or InvalidArgument with a diagnostic.
Status ValidateSequenceQuery(const SequenceQuery& query,
                             std::size_t alphabet_size);

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_SEQUENCE_QUERY_H_
