#include "release/tree_batch.h"

#include <algorithm>

namespace privtree::release {

namespace {

// The three geometric predicates of the sweep, on the SoA bound planes.
// Each mirrors the Box member it replaces operand-for-operand (the query is
// `this`, the node is `other`, except IntersectionVolume where the node box
// is the receiver — exactly as BatchQueryTree invokes them), so the
// classification and the partial-leaf arithmetic are bit-identical.

inline bool QueryIntersectsNode(const Box& q, const double* lo,
                                const double* hi, std::size_t stride,
                                std::size_t v, std::size_t dim) {
  for (std::size_t j = 0; j < dim; ++j) {
    if (std::min(q.hi(j), hi[j * stride + v]) <=
        std::max(q.lo(j), lo[j * stride + v])) {
      return false;
    }
  }
  return true;
}

inline bool QueryContainsNode(const Box& q, const double* lo,
                              const double* hi, std::size_t stride,
                              std::size_t v, std::size_t dim) {
  for (std::size_t j = 0; j < dim; ++j) {
    if (lo[j * stride + v] < q.lo(j) || hi[j * stride + v] > q.hi(j)) {
      return false;
    }
  }
  return true;
}

inline double NodeIntersectionVolume(const Box& q, const double* lo,
                                     const double* hi, std::size_t stride,
                                     std::size_t v, std::size_t dim) {
  double volume = 1.0;
  for (std::size_t j = 0; j < dim; ++j) {
    const double width = std::min(hi[j * stride + v], q.hi(j)) -
                         std::max(lo[j * stride + v], q.lo(j));
    if (width <= 0.0) return 0.0;
    volume *= width;
  }
  return volume;
}

}  // namespace

std::vector<double> TreeBatchIndex::Query(std::span<const Box> queries) const {
  std::vector<double> answers(queries.size(), 0.0);
  if (n_ == 0 || queries.empty()) return answers;
  const double* lo = lo_.data();
  const double* hi = hi_.data();

  std::vector<std::vector<std::uint32_t>> active(n_);
  constexpr std::size_t kRoot = 0;
  for (std::uint32_t q = 0; q < queries.size(); ++q) {
    if (!QueryIntersectsNode(queries[q], lo, hi, n_, kRoot, dim_)) continue;
    if (QueryContainsNode(queries[q], lo, hi, n_, kRoot, dim_)) {
      answers[q] += count_[kRoot];
      continue;
    }
    active[kRoot].push_back(q);
  }

  for (std::size_t v = 0; v < n_; ++v) {
    if (active[v].empty()) continue;
    if (child_offset_[v] == child_offset_[v + 1]) {
      // Partial leaf: uniformity assumption inside the cell.
      const double volume = volume_[v];
      if (volume > 0.0) {
        for (const std::uint32_t q : active[v]) {
          answers[q] +=
              count_[v] *
              (NodeIntersectionVolume(queries[q], lo, hi, n_, v, dim_) /
               volume);
        }
      }
    } else {
      for (std::uint32_t c = child_offset_[v]; c < child_offset_[v + 1]; ++c) {
        const auto child = static_cast<std::size_t>(child_ids_[c]);
        for (const std::uint32_t q : active[v]) {
          if (!QueryIntersectsNode(queries[q], lo, hi, n_, child, dim_)) {
            continue;
          }
          if (QueryContainsNode(queries[q], lo, hi, n_, child, dim_)) {
            answers[q] += count_[child];
          } else {
            active[child].push_back(q);
          }
        }
      }
    }
    active[v] = {};  // Free the list; the sweep never revisits v.
  }
  return answers;
}

}  // namespace privtree::release
