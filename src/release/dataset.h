// The dataset abstraction of the release layer: one tagged, non-owning view
// over every sensitive-input shape the registry's methods can fit — spatial
// point sets with a declared domain (the paper's Sections 3 and 6.1) and
// symbol-sequence datasets (Sections 4–5).  Threading a Dataset instead of
// a (PointSet, Box) pair through ReleaseSession, the serving cache, the
// ParallelRunner and the AsyncEngine is what lets the PST and n-gram
// builders live behind the same `release::Method` interface as the eight
// spatial backends.
//
// A Dataset is a cheap value: it stores a pointer to the caller's data
// (which must outlive every use, exactly as the previous `const PointSet&`
// contracts required) plus, for spatial data, a copy of the declared
// domain box.
//
// Fingerprints are *domain-separated by kind*: the digest mixes a per-kind
// tag on top of the content words, so a sequence dataset and a spatial
// dataset can
// never collide on a SynopsisCache key or a spill-file name even if their
// raw content words coincide (UntaggedContentDigest exists to let tests
// demonstrate exactly that collision).
#ifndef PRIVTREE_RELEASE_DATASET_H_
#define PRIVTREE_RELEASE_DATASET_H_

#include <cstdint>
#include <string_view>

#include "seq/sequence.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::release {

/// Which input shape a dataset (or a registered method) works over.
enum class DatasetKind : std::uint8_t {
  kSpatial = 0,   ///< PointSet over a declared Box domain.
  kSequence = 1,  ///< SequenceDataset over a finite alphabet.
};

/// Human-readable kind name ("spatial" / "sequence") for diagnostics.
std::string_view DatasetKindName(DatasetKind kind);

/// A tagged non-owning view of one sensitive dataset.
class Dataset {
 public:
  /// Spatial view; `points` must outlive the Dataset.  The domain is
  /// declared by the caller — deriving it from the data would leak.
  Dataset(const PointSet& points, Box domain);

  /// Sequence view; `sequences` must outlive the Dataset.
  explicit Dataset(const SequenceDataset& sequences);

  DatasetKind kind() const { return kind_; }
  bool is_spatial() const { return kind_ == DatasetKind::kSpatial; }
  bool is_sequence() const { return kind_ == DatasetKind::kSequence; }

  /// Spatial accessors; abort unless is_spatial().
  const PointSet& points() const;
  const Box& domain() const;

  /// Sequence accessor; aborts unless is_sequence().
  const SequenceDataset& sequences() const;

  /// Records in the dataset (points or sequences).
  std::size_t size() const;

  /// The method-facing dimensionality: the spatial dim, or the sequence
  /// alphabet size (what sequence-method metadata reports as `dim`).
  std::size_t dim() const;

  /// Order-sensitive 64-bit digest of (content, kind): the content digest
  /// (dim/size/coordinates/bounds for spatial data,
  /// alphabet/size/lengths/symbols for sequences) finalized with a per-kind
  /// tag.  Equal content under different kinds therefore always yields
  /// different fingerprints; within a kind collisions are astronomically
  /// unlikely (the cache trades that risk for never storing the data).
  std::uint64_t Fingerprint() const;

  /// The same digest *without* the kind tag — the value a naive scheme
  /// would have used as a cache key.  Exposed so tests can construct a
  /// cross-kind content collision and verify Fingerprint() separates it;
  /// never use this as a key.
  std::uint64_t UntaggedContentDigest() const;

 private:
  DatasetKind kind_;
  const PointSet* points_ = nullptr;
  Box domain_;  // Meaningful for spatial datasets only.
  const SequenceDataset* sequences_ = nullptr;
};

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_DATASET_H_
