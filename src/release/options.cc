#include "release/options.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "dp/check.h"

namespace privtree::release {

bool ValueParsesAs(OptionType type, const std::string& value) {
  if (value.empty()) return false;
  char* tail = nullptr;
  switch (type) {
    case OptionType::kDouble:
      std::strtod(value.c_str(), &tail);
      break;
    case OptionType::kInt:
      std::strtoll(value.c_str(), &tail, 10);
      break;
    case OptionType::kBool:
      return value == "0" || value == "1" || value == "true" ||
             value == "false";
  }
  return tail != nullptr && *tail == '\0' && tail != value.c_str();
}

Status CheckOptionValue(const OptionKey& key, const std::string& value) {
  if (!ValueParsesAs(key.type, value)) {
    const char* want = key.type == OptionType::kDouble    ? "a number"
                       : key.type == OptionType::kInt     ? "an integer"
                                                          : "a boolean";
    return Status::InvalidArgument("option \"" + key.name + "\" needs " +
                                   want + " (got \"" + value + "\")");
  }
  if (key.type == OptionType::kBool) return Status::OK();
  const double parsed = std::strtod(value.c_str(), nullptr);
  const bool in_range =
      key.open_bounds
          ? parsed > key.min_value && parsed < key.max_value
          : parsed >= key.min_value && parsed <= key.max_value;
  if (!std::isnan(parsed) && in_range) return Status::OK();
  char range[96];
  std::snprintf(range, sizeof(range), "%s%g, %g%s",
                key.open_bounds ? "(" : "[", key.min_value, key.max_value,
                key.open_bounds ? ")" : "]");
  return Status::InvalidArgument("option \"" + key.name + "\" must be in " +
                                 range + " (got \"" + value + "\")");
}

MethodOptions::MethodOptions(
    std::initializer_list<std::pair<std::string, std::string>> entries) {
  for (const auto& [key, value] : entries) Set(key, value);
}

MethodOptions MethodOptions::Parse(std::string_view text) {
  MethodOptions out;
  std::string error;
  if (!TryParse(text, &out, &error)) {
    std::fprintf(stderr, "MethodOptions: %s\n", error.c_str());
    PRIVTREE_CHECK(false);
  }
  return out;
}

bool MethodOptions::TryParse(std::string_view text, MethodOptions* out,
                             std::string* error) {
  MethodOptions parsed;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view entry = text.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      *error = "malformed entry \"" + std::string(entry) +
               "\" (expected key=value)";
      return false;
    }
    parsed.Set(std::string(entry.substr(0, eq)),
               std::string(entry.substr(eq + 1)));
  }
  *out = std::move(parsed);
  return true;
}

void MethodOptions::Set(std::string key, std::string value) {
  PRIVTREE_CHECK(!key.empty());
  entries_[std::move(key)] = std::move(value);
}

std::string MethodOptions::GetString(const std::string& key,
                                     std::string fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::move(fallback) : it->second;
}

double MethodOptions::GetDouble(const std::string& key,
                                double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* tail = nullptr;
  const double value = std::strtod(it->second.c_str(), &tail);
  if (tail == nullptr || *tail != '\0' || tail == it->second.c_str()) {
    std::fprintf(stderr, "MethodOptions: non-numeric value \"%s\" for \"%s\"\n",
                 it->second.c_str(), key.c_str());
    PRIVTREE_CHECK(false);
  }
  return value;
}

std::int64_t MethodOptions::GetInt(const std::string& key,
                                   std::int64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* tail = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &tail, 10);
  if (tail == nullptr || *tail != '\0' || tail == it->second.c_str()) {
    std::fprintf(stderr, "MethodOptions: non-integer value \"%s\" for \"%s\"\n",
                 it->second.c_str(), key.c_str());
    PRIVTREE_CHECK(false);
  }
  return static_cast<std::int64_t>(value);
}

bool MethodOptions::GetBool(const std::string& key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true") return true;
  if (v == "0" || v == "false") return false;
  std::fprintf(stderr, "MethodOptions: non-boolean value \"%s\" for \"%s\"\n",
               v.c_str(), key.c_str());
  PRIVTREE_CHECK(false);
  return fallback;
}

std::vector<std::string> MethodOptions::Keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, value] : entries_) out.push_back(key);
  return out;
}

std::string MethodOptions::ToString() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

void RequireKnownKeys(const MethodOptions& options,
                      std::initializer_list<std::string_view> allowed) {
  for (const std::string& key : options.Keys()) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      known = known || key == candidate;
    }
    if (!known) {
      std::fprintf(stderr, "unknown method option \"%s\"; allowed:", key.c_str());
      for (const std::string_view candidate : allowed) {
        std::fprintf(stderr, " %.*s", static_cast<int>(candidate.size()),
                     candidate.data());
      }
      std::fprintf(stderr, "\n");
      PRIVTREE_CHECK(false);
    }
  }
}

}  // namespace privtree::release
