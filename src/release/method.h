// The unified release API: every histogram backend in this repository —
// tree-based (PrivTree, SimpleTree, kd-tree), grid-based (UG, AG, DAWA,
// Privelet*) and hierarchical — is exposed behind one runtime-polymorphic
// `Method` interface, so benches, examples and services can treat "which
// private synopsis do we release?" as a string-valued configuration knob
// (see release/registry.h) instead of a compile-time decision.
//
// Contract:
//   * Fit() consumes the *entire* PrivacyBudget slice it is handed — the
//     caller decides how much ε this release gets; the method decides how to
//     split it internally (tree vs. counts, level 1 vs. level 2, ...).
//   * Query()/QueryBatch() are pure post-processing of released values and
//     therefore free under differential privacy.
//   * Metadata() reports what was released (node/cell counts, ε spent) for
//     logging and accounting.
#ifndef PRIVTREE_RELEASE_METHOD_H_
#define PRIVTREE_RELEASE_METHOD_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "dp/budget.h"
#include "dp/rng.h"
#include "dp/status.h"
#include "release/dataset.h"
#include "release/sequence_query.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {
class SequenceModel;  // seq/model.h
}

namespace privtree::release {

/// What a fitted method released, for accounting and diagnostics.
struct MethodMetadata {
  /// Registry name the method was created under ("privtree", "ug", ...).
  std::string method;
  /// Dimensionality of the fitted domain (0 before Fit).  Sequence-kind
  /// methods report the alphabet size here.
  std::size_t dim = 0;
  /// Total ε consumed by Fit (0 before Fit).
  double epsilon_spent = 0.0;
  /// Size of the released synopsis: decomposition-tree nodes for tree
  /// methods, released noisy cells/counts for grid methods.
  std::size_t synopsis_size = 0;
  /// Decomposition height (tree methods and hierarchies; 0 for flat grids).
  std::int32_t height = 0;
};

/// The self-describing header of a serialized synopsis: what was released
/// (metadata) and the exact options the method was created with, in the
/// canonical "k1=v1,k2=v2" spelling.  See release/serialization.h for the
/// on-disk envelope that carries it.
struct SynopsisEnvelope {
  MethodMetadata metadata;
  std::string options_text;
  /// Envelope format version the synopsis was read from (see
  /// release/serialization.h).  Loaders dispatch on it: 2 = raw payloads,
  /// 3 = compressed payload sections.  Writers always emit the current
  /// version; the field exists so v2 spill files keep loading.
  std::uint32_t format_version = 0;
};

/// A differentially private range-count release mechanism.
class Method {
 public:
  virtual ~Method();

  Method(const Method&) = delete;
  Method& operator=(const Method&) = delete;

  /// Fits the synopsis on `data`, drawing randomness from `rng` and
  /// consuming all of `budget` (the slice the caller allocated to this
  /// release).  Must be called exactly once before Query/QueryBatch.  The
  /// default dispatches spatial datasets to the spatial Fit overload and
  /// aborts on any other kind; sequence methods override this directly.
  /// Callers screen the dataset kind against the registry entry's `kind`
  /// before fitting (ReleaseSession, the serving engine and the CLI all
  /// do), so a kind mismatch here is a programming error, not user input.
  virtual void Fit(const Dataset& data, PrivacyBudget& budget, Rng& rng);

  /// Spatial fit over `points` in the declared `domain`.  Every spatial
  /// backend overrides this; the default aborts (sequence-only methods fit
  /// through the Dataset overload).
  virtual void Fit(const PointSet& points, const Box& domain,
                   PrivacyBudget& budget, Rng& rng);

  /// Estimated number of points in `q`.  Requires a prior Fit.  The
  /// default aborts — sequence methods answer SequenceQuery batches, not
  /// boxes, and user-facing surfaces screen the query shape against the
  /// method kind before dispatching.
  virtual double Query(const Box& q) const;

  /// Answers many boxes at once.  The default loops over Query; every
  /// built-in backend overrides it with a batch strategy: tree-backed
  /// methods sweep the node array once, classifying every query against
  /// every visited node (see release/tree_batch.h), and the grid family
  /// answers through prefix-sum lattices / summed-area tables with the
  /// per-query allocations hoisted out (see hist/grid.h, hist/ag.h,
  /// hist/hierarchy.h).  A fitted Method is immutable, so Query/QueryBatch
  /// may be called concurrently from many threads (see serve/).
  virtual std::vector<double> QueryBatch(std::span<const Box> queries) const;

  /// Answers many sequence queries at once (one double per spec — see
  /// release/sequence_query.h for the kinds).  Sequence-kind methods
  /// override this; the default aborts, mirroring Query(Box) on sequence
  /// methods.  Callers must have validated every spec against the fitted
  /// alphabet (ValidateSequenceQuery) — the serving engine and the CLI do.
  virtual std::vector<double> QueryBatch(
      std::span<const SequenceQuery> queries) const;

  /// Release accounting; `epsilon_spent`/`synopsis_size` are meaningful
  /// only after Fit.
  virtual MethodMetadata Metadata() const = 0;

  /// Serializes the fitted synopsis — a versioned envelope plus a
  /// per-backend payload (see release/serialization.h for the format) — so
  /// a later process can re-load and query it without touching the data
  /// (pure post-processing, free under DP).  Every registry backend
  /// implements this; the default rejects with InvalidArgument so
  /// out-of-registry Method implementations (test stubs) keep compiling.
  /// Requires a prior Fit; load back through release::LoadMethod.
  virtual Status Save(std::ostream& out) const;

  /// The fitted generative model behind a sequence-kind method (the PST or
  /// n-gram SequenceModel), or nullptr for spatial methods and before Fit.
  /// Model-level consumers — top-k string mining, synthetic-sequence
  /// sampling in the figure benches — read it through this accessor so
  /// their fits ride the registry/serving path instead of re-implementing
  /// builder calls.  The model is owned by the method and immutable after
  /// Fit, so it shares the method's thread-safety.
  virtual const SequenceModel* sequence_model() const { return nullptr; }

 protected:
  Method() = default;
};

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_METHOD_H_
