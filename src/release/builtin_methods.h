// Registration of the built-in release backends.
//
// Each backend adapts one existing builder from hist/ or spatial/ — the
// free functions and classes there remain the concrete implementations;
// the adapters only parse options, thread the PrivacyBudget, and forward
// queries.  Registered names and their option keys:
//
//   privtree    dims_per_split, tree_budget_fraction, max_depth
//   simpletree  dims_per_split, height, theta
//   ug          cell_scale, c0
//   ag          alpha, c1, c2, cell_scale            (2-d data only)
//   kdtree      height, split_budget_fraction
//   dawa        target_total_cells, partition_budget_fraction,
//               measure_branching
//   hierarchy   height, target_leaf_resolution, constrained_inference
//   wavelet     target_total_cells
//
// RegisterBuiltinMethods also registers the two sequence-kind backends
// (pst_privtree, ngram) via release/sequence_methods.h.
#ifndef PRIVTREE_RELEASE_BUILTIN_METHODS_H_
#define PRIVTREE_RELEASE_BUILTIN_METHODS_H_

#include <memory>
#include <string_view>

#include "release/options.h"
#include "release/registry.h"
#include "spatial/spatial_histogram.h"

namespace privtree::release {

/// Registers all built-in backends into `registry` — the eight spatial
/// ones plus the two sequence-kind ones (release/sequence_methods.h).
/// Called once by GlobalMethodRegistry(); call it directly only on private
/// registries (e.g. in tests).  Every entry registers both a factory and a
/// loader, so all backends round-trip through release/serialization.h.
void RegisterBuiltinMethods(MethodRegistry& registry);

/// Wraps an already-released decomposition-tree histogram as a fitted
/// `method` ("privtree" or "simpletree"; anything else aborts).  Used by
/// the legacy v1 text-format compat shim, where the file records no ε —
/// pass 0 when the budget is unknown.  `hist` must be non-empty.
std::unique_ptr<Method> WrapSpatialHistogram(std::string_view method,
                                             SpatialHistogram hist,
                                             double epsilon_spent);

/// String-bag → native option-struct translations for the tree-backed
/// methods, shared between the registry adapters and callers that need
/// the concrete builders directly (e.g. privtree_cli's serialization
/// path), so both surfaces honor exactly the same keys.
PrivTreeHistogramOptions ParsePrivTreeHistogramOptions(
    const MethodOptions& options);
SimpleTreeHistogramOptions ParseSimpleTreeHistogramOptions(
    const MethodOptions& options);

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_BUILTIN_METHODS_H_
