// Registration of the sequence-side release backends (Sections 4–5): the
// private prediction suffix tree ("pst_privtree") and the variable-length
// n-gram baseline ("ngram"), both exposed as sequence-kind
// `release::Method`s.  Like the spatial adapters in builtin_methods.cc,
// these only parse options, truncate at the public length cap l⊤, thread
// the PrivacyBudget and forward queries — seq/pst_privtree.h and
// seq/ngram.h remain the concrete implementations.
//
// Registered names and their option keys:
//
//   pst_privtree  l_top, tree_budget_fraction, max_depth
//   ngram         n_max, l_top, threshold_factor
//
// Both answer SequenceQuery batches (frequency / prefix-count / top-k; see
// release/sequence_query.h) and persist through the universal synopsis
// envelope with a flat (parent, released values) payload codec.  The PST's
// fan-out β = alphabet+1 is a property of the served dataset, not an
// option: any alphabet of size >= 1 gives β >= 2.
#ifndef PRIVTREE_RELEASE_SEQUENCE_METHODS_H_
#define PRIVTREE_RELEASE_SEQUENCE_METHODS_H_

#include <memory>

#include "release/method.h"
#include "release/registry.h"
#include "seq/pst.h"

namespace privtree::release {

/// Registers the two sequence backends into `registry`.  Called by
/// RegisterBuiltinMethods; call it directly only on private registries.
void RegisterSequenceMethods(MethodRegistry& registry);

/// Wraps an already-released PST model as a fitted "pst_privtree" method.
/// Used by the legacy `privtree-pst v1` text-format compat shim, where the
/// file records no ε or options — pass 0 when the budget is unknown.
/// `model` must be non-empty.
std::unique_ptr<Method> WrapPstModel(PstModel model, double epsilon_spent);

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_SEQUENCE_METHODS_H_
