// ReleaseSession — the front door of the release API.
//
// A session binds one sensitive dataset to one total privacy budget and one
// deterministic randomness stream, then hands out fitted Methods:
//
//   ReleaseSession session(points, Box::UnitCube(2),
//                          /*total_epsilon=*/1.0, /*seed=*/42);
//   auto coarse = session.Release("ug", /*epsilon=*/0.5);
//   auto fine = session.ReleaseRemaining("privtree");
//   double est = fine->Query(box);
//
// The dataset may be of either registry kind — spatial points with a
// declared domain, or a symbol-sequence dataset:
//
//   ReleaseSession seq_session(sequences, /*total_epsilon=*/1.0, 42);
//   auto pst = seq_session.ReleaseRemaining("pst_privtree");
//   auto answers = pst->QueryBatch(std::span(sequence_queries));
//
// Successive releases compose sequentially (Lemma 2.1): the session's
// PrivacyBudget enforces Σ ε_i <= total ε and aborts on over-spend, and
// each release draws from an independently forked Rng stream, so adding a
// release never perturbs the randomness of earlier ones.
#ifndef PRIVTREE_RELEASE_SESSION_H_
#define PRIVTREE_RELEASE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "dp/budget.h"
#include "dp/rng.h"
#include "release/dataset.h"
#include "release/method.h"
#include "release/options.h"
#include "seq/sequence.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::release {

/// Binds (dataset, total ε, seed) and releases fitted Methods.
class ReleaseSession {
 public:
  /// General form; the viewed data must outlive the session.
  ReleaseSession(Dataset data, double total_epsilon, std::uint64_t seed);

  /// Spatial convenience: `points` must outlive the session.  The domain
  /// is declared by the caller — deriving it from the data would leak.
  ReleaseSession(const PointSet& points, Box domain, double total_epsilon,
                 std::uint64_t seed);

  /// Sequence convenience: `sequences` must outlive the session.
  ReleaseSession(const SequenceDataset& sequences, double total_epsilon,
                 std::uint64_t seed);

  /// Creates the named method via the global registry (aborting when its
  /// kind does not match the session dataset — screen user-supplied names
  /// against MethodRegistry::Kind first), allocates `epsilon` from the
  /// session budget (aborting on over-spend), fits, and returns the fitted
  /// method.
  std::unique_ptr<Method> Release(std::string_view method, double epsilon,
                                  const MethodOptions& options = {});

  /// As Release, with everything the session has left.
  std::unique_ptr<Method> ReleaseRemaining(std::string_view method,
                                           const MethodOptions& options = {});

  const Dataset& data() const { return data_; }
  /// Spatial accessors; abort on sequence sessions (kept for the many
  /// spatial call sites).
  const PointSet& points() const { return data_.points(); }
  const Box& domain() const { return data_.domain(); }
  const PrivacyBudget& budget() const { return budget_; }

 private:
  Dataset data_;
  PrivacyBudget budget_;
  Rng rng_;
};

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_SESSION_H_
