// Batched range-count evaluation over decomposition trees.
//
// The per-query traversal in SpatialHistogram::Query walks the tree once
// per query; with thousands of workload queries the node array is re-read
// from memory each time.  BatchQueryTree instead sweeps the node array
// *once* in id order (children always have larger ids than their parents,
// see DecompTree::AddChild) carrying, per node, the list of queries that
// partially overlap it.  Each query/node pair is classified exactly as in
// the single-query traversal — disjoint, fully covering, partial-internal,
// partial-leaf (uniformity assumption) — so the answers agree with repeated
// Query up to floating-point summation order.
#ifndef PRIVTREE_RELEASE_TREE_BATCH_H_
#define PRIVTREE_RELEASE_TREE_BATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/tree.h"
#include "dp/check.h"
#include "spatial/box.h"

namespace privtree::release {

/// Answers all `queries` against a decomposition tree with released counts
/// `count` (indexed by node id).  `box_of` maps a node's Domain to its
/// geometric Box.  Returns one estimate per query, in input order.
template <typename Domain, typename BoxOf>
std::vector<double> BatchQueryTree(const DecompTree<Domain>& tree,
                                   const std::vector<double>& count,
                                   std::span<const Box> queries,
                                   BoxOf&& box_of) {
  std::vector<double> answers(queries.size(), 0.0);
  if (tree.empty() || queries.empty()) return answers;
  PRIVTREE_CHECK_EQ(count.size(), tree.size());

  // active[v] = queries partially overlapping node v, discovered while
  // processing v's parent.  Lists are freed as soon as the node is swept.
  std::vector<std::vector<std::uint32_t>> active(tree.size());
  const Box& root_box = box_of(tree.node(tree.root()).domain);
  for (std::uint32_t q = 0; q < queries.size(); ++q) {
    if (!queries[q].Intersects(root_box)) continue;
    if (queries[q].ContainsBox(root_box)) {
      answers[q] += count[tree.root()];
      continue;
    }
    active[tree.root()].push_back(q);
  }

  for (std::size_t v = 0; v < tree.size(); ++v) {
    if (active[v].empty()) continue;
    const auto& node = tree.node(static_cast<NodeId>(v));
    if (node.is_leaf()) {
      // Partial leaf: uniformity assumption inside the cell.
      const Box& dom = box_of(node.domain);
      const double volume = dom.Volume();
      if (volume > 0.0) {
        for (const std::uint32_t q : active[v]) {
          answers[q] += count[v] * (dom.IntersectionVolume(queries[q]) / volume);
        }
      }
    } else {
      for (const NodeId child : node.children) {
        const Box& child_box = box_of(tree.node(child).domain);
        for (const std::uint32_t q : active[v]) {
          if (!queries[q].Intersects(child_box)) continue;
          if (queries[q].ContainsBox(child_box)) {
            answers[q] += count[child];
          } else {
            active[child].push_back(q);
          }
        }
      }
    }
    active[v] = {};  // Free the list; the sweep never revisits v.
  }
  return answers;
}

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_TREE_BATCH_H_
