// Batched range-count evaluation over decomposition trees.
//
// The per-query traversal in SpatialHistogram::Query walks the tree once
// per query; with thousands of workload queries the node array is re-read
// from memory each time.  BatchQueryTree instead sweeps the node array
// *once* in id order (children always have larger ids than their parents,
// see DecompTree::AddChild) carrying, per node, the list of queries that
// partially overlap it.  Each query/node pair is classified exactly as in
// the single-query traversal — disjoint, fully covering, partial-internal,
// partial-leaf (uniformity assumption) — so the answers agree with repeated
// Query up to floating-point summation order.
//
// TreeBatchIndex is the production form of that sweep: the tree is
// flattened once, at fit/load time, into structure-of-arrays storage
// (dimension-major bound planes, a count array, precomputed leaf volumes,
// CSR child lists) so the per-(query, node) classification reads
// contiguous doubles instead of chasing DecompNode and Box allocations.
// Its Query answers are bit-for-bit identical to BatchQueryTree on the
// same tree — the comparisons and arithmetic run in the same order on the
// same values — and the template sweep below is kept as the parity oracle
// the tests compare against.
#ifndef PRIVTREE_RELEASE_TREE_BATCH_H_
#define PRIVTREE_RELEASE_TREE_BATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/tree.h"
#include "dp/check.h"
#include "spatial/box.h"

namespace privtree::release {

/// Answers all `queries` against a decomposition tree with released counts
/// `count` (indexed by node id).  `box_of` maps a node's Domain to its
/// geometric Box.  Returns one estimate per query, in input order.
template <typename Domain, typename BoxOf>
std::vector<double> BatchQueryTree(const DecompTree<Domain>& tree,
                                   const std::vector<double>& count,
                                   std::span<const Box> queries,
                                   BoxOf&& box_of) {
  std::vector<double> answers(queries.size(), 0.0);
  if (tree.empty() || queries.empty()) return answers;
  PRIVTREE_CHECK_EQ(count.size(), tree.size());

  // active[v] = queries partially overlapping node v, discovered while
  // processing v's parent.  Lists are freed as soon as the node is swept.
  std::vector<std::vector<std::uint32_t>> active(tree.size());
  const Box& root_box = box_of(tree.node(tree.root()).domain);
  for (std::uint32_t q = 0; q < queries.size(); ++q) {
    if (!queries[q].Intersects(root_box)) continue;
    if (queries[q].ContainsBox(root_box)) {
      answers[q] += count[tree.root()];
      continue;
    }
    active[tree.root()].push_back(q);
  }

  for (std::size_t v = 0; v < tree.size(); ++v) {
    if (active[v].empty()) continue;
    const auto& node = tree.node(static_cast<NodeId>(v));
    if (node.is_leaf()) {
      // Partial leaf: uniformity assumption inside the cell.
      const Box& dom = box_of(node.domain);
      const double volume = dom.Volume();
      if (volume > 0.0) {
        for (const std::uint32_t q : active[v]) {
          answers[q] += count[v] * (dom.IntersectionVolume(queries[q]) / volume);
        }
      }
    } else {
      for (const NodeId child : node.children) {
        const Box& child_box = box_of(tree.node(child).domain);
        for (const std::uint32_t q : active[v]) {
          if (!queries[q].Intersects(child_box)) continue;
          if (queries[q].ContainsBox(child_box)) {
            answers[q] += count[child];
          } else {
            active[child].push_back(q);
          }
        }
      }
    }
    active[v] = {};  // Free the list; the sweep never revisits v.
  }
  return answers;
}

/// Structure-of-arrays snapshot of a decomposition tree with released
/// counts, built once per synopsis and reused by every QueryBatch call.
class TreeBatchIndex {
 public:
  /// An empty index answers every query with 0.
  TreeBatchIndex() = default;

  /// Flattens `tree` (bounds via `box_of`, as in BatchQueryTree) and takes
  /// ownership of the released counts.
  template <typename Domain, typename BoxOf>
  TreeBatchIndex(const DecompTree<Domain>& tree, std::vector<double> count,
                 BoxOf&& box_of)
      : n_(tree.size()), count_(std::move(count)) {
    if (n_ == 0) {
      count_.clear();
      return;
    }
    PRIVTREE_CHECK_EQ(count_.size(), n_);
    dim_ = box_of(tree.node(tree.root()).domain).dim();
    lo_.resize(dim_ * n_);
    hi_.resize(dim_ * n_);
    volume_.resize(n_);
    child_offset_.assign(n_ + 1, 0);
    for (std::size_t v = 0; v < n_; ++v) {
      const auto& node = tree.node(static_cast<NodeId>(v));
      const Box& box = box_of(node.domain);
      PRIVTREE_CHECK_EQ(box.dim(), dim_);
      for (std::size_t j = 0; j < dim_; ++j) {
        lo_[j * n_ + v] = box.lo(j);
        hi_[j * n_ + v] = box.hi(j);
      }
      volume_[v] = box.Volume();
      child_offset_[v + 1] =
          child_offset_[v] + static_cast<std::uint32_t>(node.children.size());
      child_ids_.insert(child_ids_.end(), node.children.begin(),
                        node.children.end());
    }
  }

  bool empty() const { return n_ == 0; }
  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }

  /// Answers all queries; bit-for-bit equal to BatchQueryTree on the
  /// source tree and counts.
  std::vector<double> Query(std::span<const Box> queries) const;

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> lo_;      // Dimension-major: lo_[j * n_ + v].
  std::vector<double> hi_;
  std::vector<double> count_;   // Released count per node id.
  std::vector<double> volume_;  // Precomputed Box::Volume per node.
  std::vector<std::uint32_t> child_offset_;  // CSR offsets, n_ + 1 entries.
  std::vector<NodeId> child_ids_;            // Children in AddChild order.
};

}  // namespace privtree::release

#endif  // PRIVTREE_RELEASE_TREE_BATCH_H_
