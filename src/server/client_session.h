// Per-connection serving state: privacy-budget accounting that makes one
// socket connection behave like one release::ReleaseSession.
//
// A ReleaseSession charges ε once per distinct release and refuses to
// overdraw its total; a connection to the serving front end gets the same
// contract here.  Every fit-carrying request (Fit, QueryBatch,
// SeqQueryBatch) charges its spec's ε against this session the *first*
// time the session touches that synopsis key — repeating a spec is free,
// exactly like re-querying a released synopsis in process, because queries
// are pure post-processing.  An exhausted budget answers OutOfRange (the
// Status a PrivacyBudget overdraw maps to on this surface) and never
// aborts: budget exhaustion is expected client behaviour, not a bug.
//
// A charge for a request that subsequently *fails* (shed load, expired
// deadline, invalid spec caught server-side) is refunded, so transient
// overload cannot eat a tenant's budget.
//
// Thread-safe: the event loop charges on the loop thread and refunds from
// pool-thread completion callbacks.
#ifndef PRIVTREE_SERVER_CLIENT_SESSION_H_
#define PRIVTREE_SERVER_CLIENT_SESSION_H_

#include <set>

#include "core/sync.h"
#include "dp/status.h"
#include "serve/synopsis_cache.h"

namespace privtree::server {

class ClientSession {
 public:
  /// Outcome of one budget charge.  `charged` is true only when this call
  /// actually debited the budget (a repeated key is free and a refusal
  /// debits nothing) — the flag the completion path needs to decide
  /// whether a failed request must refund.
  struct ChargeOutcome {
    Status status;
    bool charged = false;
  };

  /// `budget_total` is the Σε ceiling across this session's fits; 0 means
  /// unlimited (the default when the server enforces no session budget).
  explicit ClientSession(double budget_total) : total_(budget_total) {}

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Charges `epsilon` for `key` unless this session already paid for it.
  /// OutOfRange when the charge would overdraw the budget.
  ChargeOutcome Charge(const serve::SynopsisKey& key, double epsilon) {
    MutexLock lk(mu_);
    if (paid_.contains(key)) return {Status::OK(), false};
    if (total_ > 0.0 && spent_ + epsilon > total_ * (1.0 + 1e-12)) {
      return {Status::OutOfRange(
                  "session privacy budget exhausted: spent " +
                  std::to_string(spent_) + " of " + std::to_string(total_) +
                  ", request needs " + std::to_string(epsilon)),
              false};
    }
    spent_ += epsilon;
    paid_.insert(key);
    return {Status::OK(), true};
  }

  /// Reverses a Charge whose request failed; only call when the matching
  /// ChargeOutcome reported `charged`.
  void Refund(const serve::SynopsisKey& key, double epsilon) {
    MutexLock lk(mu_);
    if (paid_.erase(key) > 0) spent_ -= epsilon;
  }

  double budget_total() const { return total_; }

  double spent() const {
    MutexLock lk(mu_);
    return spent_;
  }

 private:
  const double total_;
  mutable Mutex mu_;
  double spent_ GUARDED_BY(mu_) = 0.0;
  std::set<serve::SynopsisKey> paid_ GUARDED_BY(mu_);  // Keys already charged.
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_CLIENT_SESSION_H_
