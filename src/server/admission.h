// Admission control for the async serving front end.
//
// The controller is the policy seat between Submit and the RequestQueue: it
// decides, before a request is queued, whether the system has room for it,
// and it keeps the serving telemetry (admitted / shed / expired /
// coalesced counts) that the stats surfaces report.  Two shed conditions:
//
//   * queue saturation — the bounded RequestQueue is full; admitting more
//     would only grow latency, so the request is refused with Unavailable
//     (the client can back off and retry);
//   * cache saturation — the synopsis cache's background spill writer has
//     fallen `max_pending_spills` writes behind, meaning evictions are
//     outpacing the disk; new fits would churn the cache further, so fit
//     work is refused until the writer catches up (queries against cached
//     synopses are unaffected).
//
// It also tracks identical in-flight fit keys: a fit for a key some earlier
// admitted request is already fitting is *admitted* (it will ride the
// cache's single-flight path and wait for the one real fit, not duplicate
// it) and counted as coalesced — the de-duplication the serving layer gets
// structurally from SynopsisCache::GetOrFit.
#ifndef PRIVTREE_SERVER_ADMISSION_H_
#define PRIVTREE_SERVER_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <map>

#include "core/sync.h"
#include "dp/status.h"
#include "serve/synopsis_cache.h"

namespace privtree::server {

struct AdmissionOptions {
  /// Max requests waiting in the RequestQueue; pushes beyond it shed.
  std::size_t max_queue_depth = 256;
  /// Shed *fit* admissions while more than this many cache evictions await
  /// the background spill writer; 0 disables the check.
  std::size_t max_pending_spills = 128;
  /// Retry-after hint attached to every shed Unavailable (milliseconds,
  /// carried on the wire in ErrorReply); 0 sends no hint.
  std::uint64_t retry_after_millis = 50;
};

class AdmissionController {
 public:
  struct Stats {
    std::size_t admitted = 0;
    std::size_t shed_queue_full = 0;       ///< Refused: queue at max depth.
    std::size_t shed_cache_saturated = 0;  ///< Refused: spill writer behind.
    std::size_t expired = 0;      ///< Popped after their deadline; not run.
    std::size_t coalesced_fits = 0;  ///< Admitted onto an in-flight fit key.
  };

  /// `cache` (may be null: no saturation check) must outlive the controller.
  explicit AdmissionController(AdmissionOptions options,
                               const serve::SynopsisCache* cache = nullptr);

  const AdmissionOptions& options() const { return options_; }

  /// Pre-queue check for fit-carrying requests; OK or Unavailable.  A
  /// non-OK result has already been counted.
  Status AdmitFitLoad();

  /// Outcome bookkeeping (the engine owns the actual queue push).
  void NoteAdmitted();
  void NoteQueueFull();
  void NoteExpired();

  /// Marks `key` as having an in-flight fit; true when another admitted
  /// request already fits the same key (counted as coalesced).  Pair every
  /// call with EndFit.
  bool BeginFit(const serve::SynopsisKey& key);
  void EndFit(const serve::SynopsisKey& key);

  /// Fit keys currently executing (or queued) under BeginFit.
  std::size_t InFlightFits() const;

  Stats stats() const;

 private:
  const AdmissionOptions options_;
  const serve::SynopsisCache* cache_;
  mutable Mutex mu_;
  std::map<serve::SynopsisKey, std::size_t> inflight_fits_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_ADMISSION_H_
