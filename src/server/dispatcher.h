// Protocol dispatch shared by both serving loops.
//
// One Dispatcher turns a decoded frame into a reply payload against a
// DatasetRegistry (which tenant?) and a ClientSession (how much budget is
// left?).  The thread-per-connection ServerLoop and the epoll EventLoop
// both route every frame through this one switch, so "epoll answers are
// bit-for-bit thread-loop answers" holds structurally: there is exactly
// one implementation of the protocol semantics.
//
// The API is asynchronous: HandleFrame invokes `done(reply)` exactly once —
// synchronously for control frames (Hello, Warm, Stats, Shutdown,
// RegisterDataset) and every error caught before submission, or from a
// pool thread's completion callback for engine-backed frames (Fit,
// QueryBatch, SeqQueryBatch), which is what lets the event loop pipeline
// requests without parking a thread per in-flight frame.  The blocking
// wrapper exists for the thread-per-connection loop.
//
// Budget semantics: every fit-carrying request charges its spec's ε to the
// session the first time the session touches that synopsis key (repeats
// are free — queries are post-processing); a request that then *fails*
// refunds the charge.  Warm is exempt: prefetch returns no released
// values, and billing a background cache fill to whichever client happened
// to request it would double-charge the client that later reads it.
#ifndef PRIVTREE_SERVER_DISPATCHER_H_
#define PRIVTREE_SERVER_DISPATCHER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "obs/trace.h"
#include "server/client_session.h"
#include "server/dataset_registry.h"
#include "server/protocol.h"

namespace privtree::server {

struct DispatcherOptions {
  /// Per-connection Σε ceiling handed to every NewSession(); 0 = unlimited.
  double session_budget = 0.0;
  /// Whether RegisterDataset frames are accepted (loopback deployments);
  /// refused with InvalidArgument when false.
  bool allow_uploads = true;
};

class Dispatcher {
 public:
  /// Invoked exactly once with the complete reply payload.  May run on the
  /// calling thread or on an engine pool thread; must not block.
  using Done = std::function<void(std::string reply)>;

  /// `registry` must outlive the dispatcher.
  explicit Dispatcher(DatasetRegistry& registry,
                      DispatcherOptions options = {});

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// A fresh per-connection session with this dispatcher's budget policy.
  std::shared_ptr<ClientSession> NewSession() const {
    return std::make_shared<ClientSession>(options_.session_budget);
  }

  /// Dispatches one frame.  `*shutdown` is set synchronously (before
  /// return) when the frame asks the server to stop; the reply still goes
  /// out first.  `session` is captured by asynchronous completions — the
  /// shared_ptr keeps budget accounting alive however the connection ends.
  ///
  /// `trace`, when non-null, collects span timings along the way (and
  /// receives the client's trace id if the frame arrived in a Traced
  /// envelope).  Tracing never changes the reply bytes: a Traced wrapper is
  /// unwrapped transparently whether or not a trace is attached.
  void HandleFrame(std::string_view payload,
                   const std::shared_ptr<ClientSession>& session,
                   bool* shutdown, Done done, obs::TracePtr trace = {});

  /// Blocking form for the thread-per-connection loop: parks the calling
  /// thread until the reply is ready.
  std::string HandleFrameBlocking(
      std::string_view payload,
      const std::shared_ptr<ClientSession>& session, bool* shutdown);

  DatasetRegistry& registry() const { return registry_; }
  const DispatcherOptions& options() const { return options_; }

 private:
  std::string HandleHello(std::string_view payload,
                          const ClientSession& session) const;
  std::string HandleWarm(std::string_view payload) const;
  std::string HandleStats() const;
  std::string HandleRegisterDataset(std::string_view payload) const;

  DatasetRegistry& registry_;
  const DispatcherOptions options_;
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_DISPATCHER_H_
