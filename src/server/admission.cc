#include "server/admission.h"

#include <string>
#include <utility>

#include "dp/check.h"
#include "obs/metrics.h"

namespace privtree::server {

namespace {

// Registry mirrors of the per-engine stats_ fields: one process-wide
// counter per outcome, summed over every engine, so a GetStats snapshot
// needs no engine enumeration.
struct AdmissionCounters {
  obs::Counter& admitted =
      obs::Registry::Global().GetCounter("admission.admitted");
  obs::Counter& shed_queue_full =
      obs::Registry::Global().GetCounter("admission.shed_queue_full");
  obs::Counter& shed_cache_saturated =
      obs::Registry::Global().GetCounter("admission.shed_cache_saturated");
  obs::Counter& expired =
      obs::Registry::Global().GetCounter("admission.expired");
  obs::Counter& coalesced_fits =
      obs::Registry::Global().GetCounter("admission.coalesced_fits");
};

AdmissionCounters& Counters() {
  static AdmissionCounters* counters = new AdmissionCounters();
  return *counters;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options,
                                         const serve::SynopsisCache* cache)
    : options_(std::move(options)), cache_(cache) {}

Status AdmissionController::AdmitFitLoad() {
  if (cache_ == nullptr || options_.max_pending_spills == 0) {
    return Status::OK();
  }
  const std::size_t pending = cache_->stats().spill_pending;
  if (pending <= options_.max_pending_spills) return Status::OK();
  {
    MutexLock lk(mu_);
    ++stats_.shed_cache_saturated;
  }
  Counters().shed_cache_saturated.Inc();
  return Status::Unavailable(
             "cache spill writer saturated (" + std::to_string(pending) +
             " pending writes); retry later")
      .WithRetryAfter(options_.retry_after_millis);
}

void AdmissionController::NoteAdmitted() {
  {
    MutexLock lk(mu_);
    ++stats_.admitted;
  }
  Counters().admitted.Inc();
}

void AdmissionController::NoteQueueFull() {
  {
    MutexLock lk(mu_);
    ++stats_.shed_queue_full;
  }
  Counters().shed_queue_full.Inc();
}

void AdmissionController::NoteExpired() {
  {
    MutexLock lk(mu_);
    ++stats_.expired;
  }
  Counters().expired.Inc();
}

bool AdmissionController::BeginFit(const serve::SynopsisKey& key) {
  bool coalesced = false;
  {
    MutexLock lk(mu_);
    coalesced = ++inflight_fits_[key] > 1;
    if (coalesced) ++stats_.coalesced_fits;
  }
  if (coalesced) Counters().coalesced_fits.Inc();
  return coalesced;
}

void AdmissionController::EndFit(const serve::SynopsisKey& key) {
  MutexLock lk(mu_);
  const auto it = inflight_fits_.find(key);
  PRIVTREE_CHECK(it != inflight_fits_.end());
  if (--it->second == 0) inflight_fits_.erase(it);
}

std::size_t AdmissionController::InFlightFits() const {
  MutexLock lk(mu_);
  return inflight_fits_.size();
}

AdmissionController::Stats AdmissionController::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

}  // namespace privtree::server
