// The length-prefixed binary wire protocol of the serving front end.
//
// Transport framing (see server/socket.h): every message travels as one
// frame — a u32 little-endian payload length followed by the payload.  The
// payload itself is a u32 message-type tag followed by a type-specific body
// in the core/byteio encoding (little-endian scalars, u32-length-prefixed
// strings, IEEE-754 binary64 doubles — so query answers cross the wire bit
// for bit).
//
//   payload:
//     u32  message type (MessageType)
//     ...  body
//
// Bodies (requests):
//   Hello            u32 protocol version
//   Fit              FitSpec, i64 deadline millis (0 = none),
//                    u64 dataset fingerprint (0 = server default)
//   QueryBatch       FitSpec, i64 deadline millis, u64 dataset fingerprint,
//                    u64 dim, u64 count, then per box
//                    lo_1 hi_1 ... lo_d hi_d as f64
//   SeqQueryBatch    FitSpec, i64 deadline millis, u64 dataset fingerprint,
//                    u64 count, then per query u32 query kind
//                    (SequenceQueryKind), u32 k, u32 max_len,
//                    u32 symbol count, u32 × count symbols (each < 65536)
//   Warm             u64 dataset fingerprint, u64 count, then count FitSpecs
//   Stats            (empty)
//   GetStats         (empty; reply is the JSON observability snapshot)
//   Traced           u64 trace id, then one complete inner request payload
//                    (tag + body; nesting Traced inside Traced is rejected)
//   Shutdown         (empty)
//   RegisterDataset  str name, u32 dataset kind, u64 dim (spatial dim or
//                    alphabet size), then
//                      spatial:  dim × (f64 lo, f64 hi) domain bounds,
//                                u64 point count, count·dim × f64 coords
//                      sequence: u64 sequence count, then per sequence
//                                u32 length, length × u32 symbols
//
//   FitSpec :=  str method, str options ("k1=v1,k2=v2"), f64 epsilon,
//               u64 seed
//
// Bodies (replies):
//   HelloReply       u32 version, u32 dataset kind (DatasetKind: 0 spatial,
//                    1 sequence), u64 dim (spatial dim, or the alphabet
//                    size for sequence data), u64 record count (points or
//                    sequences), u64 dataset fingerprint (the *default*
//                    dataset; the table below lists every tenant), u64
//                    method count, str × count, f64 session budget total
//                    (0 = unlimited), f64 session budget spent, u64 dataset
//                    count, then per dataset str name, u32 kind, u64 dim,
//                    u64 record count, u64 fingerprint
//   FitReply         str method, u64 dim, f64 epsilon spent,
//                    u64 synopsis size, i32 height, u32 cache hit (0/1)
//   QueryBatchReply  u32 cache hit, u64 count, f64 × count (also answers
//                    SeqQueryBatch — a sequence batch is one double per
//                    spec, exactly like a box batch)
//   WarmReply        u64 accepted
//   StatsReply       13 × u64 (see struct StatsReply)
//   GetStatsReply    str JSON (obs::ProcessStatsJson)
//   RegisterDatasetReply  u64 fingerprint, u64 record count
//   ErrorReply       u32 status code (StatusCode), str message,
//                    u64 retry-after hint in milliseconds (0 = none; set on
//                    Unavailable shed replies so clients pace their backoff)
//
// Every decoder is total: truncation, trailing bytes, a wrong tag, an
// unparsable options string or an inverted box yields a Status error, never
// a crash — the server treats a malformed frame as a client bug and answers
// with ErrorReply.
#ifndef PRIVTREE_SERVER_PROTOCOL_H_
#define PRIVTREE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dp/status.h"
#include "release/dataset.h"
#include "release/method.h"
#include "release/sequence_query.h"
#include "server/request.h"
#include "spatial/box.h"

namespace privtree::server {

/// v2 added the HelloReply dataset-kind field and the SeqQueryBatch frame.
/// v3 added multi-tenant serving: a dataset fingerprint on every
/// fit-carrying request (0 = the server's default dataset), the
/// RegisterDataset upload frame, and per-connection session budget
/// accounting surfaced in HelloReply.
/// v4 added the ErrorReply retry-after hint (u64 milliseconds, 0 = none).
/// v5 added observability: the optional Traced envelope (a u64 trace id
/// wrapped around any request frame), the GetStats JSON snapshot frame,
/// and version negotiation — the server accepts any Hello version in
/// [kMinProtocolVersion, kProtocolVersion] and echoes the *requested*
/// version, so v4 clients round-trip bit-for-bit.
inline constexpr std::uint32_t kProtocolVersion = 5;

/// Oldest client version the server still speaks (see HelloReply echo).
inline constexpr std::uint32_t kMinProtocolVersion = 4;

/// Upper bound on one frame payload (a sanity cap against a garbage length
/// prefix, not a protocol limit).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class MessageType : std::uint32_t {
  kHello = 1,
  kFit = 2,
  kQueryBatch = 3,
  kWarm = 4,
  kStats = 5,
  kShutdown = 6,
  kSeqQueryBatch = 7,
  kRegisterDataset = 8,
  kTraced = 9,
  kGetStats = 10,
  kHelloReply = 101,
  kFitReply = 102,
  kQueryBatchReply = 103,
  kWarmReply = 104,
  kStatsReply = 105,
  kShutdownReply = 106,
  kRegisterDatasetReply = 107,
  kGetStatsReply = 108,
  kErrorReply = 255,
};

struct HelloRequest {
  std::uint32_t version = kProtocolVersion;
};

/// One served tenant, as listed in HelloReply and the datasets CLI verb.
struct DatasetInfo {
  std::string name;
  release::DatasetKind kind = release::DatasetKind::kSpatial;
  std::uint64_t dim = 0;          ///< Spatial dim or alphabet size.
  std::uint64_t point_count = 0;  ///< Points or sequences.
  std::uint64_t fingerprint = 0;
};

struct HelloReply {
  std::uint32_t version = kProtocolVersion;
  /// What the *default* dataset serves; decides which query frame to send
  /// when the client never selects a tenant.
  release::DatasetKind kind = release::DatasetKind::kSpatial;
  /// Spatial dim, or the alphabet size for sequence data.
  std::uint64_t dim = 0;
  /// Served records: points or sequences.
  std::uint64_t point_count = 0;
  std::uint64_t dataset_fingerprint = 0;
  std::vector<std::string> methods;  ///< Registered method names, sorted.
  /// This connection's privacy-budget ceiling (Σε over its fits); 0 means
  /// the server enforces no per-session budget.
  double budget_total = 0.0;
  /// ε already spent by this connection (0 right after Hello).
  double budget_spent = 0.0;
  /// Every tenant this server hosts, registration order (front = default).
  std::vector<DatasetInfo> datasets;
};

struct FitRequest {
  FitSpec spec;
  std::int64_t deadline_millis = 0;  ///< Relative; 0 = no deadline.
  /// Which tenant to fit against; 0 selects the server default.
  std::uint64_t dataset_fingerprint = 0;
};

struct FitReply {
  release::MethodMetadata metadata;
  bool cache_hit = false;
};

struct QueryBatchRequest {
  FitSpec spec;
  std::int64_t deadline_millis = 0;
  std::uint64_t dataset_fingerprint = 0;  ///< 0 = server default.
  std::vector<Box> queries;
};

struct QueryBatchReply {
  std::vector<double> answers;
  bool cache_hit = false;
};

struct SeqQueryBatchRequest {
  FitSpec spec;
  std::int64_t deadline_millis = 0;
  std::uint64_t dataset_fingerprint = 0;  ///< 0 = server default.
  std::vector<release::SequenceQuery> queries;
};

struct WarmRequest {
  std::uint64_t dataset_fingerprint = 0;  ///< 0 = server default.
  std::vector<FitSpec> specs;
};

/// A whole tenant dataset crossing the wire (protocol v3).  Spatial uploads
/// carry their declared domain (deriving it from the data would leak);
/// sequence uploads are raw rows, every sequence end-terminated — the
/// server applies no truncation, that is a per-method option.
struct RegisterDatasetRequest {
  std::string name;
  release::DatasetKind kind = release::DatasetKind::kSpatial;
  std::uint64_t dim = 0;  ///< Spatial dim, or the alphabet size.
  std::vector<double> domain_lo;  ///< Spatial only; dim entries.
  std::vector<double> domain_hi;  ///< Spatial only; dim entries.
  std::vector<double> coords;     ///< Spatial only; count·dim, row-major.
  std::vector<std::vector<Symbol>> sequences;  ///< Sequence only.
};

struct RegisterDatasetReply {
  std::uint64_t fingerprint = 0;  ///< Key for subsequent requests.
  std::uint64_t point_count = 0;  ///< Points or sequences registered.
};

struct WarmReply {
  std::uint64_t accepted = 0;
};

/// Flat serving telemetry (an AsyncEngine::StatsSnapshot on the wire).
struct StatsReply {
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_max_depth = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_cache_saturated = 0;
  std::uint64_t expired = 0;
  std::uint64_t coalesced_fits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t spill_writes = 0;
  std::uint64_t spill_pending = 0;
  std::uint64_t writeback_hits = 0;
};

/// Reads the message-type tag without consuming the payload.
Result<MessageType> PeekType(std::string_view payload);

// Encoders return a complete frame payload (tag + body).
std::string EncodeHello(const HelloRequest& request);
std::string EncodeHelloReply(const HelloReply& reply);
std::string EncodeFit(const FitRequest& request);
std::string EncodeFitReply(const FitReply& reply);
/// Every box must share one dimensionality (the wire format declares one
/// dim for the whole batch); Client::QueryBatch screens this.
std::string EncodeQueryBatch(const QueryBatchRequest& request);
/// Sequence query frames; semantic ranges (symbols vs. the served
/// alphabet, top-k rank bounds) are screened server-side by the engine.
std::string EncodeSeqQueryBatch(const SeqQueryBatchRequest& request);
std::string EncodeQueryBatchReply(const QueryBatchReply& reply);
std::string EncodeWarm(const WarmRequest& request);
std::string EncodeWarmReply(const WarmReply& reply);
std::string EncodeStats();
std::string EncodeStatsReply(const StatsReply& reply);
/// Wraps a complete inner request payload with a u64 trace id (protocol
/// v5); servers unwrap it transparently, so wrapping never changes the
/// reply bytes.
std::string EncodeTraced(std::uint64_t trace_id, std::string_view inner);
std::string EncodeGetStats();
std::string EncodeGetStatsReply(std::string_view json);
std::string EncodeShutdown();
std::string EncodeShutdownReply();
/// Tenant upload; the decoder screens structural bounds (dim/alphabet caps,
/// symbol range, allocation-bounding counts) so a hostile frame fails
/// cleanly before any dataset is built.
std::string EncodeRegisterDataset(const RegisterDatasetRequest& request);
std::string EncodeRegisterDatasetReply(const RegisterDatasetReply& reply);
/// Any non-OK Status crosses the wire as an ErrorReply.
std::string EncodeErrorReply(const Status& status);

// Decoders fail with InvalidArgument on any malformation (wrong tag,
// truncation, trailing bytes, unparsable options, inverted boxes).
Status DecodeHello(std::string_view payload, HelloRequest* out);
Status DecodeHelloReply(std::string_view payload, HelloReply* out);
Status DecodeFit(std::string_view payload, FitRequest* out);
Status DecodeFitReply(std::string_view payload, FitReply* out);
Status DecodeQueryBatch(std::string_view payload, QueryBatchRequest* out);
Status DecodeSeqQueryBatch(std::string_view payload,
                           SeqQueryBatchRequest* out);
Status DecodeQueryBatchReply(std::string_view payload, QueryBatchReply* out);
Status DecodeWarm(std::string_view payload, WarmRequest* out);
Status DecodeWarmReply(std::string_view payload, WarmReply* out);
Status DecodeStatsReply(std::string_view payload, StatsReply* out);
/// The inner view aliases `payload`; it stays valid while payload does.
/// Rejects an empty inner payload and a nested Traced envelope.
Status DecodeTraced(std::string_view payload, std::uint64_t* trace_id,
                    std::string_view* inner);
Status DecodeGetStatsReply(std::string_view payload, std::string* json);
Status DecodeRegisterDataset(std::string_view payload,
                             RegisterDatasetRequest* out);
Status DecodeRegisterDatasetReply(std::string_view payload,
                                  RegisterDatasetReply* out);
/// Reconstructs the Status an ErrorReply carries (an unknown wire code maps
/// to Internal); fails with InvalidArgument on a malformed payload.
Status DecodeErrorReply(std::string_view payload, Status* out);

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_PROTOCOL_H_
