#include "server/dataset_registry.h"

#include <utility>

namespace privtree::server {

DatasetRegistry::DatasetRegistry(serve::ThreadPool& pool,
                                 serve::SynopsisCache& cache,
                                 DatasetRegistryOptions options)
    : pool_(pool), cache_(cache), options_(options) {}

Result<std::uint64_t> DatasetRegistry::Register(std::string name,
                                                release::Dataset data) {
  return Insert(std::move(name), data, nullptr, nullptr);
}

Result<std::uint64_t> DatasetRegistry::Register(std::string name,
                                                PointSet points, Box domain) {
  auto owned = std::make_unique<PointSet>(std::move(points));
  const release::Dataset data(*owned, std::move(domain));
  return Insert(std::move(name), data, std::move(owned), nullptr);
}

Result<std::uint64_t> DatasetRegistry::Register(std::string name,
                                                SequenceDataset sequences) {
  auto owned = std::make_unique<SequenceDataset>(std::move(sequences));
  const release::Dataset data(*owned);
  return Insert(std::move(name), data, nullptr, std::move(owned));
}

Result<std::uint64_t> DatasetRegistry::Insert(
    std::string name, release::Dataset data,
    std::unique_ptr<PointSet> owned_points,
    std::unique_ptr<SequenceDataset> owned_seqs) {
  if (data.size() == 0) {
    return Status::InvalidArgument("refusing to register an empty dataset");
  }
  const std::uint64_t fingerprint = data.Fingerprint();
  MutexLock lk(mu_);
  if (const auto it = entries_.find(fingerprint); it != entries_.end()) {
    // Same fingerprint ⇒ same content ⇒ same engine; re-registration (a
    // retried upload, a duplicated --data flag) is a harmless no-op.
    return fingerprint;
  }
  if (entries_.size() >= options_.max_datasets) {
    return Status::Unavailable(
        "dataset registry is full (" +
        std::to_string(options_.max_datasets) + " tenants)");
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->owned_points = std::move(owned_points);
  entry->owned_sequences = std::move(owned_seqs);
  entry->engine = std::make_unique<AsyncEngine>(data, pool_, cache_,
                                                options_.engine);
  entries_.emplace(fingerprint, std::move(entry));
  order_.push_back(fingerprint);
  return fingerprint;
}

AsyncEngine* DatasetRegistry::Find(std::uint64_t fingerprint) const {
  MutexLock lk(mu_);
  if (fingerprint == 0) {
    if (order_.empty()) return nullptr;
    fingerprint = order_.front();
  }
  const auto it = entries_.find(fingerprint);
  return it == entries_.end() ? nullptr : it->second->engine.get();
}

std::uint64_t DatasetRegistry::default_fingerprint() const {
  MutexLock lk(mu_);
  return order_.empty() ? 0 : order_.front();
}

std::vector<DatasetInfo> DatasetRegistry::List() const {
  MutexLock lk(mu_);
  std::vector<DatasetInfo> out;
  out.reserve(order_.size());
  for (const std::uint64_t fingerprint : order_) {
    const Entry& entry = *entries_.at(fingerprint);
    const release::Dataset& data = entry.engine->data();
    DatasetInfo info;
    info.name = entry.name;
    info.kind = data.kind();
    info.dim = data.dim();
    info.point_count = data.size();
    info.fingerprint = fingerprint;
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t DatasetRegistry::size() const {
  MutexLock lk(mu_);
  return entries_.size();
}

}  // namespace privtree::server
