#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace privtree::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Registry mirrors of Telemetry, summed across every Client in the
/// process (bench worker threads each own a Client; GetStats sees the
/// fleet total).
struct ClientCounters {
  obs::Counter& retries =
      obs::Registry::Global().GetCounter("client.retries");
  obs::Counter& reconnects =
      obs::Registry::Global().GetCounter("client.reconnects");
};

ClientCounters& Counters() {
  static ClientCounters* counters = new ClientCounters();
  return *counters;
}

/// Failures that mean "this connection is gone; a reconnect may succeed":
/// resets and torn frames (IOError), a clean close between frames
/// (NotFound eof), and a read that outlived its socket timeout.
bool IsTransportError(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kNotFound ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

Client::Client(Connection conn, HelloReply info, std::string host,
               std::uint16_t port, ClientOptions options)
    : conn_(std::move(conn)),
      info_(std::move(info)),
      host_(std::move(host)),
      port_(port),
      options_(options),
      jitter_(static_cast<std::uint32_t>(options.backoff_seed | 1)) {}

Result<Connection> Client::DialAndHello(const std::string& host,
                                        std::uint16_t port,
                                        const ClientOptions& options,
                                        HelloReply* info) {
  Result<Connection> dialed =
      Connection::Dial(host, port, options.connect_timeout_millis);
  if (!dialed.ok()) return dialed.status();
  Connection conn = std::move(dialed).value();

  // The handshake read is bounded by the connect timeout: a server that
  // accepts but never speaks (half-open, wedged) must not hang Connect.
  if (options.connect_timeout_millis > 0) {
    if (Status s = conn.SetRecvTimeout(options.connect_timeout_millis);
        !s.ok()) {
      return s;
    }
  }
  if (Status sent = conn.SendFrame(EncodeHello(HelloRequest{})); !sent.ok()) {
    return sent;
  }
  Result<std::string> frame = conn.RecvFrame();
  if (!frame.ok()) {
    if (frame.status().code() == StatusCode::kDeadlineExceeded) {
      return Status::DeadlineExceeded(
          "no Hello reply within " +
          std::to_string(options.connect_timeout_millis) + "ms");
    }
    return frame.status();
  }
  const Result<MessageType> type = PeekType(frame.value());
  if (!type.ok()) return type.status();
  if (type.value() == MessageType::kErrorReply) {
    Status carried;
    if (Status s = DecodeErrorReply(frame.value(), &carried); !s.ok()) {
      return s;
    }
    return carried;
  }
  if (Status s = DecodeHelloReply(frame.value(), info); !s.ok()) return s;
  if (info->version != kProtocolVersion) {
    return Status::InvalidArgument(
        "server speaks protocol version " + std::to_string(info->version) +
        ", client speaks " + std::to_string(kProtocolVersion));
  }
  // Steady-state reads use the per-call bound (0 = unbounded fits).
  if (Status s = conn.SetRecvTimeout(options.read_timeout_millis); !s.ok()) {
    return s;
  }
  return conn;
}

Result<Client> Client::Connect(const std::string& host, std::uint16_t port,
                               ClientOptions options) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(options.retry_budget_millis);
  std::minstd_rand jitter(
      static_cast<std::uint32_t>(options.backoff_seed | 1));
  Status last = Status::IOError("connect never attempted");
  const int attempts = std::max(1, options.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    HelloReply info;
    Result<Connection> conn = DialAndHello(host, port, options, &info);
    if (conn.ok()) {
      return Client(std::move(conn).value(), std::move(info), host, port,
                    options);
    }
    last = conn.status();
    // A version mismatch or malformed Hello will not heal on retry; a
    // refused/timed-out dial or a draining server (Unavailable) might.
    if (!IsTransportError(last) &&
        last.code() != StatusCode::kUnavailable) {
      break;
    }
    if (attempt + 1 >= attempts) break;
    std::int64_t backoff =
        std::min(options.max_backoff_millis,
                 options.base_backoff_millis << std::min(attempt, 20));
    backoff = backoff / 2 + static_cast<std::int64_t>(
                                jitter() % (static_cast<std::uint32_t>(
                                                std::max<std::int64_t>(
                                                    1, backoff / 2 + 1))));
    if (Clock::now() + std::chrono::milliseconds(backoff) > give_up) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
  return last;
}

std::int64_t Client::BackoffMillis(int attempt, std::int64_t floor_millis) {
  std::int64_t backoff =
      std::min(options_.max_backoff_millis,
               options_.base_backoff_millis << std::min(attempt, 20));
  // Deterministic jitter in [backoff/2, backoff]: spreads synchronized
  // retry herds without making chaos runs irreproducible.
  backoff = backoff / 2 +
            static_cast<std::int64_t>(
                jitter_() % (static_cast<std::uint32_t>(
                                 std::max<std::int64_t>(1, backoff / 2 + 1))));
  return std::max(backoff, floor_millis);
}

Result<std::string> Client::RoundTripOnce(const std::string& payload,
                                          bool* transport) {
  *transport = true;
  if (Status sent = conn_.SendFrame(payload); !sent.ok()) return sent;
  Result<std::string> frame = conn_.RecvFrame();
  if (!frame.ok()) return frame.status();
  const Result<MessageType> type = PeekType(frame.value());
  if (!type.ok()) return type.status();
  if (type.value() == MessageType::kErrorReply) {
    Status carried;
    if (Status s = DecodeErrorReply(frame.value(), &carried); !s.ok()) {
      return s;
    }
    *transport = false;  // The server answered; the connection is fine.
    return carried;
  }
  *transport = false;
  return frame;
}

Result<std::string> Client::RoundTrip(const std::string& payload,
                                      bool idempotent) {
  // A trace-id wrapper never changes the reply bytes (the server unwraps
  // transparently); resends reuse the same id so the server's trace ring
  // can correlate them.
  const std::string* wire = &payload;
  std::string wrapped;
  if (trace_ids_enabled_) {
    if (next_trace_id_ == 0) next_trace_id_ = 1;  // 0 means "absent".
    wrapped = EncodeTraced(next_trace_id_++, payload);
    wire = &wrapped;
  }
  const int attempts = std::max(1, options_.max_attempts);
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(options_.retry_budget_millis);
  Result<std::string> result = Status::Internal("round trip never attempted");
  bool sent_before = false;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (!conn_.ok()) {
      // The previous attempt tore the connection down; re-dial before the
      // resend.  A failed reconnect consumes this attempt but sends
      // nothing, so it is not a retry.
      HelloReply info;
      Result<Connection> conn =
          DialAndHello(host_, port_, options_, &info);
      if (conn.ok()) {
        conn_ = std::move(conn).value();
        info_ = std::move(info);
        ++telemetry_.reconnects;
        Counters().reconnects.Inc();
      } else {
        result = conn.status();
        if (!idempotent || !IsTransportError(conn.status())) return result;
        const std::int64_t backoff = BackoffMillis(attempt, 0);
        if (attempt + 1 >= attempts ||
            Clock::now() + std::chrono::milliseconds(backoff) > give_up) {
          return result;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        continue;
      }
    }
    // Every send after the first is the retry; count it exactly here so
    // telemetry matches the number of frames the server may have seen.
    if (sent_before) {
      ++telemetry_.retries;
      Counters().retries.Inc();
    }
    sent_before = true;
    bool transport = false;
    result = RoundTripOnce(*wire, &transport);
    if (result.ok()) return result;
    const Status& failure = result.status();

    std::int64_t floor_millis = 0;
    if (transport) {
      // The stream may be desynchronized (torn frame, timed-out read);
      // never reuse it.  Only an idempotent frame may be resent — the
      // server might have executed the lost request.
      conn_.Close();
      if (!idempotent) return result;
    } else if (failure.code() == StatusCode::kUnavailable ||
               failure.code() == StatusCode::kDeadlineExceeded) {
      // Shed load or a queue-expired deadline: the connection is fine, the
      // server is just busy.  Pace the resend with its retry-after hint
      // when it sent one.
      floor_millis =
          static_cast<std::int64_t>(failure.retry_after_millis());
      if (!idempotent) return result;
    } else {
      return result;  // InvalidArgument, NotFound, ...: retrying cannot help.
    }
    const std::int64_t backoff = BackoffMillis(attempt, floor_millis);
    if (attempt + 1 >= attempts ||
        Clock::now() + std::chrono::milliseconds(backoff) > give_up) {
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
  return result;
}

Result<FitReply> Client::Fit(const FitSpec& spec,
                             std::int64_t deadline_millis) {
  Result<std::string> frame =
      RoundTrip(EncodeFit(FitRequest{spec, deadline_millis, dataset_}),
                /*idempotent=*/true);
  if (!frame.ok()) return frame.status();
  FitReply reply;
  if (Status s = DecodeFitReply(frame.value(), &reply); !s.ok()) return s;
  return reply;
}

Result<std::vector<double>> Client::QueryBatch(const FitSpec& spec,
                                               std::span<const Box> queries,
                                               std::int64_t deadline_millis) {
  // The wire format declares one dim for the whole batch; a mixed-dim span
  // would mis-encode into wrong-but-well-formed boxes (silently wrong
  // answers), so refuse it here.
  for (const Box& q : queries) {
    if (q.dim() != queries.front().dim()) {
      return Status::InvalidArgument(
          "query batch mixes dimensionalities (" +
          std::to_string(queries.front().dim()) + " and " +
          std::to_string(q.dim()) + ")");
    }
  }
  QueryBatchRequest request;
  request.spec = spec;
  request.deadline_millis = deadline_millis;
  request.dataset_fingerprint = dataset_;
  request.queries.assign(queries.begin(), queries.end());
  Result<std::string> frame =
      RoundTrip(EncodeQueryBatch(request), /*idempotent=*/true);
  if (!frame.ok()) return frame.status();
  QueryBatchReply reply;
  if (Status s = DecodeQueryBatchReply(frame.value(), &reply); !s.ok()) {
    return s;
  }
  if (reply.answers.size() != queries.size()) {
    return Status::Internal("server answered " +
                            std::to_string(reply.answers.size()) + " of " +
                            std::to_string(queries.size()) + " queries");
  }
  return std::move(reply.answers);
}

Result<std::vector<double>> Client::SeqQueryBatch(
    const FitSpec& spec, std::span<const release::SequenceQuery> queries,
    std::int64_t deadline_millis) {
  SeqQueryBatchRequest request;
  request.spec = spec;
  request.deadline_millis = deadline_millis;
  request.dataset_fingerprint = dataset_;
  request.queries.assign(queries.begin(), queries.end());
  Result<std::string> frame =
      RoundTrip(EncodeSeqQueryBatch(request), /*idempotent=*/true);
  if (!frame.ok()) return frame.status();
  QueryBatchReply reply;
  if (Status s = DecodeQueryBatchReply(frame.value(), &reply); !s.ok()) {
    return s;
  }
  if (reply.answers.size() != queries.size()) {
    return Status::Internal("server answered " +
                            std::to_string(reply.answers.size()) + " of " +
                            std::to_string(queries.size()) + " queries");
  }
  return std::move(reply.answers);
}

Result<std::uint64_t> Client::Warm(std::span<const FitSpec> specs) {
  WarmRequest request;
  request.dataset_fingerprint = dataset_;
  request.specs.assign(specs.begin(), specs.end());
  Result<std::string> frame =
      RoundTrip(EncodeWarm(request), /*idempotent=*/true);
  if (!frame.ok()) return frame.status();
  WarmReply reply;
  if (Status s = DecodeWarmReply(frame.value(), &reply); !s.ok()) return s;
  return reply.accepted;
}

Result<RegisterDatasetReply> Client::RegisterDataset(
    const RegisterDatasetRequest& request) {
  Result<std::string> frame =
      RoundTrip(EncodeRegisterDataset(request), /*idempotent=*/true);
  if (!frame.ok()) return frame.status();
  RegisterDatasetReply reply;
  if (Status s = DecodeRegisterDatasetReply(frame.value(), &reply);
      !s.ok()) {
    return s;
  }
  return reply;
}

Result<StatsReply> Client::Stats() {
  Result<std::string> frame =
      RoundTrip(EncodeStats(), /*idempotent=*/true);
  if (!frame.ok()) return frame.status();
  StatsReply reply;
  if (Status s = DecodeStatsReply(frame.value(), &reply); !s.ok()) return s;
  return reply;
}

Result<std::string> Client::GetStatsJson() {
  Result<std::string> frame =
      RoundTrip(EncodeGetStats(), /*idempotent=*/true);
  if (!frame.ok()) return frame.status();
  std::string json;
  if (Status s = DecodeGetStatsReply(frame.value(), &json); !s.ok()) {
    return s;
  }
  return json;
}

Status Client::Shutdown() {
  Result<std::string> frame =
      RoundTrip(EncodeShutdown(), /*idempotent=*/false);
  if (!frame.ok()) return frame.status();
  const Result<MessageType> type = PeekType(frame.value());
  if (!type.ok()) return type.status();
  if (type.value() != MessageType::kShutdownReply) {
    return Status::Internal("unexpected reply to Shutdown");
  }
  return Status::OK();
}

}  // namespace privtree::server
