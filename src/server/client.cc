#include "server/client.h"

#include <utility>

namespace privtree::server {

Client::Client(Connection conn, HelloReply info)
    : conn_(std::move(conn)), info_(std::move(info)) {}

Result<Client> Client::Connect(const std::string& host, std::uint16_t port) {
  Result<Connection> dialed = Connection::Dial(host, port);
  if (!dialed.ok()) return dialed.status();
  Connection conn = std::move(dialed).value();

  if (Status sent = conn.SendFrame(EncodeHello(HelloRequest{})); !sent.ok()) {
    return sent;
  }
  Result<std::string> frame = conn.RecvFrame();
  if (!frame.ok()) return frame.status();
  const Result<MessageType> type = PeekType(frame.value());
  if (!type.ok()) return type.status();
  if (type.value() == MessageType::kErrorReply) {
    Status carried;
    if (Status s = DecodeErrorReply(frame.value(), &carried); !s.ok()) {
      return s;
    }
    return carried;
  }
  HelloReply info;
  if (Status s = DecodeHelloReply(frame.value(), &info); !s.ok()) return s;
  if (info.version != kProtocolVersion) {
    return Status::InvalidArgument(
        "server speaks protocol version " + std::to_string(info.version) +
        ", client speaks " + std::to_string(kProtocolVersion));
  }
  return Client(std::move(conn), std::move(info));
}

Result<std::string> Client::RoundTrip(const std::string& payload) {
  if (Status sent = conn_.SendFrame(payload); !sent.ok()) return sent;
  Result<std::string> frame = conn_.RecvFrame();
  if (!frame.ok()) return frame.status();
  const Result<MessageType> type = PeekType(frame.value());
  if (!type.ok()) return type.status();
  if (type.value() == MessageType::kErrorReply) {
    Status carried;
    if (Status s = DecodeErrorReply(frame.value(), &carried); !s.ok()) {
      return s;
    }
    return carried;
  }
  return frame;
}

Result<FitReply> Client::Fit(const FitSpec& spec,
                             std::int64_t deadline_millis) {
  Result<std::string> frame =
      RoundTrip(EncodeFit(FitRequest{spec, deadline_millis, dataset_}));
  if (!frame.ok()) return frame.status();
  FitReply reply;
  if (Status s = DecodeFitReply(frame.value(), &reply); !s.ok()) return s;
  return reply;
}

Result<std::vector<double>> Client::QueryBatch(const FitSpec& spec,
                                               std::span<const Box> queries,
                                               std::int64_t deadline_millis) {
  // The wire format declares one dim for the whole batch; a mixed-dim span
  // would mis-encode into wrong-but-well-formed boxes (silently wrong
  // answers), so refuse it here.
  for (const Box& q : queries) {
    if (q.dim() != queries.front().dim()) {
      return Status::InvalidArgument(
          "query batch mixes dimensionalities (" +
          std::to_string(queries.front().dim()) + " and " +
          std::to_string(q.dim()) + ")");
    }
  }
  QueryBatchRequest request;
  request.spec = spec;
  request.deadline_millis = deadline_millis;
  request.dataset_fingerprint = dataset_;
  request.queries.assign(queries.begin(), queries.end());
  Result<std::string> frame = RoundTrip(EncodeQueryBatch(request));
  if (!frame.ok()) return frame.status();
  QueryBatchReply reply;
  if (Status s = DecodeQueryBatchReply(frame.value(), &reply); !s.ok()) {
    return s;
  }
  if (reply.answers.size() != queries.size()) {
    return Status::Internal("server answered " +
                            std::to_string(reply.answers.size()) + " of " +
                            std::to_string(queries.size()) + " queries");
  }
  return std::move(reply.answers);
}

Result<std::vector<double>> Client::SeqQueryBatch(
    const FitSpec& spec, std::span<const release::SequenceQuery> queries,
    std::int64_t deadline_millis) {
  SeqQueryBatchRequest request;
  request.spec = spec;
  request.deadline_millis = deadline_millis;
  request.dataset_fingerprint = dataset_;
  request.queries.assign(queries.begin(), queries.end());
  Result<std::string> frame = RoundTrip(EncodeSeqQueryBatch(request));
  if (!frame.ok()) return frame.status();
  QueryBatchReply reply;
  if (Status s = DecodeQueryBatchReply(frame.value(), &reply); !s.ok()) {
    return s;
  }
  if (reply.answers.size() != queries.size()) {
    return Status::Internal("server answered " +
                            std::to_string(reply.answers.size()) + " of " +
                            std::to_string(queries.size()) + " queries");
  }
  return std::move(reply.answers);
}

Result<std::uint64_t> Client::Warm(std::span<const FitSpec> specs) {
  WarmRequest request;
  request.dataset_fingerprint = dataset_;
  request.specs.assign(specs.begin(), specs.end());
  Result<std::string> frame = RoundTrip(EncodeWarm(request));
  if (!frame.ok()) return frame.status();
  WarmReply reply;
  if (Status s = DecodeWarmReply(frame.value(), &reply); !s.ok()) return s;
  return reply.accepted;
}

Result<RegisterDatasetReply> Client::RegisterDataset(
    const RegisterDatasetRequest& request) {
  Result<std::string> frame = RoundTrip(EncodeRegisterDataset(request));
  if (!frame.ok()) return frame.status();
  RegisterDatasetReply reply;
  if (Status s = DecodeRegisterDatasetReply(frame.value(), &reply);
      !s.ok()) {
    return s;
  }
  return reply;
}

Result<StatsReply> Client::Stats() {
  Result<std::string> frame = RoundTrip(EncodeStats());
  if (!frame.ok()) return frame.status();
  StatsReply reply;
  if (Status s = DecodeStatsReply(frame.value(), &reply); !s.ok()) return s;
  return reply;
}

Status Client::Shutdown() {
  Result<std::string> frame = RoundTrip(EncodeShutdown());
  if (!frame.ok()) return frame.status();
  const Result<MessageType> type = PeekType(frame.value());
  if (!type.ok()) return type.status();
  if (type.value() != MessageType::kShutdownReply) {
    return Status::Internal("unexpected reply to Shutdown");
  }
  return Status::OK();
}

}  // namespace privtree::server
