#include "server/dispatcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/sync.h"
#include "obs/export.h"
#include "release/registry.h"
#include "server/request.h"

namespace privtree::server {

namespace {

/// Runs `encode` and charges its duration to the trace's serialize span.
template <typename EncodeFn>
std::string EncodeWithSpan(const obs::TracePtr& trace, EncodeFn&& encode) {
  if (!trace) return encode();
  const auto start = std::chrono::steady_clock::now();
  std::string reply = encode();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  trace->Record(obs::Span::kSerialize, us < 0 ? 0 : us);
  return reply;
}

/// Looks up the tenant a request addressed; null already answered `done`.
AsyncEngine* FindEngine(const DatasetRegistry& registry,
                        std::uint64_t fingerprint,
                        const Dispatcher::Done& done) {
  AsyncEngine* engine = registry.Find(fingerprint);
  if (engine == nullptr) {
    done(EncodeErrorReply(Status::NotFound(
        fingerprint == 0
            ? "no dataset is registered"
            : "no dataset with fingerprint " + std::to_string(fingerprint))));
  }
  return engine;
}

/// Validates the spec, charges the session, and hands back the charge
/// bookkeeping the completion callback needs; a non-OK outcome already
/// answered `done`.  Validation must precede KeyFor — canonicalizing the
/// options of an unregistered method is a contract violation.
struct BudgetTicket {
  bool ok = false;
  bool charged = false;
  serve::SynopsisKey key;
};

BudgetTicket ChargeOrRefuse(AsyncEngine& engine, const FitSpec& spec,
                            const std::shared_ptr<ClientSession>& session,
                            const Dispatcher::Done& done) {
  if (Status valid = engine.ValidateSpec(spec); !valid.ok()) {
    done(EncodeErrorReply(valid));
    return {};
  }
  BudgetTicket ticket;
  ticket.key = engine.KeyFor(spec);
  const ClientSession::ChargeOutcome outcome =
      session->Charge(ticket.key, spec.epsilon);
  if (!outcome.status.ok()) {
    done(EncodeErrorReply(outcome.status));
    return {};
  }
  ticket.ok = true;
  ticket.charged = outcome.charged;
  return ticket;
}

}  // namespace

Dispatcher::Dispatcher(DatasetRegistry& registry, DispatcherOptions options)
    : registry_(registry), options_(options) {}

void Dispatcher::HandleFrame(std::string_view payload,
                             const std::shared_ptr<ClientSession>& session,
                             bool* shutdown, Done done, obs::TracePtr trace) {
  Result<MessageType> type = PeekType(payload);
  if (!type.ok()) {
    done(EncodeErrorReply(type.status()));
    return;
  }

  // Unwrap the optional v5 trace envelope first: the inner frame is
  // dispatched exactly as if it had arrived bare, so wrapping never
  // changes the reply bytes.  DecodeTraced rejects nesting, so one pass
  // suffices.
  if (type.value() == MessageType::kTraced) {
    std::uint64_t trace_id = 0;
    std::string_view inner;
    if (Status s = DecodeTraced(payload, &trace_id, &inner); !s.ok()) {
      done(EncodeErrorReply(s));
      return;
    }
    if (trace) {
      trace->trace_id = trace_id;
      trace->client_supplied_id = true;
    }
    payload = inner;
    type = PeekType(payload);
    if (!type.ok()) {
      done(EncodeErrorReply(type.status()));
      return;
    }
  }

  switch (type.value()) {
    case MessageType::kHello:
      done(HandleHello(payload, *session));
      return;

    case MessageType::kFit: {
      FitRequest request;
      if (Status s = DecodeFit(payload, &request); !s.ok()) {
        done(EncodeErrorReply(s));
        return;
      }
      AsyncEngine* engine =
          FindEngine(registry_, request.dataset_fingerprint, done);
      if (engine == nullptr) return;
      const BudgetTicket ticket =
          ChargeOrRefuse(*engine, request.spec, session, done);
      if (!ticket.ok) return;
      const double epsilon = request.spec.epsilon;
      engine
          ->SubmitFit(request.spec,
                      DeadlineFromMillis(request.deadline_millis), trace)
          .OnReady([done = std::move(done), session, ticket, epsilon,
                    trace](const FitResponse& response) {
            if (!response.status.ok()) {
              if (ticket.charged) session->Refund(ticket.key, epsilon);
              done(EncodeErrorReply(response.status));
              return;
            }
            done(EncodeWithSpan(trace, [&] {
              return EncodeFitReply({response.metadata, response.cache_hit});
            }));
          });
      return;
    }

    case MessageType::kQueryBatch: {
      QueryBatchRequest request;
      if (Status s = DecodeQueryBatch(payload, &request); !s.ok()) {
        done(EncodeErrorReply(s));
        return;
      }
      AsyncEngine* engine =
          FindEngine(registry_, request.dataset_fingerprint, done);
      if (engine == nullptr) return;
      const BudgetTicket ticket =
          ChargeOrRefuse(*engine, request.spec, session, done);
      if (!ticket.ok) return;
      const double epsilon = request.spec.epsilon;
      engine
          ->SubmitQueryBatch(request.spec, std::move(request.queries),
                             DeadlineFromMillis(request.deadline_millis),
                             trace)
          .OnReady([done = std::move(done), session, ticket, epsilon,
                    trace](const QueryBatchResponse& response) {
            if (!response.status.ok()) {
              if (ticket.charged) session->Refund(ticket.key, epsilon);
              done(EncodeErrorReply(response.status));
              return;
            }
            done(EncodeWithSpan(trace, [&] {
              return EncodeQueryBatchReply(
                  {response.answers, response.cache_hit});
            }));
          });
      return;
    }

    case MessageType::kSeqQueryBatch: {
      SeqQueryBatchRequest request;
      if (Status s = DecodeSeqQueryBatch(payload, &request); !s.ok()) {
        done(EncodeErrorReply(s));
        return;
      }
      AsyncEngine* engine =
          FindEngine(registry_, request.dataset_fingerprint, done);
      if (engine == nullptr) return;
      const BudgetTicket ticket =
          ChargeOrRefuse(*engine, request.spec, session, done);
      if (!ticket.ok) return;
      const double epsilon = request.spec.epsilon;
      engine
          ->SubmitSeqQueryBatch(request.spec, std::move(request.queries),
                                DeadlineFromMillis(request.deadline_millis),
                                trace)
          .OnReady([done = std::move(done), session, ticket, epsilon,
                    trace](const QueryBatchResponse& response) {
            if (!response.status.ok()) {
              if (ticket.charged) session->Refund(ticket.key, epsilon);
              done(EncodeErrorReply(response.status));
              return;
            }
            done(EncodeWithSpan(trace, [&] {
              return EncodeQueryBatchReply(
                  {response.answers, response.cache_hit});
            }));
          });
      return;
    }

    case MessageType::kWarm:
      done(HandleWarm(payload));
      return;

    case MessageType::kStats:
      done(HandleStats());
      return;

    case MessageType::kGetStats:
      done(EncodeGetStatsReply(obs::ProcessStatsJson()));
      return;

    case MessageType::kRegisterDataset:
      done(HandleRegisterDataset(payload));
      return;

    case MessageType::kShutdown:
      *shutdown = true;
      done(EncodeShutdownReply());
      return;

    default:
      done(EncodeErrorReply(Status::InvalidArgument(
          "unexpected message type " +
          std::to_string(static_cast<std::uint32_t>(type.value())) +
          " (reply tags are server-to-client only)")));
      return;
  }
}

std::string Dispatcher::HandleFrameBlocking(
    std::string_view payload, const std::shared_ptr<ClientSession>& session,
    bool* shutdown) {
  Mutex mu;
  CondVar cv;
  std::string reply;
  bool ready = false;
  HandleFrame(payload, session, shutdown, [&](std::string out) {
    // Notify while still holding the lock: the waiter destroys mu/cv as
    // soon as it observes `ready`, so an unlocked NotifyOne could touch a
    // dead condition variable (TSan catches exactly that).
    MutexLock lk(mu);
    reply = std::move(out);
    ready = true;
    cv.NotifyOne();
  });
  MutexLock lk(mu);
  while (!ready) cv.Wait(lk);
  return reply;
}

std::string Dispatcher::HandleHello(std::string_view payload,
                                    const ClientSession& session) const {
  HelloRequest request;
  if (Status s = DecodeHello(payload, &request); !s.ok()) {
    return EncodeErrorReply(s);
  }
  if (request.version < kMinProtocolVersion ||
      request.version > kProtocolVersion) {
    return EncodeErrorReply(Status::InvalidArgument(
        "protocol version " + std::to_string(request.version) +
        " unsupported (server speaks " + std::to_string(kMinProtocolVersion) +
        ".." + std::to_string(kProtocolVersion) + ")"));
  }
  HelloReply reply;
  // Echo the *requested* version: a v4 client checks for exactly 4, so the
  // reply must carry 4 back for old binaries to round-trip unchanged.
  reply.version = request.version;
  reply.datasets = registry_.List();
  if (!reply.datasets.empty()) {
    const DatasetInfo& fallback = reply.datasets.front();
    reply.kind = fallback.kind;
    reply.dim = fallback.dim;
    reply.point_count = fallback.point_count;
    reply.dataset_fingerprint = fallback.fingerprint;
    // Advertise only what the default tenant can actually fit: a client
    // picking from the list must never draw a kind-mismatch rejection.
    reply.methods = release::GlobalMethodRegistry().Names(fallback.kind);
  }
  reply.budget_total = session.budget_total();
  reply.budget_spent = session.spent();
  return EncodeHelloReply(reply);
}

std::string Dispatcher::HandleWarm(std::string_view payload) const {
  WarmRequest request;
  if (Status s = DecodeWarm(payload, &request); !s.ok()) {
    return EncodeErrorReply(s);
  }
  AsyncEngine* engine = registry_.Find(request.dataset_fingerprint);
  if (engine == nullptr) {
    return EncodeErrorReply(
        Status::NotFound("no dataset with fingerprint " +
                         std::to_string(request.dataset_fingerprint)));
  }
  return EncodeWarmReply({engine->Warm(request.specs)});
}

std::string Dispatcher::HandleStats() const {
  // Queue and admission tallies sum over every tenant's engine; the cache
  // is shared, so its counters are taken once (from any engine).
  StatsReply reply;
  bool have_cache = false;
  for (const DatasetInfo& info : registry_.List()) {
    AsyncEngine* engine = registry_.Find(info.fingerprint);
    if (engine == nullptr) continue;
    const AsyncEngine::StatsSnapshot snapshot = engine->Stats();
    reply.queue_depth += snapshot.queue_depth;
    reply.queue_max_depth =
        std::max<std::uint64_t>(reply.queue_max_depth,
                                snapshot.queue_max_depth);
    reply.admitted += snapshot.admission.admitted;
    reply.shed_queue_full += snapshot.admission.shed_queue_full;
    reply.shed_cache_saturated += snapshot.admission.shed_cache_saturated;
    reply.expired += snapshot.admission.expired;
    reply.coalesced_fits += snapshot.admission.coalesced_fits;
    if (!have_cache) {
      have_cache = true;
      reply.cache_hits = snapshot.cache.hits;
      reply.cache_misses = snapshot.cache.misses;
      reply.cache_evictions = snapshot.cache.evictions;
      reply.spill_writes = snapshot.cache.spill_writes;
      reply.spill_pending = snapshot.cache.spill_pending;
      reply.writeback_hits = snapshot.cache.writeback_hits;
    }
  }
  return EncodeStatsReply(reply);
}

std::string Dispatcher::HandleRegisterDataset(
    std::string_view payload) const {
  RegisterDatasetRequest request;
  if (Status s = DecodeRegisterDataset(payload, &request); !s.ok()) {
    return EncodeErrorReply(s);
  }
  if (!options_.allow_uploads) {
    return EncodeErrorReply(Status::InvalidArgument(
        "this server does not accept dataset uploads"));
  }
  Result<std::uint64_t> registered = Status::Internal("unreachable");
  std::uint64_t count = 0;
  if (request.kind == release::DatasetKind::kSpatial) {
    PointSet points(request.dim, std::move(request.coords));
    count = points.size();
    registered = registry_.Register(
        std::move(request.name), std::move(points),
        Box(request.domain_lo, request.domain_hi));
  } else {
    SequenceDataset sequences(request.dim);
    for (const std::vector<Symbol>& row : request.sequences) {
      sequences.Add(row);
    }
    count = sequences.size();
    registered = registry_.Register(std::move(request.name),
                                    std::move(sequences));
  }
  if (!registered.ok()) return EncodeErrorReply(registered.status());
  return EncodeRegisterDatasetReply({registered.value(), count});
}

}  // namespace privtree::server
