// The multi-tenant dataset registry: one privtree_server process hosting
// many datasets, each behind its own AsyncEngine, keyed by the dataset's
// release::Dataset fingerprint.
//
// Every tenant shares one ThreadPool and one SynopsisCache — the
// SynopsisKey already carries the dataset fingerprint, so two tenants can
// never collide on a cached (or spilled) synopsis even when they fit the
// same method with the same options and ε; isolation is structural, not
// policed.  Engines are created at registration and never removed, so the
// pointer Find() hands out stays valid for the registry's lifetime and the
// dispatcher can hold it across an asynchronous completion.
//
// Registration is idempotent by content: registering a dataset whose
// fingerprint is already hosted returns the existing fingerprint (same
// content ⇒ same engine ⇒ same answers), which makes wire-side uploads
// retry-safe.  The first registered dataset is the *default* — the tenant
// a fingerprint of 0 selects, which is exactly the single-dataset protocol
// v2 behaviour.
//
// Thread-safe: startup registers from main, the wire path registers from
// connection handlers, and every loop thread resolves fingerprints.
#ifndef PRIVTREE_SERVER_DATASET_REGISTRY_H_
#define PRIVTREE_SERVER_DATASET_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sync.h"
#include "dp/status.h"
#include "release/dataset.h"
#include "seq/sequence.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/async_engine.h"
#include "server/protocol.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::server {

struct DatasetRegistryOptions {
  /// Hard cap on hosted tenants; a registration past it is refused with
  /// Unavailable (an uploaded dataset costs real memory — unbounded
  /// acceptance would let one client OOM the server).
  std::size_t max_datasets = 64;
  /// Engine configuration shared by every tenant.
  EngineOptions engine;
};

class DatasetRegistry {
 public:
  /// `pool` and `cache` must outlive the registry (and are shared by every
  /// tenant's engine).
  DatasetRegistry(serve::ThreadPool& pool, serve::SynopsisCache& cache,
                  DatasetRegistryOptions options = {});

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Registers a view over caller-owned data (the startup `--data` path);
  /// the viewed data must outlive the registry.  Returns the fingerprint
  /// requests select the tenant by.
  Result<std::uint64_t> Register(std::string name, release::Dataset data);

  /// Registers an *owned* spatial dataset (the wire upload path).
  Result<std::uint64_t> Register(std::string name, PointSet points,
                                 Box domain);

  /// Registers an owned sequence dataset.
  Result<std::uint64_t> Register(std::string name,
                                 SequenceDataset sequences);

  /// The engine serving `fingerprint`; 0 selects the default (first
  /// registered) tenant.  Null when the fingerprint is unknown or the
  /// registry is empty — the dispatcher maps that to NotFound.
  AsyncEngine* Find(std::uint64_t fingerprint) const;

  /// Fingerprint of the default tenant (0 when empty).
  std::uint64_t default_fingerprint() const;

  /// Every hosted tenant, registration order (front = default).
  std::vector<DatasetInfo> List() const;

  std::size_t size() const;

 private:
  /// One hosted tenant.  Owned storage is optional (startup registrations
  /// view caller data); unique_ptr keeps addresses stable across map
  /// growth, which the Dataset view and the engine both rely on.
  struct Entry {
    std::string name;
    std::unique_ptr<PointSet> owned_points;
    std::unique_ptr<SequenceDataset> owned_sequences;
    std::unique_ptr<AsyncEngine> engine;
  };

  Result<std::uint64_t> Insert(std::string name, release::Dataset data,
                               std::unique_ptr<PointSet> owned_points,
                               std::unique_ptr<SequenceDataset> owned_seqs);

  serve::ThreadPool& pool_;
  serve::SynopsisCache& cache_;
  const DatasetRegistryOptions options_;
  mutable Mutex mu_;
  std::map<std::uint64_t, std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
  std::vector<std::uint64_t> order_ GUARDED_BY(mu_);  // Registration order.
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_DATASET_REGISTRY_H_
