#include "server/request_queue.h"

#include <algorithm>
#include <utility>

namespace privtree::server {

RequestQueue::RequestQueue(std::size_t max_depth)
    : max_depth_(std::max<std::size_t>(max_depth, 1)) {}

bool RequestQueue::TryPush(QueuedRequest& request) {
  MutexLock lk(mu_);
  if (queue_.size() >= max_depth_) return false;
  queue_.push_back(std::move(request));
  return true;
}

bool RequestQueue::TryPop(QueuedRequest* request) {
  MutexLock lk(mu_);
  if (queue_.empty()) return false;
  *request = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

std::size_t RequestQueue::depth() const {
  MutexLock lk(mu_);
  return queue_.size();
}

}  // namespace privtree::server
