#include "server/async_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "core/fault.h"
#include "dp/check.h"
#include "dp/rng.h"
#include "obs/metrics.h"
#include "release/options.h"
#include "release/registry.h"

namespace privtree::server {

namespace {

// Registry handles resolved once per process; recording through them is
// lock-free.  Every engine shares these (the names are per-process, like
// the cache the engines share).
obs::Histogram& QueueWaitHistogram() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("engine.queue_wait_us");
  return h;
}

obs::Histogram& FitHistogram() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("engine.fit_us");
  return h;
}

obs::Histogram& KernelHistogram() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("engine.kernel_us");
  return h;
}

obs::Counter& WatchdogFiredCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("engine.watchdog_fired");
  return c;
}

std::uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

/// A Promise whose Set is idempotent: the watchdog and the (possibly still
/// running) executor can race to settle one request, and only the first
/// settle lands — Promise::Set itself must be called at most once.
template <typename T>
struct SettleOnce {
  explicit SettleOnce(Promise<T> p) : promise(std::move(p)) {}

  void Set(T value) {
    if (!settled.exchange(true, std::memory_order_acq_rel)) {
      promise.Set(std::move(value));
    }
  }

  Promise<T> promise;
  std::atomic<bool> settled{false};
};

}  // namespace

AsyncEngine::AsyncEngine(release::Dataset data, serve::ThreadPool& pool,
                         serve::SynopsisCache& cache, EngineOptions options)
    : data_(std::move(data)),
      pool_(pool),
      cache_(cache),
      dataset_fingerprint_(data_.Fingerprint()),
      admission_(options.admission, &cache),
      queue_(options.admission.max_queue_depth) {
  if (options.watchdog_poll_millis > 0) {
    watchdog_ = std::thread(&AsyncEngine::RunWatchdog, this,
                            options.watchdog_poll_millis);
  }
}

AsyncEngine::AsyncEngine(const PointSet& points, Box domain,
                         serve::ThreadPool& pool, serve::SynopsisCache& cache,
                         EngineOptions options)
    : AsyncEngine(release::Dataset(points, std::move(domain)), pool, cache,
                  options) {}

AsyncEngine::~AsyncEngine() {
  // Queued requests capture `this`; do not let them outlive the engine.
  pool_.WaitIdle();
  if (watchdog_.joinable()) {
    {
      MutexLock lk(watch_mu_);
      stop_watchdog_ = true;
    }
    watch_cv_.NotifyAll();
    watchdog_.join();
  }
}

std::uint64_t AsyncEngine::BeginWatch(DeadlineClock::time_point deadline,
                                      std::function<void()> fail) {
  if (!watchdog_.joinable() || deadline == kNoDeadline) return 0;
  MutexLock lk(watch_mu_);
  const std::uint64_t id = ++next_watch_id_;
  watched_.emplace(id, Watched{deadline, std::move(fail)});
  return id;
}

void AsyncEngine::EndWatch(std::uint64_t id) {
  if (id == 0) return;
  MutexLock lk(watch_mu_);
  watched_.erase(id);
}

void AsyncEngine::RunWatchdog(std::uint64_t poll_millis) {
  MutexLock lk(watch_mu_);
  while (!stop_watchdog_) {
    watch_cv_.WaitFor(lk, std::chrono::milliseconds(poll_millis));
    if (stop_watchdog_) return;
    const DeadlineClock::time_point now = DeadlineClock::now();
    std::vector<std::function<void()>> fired;
    for (auto it = watched_.begin(); it != watched_.end();) {
      if (now > it->second.deadline) {
        fired.push_back(std::move(it->second.fail));
        it = watched_.erase(it);
      } else {
        ++it;
      }
    }
    if (fired.empty()) continue;
    watchdog_fired_ += fired.size();
    WatchdogFiredCounter().Inc(fired.size());
    lk.Unlock();  // Settling runs OnReady callbacks; never under watch_mu_.
    for (const auto& fail : fired) fail();
    lk.Lock();
  }
}

serve::FitJob AsyncEngine::JobFor(const FitSpec& spec) {
  // The exact ReleaseSession derivation: the session seeds Rng(seed) and
  // each release consumes one Fork() — so a served answer is the answer an
  // in-process session with the same seed would have produced.
  Rng session_rng(spec.seed);
  return {spec.method, spec.options, spec.epsilon, session_rng.Fork()};
}

serve::SynopsisKey AsyncEngine::KeyFor(const FitSpec& spec) const {
  return {dataset_fingerprint_, spec.method,
          serve::CanonicalOptionsText(spec.method, spec.options),
          spec.epsilon, JobFor(spec).rng.Fingerprint()};
}

Status AsyncEngine::ValidateSpec(const FitSpec& spec) const {
  const auto& registry = release::GlobalMethodRegistry();
  if (!registry.Contains(spec.method)) {
    return Status::InvalidArgument("unknown method \"" + spec.method + "\"");
  }
  if (registry.Kind(spec.method) != data_.kind()) {
    return Status::InvalidArgument(
        "method \"" + spec.method + "\" fits " +
        std::string(release::DatasetKindName(registry.Kind(spec.method))) +
        " datasets; this server serves " +
        std::string(release::DatasetKindName(data_.kind())) + " data");
  }
  const std::size_t required = registry.RequiredDim(spec.method);
  if (data_.is_spatial() && required != 0 && required != data_.dim()) {
    return Status::InvalidArgument(
        "method \"" + spec.method + "\" requires " +
        std::to_string(required) + "-dimensional data (serving dim=" +
        std::to_string(data_.dim()) + ")");
  }
  if (!(spec.epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const auto& allowed = registry.AllowedKeys(spec.method);
  for (const std::string& key : spec.options.Keys()) {
    const auto it = std::find_if(
        allowed.begin(), allowed.end(),
        [&](const release::OptionKey& k) { return k.name == key; });
    if (it == allowed.end()) {
      return Status::InvalidArgument("method \"" + spec.method +
                                     "\" has no option \"" + key + "\"");
    }
    // Type + declared range: a wire-supplied value must fail here, with a
    // Status, never inside the fitter's aborting contract checks.
    if (Status value = release::CheckOptionValue(
            *it, spec.options.GetString(key, ""));
        !value.ok()) {
      return value;
    }
  }
  // The one dataset-relative range: a tree split cannot span more
  // dimensions than the served data has.
  if (data_.is_spatial() && spec.options.Has("dims_per_split") &&
      spec.options.GetInt("dims_per_split", 0) >
          static_cast<std::int64_t>(data_.dim())) {
    return Status::InvalidArgument(
        "dims_per_split exceeds the serving dim (" +
        std::to_string(data_.dim()) + ")");
  }
  return Status::OK();
}

Status AsyncEngine::Enqueue(QueuedRequest& request, bool needs_fit,
                            const obs::TracePtr& trace) {
  const auto start = std::chrono::steady_clock::now();
  const auto stamp = [&] {
    if (trace) trace->Record(obs::Span::kAdmission, MicrosSince(start));
  };
  if (needs_fit) {
    if (Status admitted = admission_.AdmitFitLoad(); !admitted.ok()) {
      stamp();
      return admitted;
    }
  }
  if (!queue_.TryPush(request)) {
    admission_.NoteQueueFull();
    stamp();
    return Status::Unavailable(
               "request queue full (" + std::to_string(queue_.max_depth()) +
               " pending); retry later")
        .WithRetryAfter(admission_.options().retry_after_millis);
  }
  admission_.NoteAdmitted();
  stamp();
  pool_.Submit([this] { RunOne(); });
  return Status::OK();
}

void AsyncEngine::RunOne() {
  QueuedRequest request;
  if (!queue_.TryPop(&request)) return;
  if (DeadlineClock::now() > request.deadline) {
    admission_.NoteExpired();
    request.expire(
        Status::DeadlineExceeded("deadline passed while queued; not run"));
    return;
  }
  request.run();
}

Future<FitResponse> AsyncEngine::SubmitFit(
    const FitSpec& spec, DeadlineClock::time_point deadline,
    obs::TracePtr trace) {
  Promise<FitResponse> promise;
  Future<FitResponse> future = promise.future();
  if (Status valid = ValidateSpec(spec); !valid.ok()) {
    promise.Set({std::move(valid), {}, false});
    return future;
  }
  const serve::SynopsisKey key = KeyFor(spec);
  admission_.BeginFit(key);
  auto shared =
      std::make_shared<SettleOnce<FitResponse>>(std::move(promise));
  QueuedRequest request;
  request.deadline = deadline;
  request.expire = [this, shared, key](Status status) {
    admission_.EndFit(key);
    shared->Set({std::move(status), {}, false});
  };
  const auto submitted = std::chrono::steady_clock::now();
  request.run = [this, shared, spec, key, deadline, trace, submitted] {
    const std::uint64_t wait_us = MicrosSince(submitted);
    QueueWaitHistogram().Observe(wait_us);
    if (trace) trace->Record(obs::Span::kQueueWait, wait_us);
    const std::uint64_t watch = BeginWatch(deadline, [shared] {
      shared->Set({Status::DeadlineExceeded(
                       "deadline passed while the fit was running"),
                   {},
                   false});
    });
    if (auto f = PRIVTREE_FAULT("engine.fit"); f && f.MaybeSleep()) {
      EndWatch(watch);
      admission_.EndFit(key);
      shared->Set({f.ToStatus("engine.fit"), {}, false});
      return;
    }
    const auto fit_start = std::chrono::steady_clock::now();
    const serve::FitResult fitted = serve::FitSynopsis(
        data_, dataset_fingerprint_, JobFor(spec), &cache_);
    const std::uint64_t fit_us = MicrosSince(fit_start);
    FitHistogram().Observe(fit_us);
    if (trace) {
      trace->Record(obs::Span::kFit, fit_us);
      trace->cache_hit = fitted.cache_hit;
    }
    EndWatch(watch);
    admission_.EndFit(key);
    shared->Set({Status::OK(), fitted.method->Metadata(), fitted.cache_hit});
  };
  if (Status queued = Enqueue(request, /*needs_fit=*/true, trace);
      !queued.ok()) {
    admission_.EndFit(key);
    shared->Set({std::move(queued), {}, false});
  }
  return future;
}

Future<QueryBatchResponse> AsyncEngine::SubmitQueryBatch(
    const FitSpec& spec, std::vector<Box> queries,
    DeadlineClock::time_point deadline, obs::TracePtr trace) {
  Promise<QueryBatchResponse> promise;
  Future<QueryBatchResponse> future = promise.future();
  if (Status valid = ValidateSpec(spec); !valid.ok()) {
    promise.Set({std::move(valid), {}, false});
    return future;
  }
  // ValidateSpec already rejects spatial methods on a sequence engine, but
  // box queries carry their own shape; keep the message direct.
  if (!data_.is_spatial()) {
    promise.Set({Status::InvalidArgument(
                     "box query batches need a spatial served dataset; this "
                     "server serves sequence data (use SeqQueryBatch)"),
                 {},
                 false});
    return future;
  }
  for (const Box& q : queries) {
    if (q.dim() != data_.dim()) {
      promise.Set({Status::InvalidArgument(
                       "query box dim " + std::to_string(q.dim()) +
                       " != serving dim " + std::to_string(data_.dim())),
                   {},
                   false});
      return future;
    }
  }
  const serve::SynopsisKey key = KeyFor(spec);
  // Queries against a cached synopsis bypass the fit-load gate (they cost
  // no fit); only a query that must fit first counts as fit load.
  const bool needs_fit = cache_.Lookup(key) == nullptr;
  if (needs_fit) admission_.BeginFit(key);
  auto shared =
      std::make_shared<SettleOnce<QueryBatchResponse>>(std::move(promise));
  auto boxes = std::make_shared<std::vector<Box>>(std::move(queries));
  QueuedRequest request;
  request.deadline = deadline;
  request.expire = [this, shared, key, needs_fit](Status status) {
    if (needs_fit) admission_.EndFit(key);
    shared->Set({std::move(status), {}, false});
  };
  const auto submitted = std::chrono::steady_clock::now();
  request.run = [this, shared, spec, key, needs_fit, boxes, deadline, trace,
                 submitted] {
    const std::uint64_t wait_us = MicrosSince(submitted);
    QueueWaitHistogram().Observe(wait_us);
    if (trace) trace->Record(obs::Span::kQueueWait, wait_us);
    const std::uint64_t watch = BeginWatch(deadline, [shared] {
      shared->Set({Status::DeadlineExceeded(
                       "deadline passed while the request was running"),
                   {},
                   false});
    });
    if (auto f = PRIVTREE_FAULT("engine.fit"); f && f.MaybeSleep()) {
      EndWatch(watch);
      if (needs_fit) admission_.EndFit(key);
      shared->Set({f.ToStatus("engine.fit"), {}, false});
      return;
    }
    const auto fit_start = std::chrono::steady_clock::now();
    const serve::FitResult fitted = serve::FitSynopsis(
        data_, dataset_fingerprint_, JobFor(spec), &cache_);
    const std::uint64_t fit_us = MicrosSince(fit_start);
    FitHistogram().Observe(fit_us);
    if (trace) {
      trace->Record(obs::Span::kFit, fit_us);
      trace->cache_hit = fitted.cache_hit;
    }
    if (needs_fit) admission_.EndFit(key);
    // The batch runs on this one pool task; concurrency comes from many
    // requests in flight, and a fitted Method is safe to query from any
    // number of them at once.
    EndWatch(watch);
    const auto kernel_start = std::chrono::steady_clock::now();
    std::vector<double> answers = fitted.method->QueryBatch(*boxes);
    const std::uint64_t kernel_us = MicrosSince(kernel_start);
    KernelHistogram().Observe(kernel_us);
    if (trace) trace->Record(obs::Span::kKernel, kernel_us);
    shared->Set({Status::OK(), std::move(answers), fitted.cache_hit});
  };
  if (Status queued = Enqueue(request, needs_fit, trace); !queued.ok()) {
    if (needs_fit) admission_.EndFit(key);
    shared->Set({std::move(queued), {}, false});
  }
  return future;
}

Future<QueryBatchResponse> AsyncEngine::SubmitSeqQueryBatch(
    const FitSpec& spec, std::vector<release::SequenceQuery> queries,
    DeadlineClock::time_point deadline, obs::TracePtr trace) {
  Promise<QueryBatchResponse> promise;
  Future<QueryBatchResponse> future = promise.future();
  if (Status valid = ValidateSpec(spec); !valid.ok()) {
    promise.Set({std::move(valid), {}, false});
    return future;
  }
  if (!data_.is_sequence()) {
    promise.Set({Status::InvalidArgument(
                     "sequence query batches need a sequence served "
                     "dataset; this server serves spatial data"),
                 {},
                 false});
    return future;
  }
  for (const release::SequenceQuery& q : queries) {
    if (Status screened = release::ValidateSequenceQuery(q, data_.dim());
        !screened.ok()) {
      promise.Set({std::move(screened), {}, false});
      return future;
    }
  }
  const serve::SynopsisKey key = KeyFor(spec);
  const bool needs_fit = cache_.Lookup(key) == nullptr;
  if (needs_fit) admission_.BeginFit(key);
  auto shared =
      std::make_shared<SettleOnce<QueryBatchResponse>>(std::move(promise));
  auto specs = std::make_shared<std::vector<release::SequenceQuery>>(
      std::move(queries));
  QueuedRequest request;
  request.deadline = deadline;
  request.expire = [this, shared, key, needs_fit](Status status) {
    if (needs_fit) admission_.EndFit(key);
    shared->Set({std::move(status), {}, false});
  };
  const auto submitted = std::chrono::steady_clock::now();
  request.run = [this, shared, spec, key, needs_fit, specs, deadline, trace,
                 submitted] {
    const std::uint64_t wait_us = MicrosSince(submitted);
    QueueWaitHistogram().Observe(wait_us);
    if (trace) trace->Record(obs::Span::kQueueWait, wait_us);
    const std::uint64_t watch = BeginWatch(deadline, [shared] {
      shared->Set({Status::DeadlineExceeded(
                       "deadline passed while the request was running"),
                   {},
                   false});
    });
    if (auto f = PRIVTREE_FAULT("engine.fit"); f && f.MaybeSleep()) {
      EndWatch(watch);
      if (needs_fit) admission_.EndFit(key);
      shared->Set({f.ToStatus("engine.fit"), {}, false});
      return;
    }
    const auto fit_start = std::chrono::steady_clock::now();
    const serve::FitResult fitted = serve::FitSynopsis(
        data_, dataset_fingerprint_, JobFor(spec), &cache_);
    const std::uint64_t fit_us = MicrosSince(fit_start);
    FitHistogram().Observe(fit_us);
    if (trace) {
      trace->Record(obs::Span::kFit, fit_us);
      trace->cache_hit = fitted.cache_hit;
    }
    if (needs_fit) admission_.EndFit(key);
    EndWatch(watch);
    const auto kernel_start = std::chrono::steady_clock::now();
    std::vector<double> answers = fitted.method->QueryBatch(*specs);
    const std::uint64_t kernel_us = MicrosSince(kernel_start);
    KernelHistogram().Observe(kernel_us);
    if (trace) trace->Record(obs::Span::kKernel, kernel_us);
    shared->Set({Status::OK(), std::move(answers), fitted.cache_hit});
  };
  if (Status queued = Enqueue(request, needs_fit, trace); !queued.ok()) {
    if (needs_fit) admission_.EndFit(key);
    shared->Set({std::move(queued), {}, false});
  }
  return future;
}

std::size_t AsyncEngine::Warm(std::span<const FitSpec> specs) {
  std::size_t accepted = 0;
  for (const FitSpec& spec : specs) {
    if (!ValidateSpec(spec).ok()) continue;
    const serve::SynopsisKey key = KeyFor(spec);
    if (cache_.Lookup(key) != nullptr) continue;  // Already warm.
    admission_.BeginFit(key);
    QueuedRequest request;  // No deadline and nobody waits on a future.
    request.expire = [this, key](Status) { admission_.EndFit(key); };
    request.run = [this, spec, key] {
      serve::FitSynopsis(data_, dataset_fingerprint_, JobFor(spec), &cache_);
      admission_.EndFit(key);
    };
    if (Enqueue(request, /*needs_fit=*/true).ok()) {
      ++accepted;
    } else {
      admission_.EndFit(key);
    }
  }
  return accepted;
}

AsyncEngine::StatsSnapshot AsyncEngine::Stats() const {
  std::size_t watchdog_fired = 0;
  {
    MutexLock lk(watch_mu_);
    watchdog_fired = watchdog_fired_;
  }
  return {queue_.depth(), queue_.max_depth(), watchdog_fired,
          admission_.stats(), cache_.stats()};
}

}  // namespace privtree::server
