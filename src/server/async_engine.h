// The asynchronous serving engine: a bounded request queue with completion
// futures, layered over the shared ThreadPool and SynopsisCache.
//
// One engine binds one dataset — spatial points with their declared
// domain, or a symbol-sequence dataset — and serves many concurrent
// clients.  Submission is cheap and
// non-blocking: SubmitFit/SubmitQueryBatch validate the spec, pass
// admission control, enqueue the request, and return a Future the caller
// redeems whenever it likes; execution happens on the pool, one request
// per task, with every fit memoized through the cache (identical in-flight
// fits collapse onto the cache's single-flight path and are counted as
// coalesced by the AdmissionController).  Answers are bit-for-bit the
// answers an in-process ReleaseSession with the same seed would produce,
// because the fit path *is* the ParallelRunner fit path
// (serve::FitSynopsis) and queries are pure post-processing.
//
// Overload never queues unboundedly: a full queue or a saturated cache
// writer sheds the request immediately with Status::Unavailable, and a
// request whose deadline passes while it waits is retired with
// Status::DeadlineExceeded without ever executing.
//
// Warm() is the Prefetch-driven warming path: feed it the fit specs of an
// observed workload (e.g. a replayed request log) and it fills the cache
// through the same admission-controlled queue, so a warmup burst cannot
// starve live traffic past the queue bound.
#ifndef PRIVTREE_SERVER_ASYNC_ENGINE_H_
#define PRIVTREE_SERVER_ASYNC_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/sync.h"
#include "dp/status.h"
#include "obs/trace.h"
#include "release/dataset.h"
#include "release/method.h"
#include "release/sequence_query.h"
#include "serve/parallel_runner.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/admission.h"
#include "server/future.h"
#include "server/request.h"
#include "server/request_queue.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::server {

struct EngineOptions {
  AdmissionOptions admission;
  /// Watchdog scan interval.  A request whose deadline passes while it is
  /// *executing* (a stuck or fault-delayed fit) has its future settled with
  /// DeadlineExceeded by a background watchdog thread instead of wedging
  /// the caller's reply slot forever; the execution itself still runs to
  /// completion (its late result is discarded).  0 disables the watchdog.
  std::uint64_t watchdog_poll_millis = 50;
};

/// One engine per served dataset; safe to call from any number of threads.
class AsyncEngine {
 public:
  /// Everything the engine serves about one dataset and its load state, for
  /// the stats surfaces (bench telemetry, the wire protocol's Stats reply).
  struct StatsSnapshot {
    std::size_t queue_depth = 0;
    std::size_t queue_max_depth = 0;
    /// Running requests the watchdog failed with DeadlineExceeded.
    std::size_t watchdog_fired = 0;
    AdmissionController::Stats admission;
    serve::SynopsisCache::Stats cache;
  };

  /// General form: one engine per served dataset of either kind.  The data
  /// `data` views, `pool` and `cache` must outlive the engine.
  AsyncEngine(release::Dataset data, serve::ThreadPool& pool,
              serve::SynopsisCache& cache, EngineOptions options = {});

  /// Spatial convenience: `points` must outlive the engine.  The domain is
  /// declared by the caller, exactly as in ReleaseSession.
  AsyncEngine(const PointSet& points, Box domain, serve::ThreadPool& pool,
              serve::SynopsisCache& cache, EngineOptions options = {});

  /// Blocks until every outstanding request has resolved.
  ~AsyncEngine();

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Fits (or re-serves from cache) the spec'd release and resolves the
  /// future with its accounting.  Shed or invalid requests resolve
  /// immediately with a non-OK status.
  ///
  /// On every Submit*, `trace` (optional) receives the admission,
  /// queue-wait, fit, and kernel span timings; the same durations feed the
  /// registry's "engine.*_us" histograms whether or not a trace rides
  /// along.  Instrumentation never touches the answer path.
  Future<FitResponse> SubmitFit(
      const FitSpec& spec,
      DeadlineClock::time_point deadline = kNoDeadline,
      obs::TracePtr trace = {});

  /// Answers `queries` against the spec'd release, fitting it first if the
  /// cache does not hold it.  Every box must have the dataset's dim;
  /// requires a spatial-kind served dataset (a clean InvalidArgument
  /// otherwise).
  Future<QueryBatchResponse> SubmitQueryBatch(
      const FitSpec& spec, std::vector<Box> queries,
      DeadlineClock::time_point deadline = kNoDeadline,
      obs::TracePtr trace = {});

  /// Sequence counterpart: answers SequenceQuery specs against the spec'd
  /// release.  Requires a sequence-kind served dataset; every query is
  /// screened against the served alphabet (ValidateSequenceQuery), so a
  /// hostile spec resolves with a clean InvalidArgument.
  Future<QueryBatchResponse> SubmitSeqQueryBatch(
      const FitSpec& spec, std::vector<release::SequenceQuery> queries,
      DeadlineClock::time_point deadline = kNoDeadline,
      obs::TracePtr trace = {});

  /// Cache warming from an observed workload: enqueues an
  /// admission-controlled background fit per not-yet-cached spec and
  /// returns how many were accepted (invalid, shed, and already-cached
  /// specs are skipped).  Fire-and-forget; redeem progress via Stats().
  std::size_t Warm(std::span<const FitSpec> specs);

  /// Non-OK when the spec cannot be served: unregistered method, a method
  /// kind that does not match the served dataset, wrong dimensionality,
  /// non-positive ε, unknown option key or out-of-range value (the
  /// registry's OptionKey ranges cover the sequence keys too, so a hostile
  /// socket client never reaches a fitter's aborting contract check).
  Status ValidateSpec(const FitSpec& spec) const;

  StatsSnapshot Stats() const;

  const release::Dataset& data() const { return data_; }
  /// Spatial accessors; abort on sequence engines (kept for the many
  /// spatial call sites).
  const PointSet& points() const { return data_.points(); }
  const Box& domain() const { return data_.domain(); }
  std::uint64_t dataset_fingerprint() const { return dataset_fingerprint_; }
  serve::ThreadPool& pool() const { return pool_; }
  serve::SynopsisCache& cache() const { return cache_; }
  AdmissionController& admission() { return admission_; }

  /// The cache key / fit job a spec maps to (exposed for tests and the
  /// coalescing bookkeeping; the rng derivation matches ReleaseSession).
  serve::SynopsisKey KeyFor(const FitSpec& spec) const;
  static serve::FitJob JobFor(const FitSpec& spec);

 private:
  /// Pool task body: pop one request, expire or run it.
  void RunOne();

  /// Registers an *executing* request with the watchdog: if `deadline`
  /// passes before EndWatch, the watchdog runs `fail` (which settles the
  /// request's promise with DeadlineExceeded; the promise wrapper makes a
  /// later Set from the still-running executor a no-op).  Returns 0 (no
  /// watch) when the watchdog is disabled or the deadline is kNoDeadline.
  std::uint64_t BeginWatch(DeadlineClock::time_point deadline,
                           std::function<void()> fail) EXCLUDES(watch_mu_);
  void EndWatch(std::uint64_t id) EXCLUDES(watch_mu_);
  void RunWatchdog(std::uint64_t poll_millis) EXCLUDES(watch_mu_);

  /// Admission + enqueue for one fit-carrying request; on success schedules
  /// a pool task and returns OK.  On failure the caller resolves the future
  /// with the returned status.  `needs_fit` is false when the key is
  /// already cached (queries skip the fit-load gate then).  `trace`
  /// receives the admission-decision span when non-null.
  Status Enqueue(QueuedRequest& request, bool needs_fit,
                 const obs::TracePtr& trace = {});

  const release::Dataset data_;
  serve::ThreadPool& pool_;
  serve::SynopsisCache& cache_;
  const std::uint64_t dataset_fingerprint_;
  AdmissionController admission_;
  RequestQueue queue_;

  struct Watched {
    DeadlineClock::time_point deadline;
    std::function<void()> fail;
  };
  mutable Mutex watch_mu_;
  CondVar watch_cv_;
  std::map<std::uint64_t, Watched> watched_ GUARDED_BY(watch_mu_);
  std::uint64_t next_watch_id_ GUARDED_BY(watch_mu_) = 0;
  std::size_t watchdog_fired_ GUARDED_BY(watch_mu_) = 0;
  bool stop_watchdog_ GUARDED_BY(watch_mu_) = false;
  std::thread watchdog_;
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_ASYNC_ENGINE_H_
