// Completion handles for asynchronous serving requests.
//
// A Promise/Future pair is the contract between the thread that submits a
// request and the pool thread that eventually fulfils it: the submitter
// keeps the Future, the executing side keeps the Promise, and the shared
// state between them is fulfilled exactly once.  Unlike std::future this
// handle is copyable (a response can be awaited from several places), waits
// with a timeout without consuming the value, and never throws — a failed
// request is an ordinary response carrying a non-OK Status, not an
// exception.  A Promise dropped without being set (an executor died)
// resolves the Future with an Internal error instead of blocking its
// waiters forever.
#ifndef PRIVTREE_SERVER_FUTURE_H_
#define PRIVTREE_SERVER_FUTURE_H_

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/sync.h"

namespace privtree::server {

template <typename T>
class Promise;

/// A copyable handle to a value that a Promise will set exactly once.
template <typename T>
class Future {
 public:
  /// Whether the value has been set (non-blocking).
  bool Ready() const {
    MutexLock lk(state_->mu);
    return state_->value.has_value();
  }

  /// Blocks until the value is set and returns a copy.  By value on
  /// purpose: `engine.Submit...(...).Get()` — the common one-liner — would
  /// dangle if this returned a reference into the temporary future's
  /// state.
  T Get() const {
    MutexLock lk(state_->mu);
    while (!state_->value.has_value()) state_->cv.Wait(lk);
    return *state_->value;
  }

  /// Blocks up to `timeout`; true when the value arrived in time.
  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> timeout) const {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lk(state_->mu);
    while (!state_->value.has_value()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      state_->cv.WaitFor(lk, deadline - now);
    }
    return true;
  }

  /// Registers `callback` to run exactly once with the value: on the
  /// setting thread when Set arrives later, or inline right now when the
  /// value is already present.  The non-blocking redemption path the event
  /// loop uses — never call Get() from inside a callback registered on the
  /// same future (the value is already in hand).  Callbacks must not throw.
  void OnReady(std::function<void(const T&)> callback) const {
    // The pointer is taken under the lock but dereferenced outside it: the
    // value is set exactly once and never mutated after, so the unlocked
    // read cannot race the (already finished) write.
    const T* ready = nullptr;
    {
      MutexLock lk(state_->mu);
      if (!state_->value.has_value()) {
        state_->callbacks.push_back(std::move(callback));
        return;
      }
      ready = &*state_->value;
    }
    callback(*ready);
  }

 private:
  friend class Promise<T>;

  struct State {
    Mutex mu;
    CondVar cv;
    std::optional<T> value GUARDED_BY(mu);
    /// Registered before the value arrived; drained (and invoked) by Set.
    std::vector<std::function<void(const T&)>> callbacks GUARDED_BY(mu);
  };

  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// The fulfilling side; movable, not copyable (one fulfiller per request).
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<typename Future<T>::State>()) {}

  Promise(Promise&&) noexcept = default;
  Promise& operator=(Promise&&) noexcept = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  /// Resolves abandoned futures (see class comment) so waiters never hang.
  ~Promise() {
    if (state_ == nullptr) return;  // Moved from, or Set already ran.
    Set(T::Abandoned());
  }

  Future<T> future() const { return Future<T>(state_); }

  /// Sets the value, wakes every waiter, and runs every callback that
  /// OnReady registered before the value arrived.  Must be called at most
  /// once.
  void Set(T value) {
    auto state = std::move(state_);
    std::vector<std::function<void(const T&)>> callbacks;
    // As in OnReady: the emplace is the one and only write, so callbacks
    // may read through the saved pointer without the lock.
    const T* set = nullptr;
    {
      MutexLock lk(state->mu);
      set = &state->value.emplace(std::move(value));
      callbacks.swap(state->callbacks);
    }
    state->cv.NotifyAll();
    for (const auto& callback : callbacks) callback(*set);
  }

 private:
  std::shared_ptr<typename Future<T>::State> state_;
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_FUTURE_H_
