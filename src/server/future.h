// Completion handles for asynchronous serving requests.
//
// A Promise/Future pair is the contract between the thread that submits a
// request and the pool thread that eventually fulfils it: the submitter
// keeps the Future, the executing side keeps the Promise, and the shared
// state between them is fulfilled exactly once.  Unlike std::future this
// handle is copyable (a response can be awaited from several places), waits
// with a timeout without consuming the value, and never throws — a failed
// request is an ordinary response carrying a non-OK Status, not an
// exception.  A Promise dropped without being set (an executor died)
// resolves the Future with an Internal error instead of blocking its
// waiters forever.
#ifndef PRIVTREE_SERVER_FUTURE_H_
#define PRIVTREE_SERVER_FUTURE_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace privtree::server {

template <typename T>
class Promise;

/// A copyable handle to a value that a Promise will set exactly once.
template <typename T>
class Future {
 public:
  /// Whether the value has been set (non-blocking).
  bool Ready() const {
    std::lock_guard<std::mutex> lk(state_->mu);
    return state_->value.has_value();
  }

  /// Blocks until the value is set and returns a copy.  By value on
  /// purpose: `engine.Submit...(...).Get()` — the common one-liner — would
  /// dangle if this returned a reference into the temporary future's
  /// state.
  T Get() const {
    std::unique_lock<std::mutex> lk(state_->mu);
    state_->cv.wait(lk, [&] { return state_->value.has_value(); });
    return *state_->value;
  }

  /// Blocks up to `timeout`; true when the value arrived in time.
  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> timeout) const {
    std::unique_lock<std::mutex> lk(state_->mu);
    return state_->cv.wait_for(lk, timeout,
                               [&] { return state_->value.has_value(); });
  }

  /// Registers `callback` to run exactly once with the value: on the
  /// setting thread when Set arrives later, or inline right now when the
  /// value is already present.  The non-blocking redemption path the event
  /// loop uses — never call Get() from inside a callback registered on the
  /// same future (the value is already in hand).  Callbacks must not throw.
  void OnReady(std::function<void(const T&)> callback) const {
    {
      std::unique_lock<std::mutex> lk(state_->mu);
      if (!state_->value.has_value()) {
        state_->callbacks.push_back(std::move(callback));
        return;
      }
    }
    callback(*state_->value);
  }

 private:
  friend class Promise<T>;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<T> value;
    /// Registered before the value arrived; drained (and invoked) by Set.
    std::vector<std::function<void(const T&)>> callbacks;
  };

  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// The fulfilling side; movable, not copyable (one fulfiller per request).
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<typename Future<T>::State>()) {}

  Promise(Promise&&) noexcept = default;
  Promise& operator=(Promise&&) noexcept = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  /// Resolves abandoned futures (see class comment) so waiters never hang.
  ~Promise() {
    if (state_ == nullptr) return;  // Moved from, or Set already ran.
    Set(T::Abandoned());
  }

  Future<T> future() const { return Future<T>(state_); }

  /// Sets the value, wakes every waiter, and runs every callback that
  /// OnReady registered before the value arrived.  Must be called at most
  /// once.
  void Set(T value) {
    auto state = std::move(state_);
    std::vector<std::function<void(const T&)>> callbacks;
    {
      std::lock_guard<std::mutex> lk(state->mu);
      state->value.emplace(std::move(value));
      callbacks.swap(state->callbacks);
    }
    state->cv.notify_all();
    for (const auto& callback : callbacks) callback(*state->value);
  }

 private:
  std::shared_ptr<typename Future<T>::State> state_;
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_FUTURE_H_
