#include "server/socket.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/byteio.h"
#include "server/protocol.h"

namespace privtree::server {

namespace {

Status Errno(std::string_view what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

/// Writes all of `data`, absorbing short writes and EINTR.
Status WriteAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes.  `*eof` is set when the peer closed before
/// the first byte (only meaningful on failure).
/// Flips O_NONBLOCK on `fd`.
Status SetFdNonBlocking(int fd, bool nonblocking) {
  if (fd < 0) return Status::IOError("socket is closed");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status ReadAll(int fd, char* data, std::size_t size, bool* eof) {
  *eof = false;
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      *eof = got == 0;
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Result<Connection> Connection::Dial(const std::string& host,
                                    std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                   &found);
      rc != 0) {
    return Status::IOError("getaddrinfo " + host + ": " + gai_strerror(rc));
  }
  Status last = Status::IOError("no address for " + host);
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(found);
      return Connection(fd);
    }
    last = Errno("connect " + host + ":" + service);
    ::close(fd);
  }
  ::freeaddrinfo(found);
  return last;
}

Status Connection::SendFrame(std::string_view payload) {
  if (!ok()) return Status::IOError("connection is closed");
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds cap");
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  ByteWriter w(&frame);
  w.U32(static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  return WriteAll(fd_, frame.data(), frame.size());
}

Result<std::string> Connection::RecvFrame() {
  if (!ok()) return Status::IOError("connection is closed");
  char prefix[4];
  bool eof = false;
  if (Status read = ReadAll(fd_, prefix, sizeof(prefix), &eof); !read.ok()) {
    if (eof) return Status::NotFound("eof");
    return read;
  }
  ByteReader r(std::string_view(prefix, sizeof(prefix)));
  std::uint32_t size = 0;
  r.U32(&size);
  if (size > kMaxFramePayload) {
    return Status::InvalidArgument("frame length " + std::to_string(size) +
                                   " exceeds cap");
  }
  std::string payload(size, '\0');
  if (Status read = ReadAll(fd_, payload.data(), size, &eof); !read.ok()) {
    return read;
  }
  return payload;
}

void Connection::ShutdownBoth() {
  if (ok()) ::shutdown(fd_, SHUT_RDWR);
}

Status Connection::SetNonBlocking(bool nonblocking) {
  return SetFdNonBlocking(fd_, nonblocking);
}

void Connection::Close() {
  if (ok()) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Result<ListenSocket> ListenSocket::Listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status bound = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return bound;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status listened = Errno("listen");
    ::close(fd);
    return listened;
  }

  sockaddr_in bound_addr{};
  socklen_t len = sizeof(bound_addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound_addr), &len) !=
      0) {
    const Status named = Errno("getsockname");
    ::close(fd);
    return named;
  }
  ListenSocket out;
  out.fd_ = fd;
  out.port_ = ntohs(bound_addr.sin_port);
  return out;
}

Result<Connection> ListenSocket::Accept() {
  if (!ok()) return Status::Unavailable("listener is shut down");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Connection(fd);
    }
    if (errno == EINTR) continue;
    // A shut-down listener wakes blocked accepts with EINVAL (or EBADF if
    // already closed); report it as the clean stop it is.
    if (errno == EINVAL || errno == EBADF) {
      return Status::Unavailable("listener is shut down");
    }
    return Errno("accept");
  }
}

void ListenSocket::Shutdown() {
  if (ok()) ::shutdown(fd_, SHUT_RDWR);
}

Status ListenSocket::SetNonBlocking(bool nonblocking) {
  return SetFdNonBlocking(fd_, nonblocking);
}

void ListenSocket::Close() {
  if (ok()) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace privtree::server
