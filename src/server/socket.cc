#include "server/socket.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/byteio.h"
#include "core/fault.h"
#include "server/protocol.h"

namespace privtree::server {

namespace {

Status Errno(std::string_view what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

/// Writes all of `data`, absorbing short writes and EINTR.  EAGAIN — a
/// send that blocked past SO_SNDTIMEO — surfaces as DeadlineExceeded.
Status WriteAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket send timed out");
      }
      return Errno("send");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Applies SO_RCVTIMEO / SO_SNDTIMEO (`millis` 0 clears the bound).
Status SetFdTimeout(int fd, int option, std::int64_t millis) {
  if (fd < 0) return Status::IOError("socket is closed");
  timeval tv{};
  if (millis > 0) {
    tv.tv_sec = static_cast<time_t>(millis / 1000);
    tv.tv_usec = static_cast<suseconds_t>((millis % 1000) * 1000);
  }
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(timeout)");
  }
  return Status::OK();
}

/// Reads exactly `size` bytes.  `*eof` is set when the peer closed before
/// the first byte (only meaningful on failure).
/// Flips O_NONBLOCK on `fd`.
Status SetFdNonBlocking(int fd, bool nonblocking) {
  if (fd < 0) return Status::IOError("socket is closed");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status ReadAll(int fd, char* data, std::size_t size, bool* eof) {
  *eof = false;
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the clean, bounded-waiting failure Connect's
        // half-open-server protection relies on.
        return Status::DeadlineExceeded("socket read timed out");
      }
      return Errno("recv");
    }
    if (n == 0) {
      *eof = got == 0;
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

namespace {

/// Connects `fd` with a bounded wait: non-blocking connect, poll for
/// writability, then read back SO_ERROR.  Restores blocking mode on
/// success.
Status ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t addrlen,
                          std::int64_t timeout_millis) {
  if (Status s = SetFdNonBlocking(fd, true); !s.ok()) return s;
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno != EINPROGRESS) return Errno("connect");
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_millis));
    if (ready < 0) return Errno("poll(connect)");
    if (ready == 0) {
      return Status::DeadlineExceeded("connect timed out after " +
                                      std::to_string(timeout_millis) + "ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::IOError(std::string("connect: ") + std::strerror(err));
    }
  }
  return SetFdNonBlocking(fd, false);
}

}  // namespace

Result<Connection> Connection::Dial(const std::string& host,
                                    std::uint16_t port,
                                    std::int64_t timeout_millis) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                   &found);
      rc != 0) {
    return Status::IOError("getaddrinfo " + host + ": " + gai_strerror(rc));
  }
  Status last = Status::IOError("no address for " + host);
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    Status connected =
        timeout_millis > 0
            ? ConnectWithTimeout(fd, ai->ai_addr, ai->ai_addrlen,
                                 timeout_millis)
            : (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0
                   ? Status::OK()
                   : Errno("connect " + host + ":" + service));
    if (connected.ok()) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(found);
      return Connection(fd);
    }
    last = std::move(connected);
    ::close(fd);
  }
  ::freeaddrinfo(found);
  return last;
}

Status Connection::SetRecvTimeout(std::int64_t millis) {
  return SetFdTimeout(fd_, SO_RCVTIMEO, millis);
}

Status Connection::SetSendTimeout(std::int64_t millis) {
  return SetFdTimeout(fd_, SO_SNDTIMEO, millis);
}

Status Connection::SendFrame(std::string_view payload) {
  if (!ok()) return Status::IOError("connection is closed");
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds cap");
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  ByteWriter w(&frame);
  w.U32(static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  // Chaos hooks: `partial` pushes a torn frame prefix then tears the
  // connection down (the peer sees a mid-frame close), `reset` tears it
  // down before any byte, `error` fails without touching the socket,
  // `delay` just slows the write.
  if (auto f = PRIVTREE_FAULT("socket.send"); f && f.MaybeSleep()) {
    if (f.kind == fault::Kind::kPartialWrite && frame.size() > 1) {
      // lint-ok: discarded-status — the half-frame write IS the injected
      // fault; whether those bytes land is part of the chaos.
      (void)WriteAll(fd_, frame.data(), frame.size() / 2);
    }
    if (f.kind == fault::Kind::kPartialWrite ||
        f.kind == fault::Kind::kConnReset) {
      ShutdownBoth();
    }
    return f.ToStatus("socket.send");
  }
  return WriteAll(fd_, frame.data(), frame.size());
}

Result<std::string> Connection::RecvFrame() {
  if (!ok()) return Status::IOError("connection is closed");
  if (auto f = PRIVTREE_FAULT("socket.recv"); f && f.MaybeSleep()) {
    if (f.kind == fault::Kind::kConnReset) ShutdownBoth();
    return f.ToStatus("socket.recv");
  }
  char prefix[4];
  bool eof = false;
  if (Status read = ReadAll(fd_, prefix, sizeof(prefix), &eof); !read.ok()) {
    if (eof) return Status::NotFound("eof");
    return read;
  }
  ByteReader r(std::string_view(prefix, sizeof(prefix)));
  std::uint32_t size = 0;
  r.U32(&size);
  if (size > kMaxFramePayload) {
    return Status::InvalidArgument("frame length " + std::to_string(size) +
                                   " exceeds cap");
  }
  std::string payload(size, '\0');
  if (Status read = ReadAll(fd_, payload.data(), size, &eof); !read.ok()) {
    return read;
  }
  return payload;
}

void Connection::ShutdownBoth() {
  if (ok()) ::shutdown(fd_, SHUT_RDWR);
}

Status Connection::SetNonBlocking(bool nonblocking) {
  return SetFdNonBlocking(fd_, nonblocking);
}

void Connection::Close() {
  if (ok()) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Result<ListenSocket> ListenSocket::Listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status bound = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return bound;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status listened = Errno("listen");
    ::close(fd);
    return listened;
  }

  sockaddr_in bound_addr{};
  socklen_t len = sizeof(bound_addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound_addr), &len) !=
      0) {
    const Status named = Errno("getsockname");
    ::close(fd);
    return named;
  }
  ListenSocket out;
  out.fd_ = fd;
  out.port_ = ntohs(bound_addr.sin_port);
  return out;
}

Result<Connection> ListenSocket::Accept() {
  if (!ok()) return Status::Unavailable("listener is shut down");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Connection(fd);
    }
    if (errno == EINTR) continue;
    // A shut-down listener wakes blocked accepts with EINVAL (or EBADF if
    // already closed); report it as the clean stop it is.
    if (errno == EINVAL || errno == EBADF) {
      return Status::Unavailable("listener is shut down");
    }
    return Errno("accept");
  }
}

void ListenSocket::Shutdown() {
  if (ok()) ::shutdown(fd_, SHUT_RDWR);
}

Status ListenSocket::SetNonBlocking(bool nonblocking) {
  return SetFdNonBlocking(fd_, nonblocking);
}

void ListenSocket::Close() {
  if (ok()) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace privtree::server
