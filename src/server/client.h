// The client side of the serving protocol: one blocking call per request.
//
// Connect() dials the server, performs the Hello version handshake, and
// returns a client whose info() describes what is being served (dim, point
// count, dataset fingerprint, registered methods).  Every method is a
// frame round trip; a server-side ErrorReply comes back as that call's
// non-OK Status (shed load is Unavailable, an expired deadline is
// DeadlineExceeded), so callers branch on status codes, not on parsing.
// One Client serializes its calls on one connection — use one Client per
// concurrent caller; the server interleaves them.
//
// Resilience: Connect always bounds the dial and the Hello read
// (ClientOptions::connect_timeout_millis), so a half-open or blackholed
// server yields a clean DeadlineExceeded instead of a hang.  With
// max_attempts > 1 the client additionally retries: transport failures
// (reset, torn frame, read timeout) trigger a reconnect + resend, and a
// served Unavailable waits out the server's retry-after hint (or the
// client's own exponential backoff with deterministic jitter) before
// resending.  Retries are restricted to idempotent frames — every request
// except Shutdown; a Fit is a pure function of its spec and registration
// is idempotent by content — and stop when the retry budget's deadline
// would pass.  A reconnect starts a fresh server session (a new session
// ε budget); telemetry() counts retries/reconnects for chaos benches.
#ifndef PRIVTREE_SERVER_CLIENT_H_
#define PRIVTREE_SERVER_CLIENT_H_

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "dp/status.h"
#include "server/protocol.h"
#include "server/request.h"
#include "server/socket.h"
#include "spatial/box.h"

namespace privtree::server {

struct ClientOptions {
  /// Bounds the TCP connect and the Hello reply read; 0 disables (never
  /// recommended — a half-open server then hangs the caller forever).
  std::int64_t connect_timeout_millis = 5000;
  /// Bounds every reply-frame read after the handshake; 0 = no bound
  /// (the default: fits of large datasets legitimately take a while).
  std::int64_t read_timeout_millis = 0;
  /// Total tries per call (and per Connect); 1 = fail fast, no retries.
  int max_attempts = 1;
  /// Exponential backoff between retries: base * 2^attempt, capped.  A
  /// served retry-after hint overrides the computed backoff when larger.
  std::int64_t base_backoff_millis = 10;
  std::int64_t max_backoff_millis = 2000;
  /// Wall-clock budget across one call's attempts (dial + sends + waits);
  /// when the next backoff would overrun it, the last error surfaces.
  std::int64_t retry_budget_millis = 15000;
  /// Seeds the deterministic backoff jitter.
  std::uint64_t backoff_seed = 1;
};

class Client {
 public:
  struct Telemetry {
    /// Actual resends of a request payload: bumped exactly once per extra
    /// send, never for a failed reconnect that sent nothing (a chaos run
    /// summing retries across clients gets the true resend count).
    std::uint64_t retries = 0;
    std::uint64_t reconnects = 0;  ///< Successful re-dials mid-call.
  };

  /// Dials `host`:`port` and handshakes; IOError when nothing is
  /// listening, DeadlineExceeded on a connect/Hello timeout,
  /// InvalidArgument on a protocol-version mismatch.  With
  /// options.max_attempts > 1, failed dials retry with backoff.
  static Result<Client> Connect(const std::string& host, std::uint16_t port,
                                ClientOptions options = {});

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  /// The server's Hello description of the served datasets (the default
  /// tenant's shape, the full tenant table, and this session's budget).
  const HelloReply& info() const { return info_; }

  /// Routes subsequent Fit/QueryBatch/SeqQueryBatch/Warm calls at the
  /// tenant with this fingerprint (see info().datasets); 0 restores the
  /// server default.  An unknown fingerprint answers NotFound per call.
  void SelectDataset(std::uint64_t fingerprint) { dataset_ = fingerprint; }
  std::uint64_t selected_dataset() const { return dataset_; }

  /// Uploads a dataset for this server to host (protocol v3) and returns
  /// its fingerprint; registration is idempotent by content.  Does not
  /// auto-select the new tenant.
  Result<RegisterDatasetReply> RegisterDataset(
      const RegisterDatasetRequest& request);

  /// Fits (or re-serves) the spec'd release; `deadline_millis` 0 = none.
  Result<FitReply> Fit(const FitSpec& spec, std::int64_t deadline_millis = 0);

  /// Answers `queries` against the spec'd release, one double per box
  /// (spatial servers; a sequence server answers with InvalidArgument).
  Result<std::vector<double>> QueryBatch(const FitSpec& spec,
                                         std::span<const Box> queries,
                                         std::int64_t deadline_millis = 0);

  /// Sequence counterpart: one double per SequenceQuery spec (check
  /// info().kind to pick the right frame).
  Result<std::vector<double>> SeqQueryBatch(
      const FitSpec& spec, std::span<const release::SequenceQuery> queries,
      std::int64_t deadline_millis = 0);

  /// Requests background cache warming; returns how many specs the
  /// server's admission control accepted.
  Result<std::uint64_t> Warm(std::span<const FitSpec> specs);

  /// Serving telemetry snapshot.
  Result<StatsReply> Stats();

  /// The server's observability snapshot (protocol v5 GetStats): the whole
  /// metrics registry as one JSON object, plus trace-ring and fault-point
  /// sections.  See obs::ProcessStatsJson for the schema.
  Result<std::string> GetStatsJson();

  /// Wraps every subsequent request in a Traced frame (protocol v5)
  /// carrying sequential ids starting at `first_id` (0 is skipped — it
  /// means "absent" on the wire).  Replies are byte-identical either way;
  /// the id only labels the request in the server's trace ring and slow
  /// log.  The Hello handshake is never wrapped.
  void EnableTraceIds(std::uint64_t first_id = 1) {
    next_trace_id_ = first_id == 0 ? 1 : first_id;
    trace_ids_enabled_ = true;
  }

  /// Asks the server process to stop its loop (it still drains in-flight
  /// work before exiting).  Never retried: a lost reply leaves the
  /// server's fate unknown, and resending could kill a fresh server.
  Status Shutdown();

  const Telemetry& telemetry() const { return telemetry_; }

 private:
  Client(Connection conn, HelloReply info, std::string host,
         std::uint16_t port, ClientOptions options);

  /// One dial + Hello handshake with the connect timeout applied.
  static Result<Connection> DialAndHello(const std::string& host,
                                         std::uint16_t port,
                                         const ClientOptions& options,
                                         HelloReply* info);

  /// Sends `payload`, receives one reply frame, and unwraps ErrorReply
  /// into its carried Status.  When `idempotent` and attempts remain in
  /// the retry budget, transport failures reconnect + resend and served
  /// Unavailable replies back off (honoring retry-after) + resend.
  Result<std::string> RoundTrip(const std::string& payload, bool idempotent);

  /// One send + recv + ErrorReply unwrap, no retries.  `*transport` is set
  /// when the failure was the connection itself (send/recv/framing) rather
  /// than a Status the server answered with.
  Result<std::string> RoundTripOnce(const std::string& payload,
                                    bool* transport);

  /// The next backoff in a retry sequence: exponential with deterministic
  /// jitter, at least `floor_millis` (the server's retry-after hint).
  std::int64_t BackoffMillis(int attempt, std::int64_t floor_millis);

  Connection conn_;
  HelloReply info_;
  std::string host_;
  std::uint16_t port_ = 0;
  ClientOptions options_;
  Telemetry telemetry_;
  std::minstd_rand jitter_;
  std::uint64_t dataset_ = 0;  ///< Selected tenant; 0 = server default.
  bool trace_ids_enabled_ = false;
  std::uint64_t next_trace_id_ = 1;
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_CLIENT_H_
