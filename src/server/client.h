// The client side of the serving protocol: one blocking call per request.
//
// Connect() dials the server, performs the Hello version handshake, and
// returns a client whose info() describes what is being served (dim, point
// count, dataset fingerprint, registered methods).  Every method is a
// frame round trip; a server-side ErrorReply comes back as that call's
// non-OK Status (shed load is Unavailable, an expired deadline is
// DeadlineExceeded), so callers branch on status codes, not on parsing.
// One Client serializes its calls on one connection — use one Client per
// concurrent caller; the server interleaves them.
#ifndef PRIVTREE_SERVER_CLIENT_H_
#define PRIVTREE_SERVER_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dp/status.h"
#include "server/protocol.h"
#include "server/request.h"
#include "server/socket.h"
#include "spatial/box.h"

namespace privtree::server {

class Client {
 public:
  /// Dials `host`:`port` and handshakes; IOError when nothing is
  /// listening, InvalidArgument on a protocol-version mismatch.
  static Result<Client> Connect(const std::string& host, std::uint16_t port);

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  /// The server's Hello description of the served datasets (the default
  /// tenant's shape, the full tenant table, and this session's budget).
  const HelloReply& info() const { return info_; }

  /// Routes subsequent Fit/QueryBatch/SeqQueryBatch/Warm calls at the
  /// tenant with this fingerprint (see info().datasets); 0 restores the
  /// server default.  An unknown fingerprint answers NotFound per call.
  void SelectDataset(std::uint64_t fingerprint) { dataset_ = fingerprint; }
  std::uint64_t selected_dataset() const { return dataset_; }

  /// Uploads a dataset for this server to host (protocol v3) and returns
  /// its fingerprint; registration is idempotent by content.  Does not
  /// auto-select the new tenant.
  Result<RegisterDatasetReply> RegisterDataset(
      const RegisterDatasetRequest& request);

  /// Fits (or re-serves) the spec'd release; `deadline_millis` 0 = none.
  Result<FitReply> Fit(const FitSpec& spec, std::int64_t deadline_millis = 0);

  /// Answers `queries` against the spec'd release, one double per box
  /// (spatial servers; a sequence server answers with InvalidArgument).
  Result<std::vector<double>> QueryBatch(const FitSpec& spec,
                                         std::span<const Box> queries,
                                         std::int64_t deadline_millis = 0);

  /// Sequence counterpart: one double per SequenceQuery spec (check
  /// info().kind to pick the right frame).
  Result<std::vector<double>> SeqQueryBatch(
      const FitSpec& spec, std::span<const release::SequenceQuery> queries,
      std::int64_t deadline_millis = 0);

  /// Requests background cache warming; returns how many specs the
  /// server's admission control accepted.
  Result<std::uint64_t> Warm(std::span<const FitSpec> specs);

  /// Serving telemetry snapshot.
  Result<StatsReply> Stats();

  /// Asks the server process to stop its loop (it still drains in-flight
  /// work before exiting).
  Status Shutdown();

 private:
  Client(Connection conn, HelloReply info);

  /// Sends `payload`, receives one reply frame, and unwraps ErrorReply
  /// into its carried Status.
  Result<std::string> RoundTrip(const std::string& payload);

  Connection conn_;
  HelloReply info_;
  std::uint64_t dataset_ = 0;  ///< Selected tenant; 0 = server default.
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_CLIENT_H_
