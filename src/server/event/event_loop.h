// The epoll readiness loop: production-connection-count serving on one
// thread.
//
// Where ServerLoop parks a thread per client, this loop multiplexes every
// connection over one level-triggered epoll instance with non-blocking
// per-connection read/write buffers.  A readable connection is drained into
// its input buffer and parsed into length-prefixed frames; each complete
// frame is handed to the shared Dispatcher, whose completion callback (run
// on an engine pool thread for fit/query frames) posts the reply to a
// completion queue and nudges an eventfd — the loop thread wakes, fills the
// frame's reply slot, and flushes.  Replies keep *request order* per
// connection even though completions arrive out of order, so clients may
// pipeline: send N frames back to back, read N replies.
//
// Robustness against misbehaving peers:
//   * A garbage or oversized length prefix answers ErrorReply and closes
//     after the flush — the stream is unsynchronized beyond that point.
//   * A half-open peer (sent a partial frame header and stalled — the
//     slow-loris shape) is reaped by the idle timeout; connections with
//     in-flight work or unflushed output are never reaped.
//   * The connection table is capacity-capped; accepts past the cap are
//     closed immediately instead of growing without bound.
//
// Shutdown (a Shutdown frame or Stop() from any thread) drains gracefully:
// the listener closes, in-flight requests finish and flush, idle
// connections close, and anything still open when the drain timeout
// expires is force-closed so Run() always returns.
//
// Answers are bit-for-bit ServerLoop (and in-process ReleaseSession)
// answers because both loops share one Dispatcher — this file contains no
// protocol semantics at all, only readiness plumbing.
#ifndef PRIVTREE_SERVER_EVENT_EVENT_LOOP_H_
#define PRIVTREE_SERVER_EVENT_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string_view>

#include "dp/status.h"
#include "server/dispatcher.h"
#include "server/socket.h"

namespace privtree::server {

struct EventLoopOptions {
  /// A connection with no read/write progress, no in-flight requests and
  /// nothing left to flush for this long is reaped (half-open and
  /// slow-loris peers included).  Zero disables reaping.
  std::chrono::milliseconds idle_timeout{30000};
  /// How long a graceful drain waits for in-flight work to flush before
  /// force-closing the stragglers.
  std::chrono::milliseconds drain_timeout{5000};
  /// Hard cap on concurrently open connections; accepts past it close.
  std::size_t max_connections = 4096;
};

class EventLoop {
 public:
  /// Monotone counters; readable from any thread (tests, telemetry).
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t served_frames = 0;      ///< Frames dispatched.
    std::uint64_t reaped_idle = 0;        ///< Idle-timeout closes.
    std::uint64_t malformed_frames = 0;   ///< Garbage length prefixes.
    std::uint64_t refused_at_capacity = 0;
    std::uint64_t force_closed_in_drain = 0;
    std::uint64_t max_concurrent = 0;     ///< Peak open connections.
  };

  /// `dispatcher` must outlive the loop; the loop takes the listener over.
  EventLoop(Dispatcher& dispatcher, ListenSocket listener,
            EventLoopOptions options = {});

  /// Destroy only after Run has returned (or was never called).
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Runs the readiness loop until a Shutdown frame or Stop() completes a
  /// graceful drain.  Call once, from one thread.
  Status Run();

  /// Requests a graceful drain from any thread; idempotent.
  void Stop();

  Stats stats() const;

 private:
  struct Conn;
  struct CompletionQueue;

  Status Setup();
  void ProcessCompletions();
  void HandleAccept();
  void HandleReadable(Conn& conn);
  void HandleWritable(Conn& conn);
  void ParseFrames(Conn& conn);
  void DispatchFrame(Conn& conn, std::string_view payload);
  /// Moves contiguously-ready reply slots into the output buffer and
  /// writes as much as the socket accepts.
  void FlushConn(Conn& conn);
  /// Closes `conn` if it has nothing left to do and a close is wanted
  /// (peer gone, poisoned stream, or drain); returns true when closed.
  bool CloseIfDone(Conn& conn);
  void CloseConn(std::uint64_t id);
  void ArmWrite(Conn& conn, bool want);
  void BeginDrain();
  void ReapIdle();

  Dispatcher& dispatcher_;
  ListenSocket listener_;
  const EventLoopOptions options_;

  int epoll_fd_ = -1;
  /// Completions cross threads through here; shared_ptr so an engine
  /// callback outliving the loop object posts into freed-safe memory.
  std::shared_ptr<CompletionQueue> queue_;
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 3;  // 1 = listener, 2 = wakeup eventfd.
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  /// Counters are atomics so stats() is safe mid-run.
  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> served_frames{0};
    std::atomic<std::uint64_t> reaped_idle{0};
    std::atomic<std::uint64_t> malformed_frames{0};
    std::atomic<std::uint64_t> refused_at_capacity{0};
    std::atomic<std::uint64_t> force_closed_in_drain{0};
    std::atomic<std::uint64_t> max_concurrent{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_EVENT_EVENT_LOOP_H_
