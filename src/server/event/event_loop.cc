#include "server/event/event_loop.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/byteio.h"
#include "core/sync.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/protocol.h"

namespace privtree::server {

namespace {

constexpr std::uint64_t kListenerId = 1;
constexpr std::uint64_t kWakeupId = 2;

/// Decodes the little-endian u32 frame length prefix.
std::uint32_t FrameLength(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

void BumpMax(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t seen = target.load(std::memory_order_relaxed);
  while (seen < value &&
         !target.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
  }
}

// Registry mirrors of the loop's AtomicStats, bumped at the same sites so
// a GetStats snapshot agrees with stats() without any translation layer.
struct EventCounters {
  obs::Counter& accepted =
      obs::Registry::Global().GetCounter("event.accepted");
  obs::Counter& served_frames =
      obs::Registry::Global().GetCounter("event.served_frames");
  obs::Counter& reaped_idle =
      obs::Registry::Global().GetCounter("event.reaped_idle");
  obs::Counter& malformed_frames =
      obs::Registry::Global().GetCounter("event.malformed_frames");
  obs::Counter& refused_at_capacity =
      obs::Registry::Global().GetCounter("event.refused_at_capacity");
  obs::Counter& force_closed_in_drain =
      obs::Registry::Global().GetCounter("event.force_closed_in_drain");
  obs::Gauge& max_concurrent =
      obs::Registry::Global().GetGauge("event.max_concurrent");
};

EventCounters& Counters() {
  static EventCounters* counters = new EventCounters();
  return *counters;
}

std::int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return us < 0 ? 0 : us;
}

}  // namespace

/// One reply on its way back to the loop thread.
struct Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t slot = 0;
  std::string reply;
};

/// The cross-thread handoff: engine completion callbacks post here and
/// nudge the eventfd; the loop thread drains it.  Lives behind a
/// shared_ptr captured by every in-flight callback, so a completion that
/// lands after the loop object is gone still writes into valid memory.
struct EventLoop::CompletionQueue {
  Mutex mu;
  std::vector<Completion> items GUARDED_BY(mu);
  int wake_fd = -1;

  CompletionQueue() { wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC); }
  ~CompletionQueue() {
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void Post(Completion completion) {
    {
      MutexLock lk(mu);
      items.push_back(std::move(completion));
    }
    Wake();
  }

  void Wake() {
    if (wake_fd < 0) return;
    const std::uint64_t one = 1;
    // A full eventfd counter still wakes the loop; ignore short writes.
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd, &one, sizeof(one));
  }
};

/// Per-connection state, all owned by the loop thread.
struct EventLoop::Conn {
  /// One reply slot; carries the request's trace so span recording can
  /// finish when (and only when) the reply's bytes reach the socket.
  struct PendingSlot {
    std::optional<std::string> reply;
    obs::TracePtr trace;
  };
  /// A framed reply awaiting transmission: finished once the connection's
  /// lifetime flushed-byte count passes `end_offset`.
  struct InFlightWrite {
    std::uint64_t end_offset = 0;
    std::chrono::steady_clock::time_point framed_at;
    obs::TracePtr trace;
  };

  int fd = -1;
  std::uint64_t id = 0;
  std::string inbuf;
  std::size_t inpos = 0;  ///< Parse offset into inbuf.
  std::string outbuf;
  std::size_t outpos = 0;  ///< Write offset into outbuf.
  /// In-order reply slots: index i holds the reply to the (base_slot+i)-th
  /// dispatched frame once its completion lands; only a contiguous ready
  /// prefix may flush, which is what preserves pipelined request order.
  std::deque<PendingSlot> pending;
  std::deque<InFlightWrite> writes;
  std::uint64_t queued_bytes = 0;   ///< Lifetime bytes framed into outbuf.
  std::uint64_t flushed_bytes = 0;  ///< Lifetime bytes sent to the socket.
  /// Duration of the most recent recv loop; every frame parsed out of that
  /// read inherits it as its socket-read span.
  std::int64_t last_read_us = 0;
  std::uint64_t base_slot = 0;
  std::size_t in_flight = 0;  ///< Dispatched frames awaiting completion.
  std::shared_ptr<ClientSession> session;
  std::chrono::steady_clock::time_point last_activity;
  bool want_write = false;
  bool peer_half_closed = false;
  bool close_after_flush = false;
  bool stop_reading = false;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

EventLoop::EventLoop(Dispatcher& dispatcher, ListenSocket listener,
                     EventLoopOptions options)
    : dispatcher_(dispatcher),
      listener_(std::move(listener)),
      options_(options),
      queue_(std::make_shared<CompletionQueue>()) {}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

EventLoop::Stats EventLoop::stats() const {
  Stats out;
  out.accepted = stats_.accepted.load(std::memory_order_relaxed);
  out.served_frames = stats_.served_frames.load(std::memory_order_relaxed);
  out.reaped_idle = stats_.reaped_idle.load(std::memory_order_relaxed);
  out.malformed_frames =
      stats_.malformed_frames.load(std::memory_order_relaxed);
  out.refused_at_capacity =
      stats_.refused_at_capacity.load(std::memory_order_relaxed);
  out.force_closed_in_drain =
      stats_.force_closed_in_drain.load(std::memory_order_relaxed);
  out.max_concurrent = stats_.max_concurrent.load(std::memory_order_relaxed);
  return out;
}

void EventLoop::Stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  queue_->Wake();
}

Status EventLoop::Setup() {
  if (queue_->wake_fd < 0) {
    return Status::IOError("eventfd: " + std::string(std::strerror(errno)));
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError("epoll_create1: " +
                           std::string(std::strerror(errno)));
  }
  if (Status s = listener_.SetNonBlocking(true); !s.ok()) return s;

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    return Status::IOError("epoll_ctl(listener): " +
                           std::string(std::strerror(errno)));
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeupId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, queue_->wake_fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(eventfd): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status EventLoop::Run() {
  if (Status s = Setup(); !s.ok()) return s;

  std::vector<epoll_event> events(256);
  for (;;) {
    ProcessCompletions();
    if (stop_requested_.load(std::memory_order_relaxed) && !draining_) {
      BeginDrain();
    }
    if (draining_) {
      if (conns_.empty()) break;
      if (std::chrono::steady_clock::now() >= drain_deadline_) {
        stats_.force_closed_in_drain.fetch_add(conns_.size(),
                                               std::memory_order_relaxed);
        Counters().force_closed_in_drain.Inc(conns_.size());
        while (!conns_.empty()) CloseConn(conns_.begin()->first);
        break;
      }
    }

    // Wake often enough that idle reaping and the drain deadline stay
    // responsive even when no descriptor fires.
    int timeout_ms = 250;
    if (options_.idle_timeout.count() > 0) {
      timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
          options_.idle_timeout.count() / 4, 10, 250));
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("epoll_wait: " +
                             std::string(std::strerror(errno)));
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      const std::uint32_t mask = events[i].events;
      if (id == kWakeupId) {
        std::uint64_t drained = 0;
        while (::read(queue_->wake_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;  // The queue drains at the top of the loop.
      }
      if (id == kListenerId) {
        if (!draining_) HandleAccept();
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // Closed earlier this batch.
      Conn& conn = *it->second;
      if (mask & (EPOLLERR | EPOLLHUP)) {
        // The peer is gone both ways; any unflushed reply is undeliverable.
        CloseConn(id);
        continue;
      }
      if (mask & EPOLLIN) HandleReadable(conn);
      if (conns_.contains(id) && (mask & EPOLLOUT)) HandleWritable(conn);
    }
    ReapIdle();
  }

  ::close(epoll_fd_);
  epoll_fd_ = -1;
  return Status::OK();
}

void EventLoop::ProcessCompletions() {
  std::vector<Completion> items;
  {
    MutexLock lk(queue_->mu);
    items.swap(queue_->items);
  }
  for (Completion& completion : items) {
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // Connection closed meanwhile.
    Conn& conn = *it->second;
    const std::uint64_t index = completion.slot - conn.base_slot;
    if (index >= conn.pending.size()) continue;  // Defensive; cannot happen.
    conn.pending[index].reply.emplace(std::move(completion.reply));
    if (conn.in_flight > 0) --conn.in_flight;
    FlushConn(conn);
  }
}

void EventLoop::HandleAccept() {
  for (;;) {
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or a transient accept failure.
    }
    if (conns_.size() >= options_.max_connections) {
      stats_.refused_at_capacity.fetch_add(1, std::memory_order_relaxed);
      Counters().refused_at_capacity.Inc();
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->session = dispatcher_.NewSession();
    conn->last_activity = std::chrono::steady_clock::now();

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // Conn destructor closes the fd.
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    Counters().accepted.Inc();
    conns_.emplace(conn->id, std::move(conn));
    BumpMax(stats_.max_concurrent, conns_.size());
    Counters().max_concurrent.SetMax(conns_.size());
  }
}

void EventLoop::HandleReadable(Conn& conn) {
  const std::uint64_t id = conn.id;
  const auto read_start = std::chrono::steady_clock::now();
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.last_activity = std::chrono::steady_clock::now();
      if (!conn.stop_reading) {
        conn.inbuf.append(buf, static_cast<std::size_t>(n));
      }
      continue;
    }
    if (n == 0) {
      conn.peer_half_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(id);  // Torn connection: nothing left to deliver.
    return;
  }
  conn.last_read_us = MicrosSince(read_start);
  ParseFrames(conn);  // May close the connection via its flush.
  const auto it = conns_.find(id);
  if (it != conns_.end()) CloseIfDone(*it->second);
}

void EventLoop::ParseFrames(Conn& conn) {
  while (!conn.stop_reading) {
    const std::size_t available = conn.inbuf.size() - conn.inpos;
    if (available < 4) break;
    const std::uint32_t length = FrameLength(conn.inbuf.data() + conn.inpos);
    if (length > kMaxFramePayload) {
      // The stream is unsynchronized from here on: answer once, stop
      // reading, close once the error has flushed.
      stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
      Counters().malformed_frames.Inc();
      conn.pending.push_back(Conn::PendingSlot{
          EncodeErrorReply(Status::InvalidArgument(
              "frame length " + std::to_string(length) + " exceeds cap")),
          nullptr});
      conn.stop_reading = true;
      conn.close_after_flush = true;
      break;
    }
    if (available - 4 < length) break;  // Await the rest of the frame.
    const std::string_view payload(conn.inbuf.data() + conn.inpos + 4,
                                   length);
    conn.inpos += 4 + static_cast<std::size_t>(length);
    DispatchFrame(conn, payload);
  }
  if (conn.inpos > 0) {
    conn.inbuf.erase(0, conn.inpos);
    conn.inpos = 0;
  }
  FlushConn(conn);
}

void EventLoop::DispatchFrame(Conn& conn, std::string_view payload) {
  const std::uint64_t slot = conn.base_slot + conn.pending.size();
  // Every frame gets a trace (the dispatcher fills in the client's id if
  // the frame carries one); recording never touches the reply bytes.
  obs::TracePtr trace = obs::StartTrace();
  trace->Record(obs::Span::kSocketRead, conn.last_read_us);
  conn.pending.push_back(Conn::PendingSlot{std::nullopt, trace});
  ++conn.in_flight;
  stats_.served_frames.fetch_add(1, std::memory_order_relaxed);
  Counters().served_frames.Inc();

  bool shutdown = false;
  const std::shared_ptr<CompletionQueue> queue = queue_;
  const std::uint64_t id = conn.id;
  const auto dispatch_start = std::chrono::steady_clock::now();
  dispatcher_.HandleFrame(payload, conn.session, &shutdown,
                          [queue, id, slot](std::string reply) {
                            queue->Post({id, slot, std::move(reply)});
                          },
                          trace);
  trace->Record(obs::Span::kDispatch, MicrosSince(dispatch_start));
  if (shutdown) {
    // Serve the ShutdownReply, then drain the whole loop.
    conn.stop_reading = true;
    conn.close_after_flush = true;
    stop_requested_.store(true, std::memory_order_relaxed);
  }
}

void EventLoop::FlushConn(Conn& conn) {
  // Frame the contiguous ready prefix into the output buffer.
  while (!conn.pending.empty() && conn.pending.front().reply.has_value()) {
    Conn::PendingSlot& slot = conn.pending.front();
    const std::string& reply = *slot.reply;
    ByteWriter w(&conn.outbuf);
    w.U32(static_cast<std::uint32_t>(reply.size()));
    conn.outbuf.append(reply);
    conn.queued_bytes += 4 + reply.size();
    if (slot.trace) {
      conn.writes.push_back(Conn::InFlightWrite{
          conn.queued_bytes, std::chrono::steady_clock::now(),
          std::move(slot.trace)});
    }
    conn.pending.pop_front();
    ++conn.base_slot;
  }
  // Write as much as the socket accepts right now.
  while (conn.outpos < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.outpos,
               conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outpos += static_cast<std::size_t>(n);
      conn.flushed_bytes += static_cast<std::uint64_t>(n);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(conn.id);  // Peer reset; replies are undeliverable.
    return;
  }
  // Traces whose reply has fully reached the socket are done: stamp the
  // socket-write span (framed -> sent) and retire them to the ring.
  while (!conn.writes.empty() &&
         conn.writes.front().end_offset <= conn.flushed_bytes) {
    Conn::InFlightWrite& done = conn.writes.front();
    done.trace->Record(obs::Span::kSocketWrite,
                       MicrosSince(done.framed_at));
    obs::FinishTrace(*done.trace);
    conn.writes.pop_front();
  }
  if (conn.outpos == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outpos = 0;
  } else if (conn.outpos > (1u << 20)) {
    conn.outbuf.erase(0, conn.outpos);
    conn.outpos = 0;
  }
  ArmWrite(conn, conn.outpos < conn.outbuf.size());
  CloseIfDone(conn);
}

void EventLoop::HandleWritable(Conn& conn) { FlushConn(conn); }

bool EventLoop::CloseIfDone(Conn& conn) {
  const bool idle = conn.pending.empty() && conn.in_flight == 0 &&
                    conn.outbuf.empty();
  if (!idle) return false;
  if (conn.close_after_flush || conn.peer_half_closed || draining_) {
    CloseConn(conn.id);
    return true;
  }
  return false;
}

void EventLoop::CloseConn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  // The Conn destructor closes the fd, which also deregisters it from
  // epoll; in-flight completions for this id are dropped on arrival.
  conns_.erase(it);
}

void EventLoop::ArmWrite(Conn& conn, bool want) {
  if (conn.want_write == want) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.want_write = want;
  }
}

void EventLoop::BeginDrain() {
  draining_ = true;
  drain_deadline_ =
      std::chrono::steady_clock::now() + options_.drain_timeout;
  // Refuse new clients immediately; the bound port frees here, not at
  // object destruction.
  if (listener_.fd() >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
  }
  listener_.Close();
  // Existing clients: finish what is in flight, flush, then close.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    conn->stop_reading = true;
    conn->close_after_flush = true;
    ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    const auto it = conns_.find(id);
    if (it != conns_.end()) CloseIfDone(*it->second);
  }
}

void EventLoop::ReapIdle() {
  if (options_.idle_timeout.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> reap;
  for (const auto& [id, conn] : conns_) {
    // Never reap a connection the server still owes bytes: in-flight work
    // and unflushed output reset the clock's meaning, not the peer.
    if (conn->in_flight > 0 || !conn->pending.empty() ||
        !conn->outbuf.empty()) {
      continue;
    }
    if (now - conn->last_activity > options_.idle_timeout) {
      reap.push_back(id);
    }
  }
  for (const std::uint64_t id : reap) {
    stats_.reaped_idle.fetch_add(1, std::memory_order_relaxed);
    Counters().reaped_idle.Inc();
    CloseConn(id);
  }
}

}  // namespace privtree::server
