#include "server/protocol.h"

#include <cmath>
#include <utility>

#include "core/byteio.h"
#include "release/options.h"
#include "seq/sequence.h"

namespace privtree::server {

namespace {

void PutTag(ByteWriter& w, MessageType type) {
  w.U32(static_cast<std::uint32_t>(type));
}

/// Consumes and checks the tag; false on underflow or a different tag.
bool TakeTag(ByteReader& r, MessageType want) {
  std::uint32_t tag = 0;
  return r.U32(&tag) && tag == static_cast<std::uint32_t>(want);
}

Status Malformed(std::string_view what) {
  return Status::InvalidArgument("malformed " + std::string(what) +
                                 " message");
}

/// The decoder epilogue: every body must be consumed exactly.
Status Finish(const ByteReader& r, std::string_view what) {
  if (r.failed() || !r.AtEnd()) return Malformed(what);
  return Status::OK();
}

void PutSpec(ByteWriter& w, const FitSpec& spec) {
  w.Str(spec.method);
  w.Str(spec.options.ToString());
  w.F64(spec.epsilon);
  w.U64(spec.seed);
}

bool TakeSpec(ByteReader& r, FitSpec* spec) {
  std::string options_text;
  if (!r.Str(&spec->method) || !r.Str(&options_text) ||
      !r.F64(&spec->epsilon) || !r.U64(&spec->seed)) {
    return false;
  }
  std::string error;
  return release::MethodOptions::TryParse(options_text, &spec->options,
                                          &error);
}

}  // namespace

Result<MessageType> PeekType(std::string_view payload) {
  ByteReader r(payload);
  std::uint32_t tag = 0;
  if (!r.U32(&tag)) return Malformed("frame");
  switch (static_cast<MessageType>(tag)) {
    case MessageType::kHello:
    case MessageType::kFit:
    case MessageType::kQueryBatch:
    case MessageType::kSeqQueryBatch:
    case MessageType::kWarm:
    case MessageType::kStats:
    case MessageType::kShutdown:
    case MessageType::kRegisterDataset:
    case MessageType::kTraced:
    case MessageType::kGetStats:
    case MessageType::kHelloReply:
    case MessageType::kFitReply:
    case MessageType::kQueryBatchReply:
    case MessageType::kWarmReply:
    case MessageType::kStatsReply:
    case MessageType::kShutdownReply:
    case MessageType::kRegisterDatasetReply:
    case MessageType::kGetStatsReply:
    case MessageType::kErrorReply:
      return static_cast<MessageType>(tag);
  }
  return Status::InvalidArgument("unknown message type " +
                                 std::to_string(tag));
}

std::string EncodeHello(const HelloRequest& request) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kHello);
  w.U32(request.version);
  return out;
}

Status DecodeHello(std::string_view payload, HelloRequest* out) {
  ByteReader r(payload);
  if (!TakeTag(r, MessageType::kHello) || !r.U32(&out->version)) {
    return Malformed("Hello");
  }
  return Finish(r, "Hello");
}

std::string EncodeHelloReply(const HelloReply& reply) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kHelloReply);
  w.U32(reply.version);
  w.U32(static_cast<std::uint32_t>(reply.kind));
  w.U64(reply.dim);
  w.U64(reply.point_count);
  w.U64(reply.dataset_fingerprint);
  w.U64(reply.methods.size());
  for (const std::string& method : reply.methods) w.Str(method);
  w.F64(reply.budget_total);
  w.F64(reply.budget_spent);
  w.U64(reply.datasets.size());
  for (const DatasetInfo& dataset : reply.datasets) {
    w.Str(dataset.name);
    w.U32(static_cast<std::uint32_t>(dataset.kind));
    w.U64(dataset.dim);
    w.U64(dataset.point_count);
    w.U64(dataset.fingerprint);
  }
  return out;
}

Status DecodeHelloReply(std::string_view payload, HelloReply* out) {
  ByteReader r(payload);
  std::uint64_t count = 0;
  std::uint32_t kind = 0;
  if (!TakeTag(r, MessageType::kHelloReply) || !r.U32(&out->version) ||
      !r.U32(&kind) || kind > 1 || !r.U64(&out->dim) ||
      !r.U64(&out->point_count) || !r.U64(&out->dataset_fingerprint) ||
      !r.U64(&count) ||
      count > r.remaining()) {  // ≥1 byte per entry: bounds the alloc.
    return Malformed("HelloReply");
  }
  out->kind = static_cast<release::DatasetKind>(kind);
  out->methods.clear();
  out->methods.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string method;
    if (!r.Str(&method)) return Malformed("HelloReply");
    out->methods.push_back(std::move(method));
  }
  std::uint64_t dataset_count = 0;
  if (!r.F64(&out->budget_total) || !r.F64(&out->budget_spent) ||
      !r.U64(&dataset_count) ||
      // ≥32 bytes per dataset entry: bounds the allocation.
      dataset_count > r.remaining() / 32) {
    return Malformed("HelloReply");
  }
  out->datasets.clear();
  out->datasets.reserve(dataset_count);
  for (std::uint64_t i = 0; i < dataset_count; ++i) {
    DatasetInfo dataset;
    std::uint32_t dataset_kind = 0;
    if (!r.Str(&dataset.name) || !r.U32(&dataset_kind) || dataset_kind > 1 ||
        !r.U64(&dataset.dim) || !r.U64(&dataset.point_count) ||
        !r.U64(&dataset.fingerprint)) {
      return Malformed("HelloReply");
    }
    dataset.kind = static_cast<release::DatasetKind>(dataset_kind);
    out->datasets.push_back(std::move(dataset));
  }
  return Finish(r, "HelloReply");
}

std::string EncodeFit(const FitRequest& request) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kFit);
  PutSpec(w, request.spec);
  w.I64(request.deadline_millis);
  w.U64(request.dataset_fingerprint);
  return out;
}

Status DecodeFit(std::string_view payload, FitRequest* out) {
  ByteReader r(payload);
  if (!TakeTag(r, MessageType::kFit) || !TakeSpec(r, &out->spec) ||
      !r.I64(&out->deadline_millis) || !r.U64(&out->dataset_fingerprint)) {
    return Malformed("Fit");
  }
  return Finish(r, "Fit");
}

std::string EncodeFitReply(const FitReply& reply) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kFitReply);
  w.Str(reply.metadata.method);
  w.U64(reply.metadata.dim);
  w.F64(reply.metadata.epsilon_spent);
  w.U64(reply.metadata.synopsis_size);
  w.I32(reply.metadata.height);
  w.U32(reply.cache_hit ? 1 : 0);
  return out;
}

Status DecodeFitReply(std::string_view payload, FitReply* out) {
  ByteReader r(payload);
  std::uint64_t dim = 0, size = 0;
  std::uint32_t hit = 0;
  if (!TakeTag(r, MessageType::kFitReply) || !r.Str(&out->metadata.method) ||
      !r.U64(&dim) || !r.F64(&out->metadata.epsilon_spent) || !r.U64(&size) ||
      !r.I32(&out->metadata.height) || !r.U32(&hit) || hit > 1) {
    return Malformed("FitReply");
  }
  out->metadata.dim = static_cast<std::size_t>(dim);
  out->metadata.synopsis_size = static_cast<std::size_t>(size);
  out->cache_hit = hit == 1;
  return Finish(r, "FitReply");
}

std::string EncodeQueryBatch(const QueryBatchRequest& request) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kQueryBatch);
  PutSpec(w, request.spec);
  w.I64(request.deadline_millis);
  w.U64(request.dataset_fingerprint);
  const std::uint64_t dim =
      request.queries.empty() ? 0 : request.queries.front().dim();
  w.U64(dim);
  w.U64(request.queries.size());
  for (const Box& q : request.queries) {
    for (std::size_t j = 0; j < q.dim(); ++j) {
      w.F64(q.lo(j));
      w.F64(q.hi(j));
    }
  }
  return out;
}

Status DecodeQueryBatch(std::string_view payload, QueryBatchRequest* out) {
  ByteReader r(payload);
  std::uint64_t dim = 0, count = 0;
  if (!TakeTag(r, MessageType::kQueryBatch) || !TakeSpec(r, &out->spec) ||
      !r.I64(&out->deadline_millis) || !r.U64(&out->dataset_fingerprint) ||
      !r.U64(&dim) || !r.U64(&count)) {
    return Malformed("QueryBatch");
  }
  // Bounds the allocations before reading: each box is 16·dim bytes, and
  // `dim` is screened first so 16·dim can neither wrap u64 nor be zero in
  // the divisor below.
  if (count > 0 && (dim == 0 || dim > r.remaining() / 16 ||
                    count > r.remaining() / (16 * dim))) {
    return Malformed("QueryBatch");
  }
  out->queries.clear();
  out->queries.reserve(count);
  std::vector<double> lo(dim), hi(dim);
  for (std::uint64_t i = 0; i < count; ++i) {
    for (std::uint64_t j = 0; j < dim; ++j) {
      if (!r.F64(&lo[j]) || !r.F64(&hi[j])) return Malformed("QueryBatch");
      if (!(lo[j] <= hi[j])) {  // Also rejects NaN bounds.
        return Status::InvalidArgument("query box with lo > hi");
      }
    }
    out->queries.emplace_back(lo, hi);
  }
  return Finish(r, "QueryBatch");
}

std::string EncodeSeqQueryBatch(const SeqQueryBatchRequest& request) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kSeqQueryBatch);
  PutSpec(w, request.spec);
  w.I64(request.deadline_millis);
  w.U64(request.dataset_fingerprint);
  w.U64(request.queries.size());
  for (const release::SequenceQuery& q : request.queries) {
    w.U32(static_cast<std::uint32_t>(q.kind));
    w.U32(q.k);
    w.U32(q.max_len);
    w.U32(static_cast<std::uint32_t>(q.symbols.size()));
    for (const Symbol s : q.symbols) w.U32(s);
  }
  return out;
}

Status DecodeSeqQueryBatch(std::string_view payload,
                           SeqQueryBatchRequest* out) {
  ByteReader r(payload);
  std::uint64_t count = 0;
  if (!TakeTag(r, MessageType::kSeqQueryBatch) || !TakeSpec(r, &out->spec) ||
      !r.I64(&out->deadline_millis) || !r.U64(&out->dataset_fingerprint) ||
      !r.U64(&count) ||
      count > r.remaining() / 16) {  // 16 bytes per symbol-less query.
    return Malformed("SeqQueryBatch");
  }
  out->queries.clear();
  out->queries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    release::SequenceQuery q;
    std::uint32_t kind = 0, symbol_count = 0;
    if (!r.U32(&kind) || !r.U32(&q.k) || !r.U32(&q.max_len) ||
        !r.U32(&symbol_count) || symbol_count > r.remaining() / 4) {
      return Malformed("SeqQueryBatch");
    }
    switch (static_cast<release::SequenceQueryKind>(kind)) {
      case release::SequenceQueryKind::kFrequency:
      case release::SequenceQueryKind::kPrefixCount:
      case release::SequenceQueryKind::kTopK:
        q.kind = static_cast<release::SequenceQueryKind>(kind);
        break;
      default:
        return Status::InvalidArgument("unknown sequence query kind " +
                                       std::to_string(kind));
    }
    q.symbols.reserve(symbol_count);
    for (std::uint32_t j = 0; j < symbol_count; ++j) {
      std::uint32_t symbol = 0;
      // Symbols are 16-bit; a larger wire value is a malformed frame (the
      // alphabet-range screen against the *served* alphabet happens in the
      // engine, with a clean per-request error).
      if (!r.U32(&symbol) || symbol > 0xFFFF) {
        return Malformed("SeqQueryBatch");
      }
      q.symbols.push_back(static_cast<Symbol>(symbol));
    }
    out->queries.push_back(std::move(q));
  }
  return Finish(r, "SeqQueryBatch");
}

std::string EncodeQueryBatchReply(const QueryBatchReply& reply) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kQueryBatchReply);
  w.U32(reply.cache_hit ? 1 : 0);
  w.U64(reply.answers.size());
  w.F64Span(reply.answers);
  return out;
}

Status DecodeQueryBatchReply(std::string_view payload, QueryBatchReply* out) {
  ByteReader r(payload);
  std::uint32_t hit = 0;
  std::uint64_t count = 0;
  if (!TakeTag(r, MessageType::kQueryBatchReply) || !r.U32(&hit) || hit > 1 ||
      !r.U64(&count) || !r.F64Vec(count, &out->answers)) {
    return Malformed("QueryBatchReply");
  }
  out->cache_hit = hit == 1;
  return Finish(r, "QueryBatchReply");
}

std::string EncodeWarm(const WarmRequest& request) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kWarm);
  w.U64(request.dataset_fingerprint);
  w.U64(request.specs.size());
  for (const FitSpec& spec : request.specs) PutSpec(w, spec);
  return out;
}

Status DecodeWarm(std::string_view payload, WarmRequest* out) {
  ByteReader r(payload);
  std::uint64_t count = 0;
  // A spec is at least 24 wire bytes (two length prefixes + f64 + u64);
  // growing the vector as specs actually parse (instead of a count-sized
  // resize) keeps a lying count from forcing a huge allocation.
  if (!TakeTag(r, MessageType::kWarm) || !r.U64(&out->dataset_fingerprint) ||
      !r.U64(&count) || count > r.remaining() / 24) {
    return Malformed("Warm");
  }
  out->specs.clear();
  out->specs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    FitSpec spec;
    if (!TakeSpec(r, &spec)) return Malformed("Warm");
    out->specs.push_back(std::move(spec));
  }
  return Finish(r, "Warm");
}

std::string EncodeWarmReply(const WarmReply& reply) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kWarmReply);
  w.U64(reply.accepted);
  return out;
}

Status DecodeWarmReply(std::string_view payload, WarmReply* out) {
  ByteReader r(payload);
  if (!TakeTag(r, MessageType::kWarmReply) || !r.U64(&out->accepted)) {
    return Malformed("WarmReply");
  }
  return Finish(r, "WarmReply");
}

std::string EncodeStats() {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kStats);
  return out;
}

std::string EncodeStatsReply(const StatsReply& reply) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kStatsReply);
  for (const std::uint64_t value :
       {reply.queue_depth, reply.queue_max_depth, reply.admitted,
        reply.shed_queue_full, reply.shed_cache_saturated, reply.expired,
        reply.coalesced_fits, reply.cache_hits, reply.cache_misses,
        reply.cache_evictions, reply.spill_writes, reply.spill_pending,
        reply.writeback_hits}) {
    w.U64(value);
  }
  return out;
}

Status DecodeStatsReply(std::string_view payload, StatsReply* out) {
  ByteReader r(payload);
  bool ok = TakeTag(r, MessageType::kStatsReply);
  for (std::uint64_t* field :
       {&out->queue_depth, &out->queue_max_depth, &out->admitted,
        &out->shed_queue_full, &out->shed_cache_saturated, &out->expired,
        &out->coalesced_fits, &out->cache_hits, &out->cache_misses,
        &out->cache_evictions, &out->spill_writes, &out->spill_pending,
        &out->writeback_hits}) {
    ok = ok && r.U64(field);
  }
  if (!ok) return Malformed("StatsReply");
  return Finish(r, "StatsReply");
}

std::string EncodeTraced(std::uint64_t trace_id, std::string_view inner) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kTraced);
  w.U64(trace_id);
  out.append(inner.data(), inner.size());
  return out;
}

Status DecodeTraced(std::string_view payload, std::uint64_t* trace_id,
                    std::string_view* inner) {
  ByteReader r(payload);
  if (!TakeTag(r, MessageType::kTraced) || !r.U64(trace_id)) {
    return Malformed("Traced");
  }
  *inner = payload.substr(payload.size() - r.remaining());
  if (inner->empty()) return Malformed("Traced");
  // One level only: the inner payload must itself be a plain frame.
  Result<MessageType> inner_type = PeekType(*inner);
  if (!inner_type.ok()) return inner_type.status();
  if (inner_type.value() == MessageType::kTraced) return Malformed("Traced");
  return Status::OK();
}

std::string EncodeGetStats() {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kGetStats);
  return out;
}

std::string EncodeGetStatsReply(std::string_view json) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kGetStatsReply);
  w.Str(json);
  return out;
}

Status DecodeGetStatsReply(std::string_view payload, std::string* json) {
  ByteReader r(payload);
  if (!TakeTag(r, MessageType::kGetStatsReply) || !r.Str(json)) {
    return Malformed("GetStatsReply");
  }
  return Finish(r, "GetStatsReply");
}

std::string EncodeShutdown() {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kShutdown);
  return out;
}

std::string EncodeShutdownReply() {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kShutdownReply);
  return out;
}

std::string EncodeRegisterDataset(const RegisterDatasetRequest& request) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kRegisterDataset);
  w.Str(request.name);
  w.U32(static_cast<std::uint32_t>(request.kind));
  w.U64(request.dim);
  if (request.kind == release::DatasetKind::kSpatial) {
    for (std::uint64_t j = 0; j < request.dim; ++j) {
      w.F64(j < request.domain_lo.size() ? request.domain_lo[j] : 0.0);
      w.F64(j < request.domain_hi.size() ? request.domain_hi[j] : 1.0);
    }
    const std::uint64_t count =
        request.dim == 0 ? 0 : request.coords.size() / request.dim;
    w.U64(count);
    for (std::uint64_t i = 0; i < count * request.dim; ++i) {
      w.F64(request.coords[i]);
    }
  } else {
    w.U64(request.sequences.size());
    for (const std::vector<Symbol>& sequence : request.sequences) {
      w.U32(static_cast<std::uint32_t>(sequence.size()));
      for (const Symbol s : sequence) w.U32(s);
    }
  }
  return out;
}

Status DecodeRegisterDataset(std::string_view payload,
                             RegisterDatasetRequest* out) {
  ByteReader r(payload);
  std::uint32_t kind = 0;
  if (!TakeTag(r, MessageType::kRegisterDataset) || !r.Str(&out->name) ||
      !r.U32(&kind) || kind > 1 || !r.U64(&out->dim)) {
    return Malformed("RegisterDataset");
  }
  out->kind = static_cast<release::DatasetKind>(kind);
  out->domain_lo.clear();
  out->domain_hi.clear();
  out->coords.clear();
  out->sequences.clear();
  if (out->kind == release::DatasetKind::kSpatial) {
    // Screen dim before it sizes anything: the spatial pipeline caps out
    // far below 64 axes, and 16·dim must not wrap the divisor below.
    if (out->dim == 0 || out->dim > 64 || out->dim > r.remaining() / 16) {
      return Malformed("RegisterDataset");
    }
    out->domain_lo.resize(out->dim);
    out->domain_hi.resize(out->dim);
    for (std::uint64_t j = 0; j < out->dim; ++j) {
      if (!r.F64(&out->domain_lo[j]) || !r.F64(&out->domain_hi[j])) {
        return Malformed("RegisterDataset");
      }
      if (!(out->domain_lo[j] <= out->domain_hi[j])) {  // Rejects NaN too.
        return Status::InvalidArgument("dataset domain with lo > hi");
      }
    }
    std::uint64_t count = 0;
    if (!r.U64(&count) || count > r.remaining() / (8 * out->dim)) {
      return Malformed("RegisterDataset");
    }
    out->coords.resize(count * out->dim);
    for (double& coord : out->coords) {
      if (!r.F64(&coord)) return Malformed("RegisterDataset");
      if (!std::isfinite(coord)) {
        return Status::InvalidArgument("non-finite coordinate in dataset");
      }
    }
  } else {
    if (out->dim == 0 || out->dim > kMaxAlphabetSize) {
      return Status::InvalidArgument(
          "alphabet size " + std::to_string(out->dim) +
          " outside [1, " + std::to_string(kMaxAlphabetSize) + "]");
    }
    std::uint64_t count = 0;
    // ≥4 bytes per row (its length prefix) bounds the row allocation.
    if (!r.U64(&count) || count > r.remaining() / 4) {
      return Malformed("RegisterDataset");
    }
    out->sequences.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint32_t length = 0;
      if (!r.U32(&length) || length > r.remaining() / 4) {
        return Malformed("RegisterDataset");
      }
      std::vector<Symbol> sequence;
      sequence.reserve(length);
      for (std::uint32_t j = 0; j < length; ++j) {
        std::uint32_t symbol = 0;
        if (!r.U32(&symbol) || symbol > 0xFFFF) {
          return Malformed("RegisterDataset");
        }
        if (symbol >= out->dim) {
          return Status::InvalidArgument(
              "sequence symbol " + std::to_string(symbol) +
              " outside the declared alphabet of " +
              std::to_string(out->dim));
        }
        sequence.push_back(static_cast<Symbol>(symbol));
      }
      out->sequences.push_back(std::move(sequence));
    }
  }
  return Finish(r, "RegisterDataset");
}

std::string EncodeRegisterDatasetReply(const RegisterDatasetReply& reply) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kRegisterDatasetReply);
  w.U64(reply.fingerprint);
  w.U64(reply.point_count);
  return out;
}

Status DecodeRegisterDatasetReply(std::string_view payload,
                                  RegisterDatasetReply* out) {
  ByteReader r(payload);
  if (!TakeTag(r, MessageType::kRegisterDatasetReply) ||
      !r.U64(&out->fingerprint) || !r.U64(&out->point_count)) {
    return Malformed("RegisterDatasetReply");
  }
  return Finish(r, "RegisterDatasetReply");
}

std::string EncodeErrorReply(const Status& status) {
  std::string out;
  ByteWriter w(&out);
  PutTag(w, MessageType::kErrorReply);
  w.U32(static_cast<std::uint32_t>(status.code()));
  w.Str(status.message());
  w.U64(status.retry_after_millis());
  return out;
}

Status DecodeErrorReply(std::string_view payload, Status* out) {
  ByteReader r(payload);
  std::uint32_t code = 0;
  std::string message;
  std::uint64_t retry_after_millis = 0;
  if (!TakeTag(r, MessageType::kErrorReply) || !r.U32(&code) ||
      !r.Str(&message) || !r.U64(&retry_after_millis)) {
    return Malformed("ErrorReply");
  }
  if (Status finished = Finish(r, "ErrorReply"); !finished.ok()) {
    return finished;
  }
  // Reattach the hint after the code switch rebuilds the Status.
  const auto with_hint = [&](Status carried) {
    *out = std::move(carried).WithRetryAfter(retry_after_millis);
  };
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      // An ErrorReply can never legitimately carry OK; treating it as such
      // would let a misbehaving peer feed an OK Status into Result (which
      // aborts on OK-as-error).
      with_hint(Status::Internal("ErrorReply carried an OK status code: " +
                                 message));
      return Status::OK();
    case StatusCode::kInvalidArgument:
      with_hint(Status::InvalidArgument(std::move(message)));
      return Status::OK();
    case StatusCode::kNotFound:
      with_hint(Status::NotFound(std::move(message)));
      return Status::OK();
    case StatusCode::kIOError:
      with_hint(Status::IOError(std::move(message)));
      return Status::OK();
    case StatusCode::kOutOfRange:
      with_hint(Status::OutOfRange(std::move(message)));
      return Status::OK();
    case StatusCode::kInternal:
      with_hint(Status::Internal(std::move(message)));
      return Status::OK();
    case StatusCode::kUnavailable:
      with_hint(Status::Unavailable(std::move(message)));
      return Status::OK();
    case StatusCode::kDeadlineExceeded:
      with_hint(Status::DeadlineExceeded(std::move(message)));
      return Status::OK();
  }
  with_hint(Status::Internal("unknown wire status code " +
                             std::to_string(code) + ": " + message));
  return Status::OK();
}

}  // namespace privtree::server
