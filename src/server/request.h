// Request and response value types of the async serving front end.
//
// A FitSpec names one release the way a ReleaseSession caller would: which
// registered method, with which options, how much ε, and the session seed
// the randomness derives from.  The engine turns (seed) into the release
// Rng exactly as ReleaseSession does — Rng(seed).Fork() — so an answer
// served over the socket is bit-for-bit the answer an in-process session
// with the same seed would have produced (the parity the serving tests and
// the CI smoke pin down).
//
// Responses carry a Status instead of throwing: shed load is Unavailable,
// an expired deadline is DeadlineExceeded, a bad spec is InvalidArgument.
#ifndef PRIVTREE_SERVER_REQUEST_H_
#define PRIVTREE_SERVER_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "dp/status.h"
#include "release/method.h"
#include "release/options.h"

namespace privtree::server {

/// Identifies one fit the way a ReleaseSession caller would.
struct FitSpec {
  std::string method;              ///< Registry name ("privtree", "ug", ...).
  release::MethodOptions options;  ///< Method options (may be empty).
  double epsilon = 1.0;            ///< Total ε of the release.
  std::uint64_t seed = 0;          ///< Session seed; release rng is Fork().
};

/// Request deadlines are steady-clock points; kNoDeadline means "never".
using DeadlineClock = std::chrono::steady_clock;
inline constexpr DeadlineClock::time_point kNoDeadline =
    DeadlineClock::time_point::max();

/// Converts a wire-format relative deadline (milliseconds from arrival,
/// 0 = none) into an absolute time point.  Anything beyond ~1 year is
/// treated as "no deadline" — the wire value is untrusted, and adding a
/// huge millis to now() would overflow the clock's representation
/// (wrapping into the past, i.e. instant expiry).
inline DeadlineClock::time_point DeadlineFromMillis(std::int64_t millis) {
  constexpr std::int64_t kMaxDeadlineMillis =
      std::int64_t{366} * 24 * 60 * 60 * 1000;
  if (millis <= 0 || millis > kMaxDeadlineMillis) return kNoDeadline;
  return DeadlineClock::now() + std::chrono::milliseconds(millis);
}

/// Outcome of a fit request: release accounting, never the data.
struct FitResponse {
  Status status;
  release::MethodMetadata metadata;  ///< Meaningful when status.ok().
  bool cache_hit = false;            ///< Synopsis came from the cache.

  static FitResponse Abandoned() {
    return {Status::Internal("request abandoned by its executor"), {}, false};
  }
};

/// Outcome of a query-batch request.
struct QueryBatchResponse {
  Status status;
  std::vector<double> answers;  ///< One per query when status.ok().
  bool cache_hit = false;       ///< The backing fit came from the cache.

  static QueryBatchResponse Abandoned() {
    return {Status::Internal("request abandoned by its executor"), {}, false};
  }
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_REQUEST_H_
