// The blocking accept/serve loop that puts the serving stack on a socket —
// one thread per connection.
//
// One thread runs Run(); every accepted client gets its own handler thread
// that reads frames, routes them through the shared Dispatcher (blocking on
// the completion), and writes the reply — so slow requests only stall their
// own connection while the engines interleave everyone's work on the shared
// pool.  A malformed frame answers with ErrorReply and keeps the
// connection; a closed peer retires the handler.  The loop stops when a
// client sends Shutdown or another thread calls Stop(); either way Run
// joins every handler before returning, so no request is abandoned
// mid-reply.
//
// This loop is the *parity oracle* for the epoll EventLoop
// (server/event/event_loop.h): both route every frame through the same
// Dispatcher, so served answers are identical by construction; what this
// loop cannot do is sustain production connection counts — each client
// costs a thread.  Select it with `privtree_server --loop=threads`.
#ifndef PRIVTREE_SERVER_SERVER_LOOP_H_
#define PRIVTREE_SERVER_SERVER_LOOP_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/sync.h"
#include "dp/status.h"
#include "server/dispatcher.h"
#include "server/socket.h"

namespace privtree::server {

class ServerLoop {
 public:
  /// `dispatcher` must outlive the loop; the loop takes the listener over.
  ServerLoop(Dispatcher& dispatcher, ListenSocket listener);

  /// Stops (but does not join — only Run joins) on destruction; destroy
  /// only after Run has returned.
  ~ServerLoop();

  ServerLoop(const ServerLoop&) = delete;
  ServerLoop& operator=(const ServerLoop&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Accepts and serves clients until Stop() or a Shutdown frame, then
  /// joins every connection handler.  Call once.
  Status Run();

  /// Asynchronously stops the loop: fails the pending Accept and every
  /// blocked connection read.  Idempotent; safe from any thread, including
  /// a handler's own.
  void Stop();

 private:
  /// Handler body for one accepted connection.
  void Serve(const std::shared_ptr<Connection>& conn);

  Dispatcher& dispatcher_;
  ListenSocket listener_;
  Mutex mu_;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> handlers_ GUARDED_BY(mu_);  // Live.
  std::vector<std::thread> finished_ GUARDED_BY(mu_);  // Exited, to reap.
  std::vector<std::shared_ptr<Connection>> conns_ GUARDED_BY(mu_);
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_SERVER_LOOP_H_
