// The blocking accept/serve loop that puts an AsyncEngine on a socket.
//
// One thread runs Run(); every accepted client gets its own handler thread
// that reads frames, dispatches them into the engine, blocks on the
// completion future, and writes the reply — so slow requests only stall
// their own connection while the engine interleaves everyone's work on the
// shared pool.  A malformed frame answers with ErrorReply and keeps the
// connection; a closed peer retires the handler.  The loop stops when a
// client sends Shutdown or another thread calls Stop(); either way Run
// joins every handler before returning, so no request is abandoned
// mid-reply.
#ifndef PRIVTREE_SERVER_SERVER_LOOP_H_
#define PRIVTREE_SERVER_SERVER_LOOP_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dp/status.h"
#include "server/async_engine.h"
#include "server/socket.h"

namespace privtree::server {

class ServerLoop {
 public:
  /// `engine` must outlive the loop; the loop takes the listener over.
  ServerLoop(AsyncEngine& engine, ListenSocket listener);

  /// Stops (but does not join — only Run joins) on destruction; destroy
  /// only after Run has returned.
  ~ServerLoop();

  ServerLoop(const ServerLoop&) = delete;
  ServerLoop& operator=(const ServerLoop&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Accepts and serves clients until Stop() or a Shutdown frame, then
  /// joins every connection handler.  Call once.
  Status Run();

  /// Asynchronously stops the loop: fails the pending Accept and every
  /// blocked connection read.  Idempotent; safe from any thread, including
  /// a handler's own.
  void Stop();

 private:
  /// Handler body for one accepted connection.
  void Serve(const std::shared_ptr<Connection>& conn);

  /// Dispatches one decoded frame; returns the reply payload and flags a
  /// Shutdown frame.
  std::string HandleFrame(std::string_view payload, bool* shutdown);

  AsyncEngine& engine_;
  ListenSocket listener_;
  std::mutex mu_;
  bool stopping_ = false;                            // Guarded by mu_.
  std::vector<std::thread> handlers_;                // Live; guarded by mu_.
  std::vector<std::thread> finished_;                // Exited, to reap.
  std::vector<std::shared_ptr<Connection>> conns_;   // Guarded by mu_.
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_SERVER_LOOP_H_
