#include "server/server_loop.h"

#include <utility>

#include "release/registry.h"
#include "server/protocol.h"
#include "server/request.h"

namespace privtree::server {

ServerLoop::ServerLoop(AsyncEngine& engine, ListenSocket listener)
    : engine_(engine), listener_(std::move(listener)) {}

ServerLoop::~ServerLoop() { Stop(); }

Status ServerLoop::Run() {
  for (;;) {
    Result<Connection> accepted = listener_.Accept();
    if (!accepted.ok()) break;  // Stop() or a real listener failure.
    auto conn = std::make_shared<Connection>(std::move(accepted).value());
    std::vector<std::thread> finished;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) break;
      conns_.push_back(conn);
      handlers_.emplace_back([this, conn] { Serve(conn); });
      finished.swap(finished_);
    }
    // Reap handlers whose clients have disconnected (they have already
    // exited Serve, so these joins return immediately); without this a
    // long-lived server would accumulate one zombie thread per client.
    for (std::thread& handler : finished) handler.join();
  }
  Stop();
  // Claim the handler threads under the lock, join outside it (a handler
  // may be inside Stop() itself when it served the Shutdown frame).
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    handlers.swap(handlers_);
    for (std::thread& handler : finished_) handlers.push_back(std::move(handler));
    finished_.clear();
  }
  for (std::thread& handler : handlers) handler.join();
  return Status::OK();
}

void ServerLoop::Stop() {
  std::lock_guard<std::mutex> lk(mu_);
  stopping_ = true;
  listener_.Shutdown();
  for (const auto& conn : conns_) conn->ShutdownBoth();
}

void ServerLoop::Serve(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Result<std::string> frame = conn->RecvFrame();
    if (!frame.ok()) break;  // Clean close, peer failure, or Stop().
    bool shutdown = false;
    const std::string reply = HandleFrame(frame.value(), &shutdown);
    if (!conn->SendFrame(reply).ok()) break;
    if (shutdown) {
      Stop();
      break;
    }
  }
  // Retire this connection and move our own thread handle to the finished
  // list for the accept loop to reap, so neither list grows with server
  // lifetime.
  std::lock_guard<std::mutex> lk(mu_);
  std::erase(conns_, conn);
  const auto self = std::this_thread::get_id();
  for (auto it = handlers_.begin(); it != handlers_.end(); ++it) {
    if (it->get_id() == self) {
      finished_.push_back(std::move(*it));
      handlers_.erase(it);
      break;
    }
  }
}

std::string ServerLoop::HandleFrame(std::string_view payload,
                                    bool* shutdown) {
  const Result<MessageType> type = PeekType(payload);
  if (!type.ok()) return EncodeErrorReply(type.status());

  switch (type.value()) {
    case MessageType::kHello: {
      HelloRequest request;
      if (Status s = DecodeHello(payload, &request); !s.ok()) {
        return EncodeErrorReply(s);
      }
      if (request.version != kProtocolVersion) {
        return EncodeErrorReply(Status::InvalidArgument(
            "protocol version " + std::to_string(request.version) +
            " unsupported (server speaks " +
            std::to_string(kProtocolVersion) + ")"));
      }
      HelloReply reply;
      reply.kind = engine_.data().kind();
      reply.dim = engine_.data().dim();
      reply.point_count = engine_.data().size();
      reply.dataset_fingerprint = engine_.dataset_fingerprint();
      // Advertise only what this server can actually fit: a client picking
      // from the list must never draw a kind-mismatch rejection.
      reply.methods =
          release::GlobalMethodRegistry().Names(engine_.data().kind());
      return EncodeHelloReply(reply);
    }

    case MessageType::kFit: {
      FitRequest request;
      if (Status s = DecodeFit(payload, &request); !s.ok()) {
        return EncodeErrorReply(s);
      }
      const FitResponse& response =
          engine_
              .SubmitFit(request.spec,
                         DeadlineFromMillis(request.deadline_millis))
              .Get();
      if (!response.status.ok()) return EncodeErrorReply(response.status);
      return EncodeFitReply({response.metadata, response.cache_hit});
    }

    case MessageType::kQueryBatch: {
      QueryBatchRequest request;
      if (Status s = DecodeQueryBatch(payload, &request); !s.ok()) {
        return EncodeErrorReply(s);
      }
      const QueryBatchResponse& response =
          engine_
              .SubmitQueryBatch(request.spec, std::move(request.queries),
                                DeadlineFromMillis(request.deadline_millis))
              .Get();
      if (!response.status.ok()) return EncodeErrorReply(response.status);
      return EncodeQueryBatchReply({response.answers, response.cache_hit});
    }

    case MessageType::kSeqQueryBatch: {
      SeqQueryBatchRequest request;
      if (Status s = DecodeSeqQueryBatch(payload, &request); !s.ok()) {
        return EncodeErrorReply(s);
      }
      const QueryBatchResponse& response =
          engine_
              .SubmitSeqQueryBatch(request.spec, std::move(request.queries),
                                   DeadlineFromMillis(request.deadline_millis))
              .Get();
      if (!response.status.ok()) return EncodeErrorReply(response.status);
      return EncodeQueryBatchReply({response.answers, response.cache_hit});
    }

    case MessageType::kWarm: {
      WarmRequest request;
      if (Status s = DecodeWarm(payload, &request); !s.ok()) {
        return EncodeErrorReply(s);
      }
      return EncodeWarmReply({engine_.Warm(request.specs)});
    }

    case MessageType::kStats: {
      const AsyncEngine::StatsSnapshot snapshot = engine_.Stats();
      StatsReply reply;
      reply.queue_depth = snapshot.queue_depth;
      reply.queue_max_depth = snapshot.queue_max_depth;
      reply.admitted = snapshot.admission.admitted;
      reply.shed_queue_full = snapshot.admission.shed_queue_full;
      reply.shed_cache_saturated = snapshot.admission.shed_cache_saturated;
      reply.expired = snapshot.admission.expired;
      reply.coalesced_fits = snapshot.admission.coalesced_fits;
      reply.cache_hits = snapshot.cache.hits;
      reply.cache_misses = snapshot.cache.misses;
      reply.cache_evictions = snapshot.cache.evictions;
      reply.spill_writes = snapshot.cache.spill_writes;
      reply.spill_pending = snapshot.cache.spill_pending;
      reply.writeback_hits = snapshot.cache.writeback_hits;
      return EncodeStatsReply(reply);
    }

    case MessageType::kShutdown:
      *shutdown = true;
      return EncodeShutdownReply();

    default:
      return EncodeErrorReply(Status::InvalidArgument(
          "unexpected message type " +
          std::to_string(static_cast<std::uint32_t>(type.value())) +
          " (reply tags are server-to-client only)"));
  }
}

}  // namespace privtree::server
