#include "server/server_loop.h"

#include <string>
#include <utility>

namespace privtree::server {

ServerLoop::ServerLoop(Dispatcher& dispatcher, ListenSocket listener)
    : dispatcher_(dispatcher), listener_(std::move(listener)) {}

ServerLoop::~ServerLoop() { Stop(); }

Status ServerLoop::Run() {
  for (;;) {
    Result<Connection> accepted = listener_.Accept();
    if (!accepted.ok()) break;  // Stop() or a real listener failure.
    auto conn = std::make_shared<Connection>(std::move(accepted).value());
    std::vector<std::thread> finished;
    {
      MutexLock lk(mu_);
      if (stopping_) break;
      conns_.push_back(conn);
      handlers_.emplace_back([this, conn] { Serve(conn); });
      finished.swap(finished_);
    }
    // Reap handlers whose clients have disconnected (they have already
    // exited Serve, so these joins return immediately); without this a
    // long-lived server would accumulate one zombie thread per client.
    for (std::thread& handler : finished) handler.join();
  }
  Stop();
  // Claim the handler threads under the lock, join outside it (a handler
  // may be inside Stop() itself when it served the Shutdown frame).
  std::vector<std::thread> handlers;
  {
    MutexLock lk(mu_);
    handlers.swap(handlers_);
    for (std::thread& handler : finished_) handlers.push_back(std::move(handler));
    finished_.clear();
  }
  for (std::thread& handler : handlers) handler.join();
  return Status::OK();
}

void ServerLoop::Stop() {
  MutexLock lk(mu_);
  stopping_ = true;
  listener_.Shutdown();
  for (const auto& conn : conns_) conn->ShutdownBoth();
}

void ServerLoop::Serve(const std::shared_ptr<Connection>& conn) {
  // One session per connection: the budget-accounting scope the protocol
  // promises (see server/client_session.h).
  const std::shared_ptr<ClientSession> session = dispatcher_.NewSession();
  for (;;) {
    Result<std::string> frame = conn->RecvFrame();
    if (!frame.ok()) break;  // Clean close, peer failure, or Stop().
    bool shutdown = false;
    const std::string reply =
        dispatcher_.HandleFrameBlocking(frame.value(), session, &shutdown);
    if (!conn->SendFrame(reply).ok()) break;
    if (shutdown) {
      Stop();
      break;
    }
  }
  // Retire this connection and move our own thread handle to the finished
  // list for the accept loop to reap, so neither list grows with server
  // lifetime.
  MutexLock lk(mu_);
  std::erase(conns_, conn);
  const auto self = std::this_thread::get_id();
  for (auto it = handlers_.begin(); it != handlers_.end(); ++it) {
    if (it->get_id() == self) {
      finished_.push_back(std::move(*it));
      handlers_.erase(it);
      break;
    }
  }
}

}  // namespace privtree::server
