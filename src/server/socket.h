// Minimal POSIX TCP plumbing for the serving front end: a listener and a
// frame-oriented connection.
//
// A Connection sends and receives whole frames — u32 little-endian payload
// length, then the payload — retrying short reads/writes internally, so the
// protocol layer above never sees a partial message.  Everything fallible
// returns Status/Result (no exceptions, no aborts on peer misbehaviour);
// a peer that closes cleanly between frames surfaces as NotFound("eof"),
// anything else as IOError.  ShutdownBoth() unblocks a thread parked in
// RecvFrame from another thread — the lever ServerLoop::Stop uses.
#ifndef PRIVTREE_SERVER_SOCKET_H_
#define PRIVTREE_SERVER_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "dp/status.h"

namespace privtree::server {

/// One established, frame-oriented TCP connection.  Movable; the fd closes
/// on destruction.  Not thread-safe except for ShutdownBoth().
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection() { Close(); }

  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Connects to `host`:`port` (name resolution via getaddrinfo).
  /// `timeout_millis` bounds the TCP connect (0 = block indefinitely); a
  /// timed-out dial fails with DeadlineExceeded instead of hanging against
  /// a half-open or blackholed peer.
  static Result<Connection> Dial(const std::string& host, std::uint16_t port,
                                 std::int64_t timeout_millis = 0);

  bool ok() const { return fd_ >= 0; }

  /// Bounds every subsequent blocking read (SO_RCVTIMEO); a read that
  /// exceeds it fails with DeadlineExceeded.  0 removes the bound.
  Status SetRecvTimeout(std::int64_t millis);
  /// Send-side counterpart (SO_SNDTIMEO).
  Status SetSendTimeout(std::int64_t millis);

  /// Writes one length-prefixed frame; the payload must fit the protocol's
  /// kMaxFramePayload cap.
  Status SendFrame(std::string_view payload);

  /// Reads one whole frame payload.  NotFound("eof") on a clean close
  /// before the length prefix; IOError on anything torn.
  Result<std::string> RecvFrame();

  /// Half-closes both directions, failing any blocked RecvFrame/SendFrame;
  /// safe to call from another thread while this connection is in use.
  void ShutdownBoth();

  void Close();

  /// The raw descriptor (still owned by this Connection; -1 when closed).
  /// The event loop registers it with epoll and does its own buffered
  /// non-blocking I/O — SendFrame/RecvFrame are for blocking callers only.
  int fd() const { return fd_; }

  /// Switches the socket's O_NONBLOCK flag; IOError on fcntl failure.
  Status SetNonBlocking(bool nonblocking);

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1 (the serving protocol carries
/// no authentication; keep it loopback unless you wrap it in one).
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds and listens on 127.0.0.1:`port`; `port` 0 picks an ephemeral
  /// port (read it back from port()).
  static Result<ListenSocket> Listen(std::uint16_t port);

  bool ok() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Blocks for the next client.  Fails with Unavailable once the listener
  /// is shut down (the clean-stop signal, not an error).
  Result<Connection> Accept();

  /// Unblocks Accept from another thread; subsequent Accepts fail.
  void Shutdown();

  void Close();

  /// The raw listening descriptor, for epoll registration (-1 when closed).
  int fd() const { return fd_; }

  /// Switches the listener's O_NONBLOCK flag (readiness-loop accepts).
  Status SetNonBlocking(bool nonblocking);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_SOCKET_H_
