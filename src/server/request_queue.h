// A bounded FIFO of admitted-but-not-yet-executed serving requests.
//
// The queue is the backpressure point of the async engine: TryPush refuses
// (instead of blocking or growing) once `max_depth` requests are waiting,
// which is what lets the AdmissionController shed load with a clean
// Unavailable error instead of queueing unboundedly.  Each entry carries
// its deadline plus two continuations — `run` executes the request,
// `expire` resolves its future with an error — so the popping executor can
// retire an expired request without ever running it.
#ifndef PRIVTREE_SERVER_REQUEST_QUEUE_H_
#define PRIVTREE_SERVER_REQUEST_QUEUE_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>

#include "core/sync.h"
#include "dp/status.h"
#include "server/request.h"

namespace privtree::server {

/// One admitted request, ready to execute or expire.
struct QueuedRequest {
  DeadlineClock::time_point deadline = kNoDeadline;
  std::function<void()> run;            ///< Executes and resolves the future.
  std::function<void(Status)> expire;   ///< Resolves the future with an error.
};

/// Thread-safe bounded FIFO.  Requests must not throw.
class RequestQueue {
 public:
  /// Holds at most `max_depth` pending requests (0 is clamped to 1).
  explicit RequestQueue(std::size_t max_depth);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues at the back; false (leaving `request` untouched) when full.
  bool TryPush(QueuedRequest& request);

  /// Dequeues the oldest request; false when empty.
  bool TryPop(QueuedRequest* request);

  std::size_t depth() const;
  std::size_t max_depth() const { return max_depth_; }

 private:
  const std::size_t max_depth_;
  mutable Mutex mu_;
  std::deque<QueuedRequest> queue_ GUARDED_BY(mu_);
};

}  // namespace privtree::server

#endif  // PRIVTREE_SERVER_REQUEST_QUEUE_H_
