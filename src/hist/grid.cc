#include "hist/grid.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

GridHistogram::GridHistogram(Box domain,
                             std::vector<std::int64_t> cells_per_dim)
    : domain_(std::move(domain)), cells_per_dim_(std::move(cells_per_dim)) {
  PRIVTREE_CHECK_EQ(cells_per_dim_.size(), domain_.dim());
  std::size_t total = 1;
  for (std::int64_t m : cells_per_dim_) {
    PRIVTREE_CHECK_GE(m, 1);
    total *= static_cast<std::size_t>(m);
    PRIVTREE_CHECK_LE(total, std::size_t{1} << 28);  // 256M-cell sanity cap.
  }
  counts_.assign(total, 0.0);
  stride_.assign(dim(), 1);
  for (std::size_t j = dim() - 1; j > 0; --j) {
    stride_[j - 1] = stride_[j] * static_cast<std::size_t>(cells_per_dim_[j]);
  }
}

GridHistogram GridHistogram::FromPoints(
    const PointSet& points, const Box& domain,
    std::vector<std::int64_t> cells_per_dim) {
  GridHistogram grid(domain, std::move(cells_per_dim));
  const std::size_t d = grid.dim();
  std::vector<std::int64_t> cell(d);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points.point(i);
    for (std::size_t j = 0; j < d; ++j) cell[j] = grid.CellOf(p[j], j);
    grid.counts_[grid.FlatIndex(cell)] += 1.0;
  }
  return grid;
}

std::size_t GridHistogram::FlatIndex(
    const std::vector<std::int64_t>& cell) const {
  PRIVTREE_CHECK_EQ(cell.size(), dim());
  std::size_t index = 0;
  for (std::size_t j = 0; j < dim(); ++j) {
    PRIVTREE_CHECK_GE(cell[j], 0);
    PRIVTREE_CHECK_LT(cell[j], cells_per_dim_[j]);
    index += static_cast<std::size_t>(cell[j]) * stride_[j];
  }
  return index;
}

std::int64_t GridHistogram::CellOf(double x, std::size_t j) const {
  const double t = (x - domain_.lo(j)) / domain_.Width(j) *
                   static_cast<double>(cells_per_dim_[j]);
  const auto cell = static_cast<std::int64_t>(std::floor(t));
  return std::clamp<std::int64_t>(cell, 0, cells_per_dim_[j] - 1);
}

Box GridHistogram::CellBox(const std::vector<std::int64_t>& cell) const {
  PRIVTREE_CHECK_EQ(cell.size(), dim());
  std::vector<double> lo(dim()), hi(dim());
  for (std::size_t j = 0; j < dim(); ++j) {
    const double width =
        domain_.Width(j) / static_cast<double>(cells_per_dim_[j]);
    lo[j] = domain_.lo(j) + width * static_cast<double>(cell[j]);
    hi[j] = lo[j] + width;
  }
  return Box(std::move(lo), std::move(hi));
}

void GridHistogram::AddLaplaceNoise(double scale, Rng& rng) {
  for (double& c : counts_) c += SampleLaplace(rng, scale);
  prefix_valid_ = false;
}

void GridHistogram::BuildPrefixSums() {
  const std::size_t d = dim();
  std::vector<std::size_t> lattice_dims(d);
  std::size_t total = 1;
  for (std::size_t j = 0; j < d; ++j) {
    lattice_dims[j] = static_cast<std::size_t>(cells_per_dim_[j]) + 1;
    total *= lattice_dims[j];
  }
  lattice_stride_.assign(d, 1);
  for (std::size_t j = d - 1; j > 0; --j) {
    lattice_stride_[j - 1] = lattice_stride_[j] * lattice_dims[j];
  }
  prefix_.assign(total, 0.0);

  // Scatter the cell counts to lattice positions (i+1 per dimension), then
  // accumulate along each dimension in turn.
  std::vector<std::int64_t> cell(d, 0);
  for (std::size_t flat = 0; flat < counts_.size(); ++flat) {
    std::size_t lattice_index = 0;
    for (std::size_t j = 0; j < d; ++j) {
      lattice_index += (static_cast<std::size_t>(cell[j]) + 1) *
                       lattice_stride_[j];
    }
    prefix_[lattice_index] = counts_[flat];
    // Row-major increment (last dimension fastest).
    for (std::size_t j = d; j-- > 0;) {
      if (++cell[j] < cells_per_dim_[j]) break;
      cell[j] = 0;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const std::size_t stride = lattice_stride_[j];
    const std::size_t extent = lattice_dims[j];
    // Accumulate along dimension j: for every line, prefix over positions.
    for (std::size_t base = 0; base < prefix_.size(); ++base) {
      // Process each line exactly once: only when the j-coordinate is 0.
      if ((base / stride) % extent != 0) continue;
      double running = 0.0;
      for (std::size_t t = 0; t < extent; ++t) {
        running += prefix_[base + t * stride];
        prefix_[base + t * stride] = running;
      }
    }
  }
  prefix_valid_ = true;
}

double GridHistogram::Cdf(const double* x) const {
  const std::size_t d = dim();
  // Fractional lattice coordinates, clamped to [0, m_j].
  std::size_t base_cell[8];
  double frac[8];
  for (std::size_t j = 0; j < d; ++j) {
    double t = (x[j] - domain_.lo(j)) / domain_.Width(j) *
               static_cast<double>(cells_per_dim_[j]);
    t = std::clamp(t, 0.0, static_cast<double>(cells_per_dim_[j]));
    double integral = std::floor(t);
    if (integral >= static_cast<double>(cells_per_dim_[j])) {
      integral = static_cast<double>(cells_per_dim_[j]) - 1.0;
    }
    base_cell[j] = static_cast<std::size_t>(integral);
    frac[j] = t - integral;
  }
  // Multilinear interpolation over the 2^d lattice corners.
  double value = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << d); ++mask) {
    double weight = 1.0;
    std::size_t index = 0;
    for (std::size_t j = 0; j < d; ++j) {
      const bool upper = (mask >> j) & 1u;
      weight *= upper ? frac[j] : (1.0 - frac[j]);
      index += (base_cell[j] + (upper ? 1 : 0)) * lattice_stride_[j];
    }
    if (weight != 0.0) value += weight * prefix_[index];
  }
  return value;
}

double GridHistogram::QueryImpl(const Box& q) const {
  const std::size_t d = dim();
  // Clip the query to the domain.
  double lo[8], hi[8];
  for (std::size_t j = 0; j < d; ++j) {
    lo[j] = std::max(q.lo(j), domain_.lo(j));
    hi[j] = std::min(q.hi(j), domain_.hi(j));
    if (lo[j] >= hi[j]) return 0.0;
  }
  // Inclusion-exclusion over the 2^d corners of the clipped box.
  double ans = 0.0;
  double corner[8];
  for (std::size_t mask = 0; mask < (std::size_t{1} << d); ++mask) {
    int ones = 0;
    for (std::size_t j = 0; j < d; ++j) {
      const bool upper = (mask >> j) & 1u;
      corner[j] = upper ? hi[j] : lo[j];
      ones += upper ? 1 : 0;
    }
    const double sign = ((d - ones) % 2 == 0) ? 1.0 : -1.0;
    ans += sign * Cdf(corner);
  }
  return ans;
}

double GridHistogram::Query(const Box& q) const {
  PRIVTREE_CHECK(prefix_valid_);
  PRIVTREE_CHECK_EQ(q.dim(), dim());
  PRIVTREE_CHECK_LE(dim(), 8u);
  if (dim() == 2) return GridQueryOne2D(KernelView2D(), q);
  return QueryImpl(q);
}

std::vector<double> GridHistogram::QueryBatch(
    std::span<const Box> queries) const {
  PRIVTREE_CHECK(prefix_valid_);
  PRIVTREE_CHECK_LE(dim(), 8u);
  std::vector<double> answers(queries.size(), 0.0);
  for (const Box& q : queries) PRIVTREE_CHECK_EQ(q.dim(), dim());
  if (dim() == 2) {
    GridQueryBatch2DSimd(KernelView2D(), queries, answers.data());
    return answers;
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    answers[i] = QueryImpl(queries[i]);
  }
  return answers;
}

std::vector<double> GridHistogram::QueryBatchReference(
    std::span<const Box> queries) const {
  PRIVTREE_CHECK(prefix_valid_);
  PRIVTREE_CHECK_LE(dim(), 8u);
  std::vector<double> answers;
  answers.reserve(queries.size());
  for (const Box& q : queries) {
    PRIVTREE_CHECK_EQ(q.dim(), dim());
    answers.push_back(QueryImpl(q));
  }
  return answers;
}

double GridHistogram::QueryReference(const Box& q) const {
  PRIVTREE_CHECK(prefix_valid_);
  PRIVTREE_CHECK_EQ(q.dim(), dim());
  PRIVTREE_CHECK_LE(dim(), 8u);
  return QueryImpl(q);
}

Grid2DView GridHistogram::KernelView2D() const {
  PRIVTREE_CHECK(prefix_valid_);
  PRIVTREE_CHECK_EQ(dim(), 2u);
  Grid2DView view;
  view.prefix = prefix_.data();
  view.stride0 = lattice_stride_[0];
  view.m0d = static_cast<double>(cells_per_dim_[0]);
  view.m1d = static_cast<double>(cells_per_dim_[1]);
  view.dlo0 = domain_.lo(0);
  view.dlo1 = domain_.lo(1);
  view.dhi0 = domain_.hi(0);
  view.dhi1 = domain_.hi(1);
  view.w0 = domain_.Width(0);
  view.w1 = domain_.Width(1);
  return view;
}

double GridHistogram::Total() const {
  double total = 0.0;
  for (double c : counts_) total += c;
  return total;
}

}  // namespace privtree
