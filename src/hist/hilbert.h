// Hilbert space-filling curves in arbitrary dimension (Skilling,
// "Programming the Hilbert curve", AIP Conf. Proc. 707, 2004).
//
// DAWA flattens the multi-dimensional grid into one dimension along a
// Hilbert curve before partitioning, so that spatially close cells stay
// close in the 1-d order.
#ifndef PRIVTREE_HIST_HILBERT_H_
#define PRIVTREE_HIST_HILBERT_H_

#include <cstdint>
#include <vector>

namespace privtree {

/// Maps grid coordinates (each in [0, 2^bits)) to the Hilbert index in
/// [0, 2^(bits·dim)).  `bits · coords.size()` must be at most 63.
std::uint64_t HilbertIndex(const std::vector<std::uint32_t>& coords, int bits);

/// Inverse of HilbertIndex.
std::vector<std::uint32_t> HilbertCoords(std::uint64_t index, int bits,
                                         std::size_t dim);

}  // namespace privtree

#endif  // PRIVTREE_HIST_HILBERT_H_
