#include "hist/hierarchy.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"
#include "dp/distributions.h"
#include "hist/grid.h"

namespace privtree {

HierarchyHistogram::HierarchyHistogram(const PointSet& points,
                                       const Box& domain, double epsilon,
                                       const HierarchyOptions& options,
                                       Rng& rng)
    : domain_(domain), height_(options.height) {
  PRIVTREE_CHECK_GE(options.height, 2);
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GE(options.target_leaf_resolution, 2);
  const std::size_t d = domain.dim();
  const std::int32_t noisy_levels = height_ - 1;

  branching_ = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(std::llround(std::pow(
             static_cast<double>(options.target_leaf_resolution),
             1.0 / static_cast<double>(noisy_levels)))));

  resolution_.resize(height_);
  resolution_[0] = 1;
  for (std::int32_t l = 1; l < height_; ++l) {
    resolution_[l] = resolution_[l - 1] * branching_;
  }

  // Exact leaf counts, then aggregate upward, then noise every level.
  GridHistogram leaf_grid = GridHistogram::FromPoints(
      points, domain,
      std::vector<std::int64_t>(d, resolution_[height_ - 1]));

  counts_.resize(height_);
  counts_[height_ - 1] = leaf_grid.counts();
  for (std::int32_t l = height_ - 1; l > 1; --l) {
    const std::int64_t child_res = resolution_[l];
    const std::int64_t parent_res = resolution_[l - 1];
    std::size_t parent_total = 1;
    for (std::size_t j = 0; j < d; ++j) {
      parent_total *= static_cast<std::size_t>(parent_res);
    }
    counts_[l - 1].assign(parent_total, 0.0);
    // Aggregate each child cell into its parent.
    std::vector<std::int64_t> cell(d, 0);
    const auto& child = counts_[l];
    for (std::size_t flat = 0; flat < child.size(); ++flat) {
      std::size_t parent_flat = 0;
      for (std::size_t j = 0; j < d; ++j) {
        parent_flat = parent_flat * static_cast<std::size_t>(parent_res) +
                      static_cast<std::size_t>(cell[j] / branching_);
      }
      counts_[l - 1][parent_flat] += child[flat];
      for (std::size_t j = d; j-- > 0;) {
        if (++cell[j] < child_res) break;
        cell[j] = 0;
      }
    }
  }

  const double scale = static_cast<double>(noisy_levels) / epsilon;
  for (std::int32_t l = 1; l < height_; ++l) {
    for (double& c : counts_[l]) c += SampleLaplace(rng, scale);
  }

  if (options.constrained_inference) {
    ApplyConstrainedInference();
    GridHistogram view(domain,
                       std::vector<std::int64_t>(d, resolution_[height_ - 1]));
    view.counts() = counts_[height_ - 1];
    view.BuildPrefixSums();
    leaf_view_.emplace(std::move(view));
  }
}

HierarchyHistogram HierarchyHistogram::Restore(
    Box domain, std::int32_t height, std::int64_t branching,
    std::vector<std::vector<double>> level_counts, bool consistent) {
  PRIVTREE_CHECK_GE(height, 2);
  PRIVTREE_CHECK_GE(branching, 2);
  PRIVTREE_CHECK_EQ(level_counts.size(), static_cast<std::size_t>(height));
  HierarchyHistogram hier;
  hier.domain_ = std::move(domain);
  hier.height_ = height;
  hier.branching_ = branching;
  hier.resolution_.resize(height);
  hier.resolution_[0] = 1;
  const std::size_t d = hier.domain_.dim();
  for (std::int32_t l = 1; l < height; ++l) {
    hier.resolution_[l] = hier.resolution_[l - 1] * branching;
    std::size_t expected = 1;
    for (std::size_t j = 0; j < d; ++j) {
      expected *= static_cast<std::size_t>(hier.resolution_[l]);
    }
    PRIVTREE_CHECK_EQ(level_counts[l].size(), expected);
  }
  hier.counts_ = std::move(level_counts);
  if (consistent) {
    GridHistogram view(
        hier.domain_,
        std::vector<std::int64_t>(d, hier.resolution_[height - 1]));
    view.counts() = hier.counts_[height - 1];
    view.BuildPrefixSums();
    hier.leaf_view_.emplace(std::move(view));
  }
  return hier;
}

std::size_t HierarchyHistogram::FlatIndex(
    std::int32_t level, const std::vector<std::int64_t>& cell) const {
  const std::int64_t res = resolution_[level];
  std::size_t flat = 0;
  for (std::size_t j = 0; j < domain_.dim(); ++j) {
    PRIVTREE_CHECK_GE(cell[j], 0);
    PRIVTREE_CHECK_LT(cell[j], res);
    flat = flat * static_cast<std::size_t>(res) +
           static_cast<std::size_t>(cell[j]);
  }
  return flat;
}

Box HierarchyHistogram::CellBox(std::int32_t level,
                                const std::vector<std::int64_t>& cell) const {
  const std::size_t d = domain_.dim();
  const double res = static_cast<double>(resolution_[level]);
  std::vector<double> lo(d), hi(d);
  for (std::size_t j = 0; j < d; ++j) {
    const double width = domain_.Width(j) / res;
    lo[j] = domain_.lo(j) + width * static_cast<double>(cell[j]);
    hi[j] = lo[j] + width;
  }
  return Box(std::move(lo), std::move(hi));
}

double HierarchyHistogram::QueryNode(
    const Box& q, std::int32_t level,
    const std::vector<std::int64_t>& cell) const {
  const Box box = CellBox(level, cell);
  if (!q.Intersects(box)) return 0.0;
  if (level > 0 && q.ContainsBox(box)) {
    return counts_[level][FlatIndex(level, cell)];
  }
  if (level == height_ - 1) {
    const double volume = box.Volume();
    if (volume <= 0.0) return 0.0;
    return counts_[level][FlatIndex(level, cell)] *
           (box.IntersectionVolume(q) / volume);
  }
  // Recurse into the b^d children.
  const std::size_t d = domain_.dim();
  double ans = 0.0;
  std::vector<std::int64_t> child(d);
  std::vector<std::int64_t> offset(d, 0);
  bool done = false;
  while (!done) {
    for (std::size_t j = 0; j < d; ++j) {
      child[j] = cell[j] * branching_ + offset[j];
    }
    ans += QueryNode(q, level + 1, child);
    done = true;
    for (std::size_t j = d; j-- > 0;) {
      if (++offset[j] < branching_) {
        done = false;
        break;
      }
      offset[j] = 0;
    }
  }
  return ans;
}

double HierarchyHistogram::Query(const Box& q) const {
  std::vector<std::int64_t> root(domain_.dim(), 0);
  return QueryNode(q, 0, root);
}

std::vector<double> HierarchyHistogram::QueryBatch(
    std::span<const Box> queries) const {
  if (leaf_view_.has_value()) return leaf_view_->QueryBatch(queries);
  std::vector<double> answers;
  answers.reserve(queries.size());
  for (const Box& q : queries) answers.push_back(Query(q));
  return answers;
}

std::size_t HierarchyHistogram::TotalCounts() const {
  std::size_t total = 0;
  for (std::int32_t l = 1; l < height_; ++l) total += counts_[l].size();
  return total;
}

void HierarchyHistogram::ApplyConstrainedInference() {
  const std::size_t d = domain_.dim();
  double k = 1.0;  // Children per node (= β = b^d).
  for (std::size_t j = 0; j < d; ++j) k *= static_cast<double>(branching_);

  // Pass 1 (bottom-up weighted averaging, Hay et al.):
  //   z_v = y_v (leaves);
  //   z_v = (k^ℓ − k^{ℓ−1})/(k^ℓ − 1)·y_v + (k^{ℓ−1} − 1)/(k^ℓ − 1)·Σ z_child
  // where ℓ is the node height (leaf ℓ = 1).
  std::vector<std::vector<double>> z = counts_;
  for (std::int32_t l = height_ - 2; l >= 1; --l) {
    const double height_of_node = static_cast<double>(height_ - 1 - l) + 1.0;
    const double k_l = std::pow(k, height_of_node);
    const double k_lm1 = std::pow(k, height_of_node - 1.0);
    const double w_self = (k_l - k_lm1) / (k_l - 1.0);
    const double w_children = (k_lm1 - 1.0) / (k_l - 1.0);
    // Sum children of level l+1 into their parents at level l.
    std::vector<double> child_sum(counts_[l].size(), 0.0);
    const std::int64_t child_res = resolution_[l + 1];
    const std::int64_t parent_res = resolution_[l];
    std::vector<std::int64_t> cell(d, 0);
    for (std::size_t flat = 0; flat < z[l + 1].size(); ++flat) {
      std::size_t parent_flat = 0;
      for (std::size_t j = 0; j < d; ++j) {
        parent_flat = parent_flat * static_cast<std::size_t>(parent_res) +
                      static_cast<std::size_t>(cell[j] / branching_);
      }
      child_sum[parent_flat] += z[l + 1][flat];
      for (std::size_t j = d; j-- > 0;) {
        if (++cell[j] < child_res) break;
        cell[j] = 0;
      }
    }
    for (std::size_t i = 0; i < z[l].size(); ++i) {
      z[l][i] = w_self * counts_[l][i] + w_children * child_sum[i];
    }
  }

  // Pass 2 (top-down mean consistency): children are shifted so they sum to
  // their (already-final) parent.  The root has no measurement, so level 1
  // is taken as-is.
  counts_[1] = z[1];
  for (std::int32_t l = 1; l < height_ - 1; ++l) {
    const std::int64_t child_res = resolution_[l + 1];
    const std::int64_t parent_res = resolution_[l];
    // Child sums of z at level l+1, per parent.
    std::vector<double> child_sum(counts_[l].size(), 0.0);
    std::vector<std::int64_t> cell(d, 0);
    for (std::size_t flat = 0; flat < z[l + 1].size(); ++flat) {
      std::size_t parent_flat = 0;
      for (std::size_t j = 0; j < d; ++j) {
        parent_flat = parent_flat * static_cast<std::size_t>(parent_res) +
                      static_cast<std::size_t>(cell[j] / branching_);
      }
      child_sum[parent_flat] += z[l + 1][flat];
      for (std::size_t j = d; j-- > 0;) {
        if (++cell[j] < child_res) break;
        cell[j] = 0;
      }
    }
    counts_[l + 1].assign(z[l + 1].size(), 0.0);
    cell.assign(d, 0);
    for (std::size_t flat = 0; flat < z[l + 1].size(); ++flat) {
      std::size_t parent_flat = 0;
      for (std::size_t j = 0; j < d; ++j) {
        parent_flat = parent_flat * static_cast<std::size_t>(parent_res) +
                      static_cast<std::size_t>(cell[j] / branching_);
      }
      counts_[l + 1][flat] =
          z[l + 1][flat] +
          (counts_[l][parent_flat] - child_sum[parent_flat]) / k;
      for (std::size_t j = d; j-- > 0;) {
        if (++cell[j] < child_res) break;
        cell[j] = 0;
      }
    }
  }
}

}  // namespace privtree
