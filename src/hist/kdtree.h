// KD — a private k-d-tree decomposition in the style of Xiao, Xiong, Yuan
// (Secure Data Management 2010), cited as [51] in the paper's related work
// and reported there to be inferior to UG/AG.  Included as an additional
// baseline/ablation.
//
// Construction: a fixed-height binary tree; at each node the split
// coordinate of the current dimension (round-robin) is chosen as a *noisy
// median* via the exponential mechanism, after which noisy counts are
// released for the leaves.  The split-selection budget and the count budget
// each get half of ε; splits at depth i consume ε₁/h (one tuple affects one
// node per level, so per-level selections compose in parallel across
// siblings).
#ifndef PRIVTREE_HIST_KDTREE_H_
#define PRIVTREE_HIST_KDTREE_H_

#include <cstdint>
#include <vector>

#include "core/tree.h"
#include "dp/rng.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {

/// Options for KdTreeHistogram.
struct KdTreeOptions {
  /// Number of split levels (the tree has 2^height leaves).
  std::int32_t height = 8;
  /// Fraction of ε spent choosing split coordinates.
  double split_budget_fraction = 0.5;
};

/// A private k-d-tree histogram.
class KdTreeHistogram {
 public:
  KdTreeHistogram(const PointSet& points, const Box& domain, double epsilon,
                  const KdTreeOptions& options, Rng& rng);

  /// Restores a released tree from its serialized parts (the v2 synopsis
  /// payload — see release/serialization.h); `counts` is indexed by node id.
  static KdTreeHistogram Restore(DecompTree<Box> tree,
                                 std::vector<double> counts);

  /// Estimated number of points in `q` (leaf traversal with uniform
  /// fractions, as for the other tree histograms).
  double Query(const Box& q) const;

  std::size_t LeafCount() const { return tree_.LeafCount(); }
  const DecompTree<Box>& tree() const { return tree_; }
  /// Released noisy counts, indexed by node id.
  const std::vector<double>& counts() const { return count_; }

 private:
  KdTreeHistogram() = default;

  DecompTree<Box> tree_;
  std::vector<double> count_;  ///< Released noisy counts per node.
};

/// Selects an ε-DP approximate median of `values` within [lo, hi] via the
/// exponential mechanism over inter-order-statistic intervals (rank
/// utility, sensitivity 1).  Exposed for tests.
double PrivateMedianSplit(const std::vector<double>& values, double lo,
                          double hi, double epsilon, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_HIST_KDTREE_H_
