// Specialized 2-d batch-query kernels over a grid prefix-sum lattice.
//
// GridHistogram::QueryImpl is generic over the dimension: per query it runs
// 2^d-corner inclusion-exclusion with mask loops, per-dimension branches
// and a heap-held Box on every access.  Almost every served grid is 2-d
// (the paper's datasets, AG's sub-grids), so these kernels restructure that
// path into a flat structure-of-arrays view (Grid2DView: raw lattice
// pointer + unpacked domain scalars) with the d = 2 case fully unrolled,
// and a SIMD batch variant (core/simd.h: AVX2 4-wide / SSE2 2-wide, `#if`
// selected) that evaluates several queries per instruction stream.
//
// Bit-for-bit contract: every kernel — scalar one-shot, scalar batch, SIMD
// batch — returns answers identical to GridHistogram::QueryImpl on the
// same box, on every input.  The vector code mirrors the scalar operation
// order exactly (no FMA, no reassociation; the `weight != 0` guard becomes
// a mask so skipped terms still never perturb the accumulator), and
// tests/release/kernel_parity_test.cc fuzzes the equivalence.  This is
// what lets AG's summed-area-table boundary path and the grid family's
// QueryBatch adopt the kernels with unchanged released answers.
#ifndef PRIVTREE_HIST_GRID_KERNELS_H_
#define PRIVTREE_HIST_GRID_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "spatial/box.h"

namespace privtree {

/// Flat, pointer-based view of a 2-d grid's query state: everything the
/// kernels need, with no vector indirection on the hot path.  Built by
/// GridHistogram::KernelView2D(); valid while the grid outlives it.
struct Grid2DView {
  const double* prefix = nullptr;  ///< (m0+1) × (m1+1) lattice, row-major.
  std::size_t stride0 = 0;         ///< Lattice row stride (= m1 + 1).
  double m0d = 0.0, m1d = 0.0;     ///< Cells per dimension, as doubles.
  double dlo0 = 0.0, dlo1 = 0.0;   ///< Domain lower bounds.
  double dhi0 = 0.0, dhi1 = 0.0;   ///< Domain upper bounds.
  double w0 = 0.0, w1 = 0.0;       ///< Domain widths.
};

/// One query against the view; bitwise equal to QueryImpl on the same box.
double GridQueryOne2D(const Grid2DView& g, const Box& q);

/// Scalar batch: GridQueryOne2D over the span, answers written in order.
void GridQueryBatch2DScalar(const Grid2DView& g, std::span<const Box> queries,
                            double* answers);

/// Vectorized batch (AVX2/SSE2 when compiled in, scalar otherwise);
/// bitwise equal to the scalar batch.
void GridQueryBatch2DSimd(const Grid2DView& g, std::span<const Box> queries,
                          double* answers);

/// Indexed vectorized batch: answers[j] = GridQueryOne2D(g, queries[idx[j]])
/// for j in [0, n), same ISA selection and bitwise contract as the
/// contiguous batch.  For callers that stage scattered (query, grid)
/// visits — e.g. grouping many queries' boundary cells by sub-grid —
/// without copying Box objects; duplicate indices are fine.
void GridQueryBatch2DSimdIdx(const Grid2DView& g, const Box* queries,
                             const std::uint32_t* idx, std::size_t n,
                             double* answers);

}  // namespace privtree

#endif  // PRIVTREE_HIST_GRID_KERNELS_H_
