// A 1-dimensional hierarchical Laplace measurement with constrained
// inference (the H_b strategy of Hay et al. PVLDB 2010 / Qardaji et al.
// PVLDB 2013), used as DAWA's bucket-measurement stage.
//
// Given an exact vector y of length B, a complete b-ary tree is imposed over
// it; every node's interval sum is released with Laplace noise of scale
// (#levels)/ε, and Hay-style weighted averaging + mean consistency produce
// the final (consistent, variance-reduced) leaf estimates.
#ifndef PRIVTREE_HIST_TREE1D_H_
#define PRIVTREE_HIST_TREE1D_H_

#include <cstdint>
#include <vector>

#include "dp/rng.h"

namespace privtree {

/// Options for MeasureHierarchical1D.
struct Tree1DOptions {
  /// Branching factor b; b >= 2.  Qardaji et al.'s analysis suggests b ≈ 16
  /// for minimizing range-query error in 1-d.
  std::int64_t branching = 16;
  /// When the input is at most this long, a flat Laplace measurement with
  /// the full budget is used instead (a hierarchy over a tiny vector wastes
  /// budget on redundant levels).
  std::int64_t flat_threshold = 32;
};

/// Returns ε-DP leaf estimates of `exact` (unit L1 sensitivity assumed:
/// one tuple changes exactly one entry by at most 1).
std::vector<double> MeasureHierarchical1D(const std::vector<double>& exact,
                                          double epsilon,
                                          const Tree1DOptions& options,
                                          Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_HIST_TREE1D_H_
