// Privelet* — differential privacy via the Haar wavelet transform (Xiao,
// Wang, Gehrke, TKDE 2011), for multi-dimensional range-count queries.
//
// The domain is discretized into a grid with power-of-two resolution per
// dimension (2^20 total cells in the paper's experiments).  The cell counts
// undergo a standard (per-dimension) Haar decomposition; each coefficient c
// receives Laplace noise of scale ρ / (ε · W(c)), where W(c) is the product
// of per-dimension coefficient weights and ρ = ∏_j (1 + log2 m_j) is the
// generalized sensitivity.  The inverse transform yields noisy cell counts
// whose range-sum errors grow only polylogarithmically with the query size.
#ifndef PRIVTREE_HIST_WAVELET_H_
#define PRIVTREE_HIST_WAVELET_H_

#include <cstdint>
#include <vector>

#include "dp/rng.h"
#include "hist/grid.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {

/// In-place 1-d Haar decomposition (average/difference form) of a line
/// whose length must be a power of two.  Exposed for tests.
void HaarForward(std::vector<double>* line);

/// Inverse of HaarForward.
void HaarInverse(std::vector<double>* line);

/// Per-position Haar coefficient weights for a line of length m (a power of
/// two): W(0) = m and W(p) = m / 2^floor(log2 p) for p >= 1.  One tuple
/// changes coefficient p by at most 1/W(p), and the weighted changes along
/// the coefficient path sum to 1 + log2 m.
std::vector<double> HaarWeights(std::int64_t m);

/// Options for BuildPriveletHistogram.
struct PriveletOptions {
  /// Target total number of grid cells; rounded to the nearest power-of-two
  /// per-dimension resolution (2^20 in the paper's experiments).
  std::int64_t target_total_cells = std::int64_t{1} << 20;
};

/// Builds the ε-DP Privelet* histogram; the returned grid already has its
/// prefix sums built, so Query() can be called directly.
GridHistogram BuildPriveletHistogram(const PointSet& points, const Box& domain,
                                     double epsilon,
                                     const PriveletOptions& options, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_HIST_WAVELET_H_
