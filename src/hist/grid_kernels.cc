#include "hist/grid_kernels.h"

#include <algorithm>
#include <cmath>

#include "core/simd.h"

namespace privtree {

namespace {

// One axis position resolved to a lattice coordinate: base cell + fraction.
struct AxisCoord {
  std::size_t base;
  double frac;
};

// The per-dimension block of GridHistogram::Cdf (subtract, divide,
// multiply; clamp; floor; top-edge fixup), with two exact shortcuts for
// domain-edge positions.  The view's width is `dhi - dlo` bitwise
// (KernelView2D), so for x == dlo the general path computes
// t = 0/w·m = 0 → (0, +0.0) (including the x = -0.0, dlo = +0.0 tie,
// where t = -0.0 clamps, floors and subtracts to the same pair), and for
// x == dhi it computes t = w/w·m = m → fixup m-1 → (m-1, 1.0), both
// division-free here.  AG's boundary cells hit these shortcuts on every
// side the query fully covers, which is most of their sides.
inline AxisCoord CoordOf(double x, double dlo, double dhi, double w,
                         double md) {
  if (x == dlo) return {0, 0.0};
  if (x == dhi) return {static_cast<std::size_t>(md) - 1, 1.0};
  double t = (x - dlo) / w * md;
  t = std::clamp(t, 0.0, md);
  double i = std::floor(t);
  if (i >= md) i = md - 1.0;
  return {static_cast<std::size_t>(i), t - i};
}

// Bilinear CDF value at one corner pair.  Corner order matches the generic
// mask loop: (0,0) (1,0) (0,1) (1,1), with the `weight != 0` skip.
inline double Cdf2DAt(const Grid2DView& g, const AxisCoord& c0,
                      const AxisCoord& c1) {
  const double f0 = c0.frac, f1 = c1.frac;
  const double* row = g.prefix + c0.base * g.stride0 + c1.base;
  double value = 0.0;
  {
    const double w = (1.0 - f0) * (1.0 - f1);
    if (w != 0.0) value += w * row[0];
  }
  {
    const double w = f0 * (1.0 - f1);
    if (w != 0.0) value += w * row[g.stride0];
  }
  {
    const double w = (1.0 - f0) * f1;
    if (w != 0.0) value += w * row[1];
  }
  {
    const double w = f0 * f1;
    if (w != 0.0) value += w * row[g.stride0 + 1];
  }
  return value;
}

}  // namespace

double GridQueryOne2D(const Grid2DView& g, const Box& q) {
  // Clip to the domain; max/min argument order matches QueryImpl so tie
  // behavior (and thus every downstream bit) is identical.
  const double lo0 = std::max(q.lo(0), g.dlo0);
  const double hi0 = std::min(q.hi(0), g.dhi0);
  if (lo0 >= hi0) return 0.0;
  const double lo1 = std::max(q.lo(1), g.dlo1);
  const double hi1 = std::min(q.hi(1), g.dhi1);
  if (lo1 >= hi1) return 0.0;
  // Each axis coordinate once (QueryImpl recomputes them per corner, but
  // they are pure in the inputs, so hoisting cannot change a bit).
  const AxisCoord clo0 = CoordOf(lo0, g.dlo0, g.dhi0, g.w0, g.m0d);
  const AxisCoord chi0 = CoordOf(hi0, g.dlo0, g.dhi0, g.w0, g.m0d);
  const AxisCoord clo1 = CoordOf(lo1, g.dlo1, g.dhi1, g.w1, g.m1d);
  const AxisCoord chi1 = CoordOf(hi1, g.dlo1, g.dhi1, g.w1, g.m1d);
  // Inclusion-exclusion in mask order; `sign *` is an exact ±1 multiply.
  double ans = 0.0;
  ans += 1.0 * Cdf2DAt(g, clo0, clo1);
  ans += -1.0 * Cdf2DAt(g, chi0, clo1);
  ans += -1.0 * Cdf2DAt(g, clo0, chi1);
  ans += 1.0 * Cdf2DAt(g, chi0, chi1);
  return ans;
}

void GridQueryBatch2DScalar(const Grid2DView& g, std::span<const Box> queries,
                            double* answers) {
  for (std::size_t i = 0; i < queries.size(); ++i) {
    answers[i] = GridQueryOne2D(g, queries[i]);
  }
}

#if defined(PRIVTREE_SIMD_AVX2)

namespace {

// One lattice coordinate for 4 queries: integer base cells + fractions.
struct Coord4 {
  __m128i base;  // int32 ×4
  __m256d frac;
};

// Vector version of the per-dimension block of Cdf.  std::clamp(t, 0, m)
// keeps t on ties, so the max/min operand order below (mask constant first)
// reproduces it exactly; truncation == floor for the clamped t >= 0; the
// top-edge fixup subtracts an exact 1.0 under the ge mask.
inline Coord4 CdfCoord4(__m256d x, __m256d dlo, __m256d w, __m256d md) {
  __m256d t = _mm256_mul_pd(_mm256_div_pd(_mm256_sub_pd(x, dlo), w), md);
  t = _mm256_max_pd(_mm256_setzero_pd(), t);
  t = _mm256_min_pd(md, t);
  __m256d integral = _mm256_cvtepi32_pd(_mm256_cvttpd_epi32(t));
  const __m256d ge = _mm256_cmp_pd(integral, md, _CMP_GE_OQ);
  integral = _mm256_sub_pd(integral, _mm256_and_pd(ge, _mm256_set1_pd(1.0)));
  Coord4 c;
  c.base = _mm256_cvttpd_epi32(integral);
  c.frac = _mm256_sub_pd(t, integral);
  return c;
}

// Bilinear CDF value for 4 queries at one corner pair.  The scalar
// `if (weight != 0) value += weight * p` becomes a NEQ_UQ-masked add; the
// accumulator can never be -0.0 (it starts at +0.0 and IEEE addition only
// yields -0.0 from two -0.0 inputs), so adding a masked-out +0.0 term is
// bit-identical to skipping it.
inline __m256d CdfValue4(const Grid2DView& g, const Coord4& c0,
                         const Coord4& c1) {
  const __m128i s0 = _mm_set1_epi32(static_cast<int>(g.stride0));
  const __m128i i00 = _mm_add_epi32(_mm_mullo_epi32(c0.base, s0), c1.base);
  const __m128i i10 = _mm_add_epi32(i00, s0);
  const __m128i one = _mm_set1_epi32(1);
  const __m256d p00 = _mm256_i32gather_pd(g.prefix, i00, 8);
  const __m256d p10 = _mm256_i32gather_pd(g.prefix, i10, 8);
  const __m256d p01 = _mm256_i32gather_pd(g.prefix, _mm_add_epi32(i00, one), 8);
  const __m256d p11 = _mm256_i32gather_pd(g.prefix, _mm_add_epi32(i10, one), 8);
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d om0 = _mm256_sub_pd(ones, c0.frac);
  const __m256d om1 = _mm256_sub_pd(ones, c1.frac);
  const __m256d zero = _mm256_setzero_pd();
  __m256d value = zero;
  __m256d wgt = _mm256_mul_pd(om0, om1);
  value = _mm256_add_pd(
      value, _mm256_and_pd(_mm256_cmp_pd(wgt, zero, _CMP_NEQ_UQ),
                           _mm256_mul_pd(wgt, p00)));
  wgt = _mm256_mul_pd(c0.frac, om1);
  value = _mm256_add_pd(
      value, _mm256_and_pd(_mm256_cmp_pd(wgt, zero, _CMP_NEQ_UQ),
                           _mm256_mul_pd(wgt, p10)));
  wgt = _mm256_mul_pd(om0, c1.frac);
  value = _mm256_add_pd(
      value, _mm256_and_pd(_mm256_cmp_pd(wgt, zero, _CMP_NEQ_UQ),
                           _mm256_mul_pd(wgt, p01)));
  wgt = _mm256_mul_pd(c0.frac, c1.frac);
  value = _mm256_add_pd(
      value, _mm256_and_pd(_mm256_cmp_pd(wgt, zero, _CMP_NEQ_UQ),
                           _mm256_mul_pd(wgt, p11)));
  return value;
}

// The contiguous and indexed batches share this loop; `box_at(i)` is either
// queries[i] or queries[idx[i]].
template <typename BoxAt>
inline void Batch4Impl(const Grid2DView& g, std::size_t n, BoxAt box_at,
                       double* answers) {
  const __m256d dlo0 = _mm256_set1_pd(g.dlo0);
  const __m256d dhi0 = _mm256_set1_pd(g.dhi0);
  const __m256d dlo1 = _mm256_set1_pd(g.dlo1);
  const __m256d dhi1 = _mm256_set1_pd(g.dhi1);
  const __m256d w0 = _mm256_set1_pd(g.w0);
  const __m256d w1 = _mm256_set1_pd(g.w1);
  const __m256d m0 = _mm256_set1_pd(g.m0d);
  const __m256d m1 = _mm256_set1_pd(g.m1d);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const Box& a = box_at(i);
    const Box& b = box_at(i + 1);
    const Box& c = box_at(i + 2);
    const Box& d = box_at(i + 3);
    // std::max(q, dom) returns q on ties; _mm_max_pd(x, y) returns y on
    // ties — so the domain bound rides in the first operand.
    const __m256d lo0 = _mm256_max_pd(
        dlo0, _mm256_set_pd(d.lo(0), c.lo(0), b.lo(0), a.lo(0)));
    const __m256d hi0 = _mm256_min_pd(
        dhi0, _mm256_set_pd(d.hi(0), c.hi(0), b.hi(0), a.hi(0)));
    const __m256d lo1 = _mm256_max_pd(
        dlo1, _mm256_set_pd(d.lo(1), c.lo(1), b.lo(1), a.lo(1)));
    const __m256d hi1 = _mm256_min_pd(
        dhi1, _mm256_set_pd(d.hi(1), c.hi(1), b.hi(1), a.hi(1)));
    const __m256d valid =
        _mm256_and_pd(_mm256_cmp_pd(lo0, hi0, _CMP_LT_OQ),
                      _mm256_cmp_pd(lo1, hi1, _CMP_LT_OQ));
    const Coord4 clo0 = CdfCoord4(lo0, dlo0, w0, m0);
    const Coord4 chi0 = CdfCoord4(hi0, dlo0, w0, m0);
    const Coord4 clo1 = CdfCoord4(lo1, dlo1, w1, m1);
    const Coord4 chi1 = CdfCoord4(hi1, dlo1, w1, m1);
    const __m256d plus = _mm256_set1_pd(1.0);
    const __m256d minus = _mm256_set1_pd(-1.0);
    __m256d ans = _mm256_setzero_pd();
    ans = _mm256_add_pd(ans, _mm256_mul_pd(plus, CdfValue4(g, clo0, clo1)));
    ans = _mm256_add_pd(ans, _mm256_mul_pd(minus, CdfValue4(g, chi0, clo1)));
    ans = _mm256_add_pd(ans, _mm256_mul_pd(minus, CdfValue4(g, clo0, chi1)));
    ans = _mm256_add_pd(ans, _mm256_mul_pd(plus, CdfValue4(g, chi0, chi1)));
    // Degenerate-overlap lanes return exactly +0.0, like the early return.
    ans = _mm256_and_pd(valid, ans);
    _mm256_storeu_pd(answers + i, ans);
  }
  for (; i < n; ++i) answers[i] = GridQueryOne2D(g, box_at(i));
}

}  // namespace

void GridQueryBatch2DSimd(const Grid2DView& g, std::span<const Box> queries,
                          double* answers) {
  Batch4Impl(
      g, queries.size(),
      [&](std::size_t i) -> const Box& { return queries[i]; }, answers);
}

void GridQueryBatch2DSimdIdx(const Grid2DView& g, const Box* queries,
                             const std::uint32_t* idx, std::size_t n,
                             double* answers) {
  Batch4Impl(
      g, n, [&](std::size_t i) -> const Box& { return queries[idx[i]]; },
      answers);
}

#elif defined(PRIVTREE_SIMD_SSE2)

namespace {

struct Coord2 {
  int base0;  // Integer base cell, lane 0 / lane 1.
  int base1;
  __m128d frac;
};

inline Coord2 CdfCoord2(__m128d x, __m128d dlo, __m128d w, __m128d md) {
  __m128d t = _mm_mul_pd(_mm_div_pd(_mm_sub_pd(x, dlo), w), md);
  t = _mm_max_pd(_mm_setzero_pd(), t);
  t = _mm_min_pd(md, t);
  __m128d integral = _mm_cvtepi32_pd(_mm_cvttpd_epi32(t));
  const __m128d ge = _mm_cmpge_pd(integral, md);
  integral = _mm_sub_pd(integral, _mm_and_pd(ge, _mm_set1_pd(1.0)));
  const __m128i base = _mm_cvttpd_epi32(integral);
  Coord2 c;
  c.base0 = _mm_cvtsi128_si32(base);
  c.base1 = _mm_cvtsi128_si32(_mm_shuffle_epi32(base, 1));
  c.frac = _mm_sub_pd(t, integral);
  return c;
}

inline __m128d CdfValue2(const Grid2DView& g, const Coord2& c0,
                         const Coord2& c1) {
  const double* r0 = g.prefix + static_cast<std::size_t>(c0.base0) * g.stride0 +
                     static_cast<std::size_t>(c1.base0);
  const double* r1 = g.prefix + static_cast<std::size_t>(c0.base1) * g.stride0 +
                     static_cast<std::size_t>(c1.base1);
  const __m128d p00 = _mm_set_pd(r1[0], r0[0]);
  const __m128d p10 = _mm_set_pd(r1[g.stride0], r0[g.stride0]);
  const __m128d p01 = _mm_set_pd(r1[1], r0[1]);
  const __m128d p11 = _mm_set_pd(r1[g.stride0 + 1], r0[g.stride0 + 1]);
  const __m128d ones = _mm_set1_pd(1.0);
  const __m128d om0 = _mm_sub_pd(ones, c0.frac);
  const __m128d om1 = _mm_sub_pd(ones, c1.frac);
  const __m128d zero = _mm_setzero_pd();
  __m128d value = zero;
  __m128d wgt = _mm_mul_pd(om0, om1);
  value = _mm_add_pd(value, _mm_and_pd(_mm_cmpneq_pd(wgt, zero),
                                       _mm_mul_pd(wgt, p00)));
  wgt = _mm_mul_pd(c0.frac, om1);
  value = _mm_add_pd(value, _mm_and_pd(_mm_cmpneq_pd(wgt, zero),
                                       _mm_mul_pd(wgt, p10)));
  wgt = _mm_mul_pd(om0, c1.frac);
  value = _mm_add_pd(value, _mm_and_pd(_mm_cmpneq_pd(wgt, zero),
                                       _mm_mul_pd(wgt, p01)));
  wgt = _mm_mul_pd(c0.frac, c1.frac);
  value = _mm_add_pd(value, _mm_and_pd(_mm_cmpneq_pd(wgt, zero),
                                       _mm_mul_pd(wgt, p11)));
  return value;
}

// The contiguous and indexed batches share this loop; `box_at(i)` is either
// queries[i] or queries[idx[i]].
template <typename BoxAt>
inline void Batch2Impl(const Grid2DView& g, std::size_t n, BoxAt box_at,
                       double* answers) {
  const __m128d dlo0 = _mm_set1_pd(g.dlo0);
  const __m128d dhi0 = _mm_set1_pd(g.dhi0);
  const __m128d dlo1 = _mm_set1_pd(g.dlo1);
  const __m128d dhi1 = _mm_set1_pd(g.dhi1);
  const __m128d w0 = _mm_set1_pd(g.w0);
  const __m128d w1 = _mm_set1_pd(g.w1);
  const __m128d m0 = _mm_set1_pd(g.m0d);
  const __m128d m1 = _mm_set1_pd(g.m1d);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const Box& a = box_at(i);
    const Box& b = box_at(i + 1);
    const __m128d lo0 = _mm_max_pd(dlo0, _mm_set_pd(b.lo(0), a.lo(0)));
    const __m128d hi0 = _mm_min_pd(dhi0, _mm_set_pd(b.hi(0), a.hi(0)));
    const __m128d lo1 = _mm_max_pd(dlo1, _mm_set_pd(b.lo(1), a.lo(1)));
    const __m128d hi1 = _mm_min_pd(dhi1, _mm_set_pd(b.hi(1), a.hi(1)));
    const __m128d valid =
        _mm_and_pd(_mm_cmplt_pd(lo0, hi0), _mm_cmplt_pd(lo1, hi1));
    const Coord2 clo0 = CdfCoord2(lo0, dlo0, w0, m0);
    const Coord2 chi0 = CdfCoord2(hi0, dlo0, w0, m0);
    const Coord2 clo1 = CdfCoord2(lo1, dlo1, w1, m1);
    const Coord2 chi1 = CdfCoord2(hi1, dlo1, w1, m1);
    const __m128d plus = _mm_set1_pd(1.0);
    const __m128d minus = _mm_set1_pd(-1.0);
    __m128d ans = _mm_setzero_pd();
    ans = _mm_add_pd(ans, _mm_mul_pd(plus, CdfValue2(g, clo0, clo1)));
    ans = _mm_add_pd(ans, _mm_mul_pd(minus, CdfValue2(g, chi0, clo1)));
    ans = _mm_add_pd(ans, _mm_mul_pd(minus, CdfValue2(g, clo0, chi1)));
    ans = _mm_add_pd(ans, _mm_mul_pd(plus, CdfValue2(g, chi0, chi1)));
    ans = _mm_and_pd(valid, ans);
    _mm_storeu_pd(answers + i, ans);
  }
  for (; i < n; ++i) answers[i] = GridQueryOne2D(g, box_at(i));
}

}  // namespace

void GridQueryBatch2DSimd(const Grid2DView& g, std::span<const Box> queries,
                          double* answers) {
  Batch2Impl(
      g, queries.size(),
      [&](std::size_t i) -> const Box& { return queries[i]; }, answers);
}

void GridQueryBatch2DSimdIdx(const Grid2DView& g, const Box* queries,
                             const std::uint32_t* idx, std::size_t n,
                             double* answers) {
  Batch2Impl(
      g, n, [&](std::size_t i) -> const Box& { return queries[idx[i]]; },
      answers);
}

#else  // No vector ISA: the "SIMD" entry points are the scalar kernel.

void GridQueryBatch2DSimd(const Grid2DView& g, std::span<const Box> queries,
                          double* answers) {
  GridQueryBatch2DScalar(g, queries, answers);
}

void GridQueryBatch2DSimdIdx(const Grid2DView& g, const Box* queries,
                             const std::uint32_t* idx, std::size_t n,
                             double* answers) {
  for (std::size_t j = 0; j < n; ++j) {
    answers[j] = GridQueryOne2D(g, queries[idx[j]]);
  }
}

#endif

}  // namespace privtree
