// Binary codec for released GridHistogram lattices (the v2 synopsis
// payload of the grid-family backends, and the sub-grid records of AG).
//
// Body layout, relative to a known dimensionality d:
//
//   f64 lo_j, f64 hi_j   for j = 0..d-1     (domain box)
//   u64 cells_j          for j = 0..d-1     (per-dimension granularity)
//   f64 count            × Π_j cells_j      (row-major released counts)
//
// The prefix-sum lattice is derived state and is rebuilt on read, which
// reproduces it bit for bit from identical counts.
#ifndef PRIVTREE_HIST_GRID_CODEC_H_
#define PRIVTREE_HIST_GRID_CODEC_H_

#include "core/byteio.h"
#include "dp/status.h"
#include "hist/grid.h"

namespace privtree {

/// Appends the grid's domain, granularities and counts to `out`.
void WriteGridHistogram(ByteWriter& out, const GridHistogram& grid);

/// Reads a `dim`-dimensional grid written by WriteGridHistogram and rebuilds
/// its prefix sums.  Every malformed input (truncation, zero granularity,
/// cell totals that overflow or exceed the payload) yields a clean error.
Result<GridHistogram> ReadGridHistogram(ByteReader& in, std::size_t dim);

}  // namespace privtree

#endif  // PRIVTREE_HIST_GRID_CODEC_H_
