// Binary codec for released GridHistogram lattices (the v2 synopsis
// payload of the grid-family backends, and the sub-grid records of AG).
//
// Body layout, relative to a known dimensionality d:
//
//   f64 lo_j, f64 hi_j   for j = 0..d-1     (domain box)
//   u64 cells_j          for j = 0..d-1     (per-dimension granularity)
//   f64 count            × Π_j cells_j      (row-major released counts)
//
// The prefix-sum lattice is derived state and is rebuilt on read, which
// reproduces it bit for bit from identical counts.
#ifndef PRIVTREE_HIST_GRID_CODEC_H_
#define PRIVTREE_HIST_GRID_CODEC_H_

#include "core/byteio.h"
#include "dp/status.h"
#include "hist/ag.h"
#include "hist/grid.h"

namespace privtree {

/// Appends the grid's domain, granularities and counts to `out`.
void WriteGridHistogram(ByteWriter& out, const GridHistogram& grid);

/// Reads a `dim`-dimensional grid written by WriteGridHistogram and rebuilds
/// its prefix sums.  Every malformed input (truncation, zero granularity,
/// cell totals that overflow or exceed the payload) yields a clean error.
Result<GridHistogram> ReadGridHistogram(ByteReader& in, std::size_t dim);

/// Compressed AG body used inside v3 envelopes.  The v2 payload repeats a
/// full WriteGridHistogram record (box + granularities + counts) for every
/// level-1 cell, but the boxes are the level-1 lattice geometry — fully
/// determined by the domain and m1 — and the granularities are small
/// integers.  The v3 body drops the boxes and group-varint-packs the
/// granularities; the noisy counts stay raw (they do not compress).
///
///   i64  m1
///   box  domain                      (raw f64 pairs)
///   f64  × m1²  level-1 counts
///   u32  box mode                    (1 = implicit, 0 = explicit)
///   str  packed granularities        (PackVarintGB, 2 per cell, cell order)
///   mode 0 only: box × m1²           (per-cell sub-grid domains)
///   f64… concatenated sub-grid counts (cell order, Π granularities each)
///
/// Mode 1 is written whenever every sub-grid's domain matches the level-1
/// cell box *bitwise* (always true for grids this codebase fit; a foreign
/// v2 payload re-saved as v3 falls back to mode 0), and decoding recomputes
/// the boxes with the exact GridHistogram::CellBox arithmetic, so the
/// round-trip is bit-for-bit either way.
void WriteAdaptiveGridBodyCompressed(ByteWriter& out, const AdaptiveGrid& grid);

/// Reads a body written by WriteAdaptiveGridBodyCompressed; 2-d only.
Result<AdaptiveGrid> ReadAdaptiveGridBodyCompressed(ByteReader& in);

}  // namespace privtree

#endif  // PRIVTREE_HIST_GRID_CODEC_H_
