// UG — the uniform-grid method (Qardaji et al., ICDE 2013; also used in
// [42, 48]): partition the domain into m^d equal cells with
//   m = (n·ε / 10)^(2/(d+2))                       [48]
// and release a Lap(1/ε) noisy count per cell.
#ifndef PRIVTREE_HIST_UG_H_
#define PRIVTREE_HIST_UG_H_

#include "dp/rng.h"
#include "hist/grid.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {

/// Options for BuildUniformGrid.
struct UniformGridOptions {
  /// Multiplies the *total* number of cells by `cell_scale` (the r of
  /// Figure 9); each dimension gets r^(1/d) more bins.
  double cell_scale = 1.0;
  /// The constant in the m formula (10 in [48]).
  double c0 = 10.0;
};

/// The per-dimension granularity m chosen by the UG heuristic.
std::int64_t UniformGridGranularity(std::size_t n, std::size_t dim,
                                    double epsilon,
                                    const UniformGridOptions& options = {});

/// Builds the ε-DP uniform-grid histogram.
GridHistogram BuildUniformGrid(const PointSet& points, const Box& domain,
                               double epsilon,
                               const UniformGridOptions& options, Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_HIST_UG_H_
