#include "hist/wavelet.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

namespace {

bool IsPowerOfTwo(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Per-dimension resolution: the power of two closest to
/// target_total_cells^(1/d) from below or above, at least 2.
std::int64_t ResolutionPerDim(std::int64_t target_total, std::size_t dim) {
  const double per_dim_bits =
      std::log2(static_cast<double>(std::max<std::int64_t>(target_total, 2))) /
      static_cast<double>(dim);
  const int bits = std::max(1, static_cast<int>(std::llround(per_dim_bits)));
  return std::int64_t{1} << bits;
}

}  // namespace

void HaarForward(std::vector<double>* line) {
  auto& x = *line;
  PRIVTREE_CHECK(IsPowerOfTwo(x.size()));
  std::vector<double> tmp(x.size());
  for (std::size_t len = x.size(); len > 1; len /= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      tmp[i] = 0.5 * (x[2 * i] + x[2 * i + 1]);         // Averages.
      tmp[half + i] = 0.5 * (x[2 * i] - x[2 * i + 1]);  // Differences.
    }
    std::copy(tmp.begin(), tmp.begin() + len, x.begin());
  }
}

void HaarInverse(std::vector<double>* line) {
  auto& x = *line;
  PRIVTREE_CHECK(IsPowerOfTwo(x.size()));
  std::vector<double> tmp(x.size());
  for (std::size_t len = 2; len <= x.size(); len *= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      tmp[2 * i] = x[i] + x[half + i];
      tmp[2 * i + 1] = x[i] - x[half + i];
    }
    std::copy(tmp.begin(), tmp.begin() + len, x.begin());
  }
}

std::vector<double> HaarWeights(std::int64_t m) {
  PRIVTREE_CHECK(IsPowerOfTwo(static_cast<std::size_t>(m)));
  std::vector<double> weights(static_cast<std::size_t>(m));
  weights[0] = static_cast<double>(m);
  for (std::int64_t p = 1; p < m; ++p) {
    const int level = static_cast<int>(std::floor(std::log2(
        static_cast<double>(p))));
    weights[static_cast<std::size_t>(p)] =
        static_cast<double>(m) / std::ldexp(1.0, level);
  }
  return weights;
}

GridHistogram BuildPriveletHistogram(const PointSet& points, const Box& domain,
                                     double epsilon,
                                     const PriveletOptions& options,
                                     Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  const std::size_t d = domain.dim();
  const std::int64_t m = ResolutionPerDim(options.target_total_cells, d);
  GridHistogram grid = GridHistogram::FromPoints(
      points, domain, std::vector<std::int64_t>(d, m));

  auto& counts = grid.counts();
  const std::size_t total = counts.size();
  const std::size_t mm = static_cast<std::size_t>(m);

  // Forward Haar transform along every dimension (standard decomposition).
  // Dimension j has stride ∏_{j' > j} m (row-major, dim 0 slowest).
  std::vector<std::size_t> stride(d, 1);
  for (std::size_t j = d - 1; j > 0; --j) stride[j - 1] = stride[j] * mm;

  std::vector<double> line(mm);
  for (std::size_t j = 0; j < d; ++j) {
    const std::size_t s = stride[j];
    for (std::size_t base = 0; base < total; ++base) {
      if ((base / s) % mm != 0) continue;  // Only line starts.
      for (std::size_t t = 0; t < mm; ++t) line[t] = counts[base + t * s];
      HaarForward(&line);
      for (std::size_t t = 0; t < mm; ++t) counts[base + t * s] = line[t];
    }
  }

  // Generalized sensitivity and per-coefficient noise.
  const double log_m = std::log2(static_cast<double>(m));
  const double rho = std::pow(1.0 + log_m, static_cast<double>(d));
  const std::vector<double> weights = HaarWeights(m);
  std::vector<std::size_t> pos(d, 0);
  for (std::size_t flat = 0; flat < total; ++flat) {
    double weight = 1.0;
    for (std::size_t j = 0; j < d; ++j) weight *= weights[pos[j]];
    counts[flat] += SampleLaplace(rng, rho / (epsilon * weight));
    for (std::size_t j = d; j-- > 0;) {
      if (++pos[j] < mm) break;
      pos[j] = 0;
    }
  }

  // Inverse transform along every dimension.
  for (std::size_t j = 0; j < d; ++j) {
    const std::size_t s = stride[j];
    for (std::size_t base = 0; base < total; ++base) {
      if ((base / s) % mm != 0) continue;
      for (std::size_t t = 0; t < mm; ++t) line[t] = counts[base + t * s];
      HaarInverse(&line);
      for (std::size_t t = 0; t < mm; ++t) counts[base + t * s] = line[t];
    }
  }

  grid.BuildPrefixSums();
  return grid;
}

}  // namespace privtree
