// DAWA — the Data- and Workload-Aware mechanism (Li, Hay, Miklau, Wang,
// PVLDB 2014), reimplemented for this reproduction.
//
// Pipeline (Section 4 substitutions documented in DESIGN.md):
//   1. The domain is discretized into a power-of-two grid (2^20 cells in
//      the paper's experiments) and flattened along a Hilbert curve.
//   2. Stage 1 (budget ε1): private L1 partitioning of the 1-d cell array
//      into buckets, via dynamic programming over dyadic-length intervals
//      with noisy interval costs.  We use the Cauchy–Schwarz proxy
//      sqrt(len·Σ(x−mean)²) for the L1 deviation so costs are O(1) from
//      prefix sums.
//   3. Stage 2 (budget ε2 = ε − ε1): bucket totals are measured with the
//      hierarchical strategy of hist/tree1d.h (standing in for the paper's
//      workload-optimized matrix mechanism), and spread uniformly over each
//      bucket's cells.
#ifndef PRIVTREE_HIST_DAWA_H_
#define PRIVTREE_HIST_DAWA_H_

#include <cstdint>
#include <vector>

#include "dp/rng.h"
#include "hist/grid.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {

/// Options for BuildDawaHistogram.
struct DawaOptions {
  /// Target total number of grid cells (rounded to a power-of-two
  /// per-dimension resolution).
  std::int64_t target_total_cells = std::int64_t{1} << 20;
  /// Fraction of ε spent on stage-1 partitioning (0.25 in the DAWA paper).
  double partition_budget_fraction = 0.25;
  /// Branching factor of the stage-2 hierarchy.
  std::int64_t measure_branching = 16;
};

/// Result of the private partitioning step (exposed for tests/ablation).
struct DawaPartition {
  /// bucket_end[i] = one-past-the-last cell index of bucket i (ascending;
  /// the last entry equals the number of cells).
  std::vector<std::int64_t> bucket_end;
};

/// Stage 1 in isolation: partitions the 1-d array `cells` using budget
/// `epsilon1` (ε2 enters the bucket-penalty term of the cost).
DawaPartition DawaPartition1D(const std::vector<double>& cells,
                              double epsilon1, double epsilon2, Rng& rng);

/// Builds the ε-DP DAWA histogram; the returned grid has prefix sums built.
GridHistogram BuildDawaHistogram(const PointSet& points, const Box& domain,
                                 double epsilon, const DawaOptions& options,
                                 Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_HIST_DAWA_H_
