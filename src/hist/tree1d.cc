#include "hist/tree1d.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

std::vector<double> MeasureHierarchical1D(const std::vector<double>& exact,
                                          double epsilon,
                                          const Tree1DOptions& options,
                                          Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GE(options.branching, 2);
  const std::int64_t n = static_cast<std::int64_t>(exact.size());
  if (n == 0) return {};

  if (n <= options.flat_threshold) {
    std::vector<double> out(exact);
    for (double& v : out) v += SampleLaplace(rng, 1.0 / epsilon);
    return out;
  }

  const std::int64_t b = options.branching;
  // Number of levels below the root: smallest ℓ with b^ℓ >= n.
  std::int32_t levels = 1;
  std::int64_t span = b;
  while (span < n) {
    span *= b;
    ++levels;
  }
  const std::int64_t padded = span;  // b^levels, >= n.

  // Exact sums per level; level `levels` holds the (padded) leaves.
  std::vector<std::vector<double>> sums(levels + 1);
  sums[levels].assign(static_cast<std::size_t>(padded), 0.0);
  std::copy(exact.begin(), exact.end(), sums[levels].begin());
  for (std::int32_t l = levels; l > 0; --l) {
    const std::size_t parent_size = sums[l].size() / static_cast<std::size_t>(b);
    sums[l - 1].assign(parent_size, 0.0);
    for (std::size_t i = 0; i < sums[l].size(); ++i) {
      sums[l - 1][i / static_cast<std::size_t>(b)] += sums[l][i];
    }
  }

  // Noisy measurements (root excluded; it carries no extra information once
  // consistency runs, and excluding it buys a lower per-level scale).
  const double scale = static_cast<double>(levels) / epsilon;
  std::vector<std::vector<double>> noisy(levels + 1);
  for (std::int32_t l = 1; l <= levels; ++l) {
    noisy[l] = sums[l];
    for (double& v : noisy[l]) v += SampleLaplace(rng, scale);
  }

  // Weighted averaging (bottom-up).
  std::vector<std::vector<double>> z = noisy;
  const double k = static_cast<double>(b);
  for (std::int32_t l = levels - 1; l >= 1; --l) {
    const double node_height = static_cast<double>(levels - l) + 1.0;
    const double k_h = std::pow(k, node_height);
    const double k_hm1 = std::pow(k, node_height - 1.0);
    const double w_self = (k_h - k_hm1) / (k_h - 1.0);
    const double w_children = (k_hm1 - 1.0) / (k_h - 1.0);
    for (std::size_t i = 0; i < z[l].size(); ++i) {
      double child_sum = 0.0;
      for (std::int64_t c = 0; c < b; ++c) {
        child_sum += z[l + 1][i * static_cast<std::size_t>(b) +
                              static_cast<std::size_t>(c)];
      }
      z[l][i] = w_self * noisy[l][i] + w_children * child_sum;
    }
  }

  // Mean consistency (top-down); level 1 is final as the root is
  // unmeasured.
  for (std::int32_t l = 1; l < levels; ++l) {
    for (std::size_t i = 0; i < z[l].size(); ++i) {
      double child_sum = 0.0;
      for (std::int64_t c = 0; c < b; ++c) {
        child_sum += z[l + 1][i * static_cast<std::size_t>(b) +
                              static_cast<std::size_t>(c)];
      }
      const double adjust = (z[l][i] - child_sum) / k;
      for (std::int64_t c = 0; c < b; ++c) {
        z[l + 1][i * static_cast<std::size_t>(b) +
                 static_cast<std::size_t>(c)] += adjust;
      }
    }
  }

  z[levels].resize(static_cast<std::size_t>(n));
  return z[levels];
}

}  // namespace privtree
