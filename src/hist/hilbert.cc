#include "hist/hilbert.h"

#include "dp/check.h"

namespace privtree {

namespace {

// Skilling's transformations between ordinary axis coordinates and the
// "transposed" Hilbert index representation.

void AxesToTranspose(std::vector<std::uint32_t>* x, int bits) {
  auto& coords = *x;
  const std::size_t n = coords.size();
  std::uint32_t m = std::uint32_t{1} << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (coords[i] & q) {
        coords[0] ^= p;  // Invert.
      } else {
        const std::uint32_t t = (coords[0] ^ coords[i]) & p;
        coords[0] ^= t;
        coords[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (std::size_t i = 1; i < n; ++i) coords[i] ^= coords[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (coords[n - 1] & q) t ^= q - 1;
  }
  for (std::size_t i = 0; i < n; ++i) coords[i] ^= t;
}

void TransposeToAxes(std::vector<std::uint32_t>* x, int bits) {
  auto& coords = *x;
  const std::size_t n = coords.size();
  const std::uint32_t m = std::uint32_t{1} << (bits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = coords[n - 1] >> 1;
  for (std::size_t i = n; i-- > 1;) coords[i] ^= coords[i - 1];
  coords[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != 2 * m; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (std::size_t i = n; i-- > 0;) {
      if (coords[i] & q) {
        coords[0] ^= p;
      } else {
        const std::uint32_t swap = (coords[0] ^ coords[i]) & p;
        coords[0] ^= swap;
        coords[i] ^= swap;
      }
    }
  }
}

}  // namespace

std::uint64_t HilbertIndex(const std::vector<std::uint32_t>& coords,
                           int bits) {
  const std::size_t n = coords.size();
  PRIVTREE_CHECK_GE(bits, 1);
  PRIVTREE_CHECK_LE(static_cast<std::size_t>(bits) * n, 63u);
  std::vector<std::uint32_t> transpose(coords);
  AxesToTranspose(&transpose, bits);
  // Interleave: bit (bits-1-b) of transpose[i] becomes index bit
  // (bits-1-b)·n + (n-1-i).
  std::uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (std::size_t i = 0; i < n; ++i) {
      index = (index << 1) | ((transpose[i] >> b) & 1u);
    }
  }
  return index;
}

std::vector<std::uint32_t> HilbertCoords(std::uint64_t index, int bits,
                                         std::size_t dim) {
  PRIVTREE_CHECK_GE(bits, 1);
  PRIVTREE_CHECK_LE(static_cast<std::size_t>(bits) * dim, 63u);
  std::vector<std::uint32_t> transpose(dim, 0);
  const int total_bits = bits * static_cast<int>(dim);
  for (int pos = 0; pos < total_bits; ++pos) {
    // pos counts from the most significant interleaved bit.
    const int b = bits - 1 - pos / static_cast<int>(dim);
    const std::size_t i = static_cast<std::size_t>(pos) % dim;
    const std::uint64_t bit = (index >> (total_bits - 1 - pos)) & 1u;
    transpose[i] |= static_cast<std::uint32_t>(bit) << b;
  }
  TransposeToAxes(&transpose, bits);
  return transpose;
}

}  // namespace privtree
