// AG — the adaptive-grid method for two-dimensional data (Qardaji et al.,
// ICDE 2013).
//
// A coarse level-1 grid (granularity m1) receives noisy counts with budget
// α·ε; each level-1 cell is then sub-divided adaptively — a cell whose noisy
// count is nc gets a level-2 sub-grid of granularity
//   m2 = ceil( sqrt( nc · (1−α)·ε / c2 ) )
// whose counts are released with the remaining (1−α)·ε budget.  A final
// constrained-inference step makes each sub-grid consistent with its parent
// cell count, which is where AG gains accuracy over UG.
#ifndef PRIVTREE_HIST_AG_H_
#define PRIVTREE_HIST_AG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dp/rng.h"
#include "hist/grid.h"
#include "hist/sat.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {

/// Options for BuildAdaptiveGrid.
struct AdaptiveGridOptions {
  double alpha = 0.5;     ///< Budget fraction for the level-1 grid.
  double c1 = 10.0;       ///< Constant in the m1 heuristic.
  double c2 = 5.0;        ///< Constant in the m2 heuristic (c1 / 2 in [41]).
  /// Multiplies the cell counts of both levels by `cell_scale` (the r of
  /// Figure 10).
  double cell_scale = 1.0;
};

/// A two-level adaptive grid.
class AdaptiveGrid {
 public:
  /// Builds the ε-DP adaptive grid (the input must be 2-dimensional).
  AdaptiveGrid(const PointSet& points, const Box& domain, double epsilon,
               const AdaptiveGridOptions& options, Rng& rng);

  /// Restores a released grid from its serialized parts (the v2 synopsis
  /// payload — see release/serialization.h): `level1_counts` is the
  /// row-major m1 × m1 noisy level-1 lattice and `level2` one sub-grid per
  /// level-1 cell, already constrained (sub-grid counts are persisted
  /// post-inference).  The summed-area table is derived state and is
  /// rebuilt here, bit for bit.
  AdaptiveGrid(Box domain, std::int64_t m1, std::vector<double> level1_counts,
               std::vector<GridHistogram> level2);

  /// Estimated number of points in `q`.
  double Query(const Box& q) const;

  /// Answers many boxes at once.  Per query, the level-1 cells strictly
  /// inside the range are summed through a summed-area table of sub-grid
  /// totals in O(1) — Query iterates every overlapped cell — and only the
  /// O(perimeter) boundary cells fall back to per-sub-grid evaluation,
  /// which runs on precomputed flat kernel views (hist/grid_kernels.h)
  /// instead of re-entering GridHistogram::Query.  Answers agree with
  /// Query up to floating-point summation order and are bit-for-bit equal
  /// to QueryBatchReference.
  std::vector<double> QueryBatch(std::span<const Box> queries) const;

  /// The pre-kernel batch path (SAT interior + GridHistogram::Query on the
  /// boundary cells), kept as the parity oracle for QueryBatch.
  std::vector<double> QueryBatchReference(std::span<const Box> queries) const;

  /// Level-1 granularity per dimension.
  std::int64_t level1_granularity() const { return m1_; }
  /// Total number of released cells across both levels.
  std::size_t TotalCells() const;

  /// Released state, exposed for the synopsis codec.
  const Box& domain() const { return domain_; }
  const std::vector<double>& level1_counts() const { return level1_count_; }
  const std::vector<GridHistogram>& level2() const { return level2_; }

 private:
  std::int64_t m1_ = 1;
  Box domain_;
  /// Level-1 noisy counts, row-major m1 × m1.
  std::vector<double> level1_count_;
  /// One sub-grid per level-1 cell (granularity may be 1 = no refinement).
  std::vector<GridHistogram> level2_;
  /// Flat kernel view of every sub-grid, precomputed once per fit/restore
  /// so the batched boundary path touches no vectors or contract checks.
  std::vector<Grid2DView> level2_view_;
  /// Summed-area table of the (constrained) sub-grid totals, for the
  /// fully-covered interior of batched queries.
  SummedAreaTable2D cell_total_sat_;
};

}  // namespace privtree

#endif  // PRIVTREE_HIST_AG_H_
