#include "hist/ug.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"

namespace privtree {

std::int64_t UniformGridGranularity(std::size_t n, std::size_t dim,
                                    double epsilon,
                                    const UniformGridOptions& options) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GT(options.c0, 0.0);
  const double d = static_cast<double>(dim);
  const double base = static_cast<double>(n) * epsilon / options.c0;
  double m = std::pow(std::max(base, 1.0), 2.0 / (d + 2.0));
  m *= std::pow(std::max(options.cell_scale, 1e-12), 1.0 / d);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(m)));
}

GridHistogram BuildUniformGrid(const PointSet& points, const Box& domain,
                               double epsilon,
                               const UniformGridOptions& options, Rng& rng) {
  const std::int64_t m =
      UniformGridGranularity(points.size(), domain.dim(), epsilon, options);
  GridHistogram grid = GridHistogram::FromPoints(
      points, domain, std::vector<std::int64_t>(domain.dim(), m));
  grid.AddLaplaceNoise(1.0 / epsilon, rng);
  grid.BuildPrefixSums();
  return grid;
}

}  // namespace privtree
