#include "hist/ag.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

AdaptiveGrid::AdaptiveGrid(const PointSet& points, const Box& domain,
                           double epsilon, const AdaptiveGridOptions& options,
                           Rng& rng)
    : domain_(domain) {
  PRIVTREE_CHECK_EQ(domain.dim(), 2u);
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GT(options.alpha, 0.0);
  PRIVTREE_CHECK_LT(options.alpha, 1.0);

  const double eps1 = options.alpha * epsilon;
  const double eps2 = (1.0 - options.alpha) * epsilon;
  const double n = static_cast<double>(points.size());

  // Level-1 granularity: m1 = max(10, ceil(sqrt(n·ε/c1) / 4)), scaled by
  // sqrt(cell_scale) per dimension.
  double m1 = std::ceil(std::sqrt(std::max(n * epsilon / options.c1, 0.0)) /
                        4.0);
  m1 = std::max(m1, 10.0);
  m1 *= std::sqrt(std::max(options.cell_scale, 1e-12));
  m1_ = std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(m1)));

  // Exact level-1 cell counts, then noise with eps1.
  GridHistogram level1 =
      GridHistogram::FromPoints(points, domain, {m1_, m1_});
  level1_count_ = level1.counts();
  for (double& c : level1_count_) c += SampleLaplace(rng, 1.0 / eps1);

  // Partition points into level-1 cells once, for building sub-grids.
  std::vector<std::vector<double>> cell_points(
      static_cast<std::size_t>(m1_ * m1_));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points.point(i);
    const std::int64_t cx = level1.CellOf(p[0], 0);
    const std::int64_t cy = level1.CellOf(p[1], 1);
    auto& bucket = cell_points[static_cast<std::size_t>(cx * m1_ + cy)];
    bucket.push_back(p[0]);
    bucket.push_back(p[1]);
  }

  level2_.reserve(level1_count_.size());
  std::vector<std::int64_t> cell(2);
  for (std::int64_t cx = 0; cx < m1_; ++cx) {
    for (std::int64_t cy = 0; cy < m1_; ++cy) {
      cell[0] = cx;
      cell[1] = cy;
      const std::size_t flat = static_cast<std::size_t>(cx * m1_ + cy);
      const Box cell_box = level1.CellBox(cell);
      // Adaptive level-2 granularity from the noisy level-1 count.
      const double nc = std::max(level1_count_[flat], 0.0);
      double m2 = std::ceil(std::sqrt(nc * eps2 / options.c2));
      m2 *= std::sqrt(std::max(options.cell_scale, 1e-12));
      const std::int64_t m2i =
          std::max<std::int64_t>(1, static_cast<std::int64_t>(m2));

      PointSet cell_set(2, std::move(cell_points[flat]));
      GridHistogram sub =
          GridHistogram::FromPoints(cell_set, cell_box, {m2i, m2i});
      sub.AddLaplaceNoise(1.0 / eps2, rng);

      // Constrained inference (Qardaji et al., Section 4.2): combine the
      // level-1 estimate and the sub-grid sum with inverse-variance weights,
      // then distribute the residual uniformly over the sub-cells.
      const double k = static_cast<double>(sub.total_cells());
      double sub_sum = 0.0;
      for (double c : sub.counts()) sub_sum += c;
      const double var1 = 2.0 / (eps1 * eps1);       // Var of Lap(1/eps1).
      const double var2 = k * 2.0 / (eps2 * eps2);   // Var of the sub sum.
      const double weight = var2 / (var1 + var2);
      const double blended =
          weight * level1_count_[flat] + (1.0 - weight) * sub_sum;
      const double adjust = (blended - sub_sum) / k;
      for (double& c : sub.counts()) c += adjust;

      sub.BuildPrefixSums();
      level2_.push_back(std::move(sub));
    }
  }

  std::vector<double> cell_totals(level2_.size());
  for (std::size_t i = 0; i < level2_.size(); ++i) {
    cell_totals[i] = level2_[i].Total();
  }
  cell_total_sat_ = SummedAreaTable2D(cell_totals, m1_, m1_);
  level2_view_.reserve(level2_.size());
  for (const GridHistogram& sub : level2_) {
    level2_view_.push_back(sub.KernelView2D());
  }
}

AdaptiveGrid::AdaptiveGrid(Box domain, std::int64_t m1,
                           std::vector<double> level1_counts,
                           std::vector<GridHistogram> level2)
    : m1_(m1),
      domain_(std::move(domain)),
      level1_count_(std::move(level1_counts)),
      level2_(std::move(level2)) {
  PRIVTREE_CHECK_EQ(domain_.dim(), 2u);
  PRIVTREE_CHECK_GE(m1_, 1);
  const auto cells = static_cast<std::size_t>(m1_ * m1_);
  PRIVTREE_CHECK_EQ(level1_count_.size(), cells);
  PRIVTREE_CHECK_EQ(level2_.size(), cells);
  std::vector<double> cell_totals(level2_.size());
  for (std::size_t i = 0; i < level2_.size(); ++i) {
    cell_totals[i] = level2_[i].Total();
  }
  cell_total_sat_ = SummedAreaTable2D(cell_totals, m1_, m1_);
  level2_view_.reserve(level2_.size());
  for (const GridHistogram& sub : level2_) {
    level2_view_.push_back(sub.KernelView2D());
  }
}

namespace {

/// The closed level-1 cell range [lo_cell, hi_cell] overlapping `q` along
/// each dimension; false when `q` misses the domain entirely.
bool OverlappedCells(const Box& domain, std::int64_t m1, const Box& q,
                     std::int64_t lo_cell[2], std::int64_t hi_cell[2]) {
  for (std::size_t j = 0; j < 2; ++j) {
    const double width = domain.Width(j) / static_cast<double>(m1);
    const double rel_lo = (q.lo(j) - domain.lo(j)) / width;
    const double rel_hi = (q.hi(j) - domain.lo(j)) / width;
    lo_cell[j] = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::floor(rel_lo)), 0, m1 - 1);
    hi_cell[j] = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::ceil(rel_hi)) - 1, 0, m1 - 1);
    if (rel_hi <= 0.0 || rel_lo >= static_cast<double>(m1)) return false;
  }
  return true;
}

}  // namespace

double AdaptiveGrid::Query(const Box& q) const {
  // Restrict to the level-1 cells overlapping q.
  std::int64_t lo_cell[2], hi_cell[2];
  if (!OverlappedCells(domain_, m1_, q, lo_cell, hi_cell)) return 0.0;
  double ans = 0.0;
  for (std::int64_t cx = lo_cell[0]; cx <= hi_cell[0]; ++cx) {
    for (std::int64_t cy = lo_cell[1]; cy <= hi_cell[1]; ++cy) {
      const GridHistogram& sub =
          level2_[static_cast<std::size_t>(cx * m1_ + cy)];
      if (q.Intersects(sub.domain())) ans += sub.Query(q);
    }
  }
  return ans;
}

std::vector<double> AdaptiveGrid::QueryBatch(
    std::span<const Box> queries) const {
  std::vector<double> answers;
  answers.reserve(queries.size());
  for (const Box& q : queries) {
    PRIVTREE_CHECK_EQ(q.dim(), 2u);
    std::int64_t lo_cell[2], hi_cell[2];
    if (!OverlappedCells(domain_, m1_, q, lo_cell, hi_cell)) {
      answers.push_back(0.0);
      continue;
    }
    // Cells strictly inside the overlapped range are fully covered by q
    // (their boundaries lie beyond q's projection onto the edge cells), so
    // the summed-area table answers all of them at once.
    double ans = cell_total_sat_.RectSum(lo_cell[0] + 1, lo_cell[1] + 1,
                                         hi_cell[0], hi_cell[1]);
    // Boundary cells run on the flat kernel views.  The intersection test
    // replicates Box::Intersects on the view's domain scalars, and
    // GridQueryOne2D is bit-for-bit GridHistogram::Query — with the
    // domain-edge coordinate shortcuts, every side of a boundary cell that
    // q fully covers resolves without a division.
    const auto visit = [&](std::int64_t cx, std::int64_t cy) {
      const Grid2DView& sub =
          level2_view_[static_cast<std::size_t>(cx * m1_ + cy)];
      if (std::min(q.hi(0), sub.dhi0) <= std::max(q.lo(0), sub.dlo0)) return;
      if (std::min(q.hi(1), sub.dhi1) <= std::max(q.lo(1), sub.dlo1)) return;
      ans += GridQueryOne2D(sub, q);
    };
    for (std::int64_t cx = lo_cell[0]; cx <= hi_cell[0]; ++cx) {
      if (cx == lo_cell[0] || cx == hi_cell[0]) {
        for (std::int64_t cy = lo_cell[1]; cy <= hi_cell[1]; ++cy) {
          visit(cx, cy);
        }
      } else {
        visit(cx, lo_cell[1]);
        if (hi_cell[1] != lo_cell[1]) visit(cx, hi_cell[1]);
      }
    }
    answers.push_back(ans);
  }
  return answers;
}

std::vector<double> AdaptiveGrid::QueryBatchReference(
    std::span<const Box> queries) const {
  std::vector<double> answers;
  answers.reserve(queries.size());
  for (const Box& q : queries) {
    PRIVTREE_CHECK_EQ(q.dim(), 2u);
    std::int64_t lo_cell[2], hi_cell[2];
    if (!OverlappedCells(domain_, m1_, q, lo_cell, hi_cell)) {
      answers.push_back(0.0);
      continue;
    }
    double ans = cell_total_sat_.RectSum(lo_cell[0] + 1, lo_cell[1] + 1,
                                         hi_cell[0], hi_cell[1]);
    const auto visit = [&](std::int64_t cx, std::int64_t cy) {
      const GridHistogram& sub =
          level2_[static_cast<std::size_t>(cx * m1_ + cy)];
      if (q.Intersects(sub.domain())) ans += sub.Query(q);
    };
    for (std::int64_t cx = lo_cell[0]; cx <= hi_cell[0]; ++cx) {
      if (cx == lo_cell[0] || cx == hi_cell[0]) {
        for (std::int64_t cy = lo_cell[1]; cy <= hi_cell[1]; ++cy) {
          visit(cx, cy);
        }
      } else {
        visit(cx, lo_cell[1]);
        if (hi_cell[1] != lo_cell[1]) visit(cx, hi_cell[1]);
      }
    }
    answers.push_back(ans);
  }
  return answers;
}

std::size_t AdaptiveGrid::TotalCells() const {
  std::size_t total = level1_count_.size();
  for (const GridHistogram& sub : level2_) total += sub.total_cells();
  return total;
}

}  // namespace privtree
