// A 2-D summed-area table (integral image) over a dense row-major cell
// array: any axis-aligned rectangle of whole cells is summed with four
// lookups, independent of its area.  The grid-family batch-query paths use
// it to answer the fully-covered interior of a range query in O(1), leaving
// only the O(perimeter) boundary cells to per-cell evaluation.
#ifndef PRIVTREE_HIST_SAT_H_
#define PRIVTREE_HIST_SAT_H_

#include <cstdint>
#include <span>
#include <vector>

namespace privtree {

/// Summed-area table over `rows` × `cols` cells (row-major, column fastest).
class SummedAreaTable2D {
 public:
  SummedAreaTable2D() = default;

  /// Builds the (rows+1) × (cols+1) prefix lattice in one pass.
  SummedAreaTable2D(std::span<const double> cells, std::int64_t rows,
                    std::int64_t cols);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  /// Sum of the cells in [r0, r1) × [c0, c1).  Ranges are clamped to the
  /// table; empty or inverted ranges return 0.
  double RectSum(std::int64_t r0, std::int64_t c0, std::int64_t r1,
                 std::int64_t c1) const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<double> prefix_;  // (rows_+1) × (cols_+1), row-major.
};

}  // namespace privtree

#endif  // PRIVTREE_HIST_SAT_H_
