#include "hist/dawa.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"
#include "dp/distributions.h"
#include "hist/hilbert.h"
#include "hist/tree1d.h"

namespace privtree {

namespace {

std::int64_t ResolutionPerDim(std::int64_t target_total, std::size_t dim) {
  const double per_dim_bits =
      std::log2(static_cast<double>(std::max<std::int64_t>(target_total, 2))) /
      static_cast<double>(dim);
  const int bits = std::max(1, static_cast<int>(std::llround(per_dim_bits)));
  return std::int64_t{1} << bits;
}

}  // namespace

DawaPartition DawaPartition1D(const std::vector<double>& cells,
                              double epsilon1, double epsilon2, Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon1, 0.0);
  PRIVTREE_CHECK_GT(epsilon2, 0.0);
  const std::int64_t n = static_cast<std::int64_t>(cells.size());
  PRIVTREE_CHECK_GT(n, 0);

  // Prefix sums of x and x² for O(1) interval deviation.
  std::vector<double> s1(n + 1, 0.0), s2(n + 1, 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    s1[i + 1] = s1[i] + cells[i];
    s2[i + 1] = s2[i] + cells[i] * cells[i];
  }
  // Deviation proxy of the half-open interval [i, j): the Cauchy–Schwarz
  // bound sqrt(len · Σ(x − mean)²) on the L1 deviation used by DAWA.
  const auto deviation = [&](std::int64_t i, std::int64_t j) {
    const double len = static_cast<double>(j - i);
    const double sum = s1[j] - s1[i];
    const double sq = s2[j] - s2[i];
    const double variance_times_len = std::max(sq - sum * sum / len, 0.0);
    return std::sqrt(len * variance_times_len);
  };

  // Sensitivity handling: a unit change in one cell changes the deviation of
  // any interval by at most 2, and each candidate interval length class
  // forms a separate cover of the domain, so the noise scale per interval
  // cost is 2·(number of length classes)/ε1.
  std::int32_t length_classes = 1;
  for (std::int64_t len = 1; len < n; len *= 2) ++length_classes;
  const double cost_noise_scale =
      2.0 * static_cast<double>(length_classes) / epsilon1;
  // Per-bucket penalty: the expected |Lap(1/ε2)| error of stage 2, plus a
  // debiasing term.  The DP takes a minimum over ~L noisy candidates per
  // position, which harvests E[min of L Laplace draws] ≈ −λ(ln L + γ) of
  // "free" negative noise per bucket; without compensation the optimizer
  // would fragment uniform regions just to collect noise minima.
  const double bucket_penalty =
      1.0 / epsilon2 +
      cost_noise_scale * (std::log(static_cast<double>(length_classes)) +
                          0.5772);

  // DP over dyadic-length intervals ending at each position.
  constexpr double kInfinity = 1e300;
  std::vector<double> best(n + 1, kInfinity);
  std::vector<std::int64_t> arg(n + 1, 0);
  best[0] = 0.0;
  for (std::int64_t j = 1; j <= n; ++j) {
    for (std::int64_t len = 1; len <= j; len *= 2) {
      const std::int64_t i = j - len;
      const double noisy_cost = deviation(i, j) +
                                SampleLaplace(rng, cost_noise_scale) +
                                bucket_penalty;
      const double total = best[i] + noisy_cost;
      if (total < best[j]) {
        best[j] = total;
        arg[j] = i;
      }
    }
  }

  DawaPartition partition;
  for (std::int64_t j = n; j > 0; j = arg[j]) {
    partition.bucket_end.push_back(j);
  }
  std::reverse(partition.bucket_end.begin(), partition.bucket_end.end());
  return partition;
}

GridHistogram BuildDawaHistogram(const PointSet& points, const Box& domain,
                                 double epsilon, const DawaOptions& options,
                                 Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GT(options.partition_budget_fraction, 0.0);
  PRIVTREE_CHECK_LT(options.partition_budget_fraction, 1.0);
  const std::size_t d = domain.dim();
  const std::int64_t m = ResolutionPerDim(options.target_total_cells, d);
  int bits = 0;
  while ((std::int64_t{1} << bits) < m) ++bits;

  GridHistogram grid = GridHistogram::FromPoints(
      points, domain, std::vector<std::int64_t>(d, m));
  const std::size_t total = grid.total_cells();

  // Hilbert flattening: flat_of_hilbert[h] = row-major cell index.
  std::vector<std::size_t> flat_of_hilbert(total);
  {
    const std::size_t mm = static_cast<std::size_t>(m);
    // Enumerate cells row-major, computing each cell's Hilbert index.
    std::vector<std::uint32_t> cell(d, 0);
    for (std::size_t flat = 0; flat < total; ++flat) {
      const std::uint64_t h = HilbertIndex(
          std::vector<std::uint32_t>(cell.begin(), cell.end()), bits);
      flat_of_hilbert[static_cast<std::size_t>(h)] = flat;
      for (std::size_t j = d; j-- > 0;) {
        if (++cell[j] < mm) break;
        cell[j] = 0;
      }
    }
  }

  std::vector<double> line(total);
  for (std::size_t h = 0; h < total; ++h) {
    line[h] = grid.counts()[flat_of_hilbert[h]];
  }

  const double eps1 = options.partition_budget_fraction * epsilon;
  const double eps2 = epsilon - eps1;
  const DawaPartition partition = DawaPartition1D(line, eps1, eps2, rng);

  // Stage 2: measure bucket totals, then spread uniformly within buckets.
  const std::size_t buckets = partition.bucket_end.size();
  std::vector<double> bucket_total(buckets, 0.0);
  std::int64_t begin = 0;
  for (std::size_t bi = 0; bi < buckets; ++bi) {
    const std::int64_t end = partition.bucket_end[bi];
    for (std::int64_t i = begin; i < end; ++i) {
      bucket_total[bi] += line[static_cast<std::size_t>(i)];
    }
    begin = end;
  }
  Tree1DOptions measure_options;
  measure_options.branching = options.measure_branching;
  const std::vector<double> noisy_total =
      MeasureHierarchical1D(bucket_total, eps2, measure_options, rng);

  begin = 0;
  for (std::size_t bi = 0; bi < buckets; ++bi) {
    const std::int64_t end = partition.bucket_end[bi];
    const double per_cell =
        noisy_total[bi] / static_cast<double>(end - begin);
    for (std::int64_t i = begin; i < end; ++i) {
      grid.counts()[flat_of_hilbert[static_cast<std::size_t>(i)]] = per_cell;
    }
    begin = end;
  }

  grid.BuildPrefixSums();
  return grid;
}

}  // namespace privtree
