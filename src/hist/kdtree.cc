#include "hist/kdtree.h"

#include <algorithm>
#include <deque>

#include "dp/check.h"
#include "dp/distributions.h"
#include "dp/quantile.h"

namespace privtree {

double PrivateMedianSplit(const std::vector<double>& values, double lo,
                          double hi, double epsilon, Rng& rng) {
  return PrivateQuantile(values, 0.5, lo, hi, epsilon, rng);
}

KdTreeHistogram KdTreeHistogram::Restore(DecompTree<Box> tree,
                                         std::vector<double> counts) {
  PRIVTREE_CHECK(!tree.empty());
  PRIVTREE_CHECK_EQ(tree.size(), counts.size());
  KdTreeHistogram hist;
  hist.tree_ = std::move(tree);
  hist.count_ = std::move(counts);
  return hist;
}

KdTreeHistogram::KdTreeHistogram(const PointSet& points, const Box& domain,
                                 double epsilon, const KdTreeOptions& options,
                                 Rng& rng) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GE(options.height, 1);
  PRIVTREE_CHECK_GT(options.split_budget_fraction, 0.0);
  PRIVTREE_CHECK_LT(options.split_budget_fraction, 1.0);
  const std::size_t d = domain.dim();
  const double split_epsilon = epsilon * options.split_budget_fraction /
                               static_cast<double>(options.height);
  const double count_epsilon = epsilon * (1.0 - options.split_budget_fraction);

  tree_.AddRoot(domain);

  struct Pending {
    NodeId node;
    std::int32_t depth;
    std::vector<std::size_t> members;  ///< Point indices inside the node.
  };
  std::deque<Pending> queue;
  {
    std::vector<std::size_t> all(points.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    queue.push_back({tree_.root(), 0, std::move(all)});
  }
  // Leaf membership is resolved during construction; counts noised at the
  // end with the count budget (one point in exactly one leaf).
  std::vector<std::pair<NodeId, std::size_t>> leaf_sizes;

  while (!queue.empty()) {
    Pending current = std::move(queue.front());
    queue.pop_front();
    const Box box = tree_.node(current.node).domain;
    if (current.depth >= options.height) {
      leaf_sizes.emplace_back(current.node, current.members.size());
      continue;
    }
    const std::size_t axis =
        static_cast<std::size_t>(current.depth) % d;
    // Noisy median along the split axis.
    std::vector<double> coords;
    coords.reserve(current.members.size());
    for (std::size_t i : current.members) {
      coords.push_back(points.point(i)[axis]);
    }
    const double split = PrivateMedianSplit(coords, box.lo(axis),
                                            box.hi(axis), split_epsilon, rng);
    Box left = box;
    Box right = box;
    {
      std::vector<double> left_lo = box.lo(), left_hi = box.hi();
      left_hi[axis] = split;
      left = Box(std::move(left_lo), std::move(left_hi));
      std::vector<double> right_lo = box.lo(), right_hi = box.hi();
      right_lo[axis] = split;
      right = Box(std::move(right_lo), std::move(right_hi));
    }
    const NodeId left_id = tree_.AddChild(current.node, left);
    const NodeId right_id = tree_.AddChild(current.node, right);
    std::vector<std::size_t> left_members, right_members;
    for (std::size_t i : current.members) {
      if (points.point(i)[axis] < split) {
        left_members.push_back(i);
      } else {
        right_members.push_back(i);
      }
    }
    queue.push_back({left_id, current.depth + 1, std::move(left_members)});
    queue.push_back({right_id, current.depth + 1, std::move(right_members)});
  }

  count_.assign(tree_.size(), 0.0);
  for (const auto& [leaf, size] : leaf_sizes) {
    count_[leaf] = static_cast<double>(size) +
                   SampleLaplace(rng, 1.0 / count_epsilon);
  }
  // Internal counts = sums of leaf counts (consistent by construction).
  const auto& nodes = tree_.nodes();
  for (std::size_t i = nodes.size(); i-- > 0;) {
    if (nodes[i].is_leaf()) continue;
    double total = 0.0;
    for (NodeId child : nodes[i].children) total += count_[child];
    count_[i] = total;
  }
}

double KdTreeHistogram::Query(const Box& q) const {
  double ans = 0.0;
  std::vector<NodeId> stack = {tree_.root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const auto& node = tree_.node(v);
    if (!q.Intersects(node.domain)) continue;
    if (q.ContainsBox(node.domain)) {
      ans += count_[v];
      continue;
    }
    if (!node.is_leaf()) {
      for (NodeId child : node.children) stack.push_back(child);
      continue;
    }
    const double volume = node.domain.Volume();
    if (volume > 0.0) {
      ans += count_[v] * (node.domain.IntersectionVolume(q) / volume);
    }
  }
  return ans;
}

}  // namespace privtree
