#include "hist/sat.h"

#include <algorithm>

#include "dp/check.h"

namespace privtree {

SummedAreaTable2D::SummedAreaTable2D(std::span<const double> cells,
                                     std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols) {
  PRIVTREE_CHECK_GE(rows, 0);
  PRIVTREE_CHECK_GE(cols, 0);
  PRIVTREE_CHECK_EQ(cells.size(),
                    static_cast<std::size_t>(rows) *
                        static_cast<std::size_t>(cols));
  const std::size_t width = static_cast<std::size_t>(cols) + 1;
  prefix_.assign((static_cast<std::size_t>(rows) + 1) * width, 0.0);
  for (std::int64_t r = 0; r < rows; ++r) {
    double row_sum = 0.0;
    const double* cell_row = cells.data() + static_cast<std::size_t>(r * cols);
    const double* above = prefix_.data() + static_cast<std::size_t>(r) * width;
    double* out = prefix_.data() + (static_cast<std::size_t>(r) + 1) * width;
    for (std::int64_t c = 0; c < cols; ++c) {
      row_sum += cell_row[c];
      out[c + 1] = above[c + 1] + row_sum;
    }
  }
}

double SummedAreaTable2D::RectSum(std::int64_t r0, std::int64_t c0,
                                  std::int64_t r1, std::int64_t c1) const {
  r0 = std::clamp<std::int64_t>(r0, 0, rows_);
  r1 = std::clamp<std::int64_t>(r1, 0, rows_);
  c0 = std::clamp<std::int64_t>(c0, 0, cols_);
  c1 = std::clamp<std::int64_t>(c1, 0, cols_);
  if (r0 >= r1 || c0 >= c1) return 0.0;
  const std::size_t width = static_cast<std::size_t>(cols_) + 1;
  const double* lo_row = prefix_.data() + static_cast<std::size_t>(r0) * width;
  const double* hi_row = prefix_.data() + static_cast<std::size_t>(r1) * width;
  return hi_row[c1] - hi_row[c0] - lo_row[c1] + lo_row[c0];
}

}  // namespace privtree
