// A dense d-dimensional grid histogram with exact continuous range queries.
//
// Queries use the uniformity assumption inside each cell, i.e. they return
// the integral of the piecewise-constant density over the query box.  The
// integral is evaluated in O(4^d) per query via the inclusion-exclusion of
// the continuous CDF, which is the multilinear interpolation of the
// prefix-sum lattice — no per-cell iteration, so even 2^20-cell grids answer
// queries in sub-microsecond time.
#ifndef PRIVTREE_HIST_GRID_H_
#define PRIVTREE_HIST_GRID_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dp/rng.h"
#include "hist/grid_kernels.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {

/// A dense grid of cell counts over a box domain.
class GridHistogram {
 public:
  /// Creates an all-zero grid; `cells_per_dim[j] >= 1` for every dimension.
  GridHistogram(Box domain, std::vector<std::int64_t> cells_per_dim);

  /// Builds the exact cell counts of `points` (clamped into the domain).
  static GridHistogram FromPoints(const PointSet& points, const Box& domain,
                                  std::vector<std::int64_t> cells_per_dim);

  std::size_t dim() const { return domain_.dim(); }
  const Box& domain() const { return domain_; }
  const std::vector<std::int64_t>& cells_per_dim() const {
    return cells_per_dim_;
  }
  std::size_t total_cells() const { return counts_.size(); }

  std::vector<double>& counts() { return counts_; }
  const std::vector<double>& counts() const { return counts_; }

  /// Flat row-major index of a cell (dimension 0 varies slowest).
  std::size_t FlatIndex(const std::vector<std::int64_t>& cell) const;

  /// The cell index of a point along dimension j, clamped into range.
  std::int64_t CellOf(double x, std::size_t j) const;

  /// The geometric box of a cell.
  Box CellBox(const std::vector<std::int64_t>& cell) const;

  /// Adds i.i.d. Lap(scale) noise to every cell count.
  void AddLaplaceNoise(double scale, Rng& rng);

  /// Recomputes the prefix-sum lattice.  Must be called after the counts
  /// change and before Query.
  void BuildPrefixSums();

  /// Integral of the histogram density over `q` (clipped to the domain).
  /// Requires BuildPrefixSums() to have been called.
  double Query(const Box& q) const;

  /// Answers many boxes in one allocation-free pass over the query list;
  /// each answer is bit-for-bit identical to Query on the same box.  On 2-d
  /// grids this runs the vectorized kernel (hist/grid_kernels.h).
  std::vector<double> QueryBatch(std::span<const Box> queries) const;

  /// The original generic-dimension batch path, kept as the parity oracle
  /// for the specialized kernels (tests compare the two bit-for-bit).
  std::vector<double> QueryBatchReference(std::span<const Box> queries) const;

  /// One query through the generic-dimension path (the pre-kernel scalar
  /// code), bit-for-bit equal to Query.  For parity tests and baseline
  /// timings; serving goes through Query/QueryBatch.
  double QueryReference(const Box& q) const;

  /// Flat kernel view of a 2-d grid (requires dim() == 2 and a valid prefix
  /// lattice); valid while this histogram is alive and unmodified.
  Grid2DView KernelView2D() const;

  /// Sum of all cell counts.
  double Total() const;

 private:
  /// Query body shared by Query and QueryBatch; callers have validated the
  /// dimension and prefix state.
  double QueryImpl(const Box& q) const;

  /// Continuous CDF at a domain point (an array of dim() coordinates), via
  /// multilinear interpolation of the prefix-sum lattice.
  double Cdf(const double* x) const;

  Box domain_;
  std::vector<std::int64_t> cells_per_dim_;
  std::vector<std::size_t> stride_;       // Row-major strides for counts_.
  std::vector<double> counts_;
  std::vector<std::size_t> lattice_stride_;  // Strides for prefix_ lattice.
  std::vector<double> prefix_;            // (m_j + 1)-sized per dimension.
  bool prefix_valid_ = false;
};

}  // namespace privtree

#endif  // PRIVTREE_HIST_GRID_H_
