#include "hist/grid_codec.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/codec.h"
#include "spatial/serialization.h"

namespace privtree {

void WriteGridHistogram(ByteWriter& out, const GridHistogram& grid) {
  WriteBox(out, grid.domain());
  for (const std::int64_t m : grid.cells_per_dim()) {
    out.U64(static_cast<std::uint64_t>(m));
  }
  out.F64Span(grid.counts());
}

Result<GridHistogram> ReadGridHistogram(ByteReader& in, std::size_t dim) {
  Box domain;
  std::string box_error;
  if (!ReadBox(in, dim, &domain, &box_error)) {
    return Status::InvalidArgument("grid body: " + box_error);
  }
  std::vector<std::int64_t> cells(dim);
  std::uint64_t total = 1;
  for (std::size_t j = 0; j < dim; ++j) {
    std::uint64_t m = 0;
    if (!in.U64(&m) || m == 0) {
      return Status::InvalidArgument("grid body: bad granularity");
    }
    // Overflow-safe running product, bounded by the bytes actually present
    // so a small corrupted file can never force a huge allocation.
    if (m > std::numeric_limits<std::uint64_t>::max() / total) {
      return Status::InvalidArgument("grid body: cell count overflow");
    }
    total *= m;
    if (total > in.remaining() / 8) {
      return Status::InvalidArgument("grid body: cell count exceeds payload");
    }
    cells[j] = static_cast<std::int64_t>(m);
  }
  GridHistogram grid(std::move(domain), std::move(cells));
  if (!in.F64Vec(total, &grid.counts())) {
    return Status::InvalidArgument("grid body: truncated counts");
  }
  grid.BuildPrefixSums();
  return grid;
}

namespace {

bool SameBits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// The level-1 cell box, mirroring GridHistogram::CellBox operand for
/// operand on an m1 × m1 lattice over `domain`, so implicit sub-grid
/// domains decode bit-for-bit.
void Level1CellBounds(const Box& domain, std::int64_t m1, std::int64_t cx,
                      std::int64_t cy, double lo[2], double hi[2]) {
  const std::int64_t cell[2] = {cx, cy};
  for (std::size_t j = 0; j < 2; ++j) {
    const double width = domain.Width(j) / static_cast<double>(m1);
    lo[j] = domain.lo(j) + width * static_cast<double>(cell[j]);
    hi[j] = lo[j] + width;
  }
}

}  // namespace

void WriteAdaptiveGridBodyCompressed(ByteWriter& out,
                                     const AdaptiveGrid& grid) {
  const std::int64_t m1 = grid.level1_granularity();
  const std::vector<GridHistogram>& level2 = grid.level2();
  out.I64(m1);
  WriteBox(out, grid.domain());
  out.F64Span(grid.level1_counts());
  bool implicit = true;
  std::vector<std::uint64_t> gran;
  gran.reserve(level2.size() * 2);
  for (std::int64_t cx = 0; cx < m1; ++cx) {
    for (std::int64_t cy = 0; cy < m1; ++cy) {
      const GridHistogram& sub =
          level2[static_cast<std::size_t>(cx * m1 + cy)];
      gran.push_back(static_cast<std::uint64_t>(sub.cells_per_dim()[0]));
      gran.push_back(static_cast<std::uint64_t>(sub.cells_per_dim()[1]));
      double lo[2], hi[2];
      Level1CellBounds(grid.domain(), m1, cx, cy, lo, hi);
      for (std::size_t j = 0; j < 2; ++j) {
        implicit = implicit && SameBits(sub.domain().lo(j), lo[j]) &&
                   SameBits(sub.domain().hi(j), hi[j]);
      }
    }
  }
  out.U32(implicit ? 1 : 0);
  out.Str(PackVarintGB(gran));
  if (!implicit) {
    for (const GridHistogram& sub : level2) WriteBox(out, sub.domain());
  }
  for (const GridHistogram& sub : level2) out.F64Span(sub.counts());
}

Result<AdaptiveGrid> ReadAdaptiveGridBodyCompressed(ByteReader& in) {
  std::int64_t m1 = 0;
  if (!in.I64(&m1) || m1 < 1 || m1 > 1'000'000) {
    return Status::InvalidArgument("ag body: bad level-1 granularity");
  }
  Box domain;
  std::string box_error;
  if (!ReadBox(in, 2, &domain, &box_error)) {
    return Status::InvalidArgument("ag body: " + box_error);
  }
  const std::uint64_t cells =
      static_cast<std::uint64_t>(m1) * static_cast<std::uint64_t>(m1);
  std::vector<double> level1;
  if (!in.F64Vec(cells, &level1)) {
    return Status::InvalidArgument("ag body: truncated level-1 counts");
  }
  std::uint32_t implicit = 0;
  std::string packed;
  if (!in.U32(&implicit) || implicit > 1 || !in.Str(&packed)) {
    return Status::InvalidArgument("ag body: bad box mode");
  }
  std::vector<std::uint64_t> gran;
  if (!UnpackVarintGB(packed, 2 * cells, &gran)) {
    return Status::InvalidArgument("ag body: bad granularities");
  }
  std::vector<GridHistogram> level2;
  level2.reserve(cells);
  for (std::uint64_t i = 0; i < cells; ++i) {
    const std::uint64_t g0 = gran[2 * i];
    const std::uint64_t g1 = gran[2 * i + 1];
    // Bounded before construction: GridHistogram's constructor CHECK-caps
    // the cell total, and a lying granularity must not abort the process.
    if (g0 == 0 || g1 == 0 || g0 > (1u << 28) || g1 > (1u << 28) ||
        g0 * g1 > (1u << 28)) {
      return Status::InvalidArgument("ag body: bad sub-grid granularity");
    }
    const std::uint64_t total = g0 * g1;
    if (total > in.remaining() / 8) {
      return Status::InvalidArgument("ag body: sub-grid exceeds payload");
    }
    Box sub_domain;
    if (implicit == 1) {
      double lo[2], hi[2];
      Level1CellBounds(domain, m1, static_cast<std::int64_t>(i) / m1,
                       static_cast<std::int64_t>(i) % m1, lo, hi);
      for (std::size_t j = 0; j < 2; ++j) {
        if (!std::isfinite(lo[j]) || !std::isfinite(hi[j]) || lo[j] > hi[j]) {
          return Status::InvalidArgument("ag body: bad cell geometry");
        }
      }
      sub_domain = Box({lo[0], lo[1]}, {hi[0], hi[1]});
    } else if (!ReadBox(in, 2, &sub_domain, &box_error)) {
      return Status::InvalidArgument("ag body: " + box_error);
    }
    GridHistogram sub(std::move(sub_domain),
                      {static_cast<std::int64_t>(g0),
                       static_cast<std::int64_t>(g1)});
    if (!in.F64Vec(total, &sub.counts())) {
      return Status::InvalidArgument("ag body: truncated sub-grid counts");
    }
    sub.BuildPrefixSums();
    level2.push_back(std::move(sub));
  }
  return AdaptiveGrid(std::move(domain), m1, std::move(level1),
                      std::move(level2));
}

}  // namespace privtree
