#include "hist/grid_codec.h"

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "spatial/serialization.h"

namespace privtree {

void WriteGridHistogram(ByteWriter& out, const GridHistogram& grid) {
  WriteBox(out, grid.domain());
  for (const std::int64_t m : grid.cells_per_dim()) {
    out.U64(static_cast<std::uint64_t>(m));
  }
  out.F64Span(grid.counts());
}

Result<GridHistogram> ReadGridHistogram(ByteReader& in, std::size_t dim) {
  Box domain;
  std::string box_error;
  if (!ReadBox(in, dim, &domain, &box_error)) {
    return Status::InvalidArgument("grid body: " + box_error);
  }
  std::vector<std::int64_t> cells(dim);
  std::uint64_t total = 1;
  for (std::size_t j = 0; j < dim; ++j) {
    std::uint64_t m = 0;
    if (!in.U64(&m) || m == 0) {
      return Status::InvalidArgument("grid body: bad granularity");
    }
    // Overflow-safe running product, bounded by the bytes actually present
    // so a small corrupted file can never force a huge allocation.
    if (m > std::numeric_limits<std::uint64_t>::max() / total) {
      return Status::InvalidArgument("grid body: cell count overflow");
    }
    total *= m;
    if (total > in.remaining() / 8) {
      return Status::InvalidArgument("grid body: cell count exceeds payload");
    }
    cells[j] = static_cast<std::int64_t>(m);
  }
  GridHistogram grid(std::move(domain), std::move(cells));
  if (!in.F64Vec(total, &grid.counts())) {
    return Status::InvalidArgument("grid body: truncated counts");
  }
  grid.BuildPrefixSums();
  return grid;
}

}  // namespace privtree
