// Hierarchy — multi-level decomposition-tree histograms (Qardaji et al.,
// PVLDB 2013, "Understanding hierarchical methods for differentially
// private histograms").
//
// A complete tree of height h is imposed over the domain with a per-
// dimension branching factor b (fanout β = b^d); every non-root node's count
// is released with Laplace noise of scale (h−1)/ε (one point affects one
// node on each of the h−1 noisy levels).  The heuristic of [42] for 2-d
// data is β = 64, h = 3.  Constrained inference (Hay et al., PVLDB 2010)
// post-processes the noisy counts to be consistent, which reduces variance.
#ifndef PRIVTREE_HIST_HIERARCHY_H_
#define PRIVTREE_HIST_HIERARCHY_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dp/rng.h"
#include "hist/grid.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {

/// Options for HierarchyHistogram.
struct HierarchyOptions {
  /// Tree height h (levels including the root); h >= 2.
  std::int32_t height = 3;
  /// Target per-dimension resolution of the leaf level.  The actual
  /// resolution is b^(h−1) with b = max(2, round(target^(1/(h−1)))), so the
  /// h = 3 default with target 64 gives the paper's β = 8^d, 64×64 leaves.
  std::int64_t target_leaf_resolution = 64;
  /// Apply Hay-style weighted averaging + mean consistency.
  bool constrained_inference = true;
};

/// A complete uniform tree of noisy grid counts.
class HierarchyHistogram {
 public:
  /// Builds the ε-DP hierarchy.
  HierarchyHistogram(const PointSet& points, const Box& domain, double epsilon,
                     const HierarchyOptions& options, Rng& rng);

  /// Restores a released hierarchy from its serialized parts (the v2
  /// synopsis payload — see release/serialization.h).  `level_counts[l]`
  /// holds the flat level-l counts for l = 1..height-1 (`level_counts[0]`
  /// is ignored: the root count is never released); persisted counts are
  /// already post-inference, so `consistent` only controls whether the
  /// leaf-level prefix-sum view used by QueryBatch is rebuilt.
  static HierarchyHistogram Restore(Box domain, std::int32_t height,
                                    std::int64_t branching,
                                    std::vector<std::vector<double>>
                                        level_counts,
                                    bool consistent);

  /// Estimated number of points in `q`, via greedy tree descent: fully
  /// covered nodes contribute their count, partially covered leaves
  /// contribute the uniform fraction.
  double Query(const Box& q) const;

  /// Answers many boxes at once.  With constrained inference the levels are
  /// mutually consistent, so the greedy descent equals the integral of the
  /// leaf-level density — answered here through the leaf prefix-sum lattice
  /// in O(2^d) per query instead of a b^d-way recursion.  Without
  /// constrained inference (no consistent flat view exists) this falls back
  /// to per-query descent.  Answers agree with Query up to floating-point
  /// summation order.
  std::vector<double> QueryBatch(std::span<const Box> queries) const;

  /// Per-dimension branching factor b.
  std::int64_t branching() const { return branching_; }
  /// Per-dimension resolution of the leaf level (b^(h−1)).
  std::int64_t leaf_resolution() const { return resolution_.back(); }
  /// Total number of released (noisy) counts.
  std::size_t TotalCounts() const;

  /// Released state, exposed for the synopsis codec.
  const Box& domain() const { return domain_; }
  std::int32_t height() const { return height_; }
  /// Whether constrained inference ran (and the flat leaf view exists).
  bool consistent() const { return leaf_view_.has_value(); }
  const std::vector<std::vector<double>>& level_counts() const {
    return counts_;
  }

 private:
  HierarchyHistogram() = default;

  std::size_t FlatIndex(std::int32_t level,
                        const std::vector<std::int64_t>& cell) const;
  Box CellBox(std::int32_t level,
              const std::vector<std::int64_t>& cell) const;
  double QueryNode(const Box& q, std::int32_t level,
                   const std::vector<std::int64_t>& cell) const;
  void ApplyConstrainedInference();

  Box domain_;
  std::int32_t height_;
  std::int64_t branching_;
  /// resolution_[l] = per-dim cells at level l (l = 0 is the root = 1).
  std::vector<std::int64_t> resolution_;
  /// counts_[l] = flat row-major counts of level l; counts_[0] is unused
  /// (the root count is not released).
  std::vector<std::vector<double>> counts_;
  /// Leaf-level counts as a grid with prefix sums, for QueryBatch; built
  /// only when constrained inference makes the levels consistent.
  std::optional<GridHistogram> leaf_view_;
};

}  // namespace privtree

#endif  // PRIVTREE_HIST_HIERARCHY_H_
