// SimpleTree (Algorithm 1): the generic private-quadtree baseline that
// PrivTree improves upon.
//
// Every node's exact score receives Laplace noise of scale λ; a node is
// split iff its noisy score exceeds θ AND its depth is below the pre-defined
// height limit h.  Because one tuple affects the scores of all h nodes on a
// root-to-leaf path, the release is ε-DP only when λ >= h·sensitivity/ε —
// the depth-proportional noise that motivates PrivTree.
#ifndef PRIVTREE_CORE_SIMPLETREE_H_
#define PRIVTREE_CORE_SIMPLETREE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/decomposition_policy.h"
#include "core/tree.h"
#include "dp/check.h"
#include "dp/distributions.h"
#include "dp/rng.h"

namespace privtree {

/// Parameters of Algorithm 1.
struct SimpleTreeParams {
  double lambda = 1.0;     ///< Laplace scale; must be >= h·sensitivity/ε.
  double theta = 0.0;      ///< Split threshold.
  std::int32_t height = 4; ///< h: maximum number of levels (root counts as 1).

  /// λ = h·sensitivity/ε, the minimum ε-DP noise scale (Section 3.1).
  static SimpleTreeParams ForEpsilon(double epsilon, std::int32_t height,
                                     double sensitivity = 1.0) {
    PRIVTREE_CHECK_GT(epsilon, 0.0);
    PRIVTREE_CHECK_GT(height, 0);
    PRIVTREE_CHECK_GT(sensitivity, 0.0);
    SimpleTreeParams params;
    params.lambda = static_cast<double>(height) * sensitivity / epsilon;
    params.height = height;
    params.theta = 0.0;
    return params;
  }
};

/// Result of Algorithm 1: the tree together with the noisy score released
/// for every node (indexed by NodeId).
template <typename Domain>
struct SimpleTreeResult {
  DecompTree<Domain> tree;
  std::vector<double> noisy_score;
};

/// Runs Algorithm 1.
template <DecompositionPolicy Policy>
SimpleTreeResult<typename Policy::Domain> RunSimpleTree(
    const Policy& policy, const SimpleTreeParams& params, Rng& rng) {
  PRIVTREE_CHECK_GT(params.lambda, 0.0);
  PRIVTREE_CHECK_GT(params.height, 0);
  SimpleTreeResult<typename Policy::Domain> result;
  result.tree.AddRoot(policy.Root());
  std::deque<NodeId> unvisited;
  unvisited.push_back(result.tree.root());
  while (!unvisited.empty()) {
    const NodeId v = unvisited.front();
    unvisited.pop_front();
    const auto& node = result.tree.node(v);
    // Lines 5-6: noisy score ĉ(v).
    const double noisy =
        policy.Score(node.domain) + SampleLaplace(rng, params.lambda);
    if (static_cast<std::size_t>(v) >= result.noisy_score.size()) {
      result.noisy_score.resize(v + 1);
    }
    result.noisy_score[v] = noisy;
    // Line 7: split iff above threshold and below the height limit.
    if (noisy > params.theta && node.depth < params.height - 1 &&
        policy.CanSplit(node.domain)) {
      for (auto& child_domain : policy.Split(node.domain)) {
        unvisited.push_back(result.tree.AddChild(v, std::move(child_domain)));
      }
    }
  }
  return result;
}

}  // namespace privtree

#endif  // PRIVTREE_CORE_SIMPLETREE_H_
