// Compile-time SIMD dispatch for the batch-query kernels.
//
// The kernels (hist/grid_kernels.cc, release/tree_batch.cc) are written
// three times — AVX2 (4 doubles/lane-group), SSE2 (2 doubles), and plain
// scalar — selected here with `#if`, never at runtime: the scalar fallback
// is bit-for-bit identical to the vector paths (pinned by tests), so a
// build's answers do not depend on which ISA it was compiled for.
//
// x86-64 always has SSE2, so default builds take the 2-wide path; AVX2
// engages only when the compiler is told to target it (-mavx2 or
// -march=native).  FMA intrinsics are never used — a fused multiply-add
// rounds once where the scalar code rounds twice, which would break the
// bit-for-bit contract (the top-level CMakeLists additionally pins
// -ffp-contract=off so the *compiler* cannot fuse behind our back on FMA
// targets).
#ifndef PRIVTREE_CORE_SIMD_H_
#define PRIVTREE_CORE_SIMD_H_

#if defined(__AVX2__)
#define PRIVTREE_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define PRIVTREE_SIMD_SSE2 1
#include <emmintrin.h>
#endif

namespace privtree {

/// Name of the vector ISA the kernels were compiled for ("avx2", "sse2"
/// or "scalar"); surfaced in BENCH_kernels.json.
inline const char* SimdKernelName() {
#if defined(PRIVTREE_SIMD_AVX2)
  return "avx2";
#elif defined(PRIVTREE_SIMD_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

}  // namespace privtree

#endif  // PRIVTREE_CORE_SIMD_H_
