// Hierarchical decomposition via the improved SVT (Appendix A):
// the paper notes that Algorithm 6 — the only SVT variant that is both
// ε-DP and threshold-accurate — *could* drive the split decisions of a
// decomposition tree, but requires (i) a pre-chosen cap t on the number of
// splits and (ii) Laplace noise of scale 2t/ε per decision, which makes it
// uncompetitive with PrivTree's constant O(1/ε) noise.  This implements
// that construction so the claim can be measured (bench_appendix_svt.cpp).
//
// Queries are processed in BFS order; when the SVT reports 1 the node is
// split and its children appended to the queue, exactly as sketched in
// Section 5 for the (broken) binary SVT.
#ifndef PRIVTREE_CORE_SVT_TREE_H_
#define PRIVTREE_CORE_SVT_TREE_H_

#include <cstdint>
#include <deque>

#include "core/decomposition_policy.h"
#include "core/tree.h"
#include "dp/check.h"
#include "dp/distributions.h"
#include "dp/rng.h"

namespace privtree {

/// Parameters for the improved-SVT decomposition.
struct SvtTreeParams {
  double theta = 0.0;       ///< Split threshold on the (exact) scores.
  double lambda = 2.0;      ///< Base scale; ε-DP needs λ >= 2·sensitivity/ε.
  std::int32_t t = 64;      ///< Maximum number of splits (positives).
  std::int32_t max_depth = 512;

  /// λ = 2·sensitivity/ε with a split cap t (Lemma A.1).
  static SvtTreeParams ForEpsilon(double epsilon, std::int32_t t,
                                  double sensitivity = 1.0) {
    PRIVTREE_CHECK_GT(epsilon, 0.0);
    PRIVTREE_CHECK_GE(t, 1);
    PRIVTREE_CHECK_GT(sensitivity, 0.0);
    SvtTreeParams params;
    params.lambda = 2.0 * sensitivity / epsilon;
    params.t = t;
    return params;
  }
};

/// Runs the improved-SVT-driven decomposition (Algorithm 6 semantics: one
/// noisy threshold of scale λ, per-query noise of scale t·λ, stop after t
/// positives).
template <DecompositionPolicy Policy>
DecompTree<typename Policy::Domain> RunSvtTree(const Policy& policy,
                                               const SvtTreeParams& params,
                                               Rng& rng) {
  PRIVTREE_CHECK_GT(params.lambda, 0.0);
  PRIVTREE_CHECK_GE(params.t, 1);
  DecompTree<typename Policy::Domain> tree;
  tree.AddRoot(policy.Root());

  const double noisy_theta =
      params.theta + SampleLaplace(rng, params.lambda);
  const double query_scale =
      static_cast<double>(params.t) * params.lambda;

  std::deque<NodeId> unvisited;
  unvisited.push_back(tree.root());
  std::int32_t splits = 0;
  while (!unvisited.empty() && splits < params.t) {
    const NodeId v = unvisited.front();
    unvisited.pop_front();
    const auto& node = tree.node(v);
    const double noisy =
        policy.Score(node.domain) + SampleLaplace(rng, query_scale);
    if (noisy > noisy_theta && node.depth < params.max_depth &&
        policy.CanSplit(node.domain)) {
      ++splits;
      for (auto& child : policy.Split(node.domain)) {
        unvisited.push_back(tree.AddChild(v, std::move(child)));
      }
    }
  }
  return tree;
}

}  // namespace privtree

#endif  // PRIVTREE_CORE_SVT_TREE_H_
