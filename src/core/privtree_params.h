// Parameterization of PrivTree (Section 3.4 and Corollary 1).
#ifndef PRIVTREE_CORE_PRIVTREE_PARAMS_H_
#define PRIVTREE_CORE_PRIVTREE_PARAMS_H_

#include <cstdint>

namespace privtree {

/// Parameters of Algorithm 2.
///
/// Use ForEpsilon() (Corollary 1, the paper's recommended setting) or
/// ForEpsilonGamma() (Theorem 3.1 with an explicit γ = δ/λ) rather than
/// filling fields manually.
struct PrivTreeParams {
  /// Laplace scale λ used for every split decision.
  double lambda = 1.0;
  /// Split threshold θ; the paper recommends and uses θ = 0 (Section 3.4).
  double theta = 0.0;
  /// Decaying factor δ subtracted per level of depth.
  double delta = 1.0;
  /// Structural recursion cap.  This is *not* the paper's h: PrivTree's
  /// privacy guarantee never depends on it, and with the recommended δ the
  /// probability of reaching depth 512 in any realistic dataset is
  /// astronomically small.  It exists only so that a buggy policy whose
  /// scores are not monotonic cannot loop forever.
  std::int32_t max_depth = 512;

  /// Corollary 1: λ = (2β−1)/(β−1) · sensitivity/ε and δ = λ·ln β, where β is
  /// the fanout of the decomposition tree.  `sensitivity` is the maximum
  /// change of the score function when one tuple is added or removed (1 for
  /// spatial point counts; l⊤ for the PST score of Theorem 4.1).
  static PrivTreeParams ForEpsilon(double epsilon, int fanout,
                                   double sensitivity = 1.0);

  /// Theorem 3.1: λ = (2e^γ−1)/(e^γ−1) · sensitivity/ε and δ = γ·λ for an
  /// arbitrary γ > 0.
  static PrivTreeParams ForEpsilonGamma(double epsilon, double gamma,
                                        double sensitivity = 1.0);

  /// The ε this parameterization guarantees for a unit-sensitivity score
  /// (the telescoping bound of Section 3.3); equals
  /// (1/λ)·(2e^γ−1)/(e^γ−1) with γ = δ/λ.
  double GuaranteedEpsilon() const;

  /// Validates λ > 0, δ > 0, max_depth > 0; aborts otherwise.
  void Validate() const;
};

}  // namespace privtree

#endif  // PRIVTREE_CORE_PRIVTREE_PARAMS_H_
