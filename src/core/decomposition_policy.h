// The policy concept that plugs an application domain (spatial boxes, PST
// predictor strings, taxonomies, ...) into the generic decomposition
// algorithms.
//
// A policy exposes:
//   * Domain    — the per-node sub-domain descriptor;
//   * Root()    — the whole domain Ω;
//   * CanSplit  — structural splittability (independent of the private data;
//                 e.g. condition C1 for PSTs, or a floating-point resolution
//                 floor for boxes).  Must not depend on the dataset.
//   * Split     — the children of a sub-domain; the number of children must
//                 not exceed fanout() (it may be smaller for non-uniform
//                 trees, e.g. taxonomy splits — a conservative β only
//                 enlarges δ, which preserves Theorem 3.1).
//   * Score     — the data-dependent score c(v).  For PrivTree's privacy
//                 guarantee (Section 3.5) the score must be *monotonic*
//                 (child score <= parent score) and change by at most
//                 `sensitivity` when one tuple is added or removed.
//   * fanout()  — β, the number of children per split.
#ifndef PRIVTREE_CORE_DECOMPOSITION_POLICY_H_
#define PRIVTREE_CORE_DECOMPOSITION_POLICY_H_

#include <concepts>
#include <vector>

namespace privtree {

template <typename P>
concept DecompositionPolicy = requires(const P& p, const typename P::Domain& d) {
  typename P::Domain;
  { p.Root() } -> std::convertible_to<typename P::Domain>;
  { p.CanSplit(d) } -> std::convertible_to<bool>;
  { p.Split(d) } -> std::convertible_to<std::vector<typename P::Domain>>;
  { p.Score(d) } -> std::convertible_to<double>;
  { p.fanout() } -> std::convertible_to<int>;
};

}  // namespace privtree

#endif  // PRIVTREE_CORE_DECOMPOSITION_POLICY_H_
