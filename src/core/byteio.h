// Little-endian byte-buffer primitives for the synopsis on-disk format.
//
// ByteWriter appends fixed-width scalars and length-prefixed strings to an
// in-memory byte string; ByteReader consumes the same encoding with
// bounds-checked, non-aborting reads (every getter reports failure instead
// of crashing, so a truncated or corrupted file surfaces as a clean error
// at the caller).  All multi-byte values are little-endian regardless of
// host order; doubles are IEEE-754 binary64 bit patterns, so a value
// round-trips bit for bit.
#ifndef PRIVTREE_CORE_BYTEIO_H_
#define PRIVTREE_CORE_BYTEIO_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace privtree {

/// Appends little-endian scalars to `*out` (which must outlive the writer).
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I32(std::int32_t v);
  void I64(std::int64_t v);
  void F64(double v);
  /// Each element as F64, without a length prefix (callers encode counts
  /// explicitly so readers can bounds-check before allocating).
  void F64Span(std::span<const double> values);
  /// U32 byte length followed by the raw bytes.
  void Str(std::string_view s);

 private:
  std::string* out_;
};

/// Consumes the ByteWriter encoding from an in-memory view.  Every read
/// returns false (leaving the output untouched) on underflow; once a read
/// fails the reader stays failed.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U32(std::uint32_t* v);
  bool U64(std::uint64_t* v);
  bool I32(std::int32_t* v);
  bool I64(std::int64_t* v);
  bool F64(double* v);
  /// Reads exactly `n` doubles; fails (without allocating) unless 8·n bytes
  /// remain.
  bool F64Vec(std::size_t n, std::vector<double>* out);
  /// Reads a U32 length prefix + bytes; fails unless the full string fits
  /// in the remaining input.
  bool Str(std::string* out);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  bool failed() const { return failed_; }

 private:
  bool Take(std::size_t n, const char** p);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Order-sensitive 64-bit digest of a byte string (SplitMix64-style mixing
/// over 8-byte words plus the length).  Used as the synopsis envelope
/// integrity check; it detects corruption, it is not cryptographic.
std::uint64_t ByteChecksum(std::string_view bytes);

/// Order-sensitive accumulation of one 64-bit word into a running digest:
/// xor-then-avalanche (SplitMix64 finalizer).  The one mixer behind every
/// fingerprint in the serving stack — dataset content digests
/// (release/dataset.cc) and synopsis cache keys / spill-file names
/// (serve/synopsis_cache.cc) — kept in one place so the two can never
/// silently diverge.
inline std::uint64_t MixFingerprintWord(std::uint64_t hash,
                                        std::uint64_t word) {
  std::uint64_t x = hash ^ word;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x + 0x9e3779b97f4a7c15ULL;
}

/// As MixFingerprintWord, over a double's IEEE-754 bit pattern.
std::uint64_t MixFingerprintDouble(std::uint64_t hash, double value);

}  // namespace privtree

#endif  // PRIVTREE_CORE_BYTEIO_H_
