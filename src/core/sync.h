// Annotated synchronization primitives: thin std::mutex wrappers that clang's
// thread-safety analysis can see through.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes, so
// `-Wthread-safety` cannot check code written against them.  Every guarded
// structure in the tree therefore uses these wrappers instead (the project
// lint bans raw std::mutex outside this header):
//
//   Mutex      — a CAPABILITY wrapping std::mutex.  Declare members
//                `GUARDED_BY(mu_)` and helper methods `REQUIRES(mu_)`.
//   MutexLock  — the RAII guard (SCOPED_CAPABILITY over std::unique_lock).
//                Relockable: Unlock()/Lock() open a window for work that
//                must run outside the critical section (write-behind drains,
//                settle callbacks), and the analysis tracks the state.
//   CondVar    — std::condition_variable bound to MutexLock.  No predicate
//                overloads on purpose: a lambda body is analyzed as its own
//                function, where the lock is not visibly held, so guarded
//                reads inside `cv.wait(lk, pred)` predicates defeat the
//                analysis.  Write explicit `while (!cond) cv.Wait(lk);`
//                loops instead — the condition then sits in the annotated
//                scope.
#ifndef PRIVTREE_CORE_SYNC_H_
#define PRIVTREE_CORE_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace privtree {

/// Exclusive mutex capability.  Lock via MutexLock; the raw Lock()/Unlock()
/// methods exist for the wrapper layer only and are banned elsewhere by the
/// naked-lock lint rule.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII guard over a Mutex; locks on construction, unlocks on destruction.
/// Unlock()/Lock() reopen and reclose the critical section mid-scope for
/// code that must not run under the lock; the destructor releases only if
/// currently held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the mutex (must currently be held).
  void Unlock() RELEASE() { lock_.unlock(); }
  /// Reacquires the mutex after Unlock().
  void Lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to MutexLock.  Wait atomically releases the lock
/// and reacquires it before returning, so from the analysis's point of view
/// the capability stays held across the call — which matches how callers
/// touch guarded state on both sides of it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible; loop on the
  /// condition).  `lk` must hold the mutex guarding the condition.
  void Wait(MutexLock& lk) { cv_.wait(lk.lock_); }

  /// As Wait, but returns false if `timeout` elapses first.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lk, std::chrono::duration<Rep, Period> timeout) {
    return cv_.wait_for(lk.lock_, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace privtree

#endif  // PRIVTREE_CORE_SYNC_H_
