// A generic hierarchical-decomposition tree.
//
// Nodes are stored in a flat vector and addressed by index; each node carries
// the sub-domain it represents (a spatial box, a PST predictor string, ...).
// The container is shared by PrivTree, SimpleTree and the non-private
// reference decomposition.
#ifndef PRIVTREE_CORE_TREE_H_
#define PRIVTREE_CORE_TREE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dp/check.h"

namespace privtree {

/// Identifies a node inside a DecompTree.  The root is always node 0.
using NodeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// One node of a decomposition tree.
template <typename Domain>
struct DecompNode {
  Domain domain;
  NodeId parent = kInvalidNode;
  std::int32_t depth = 0;  ///< Hop distance to the root (root = 0).
  std::vector<NodeId> children;

  bool is_leaf() const { return children.empty(); }
};

/// A tree-structured decomposition of a domain into sub-domains.
template <typename Domain>
class DecompTree {
 public:
  DecompTree() = default;

  /// Creates the root node; must be called exactly once, before AddChild.
  NodeId AddRoot(Domain domain) {
    PRIVTREE_CHECK(nodes_.empty());
    DecompNode<Domain> node;
    node.domain = std::move(domain);
    nodes_.push_back(std::move(node));
    return 0;
  }

  /// Appends a child of `parent` and returns its id.
  NodeId AddChild(NodeId parent, Domain domain) {
    PRIVTREE_CHECK_GE(parent, 0);
    PRIVTREE_CHECK_LT(static_cast<std::size_t>(parent), nodes_.size());
    DecompNode<Domain> node;
    node.domain = std::move(domain);
    node.parent = parent;
    node.depth = nodes_[parent].depth + 1;
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::move(node));
    nodes_[parent].children.push_back(id);
    return id;
  }

  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return nodes_.size(); }

  const DecompNode<Domain>& node(NodeId id) const {
    PRIVTREE_CHECK_GE(id, 0);
    PRIVTREE_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
    return nodes_[id];
  }

  NodeId root() const {
    PRIVTREE_CHECK(!nodes_.empty());
    return 0;
  }

  /// Ids of all leaf nodes, in increasing id order.
  std::vector<NodeId> LeafIds() const {
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].is_leaf()) out.push_back(static_cast<NodeId>(i));
    }
    return out;
  }

  /// Number of leaf nodes.
  std::size_t LeafCount() const {
    std::size_t count = 0;
    for (const auto& n : nodes_) count += n.is_leaf() ? 1 : 0;
    return count;
  }

  /// Maximum node depth; 0 for a root-only tree.
  std::int32_t Height() const {
    std::int32_t h = 0;
    for (const auto& n : nodes_) h = std::max(h, n.depth);
    return h;
  }

  const std::vector<DecompNode<Domain>>& nodes() const { return nodes_; }

 private:
  std::vector<DecompNode<Domain>> nodes_;
};

}  // namespace privtree

#endif  // PRIVTREE_CORE_TREE_H_
