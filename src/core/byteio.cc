#include "core/byteio.h"

#include <cstring>

namespace privtree {

namespace {

inline void AppendLe(std::string* out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline std::uint64_t ReadLe(const char* p, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void ByteWriter::U32(std::uint32_t v) { AppendLe(out_, v, 4); }
void ByteWriter::U64(std::uint64_t v) { AppendLe(out_, v, 8); }
void ByteWriter::I32(std::int32_t v) {
  AppendLe(out_, static_cast<std::uint32_t>(v), 4);
}
void ByteWriter::I64(std::int64_t v) {
  AppendLe(out_, static_cast<std::uint64_t>(v), 8);
}

void ByteWriter::F64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendLe(out_, bits, 8);
}

void ByteWriter::F64Span(std::span<const double> values) {
  for (const double v : values) F64(v);
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

bool ByteReader::Take(std::size_t n, const char** p) {
  if (failed_ || remaining() < n) {
    failed_ = true;
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool ByteReader::U32(std::uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  *v = static_cast<std::uint32_t>(ReadLe(p, 4));
  return true;
}

bool ByteReader::U64(std::uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  *v = ReadLe(p, 8);
  return true;
}

bool ByteReader::I32(std::int32_t* v) {
  std::uint32_t raw;
  if (!U32(&raw)) return false;
  *v = static_cast<std::int32_t>(raw);
  return true;
}

bool ByteReader::I64(std::int64_t* v) {
  std::uint64_t raw;
  if (!U64(&raw)) return false;
  *v = static_cast<std::int64_t>(raw);
  return true;
}

bool ByteReader::F64(double* v) {
  std::uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool ByteReader::F64Vec(std::size_t n, std::vector<double>* out) {
  // Divide instead of multiplying: 8·n wraps for attacker-huge n, and the
  // promise is to fail without allocating.
  if (failed_ || n > remaining() / 8) {
    failed_ = true;
    return false;
  }
  out->resize(n);
  for (std::size_t i = 0; i < n; ++i) F64(&(*out)[i]);
  return true;
}

bool ByteReader::Str(std::string* out) {
  std::uint32_t len;
  if (!U32(&len)) return false;
  const char* p;
  if (!Take(len, &p)) return false;
  out->assign(p, len);
  return true;
}

std::uint64_t ByteChecksum(std::string_view bytes) {
  // SplitMix64 finalizer over 8-byte words, seeded with the length so
  // "truncated but zero-padded" never collides with the original.
  std::uint64_t hash = 0x9e3779b97f4a7c15ULL ^ bytes.size();
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes.data() + i, 8);
    std::uint64_t x = hash ^ word;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    hash = x + 0x9e3779b97f4a7c15ULL;
  }
  std::uint64_t tail = 0;
  for (std::size_t j = 0; i + j < bytes.size(); ++j) {
    tail |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(bytes[i + j]))
            << (8 * j);
  }
  if (i < bytes.size()) {
    std::uint64_t x = hash ^ tail;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    hash = x + 0x9e3779b97f4a7c15ULL;
  }
  return hash;
}

std::uint64_t MixFingerprintDouble(std::uint64_t hash, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return MixFingerprintWord(hash, bits);
}

}  // namespace privtree
