// Clang thread-safety-analysis attribute macros, no-ops elsewhere.
//
// These wrap the `-Wthread-safety` capability attributes so lock discipline
// is documented in headers and *checked at compile time* under clang (the CI
// thread-safety job builds with `-Wthread-safety -Werror=thread-safety`);
// g++ and non-clang compilers see empty macros.  Use them through the
// annotated primitives in core/sync.h — libstdc++'s std::mutex carries no
// attributes, so annotating raw standard types buys nothing.
//
// Cheat sheet:
//   GUARDED_BY(mu)    on a data member: reads/writes require holding mu.
//   REQUIRES(mu)      on a function: caller must hold mu (the *Locked()
//                     helper convention).
//   EXCLUDES(mu)      on a function: caller must NOT hold mu (it locks
//                     internally; documents self-deadlock hazards).
//   ACQUIRE/RELEASE   on lock/unlock methods of a capability wrapper.
//   CAPABILITY        on a mutex-like class; SCOPED_CAPABILITY on an RAII
//                     guard class.
#ifndef PRIVTREE_CORE_THREAD_ANNOTATIONS_H_
#define PRIVTREE_CORE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

#define CAPABILITY(x) PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define GUARDED_BY(x) PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define PT_GUARDED_BY(x) PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define RETURN_CAPABILITY(x) \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  PRIVTREE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // PRIVTREE_CORE_THREAD_ANNOTATIONS_H_
