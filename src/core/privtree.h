// PrivTree (Algorithm 2): hierarchical decomposition under ε-differential
// privacy with *constant* noise per split decision, independent of the
// recursion depth.
//
// For each unvisited node v the algorithm computes the biased score
//     b(v) = max{ θ − δ,  c(v) − depth(v)·δ }            (Equation (8))
// and the noisy score b̂(v) = b(v) + Lap(λ), and splits v iff b̂(v) > θ.
// The output tree reveals only the sub-domains of its nodes; all scores are
// concealed (Line 11 of Algorithm 2).  Noisy per-node counts, when needed,
// are produced by a separate post-processing step on a fresh budget slice
// (Section 3.4) — see spatial/spatial_histogram.h and seq/pst_privtree.h.
#ifndef PRIVTREE_CORE_PRIVTREE_H_
#define PRIVTREE_CORE_PRIVTREE_H_

#include <algorithm>
#include <deque>
#include <vector>

#include "core/decomposition_policy.h"
#include "core/privtree_params.h"
#include "core/tree.h"
#include "dp/distributions.h"
#include "dp/rng.h"

namespace privtree {

/// Diagnostics accumulated while running a decomposition algorithm.
struct DecompositionStats {
  std::size_t nodes_visited = 0;  ///< Total split decisions made.
  std::size_t nodes_split = 0;    ///< Decisions that resulted in a split.
  std::int32_t height = 0;        ///< Height of the produced tree.
};

/// Runs Algorithm 2 and returns the decomposition tree (domains only).
///
/// The caller guarantees that `policy.Score` is monotonic with the
/// sensitivity `params` were derived for; under that contract the returned
/// tree is ε-DP for ε = params.GuaranteedEpsilon() (Theorem 3.1).
template <DecompositionPolicy Policy>
DecompTree<typename Policy::Domain> RunPrivTree(
    const Policy& policy, const PrivTreeParams& params, Rng& rng,
    DecompositionStats* stats = nullptr) {
  params.Validate();
  DecompTree<typename Policy::Domain> tree;
  tree.AddRoot(policy.Root());
  DecompositionStats local_stats;

  // Line 3: process unvisited nodes in FIFO order.  Order does not affect
  // the output distribution (decisions are independent given the data) but
  // FIFO keeps peak queue memory proportional to the widest level.
  std::deque<NodeId> unvisited;
  unvisited.push_back(tree.root());
  while (!unvisited.empty()) {
    const NodeId v = unvisited.front();
    unvisited.pop_front();
    ++local_stats.nodes_visited;

    const auto& node = tree.node(v);
    // Lines 5-6: biased score with the θ−δ floor.
    const double score = policy.Score(node.domain);
    const double biased =
        std::max(params.theta - params.delta,
                 score - static_cast<double>(node.depth) * params.delta);
    // Line 7: noisy score.
    const double noisy = biased + SampleLaplace(rng, params.lambda);
    // Line 8: split decision.  CanSplit and max_depth are structural,
    // data-independent constraints (see privtree_params.h).
    if (noisy > params.theta && node.depth < params.max_depth &&
        policy.CanSplit(node.domain)) {
      ++local_stats.nodes_split;
      for (auto& child_domain : policy.Split(node.domain)) {
        unvisited.push_back(tree.AddChild(v, std::move(child_domain)));
      }
    }
  }
  local_stats.height = tree.Height();
  if (stats != nullptr) *stats = local_stats;
  return tree;
}

/// The noiseless reference decomposition T* of Lemma 3.2: splits a node iff
/// its exact score exceeds θ.  Not differentially private; used in tests,
/// ablations and utility analyses.
template <DecompositionPolicy Policy>
DecompTree<typename Policy::Domain> RunNoiselessTree(
    const Policy& policy, double theta, std::int32_t max_depth = 512) {
  DecompTree<typename Policy::Domain> tree;
  tree.AddRoot(policy.Root());
  std::deque<NodeId> unvisited;
  unvisited.push_back(tree.root());
  while (!unvisited.empty()) {
    const NodeId v = unvisited.front();
    unvisited.pop_front();
    const auto& node = tree.node(v);
    if (policy.Score(node.domain) > theta && node.depth < max_depth &&
        policy.CanSplit(node.domain)) {
      for (auto& child_domain : policy.Split(node.domain)) {
        unvisited.push_back(tree.AddChild(v, std::move(child_domain)));
      }
    }
  }
  return tree;
}

}  // namespace privtree

#endif  // PRIVTREE_CORE_PRIVTREE_H_
