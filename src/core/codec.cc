#include "core/codec.h"

#include <algorithm>

namespace privtree {

namespace {

constexpr std::size_t kBlock = 128;

/// Bits needed to represent `v` (0 for v == 0).
unsigned BitWidth32(std::uint32_t v) {
  unsigned bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// Stored byte length class of a u64 under group varint: 1, 2, 4 or 8.
unsigned VarintClass(std::uint64_t v) {
  if (v < (std::uint64_t{1} << 8)) return 0;   // 1 byte
  if (v < (std::uint64_t{1} << 16)) return 1;  // 2 bytes
  if (v < (std::uint64_t{1} << 32)) return 2;  // 4 bytes
  return 3;                                    // 8 bytes
}

constexpr unsigned kVarintBytes[4] = {1, 2, 4, 8};

}  // namespace

std::string PackDeltaI32(std::span<const std::int32_t> values) {
  std::string out;
  std::int32_t prev = 0;
  std::size_t i = 0;
  std::vector<std::uint32_t> zz(kBlock);
  while (i < values.size()) {
    const std::size_t count = std::min(kBlock, values.size() - i);
    std::uint32_t max_zz = 0;
    for (std::size_t k = 0; k < count; ++k) {
      // The delta is computed in unsigned arithmetic (wrap-around), so any
      // int32 pair round-trips without UB; zigzag keeps small magnitudes
      // small either way.
      const std::uint32_t delta =
          static_cast<std::uint32_t>(values[i + k]) -
          static_cast<std::uint32_t>(prev);
      zz[k] = ZigZag32(static_cast<std::int32_t>(delta));
      max_zz = std::max(max_zz, zz[k]);
      prev = values[i + k];
    }
    const unsigned width = BitWidth32(max_zz);
    out.push_back(static_cast<char>(width));
    BitWriter bits(&out);
    if (width > 0) {
      for (std::size_t k = 0; k < count; ++k) bits.Put(zz[k], width);
    }
    bits.Finish();
    i += count;
  }
  return out;
}

bool UnpackDeltaI32(std::string_view packed, std::size_t n,
                    std::vector<std::int32_t>* out) {
  std::vector<std::int32_t> values;
  values.reserve(n);
  std::int32_t prev = 0;
  std::size_t pos = 0;
  while (values.size() < n) {
    if (pos >= packed.size()) return false;
    const unsigned width = static_cast<unsigned char>(packed[pos++]);
    if (width > 32) return false;
    const std::size_t count = std::min(kBlock, n - values.size());
    const std::size_t bytes = (count * width + 7) / 8;
    if (packed.size() - pos < bytes) return false;
    BitReader bits(packed.substr(pos, bytes));
    for (std::size_t k = 0; k < count; ++k) {
      std::uint32_t zz = 0;
      if (width > 0 && !bits.Get(width, &zz)) return false;
      const std::uint32_t delta =
          static_cast<std::uint32_t>(UnZigZag32(zz));
      prev = static_cast<std::int32_t>(static_cast<std::uint32_t>(prev) +
                                       delta);
      values.push_back(prev);
    }
    pos += bytes;
  }
  if (pos != packed.size()) return false;  // Canonical: no trailing bytes.
  *out = std::move(values);
  return true;
}

std::string PackVarintGB(std::span<const std::uint64_t> values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); i += 4) {
    const std::size_t count = std::min<std::size_t>(4, values.size() - i);
    unsigned char control = 0;
    for (std::size_t k = 0; k < count; ++k) {
      control |= static_cast<unsigned char>(VarintClass(values[i + k])
                                            << (2 * k));
    }
    out.push_back(static_cast<char>(control));
    for (std::size_t k = 0; k < count; ++k) {
      const unsigned bytes = kVarintBytes[(control >> (2 * k)) & 3u];
      std::uint64_t v = values[i + k];
      for (unsigned b = 0; b < bytes; ++b) {
        out.push_back(static_cast<char>(v & 0xffu));
        v >>= 8;
      }
    }
  }
  return out;
}

bool UnpackVarintGB(std::string_view packed, std::size_t n,
                    std::vector<std::uint64_t>* out) {
  std::vector<std::uint64_t> values;
  values.reserve(n);
  std::size_t pos = 0;
  while (values.size() < n) {
    if (pos >= packed.size()) return false;
    const unsigned char control = static_cast<unsigned char>(packed[pos++]);
    const std::size_t count = std::min<std::size_t>(4, n - values.size());
    // Unused control slots of the tail group must be zero (canonical form).
    if (count < 4 && (control >> (2 * count)) != 0) return false;
    for (std::size_t k = 0; k < count; ++k) {
      const unsigned bytes = kVarintBytes[(control >> (2 * k)) & 3u];
      if (packed.size() - pos < bytes) return false;
      std::uint64_t v = 0;
      for (unsigned b = 0; b < bytes; ++b) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(packed[pos++]))
             << (8 * b);
      }
      values.push_back(v);
    }
  }
  if (pos != packed.size()) return false;
  *out = std::move(values);
  return true;
}

}  // namespace privtree
