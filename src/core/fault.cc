#include "core/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "core/byteio.h"

namespace privtree::fault {

namespace {

/// Deterministic uniform in [0, 1) from (seed, point name, hit index):
/// the same triple always fires or always passes, independent of thread
/// interleaving elsewhere in the process.
double FireDraw(std::uint64_t seed, std::string_view point,
                std::uint64_t hit_index) {
  std::uint64_t h = seed;
  for (const char c : point) {
    h = MixFingerprintWord(h, static_cast<unsigned char>(c));
  }
  h = MixFingerprintWord(h, point.size());
  h = MixFingerprintWord(h, hit_index);
  // Top 53 bits → [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

Kind ParseKind(std::string_view text) {
  if (text == "error") return Kind::kError;
  if (text == "partial") return Kind::kPartialWrite;
  if (text == "delay") return Kind::kDelay;
  if (text == "reset") return Kind::kConnReset;
  return Kind::kNone;
}

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kError: return "error";
    case Kind::kPartialWrite: return "partial";
    case Kind::kDelay: return "delay";
    case Kind::kConnReset: return "reset";
  }
  return "none";
}

bool Action::MaybeSleep() const {
  if (kind != Kind::kDelay) return kind != Kind::kNone;
  if (delay_millis > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_millis));
  }
  return false;  // A delay, once slept, is not a failure.
}

Status Action::ToStatus(std::string_view point) const {
  return Status::IOError("injected " + std::string(KindName(kind)) +
                         " fault at " + std::string(point));
}

Injector& Injector::Global() {
  static Injector* injector = new Injector();  // Leaked: process lifetime.
  return *injector;
}

Injector::Injector() {
  if (const char* seed_text = std::getenv("PRIVTREE_FAULT_SEED")) {
    seed_ = std::strtoull(seed_text, nullptr, 10);
  }
  if (const char* spec = std::getenv("PRIVTREE_FAULTS")) {
    // lint-ok: discarded-status — a malformed env spec arms nothing, and a
    // constructor has no caller to report to.
    (void)ArmFromSpec(spec);
  }
}

void Injector::Arm(PointSpec spec) {
  MutexLock lk(mu_);
  auto [it, inserted] = points_.try_emplace(spec.point);
  it->second = PointState{std::move(spec)};
  armed_points_.store(points_.size(), std::memory_order_relaxed);
}

Status Injector::ArmFromSpec(std::string_view text) {
  std::vector<PointSpec> parsed;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(';', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view item = text.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault spec needs <point>=<kind>: \"" +
                                     std::string(item) + "\"");
    }
    PointSpec spec;
    spec.point = std::string(item.substr(0, eq));
    std::string_view rest = item.substr(eq + 1);
    bool first = true;
    while (!rest.empty()) {
      std::size_t colon = rest.find(':');
      if (colon == std::string_view::npos) colon = rest.size();
      const std::string_view field = rest.substr(0, colon);
      rest = colon < rest.size() ? rest.substr(colon + 1)
                                 : std::string_view();
      if (first) {
        first = false;
        spec.kind = ParseKind(field);
        if (spec.kind == Kind::kNone) {
          return Status::InvalidArgument("unknown fault kind \"" +
                                         std::string(field) + "\"");
        }
        continue;
      }
      const std::size_t feq = field.find('=');
      if (feq == std::string_view::npos) {
        return Status::InvalidArgument("fault spec field needs k=v: \"" +
                                       std::string(field) + "\"");
      }
      const std::string_view key = field.substr(0, feq);
      const std::string value(field.substr(feq + 1));
      char* parse_end = nullptr;
      if (key == "p") {
        spec.probability = std::strtod(value.c_str(), &parse_end);
      } else if (key == "after") {
        spec.after = std::strtoull(value.c_str(), &parse_end, 10);
      } else if (key == "count") {
        spec.max_triggers = std::strtoull(value.c_str(), &parse_end, 10);
      } else if (key == "delay") {
        spec.delay_millis =
            static_cast<int>(std::strtol(value.c_str(), &parse_end, 10));
      } else {
        return Status::InvalidArgument("unknown fault spec field \"" +
                                       std::string(key) + "\"");
      }
      if (parse_end == value.c_str() || *parse_end != '\0') {
        return Status::InvalidArgument("bad fault spec value \"" + value +
                                       "\" for " + std::string(key));
      }
    }
    if (!(spec.probability >= 0.0 && spec.probability <= 1.0)) {
      return Status::InvalidArgument("fault probability out of [0,1]");
    }
    parsed.push_back(std::move(spec));
  }
  for (PointSpec& spec : parsed) Arm(std::move(spec));
  return Status::OK();
}

void Injector::Disarm(std::string_view point) {
  MutexLock lk(mu_);
  const auto it = points_.find(point);
  if (it == points_.end()) return;
  points_.erase(it);
  armed_points_.store(points_.size(), std::memory_order_relaxed);
}

void Injector::Reset() {
  MutexLock lk(mu_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

void Injector::SetSeed(std::uint64_t seed) {
  MutexLock lk(mu_);
  seed_ = seed;
}

std::uint64_t Injector::seed() const {
  MutexLock lk(mu_);
  return seed_;
}

Action Injector::Hit(std::string_view point) {
  MutexLock lk(mu_);
  const auto it = points_.find(point);
  if (it == points_.end()) return {};
  PointState& state = it->second;
  const std::uint64_t index = state.hits++;
  if (index < state.spec.after) return {};
  if (state.spec.max_triggers > 0 && state.fired >= state.spec.max_triggers) {
    return {};
  }
  if (state.spec.probability < 1.0 &&
      FireDraw(seed_, point, index) >= state.spec.probability) {
    return {};
  }
  ++state.fired;
  return {state.spec.kind, state.spec.delay_millis};
}

Injector::PointStats Injector::StatsFor(std::string_view point) const {
  MutexLock lk(mu_);
  const auto it = points_.find(point);
  if (it == points_.end()) return {};
  return {it->second.hits, it->second.fired};
}

std::vector<std::pair<std::string, Injector::PointStats>>
Injector::AllStats() const {
  MutexLock lk(mu_);
  std::vector<std::pair<std::string, PointStats>> out;
  out.reserve(points_.size());
  for (const auto& [name, state] : points_) {
    out.emplace_back(name, PointStats{state.hits, state.fired});
  }
  return out;
}

}  // namespace privtree::fault
