// Integer compression primitives for the synopsis envelope (format v3).
//
// The released synopses are mostly *structured* integers — tree parent
// links (small non-negative deltas in id order), per-cell granularities,
// quantized counts — and the PISA index-compression playbook (SIMD-BP128,
// Lemire & Boytsov 2015; group varint) applies directly:
//
//  * PackDeltaI32 / UnpackDeltaI32 — delta + zigzag + block bit-packing.
//    Values are delta-coded against their predecessor (v[-1] = 0), the
//    signed deltas zigzag-mapped to unsigned, and packed in blocks of 128
//    with one byte-width header per block (the scalar layout of SIMD-BP128:
//    each block stores its max bit width b, then ceil(count·b/8) LSB-first
//    bytes).  Tree parent arrays compress to well under a byte per node.
//
//  * PackVarintGB / UnpackVarintGB — group-varint over u64s: groups of 4
//    values share one control byte whose 2-bit fields select a stored width
//    of 1, 2, 4 or 8 bytes.  Used for quantized noisy counts (zigzagged
//    integers) and per-cell granularity lists.
//
//  * BitWriter / BitReader — an LSB-first bit stream for the fixed-width
//    side channels (the 2-bit box-bound codes of the compressed tree body).
//
// Every decoder is total: malformed input (truncation, an impossible bit
// width, a lying element count) returns false and never reads out of
// bounds, matching the ByteReader discipline the envelope loader builds on.
// Encoding is canonical and deterministic, so byte-identical synopses
// produce byte-identical envelopes.
#ifndef PRIVTREE_CORE_CODEC_H_
#define PRIVTREE_CORE_CODEC_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace privtree {

/// Maps a signed value to unsigned so small magnitudes of either sign get
/// small codes: 0,-1,1,-2,2... → 0,1,2,3,4...
inline std::uint32_t ZigZag32(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}
inline std::int32_t UnZigZag32(std::uint32_t v) {
  return static_cast<std::int32_t>(v >> 1) ^
         -static_cast<std::int32_t>(v & 1u);
}
inline std::uint64_t ZigZag64(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t UnZigZag64(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1u);
}

/// Delta + zigzag + 128-value block bit-packing of an int32 array.
std::string PackDeltaI32(std::span<const std::int32_t> values);

/// Inverse of PackDeltaI32 for a known element count.  `*out` is assigned
/// exactly `n` values on success; any mismatch between `packed` and `n`
/// (truncation, trailing bytes, a bit width over 32) fails cleanly.
bool UnpackDeltaI32(std::string_view packed, std::size_t n,
                    std::vector<std::int32_t>* out);

/// Group-varint encoding of a u64 array (groups of 4, one control byte).
std::string PackVarintGB(std::span<const std::uint64_t> values);

/// Inverse of PackVarintGB for a known element count; total like
/// UnpackDeltaI32.
bool UnpackVarintGB(std::string_view packed, std::size_t n,
                    std::vector<std::uint64_t>* out);

/// Appends fixed-width little bit fields to a byte string, LSB first.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Appends the low `bits` bits of `v` (bits <= 32).
  void Put(std::uint32_t v, unsigned bits) {
    acc_ |= static_cast<std::uint64_t>(v & ((bits < 32 ? (1u << bits) : 0u) - 1u))
            << filled_;
    filled_ += bits;
    while (filled_ >= 8) {
      out_->push_back(static_cast<char>(acc_ & 0xffu));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Flushes a trailing partial byte (zero-padded).  Call exactly once.
  void Finish() {
    if (filled_ > 0) {
      out_->push_back(static_cast<char>(acc_ & 0xffu));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  std::string* out_;
  std::uint64_t acc_ = 0;
  unsigned filled_ = 0;
};

/// Consumes the BitWriter stream; Get returns false on underflow.
class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  bool Get(unsigned bits, std::uint32_t* v) {
    while (filled_ < bits) {
      if (pos_ >= data_.size()) return false;
      acc_ |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(data_[pos_++]))
              << filled_;
      filled_ += 8;
    }
    *v = static_cast<std::uint32_t>(
        acc_ & ((bits < 32 ? (std::uint64_t{1} << bits) : 0x100000000ULL) - 1));
    acc_ >>= bits;
    filled_ -= bits;
    return true;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned filled_ = 0;
};

/// Snaps a released count to the nearest multiple of `quantum` (the opt-in
/// `count_quantum` MethodOptions knob).  Identity for quantum <= 0,
/// non-finite counts, or magnitudes whose multiple index leaves the exact
/// double-integer range — so the result is always either exact-on-grid or
/// the untouched input, and the envelope codec can verify which.
inline double QuantizeCount(double count, double quantum) {
  if (!(quantum > 0.0) || !std::isfinite(count)) return count;
  const double k = std::nearbyint(count / quantum);
  if (!(std::fabs(k) < 9007199254740992.0)) return count;  // 2^53
  return k * quantum;
}

}  // namespace privtree

#endif  // PRIVTREE_CORE_CODEC_H_
