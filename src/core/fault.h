// Deterministic, seeded fault injection for chaos testing the serving stack.
//
// A *fault point* is a named site in production code (e.g. "spill.write",
// "socket.send") that asks the global Injector, on every pass, whether an
// injected fault should fire here.  Points are compiled to zero-cost no-ops
// when PRIVTREE_NO_FAULT_INJECTION is defined; in the default build the
// disarmed fast path is a single relaxed atomic load (no locks, no map
// lookups), so leaving the hooks in release binaries costs nothing
// measurable.
//
// Determinism is the whole design: whether hit #k of point P fires is a pure
// function of (seed, P, k) — a SplitMix64 hash of the three, compared
// against the armed probability — so a chaos run with a fixed seed injects
// the *same* fault schedule every time, regardless of thread interleaving
// (each point serializes its own hit counter).  Re-running a failing chaos
// seed reproduces the failure.
//
// Arming is programmatic (Arm/Disarm/Reset, used by tests) or environmental:
// the first use reads PRIVTREE_FAULTS, a ';'-separated list of specs
//
//   <point>=<kind>[:p=<prob>][:after=<n>][:count=<n>][:delay=<millis>]
//
// with kinds `error` (the site fails with an injected IOError), `partial`
// (a write persists only a prefix), `delay` (the site sleeps), and `reset`
// (a connection is torn down mid-operation), e.g.
//
//   PRIVTREE_FAULTS="spill.write=partial:count=1;socket.send=reset:p=0.01"
//   PRIVTREE_FAULT_SEED=42
//
// Each site handles the kinds that make sense for it (a non-I/O site treats
// `partial` like `error`); `delay` is uniform — call Action::MaybeSleep().
#ifndef PRIVTREE_CORE_FAULT_H_
#define PRIVTREE_CORE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.h"
#include "dp/status.h"

namespace privtree::fault {

/// What an armed fault point does when it fires.
enum class Kind : std::uint32_t {
  kNone = 0,      ///< Not fired; proceed normally.
  kError,         ///< Fail the operation with an injected IOError.
  kPartialWrite,  ///< Persist/send only a prefix, then fail.
  kDelay,         ///< Sleep `delay_millis`, then proceed normally.
  kConnReset,     ///< Tear the connection down mid-operation.
};

/// Parses "error" / "partial" / "delay" / "reset"; kNone on anything else.
Kind ParseKind(std::string_view text);
const char* KindName(Kind kind);

/// The verdict one pass over a fault point receives.
struct Action {
  Kind kind = Kind::kNone;
  int delay_millis = 0;

  /// True when a fault fired here.
  explicit operator bool() const { return kind != Kind::kNone; }

  /// Sleeps out a kDelay action (no-op for every other kind) and returns
  /// true when the action still demands a failure (error/partial/reset).
  bool MaybeSleep() const;

  /// The canonical injected-failure Status for this action at `point`.
  Status ToStatus(std::string_view point) const;
};

/// One armed fault point.
struct PointSpec {
  std::string point;             ///< Site name, e.g. "spill.write".
  Kind kind = Kind::kError;
  double probability = 1.0;      ///< Chance each eligible hit fires.
  std::uint64_t after = 0;       ///< Skip the first `after` hits.
  std::uint64_t max_triggers = 0;  ///< Stop after this many fires; 0 = ∞.
  int delay_millis = 50;         ///< Sleep length for kDelay.
};

/// The process-wide fault registry.  All methods are thread-safe; the
/// disarmed Hit fast path (via the PRIVTREE_FAULT macro) never locks.
class Injector {
 public:
  struct PointStats {
    std::uint64_t hits = 0;   ///< Times the site was passed while armed.
    std::uint64_t fired = 0;  ///< Times a fault actually fired.
  };

  static Injector& Global();

  /// Arms (or re-arms, resetting counters for) one point.
  void Arm(PointSpec spec);

  /// Parses and arms a ';'-separated PRIVTREE_FAULTS spec list; arms
  /// nothing on a malformed spec.
  Status ArmFromSpec(std::string_view text);

  void Disarm(std::string_view point);

  /// Disarms every point and zeroes all counters (test isolation).
  void Reset();

  /// Seeds the deterministic fire schedule (default 1; also read from
  /// PRIVTREE_FAULT_SEED at first use).
  void SetSeed(std::uint64_t seed);
  std::uint64_t seed() const;

  /// True when any point is armed — the macro's lock-free gate.
  bool armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates one pass over `point`; called only when armed() (the macro
  /// short-circuits otherwise, but calling it disarmed is just a no-op).
  Action Hit(std::string_view point);

  PointStats StatsFor(std::string_view point) const;
  /// Every armed point with its counters (spec order not preserved).
  std::vector<std::pair<std::string, PointStats>> AllStats() const;

 private:
  Injector();

  struct PointState {
    PointSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  std::atomic<std::size_t> armed_points_{0};
  mutable Mutex mu_;
  std::uint64_t seed_ GUARDED_BY(mu_) = 1;
  std::map<std::string, PointState, std::less<>> points_ GUARDED_BY(mu_);
};

}  // namespace privtree::fault

// The per-site hook.  Usage:
//
//   if (auto f = PRIVTREE_FAULT("socket.send"); f && f.MaybeSleep()) {
//     return f.ToStatus("socket.send");
//   }
#ifdef PRIVTREE_NO_FAULT_INJECTION
#define PRIVTREE_FAULT(point) (::privtree::fault::Action{})
#else
#define PRIVTREE_FAULT(point)                            \
  (::privtree::fault::Injector::Global().armed()         \
       ? ::privtree::fault::Injector::Global().Hit(point) \
       : ::privtree::fault::Action{})
#endif

#endif  // PRIVTREE_CORE_FAULT_H_
