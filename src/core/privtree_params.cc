#include "core/privtree_params.h"

#include <cmath>

#include "dp/check.h"
#include "dp/rho.h"

namespace privtree {

PrivTreeParams PrivTreeParams::ForEpsilon(double epsilon, int fanout,
                                          double sensitivity) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GE(fanout, 2);
  PRIVTREE_CHECK_GT(sensitivity, 0.0);
  const double beta = static_cast<double>(fanout);
  PrivTreeParams params;
  params.lambda = (2.0 * beta - 1.0) / (beta - 1.0) * sensitivity / epsilon;
  params.delta = params.lambda * std::log(beta);
  params.theta = 0.0;
  return params;
}

PrivTreeParams PrivTreeParams::ForEpsilonGamma(double epsilon, double gamma,
                                               double sensitivity) {
  PRIVTREE_CHECK_GT(epsilon, 0.0);
  PRIVTREE_CHECK_GT(gamma, 0.0);
  PRIVTREE_CHECK_GT(sensitivity, 0.0);
  const double eg = std::exp(gamma);
  PrivTreeParams params;
  params.lambda = (2.0 * eg - 1.0) / (eg - 1.0) * sensitivity / epsilon;
  params.delta = gamma * params.lambda;
  params.theta = 0.0;
  return params;
}

double PrivTreeParams::GuaranteedEpsilon() const {
  Validate();
  return PrivTreeCostBound(lambda, delta);
}

void PrivTreeParams::Validate() const {
  PRIVTREE_CHECK_GT(lambda, 0.0);
  PRIVTREE_CHECK_GT(delta, 0.0);
  PRIVTREE_CHECK_GT(max_depth, 0);
}

}  // namespace privtree
