#include "eval/workload.h"

#include <cmath>
#include <vector>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

std::vector<Box> GenerateRangeQueries(const Box& domain, std::size_t count,
                                      const QuerySizeBand& band, Rng& rng) {
  PRIVTREE_CHECK_GT(band.min_fraction, 0.0);
  PRIVTREE_CHECK_LT(band.min_fraction, band.max_fraction);
  PRIVTREE_CHECK_LE(band.max_fraction, 1.0);
  const std::size_t d = domain.dim();
  std::vector<Box> out;
  out.reserve(count);
  std::vector<double> exponents(d);
  for (std::size_t q = 0; q < count; ++q) {
    const double fraction =
        band.min_fraction +
        rng.NextDouble() * (band.max_fraction - band.min_fraction);
    // Split log(fraction) across dimensions with a uniform simplex draw, so
    // each side fraction is fraction^{w_j} with Σ w_j = 1.
    double total = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      exponents[j] = -std::log(rng.NextOpenDouble());
      total += exponents[j];
    }
    std::vector<double> lo(d), hi(d);
    for (std::size_t j = 0; j < d; ++j) {
      const double side_fraction = std::pow(fraction, exponents[j] / total);
      const double side = side_fraction * domain.Width(j);
      const double start =
          domain.lo(j) + rng.NextDouble() * (domain.Width(j) - side);
      lo[j] = start;
      hi[j] = start + side;
    }
    out.emplace_back(std::move(lo), std::move(hi));
  }
  return out;
}

std::vector<BandedWorkload> GenerateBandedWorkloads(const Box& domain,
                                                    std::size_t per_band,
                                                    Rng& rng) {
  std::vector<BandedWorkload> out;
  out.reserve(std::size(kPaperBands));
  for (const QuerySizeBand& band : kPaperBands) {
    out.push_back(
        {band.name, GenerateRangeQueries(domain, per_band, band, rng)});
  }
  return out;
}

}  // namespace privtree
