#include "eval/runner.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "dp/budget.h"
#include "dp/check.h"
#include "eval/metrics.h"
#include "release/registry.h"
#include "serve/parallel_runner.h"

namespace privtree {

bool PaperScale() {
  const char* value = std::getenv("PRIVTREE_PAPER_SCALE");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

std::size_t Repetitions(std::size_t quick_default) {
  if (const char* value = std::getenv("PRIVTREE_REPS")) {
    const long parsed = std::strtol(value, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return PaperScale() ? 100 : quick_default;
}

std::size_t ScaledCardinality(std::size_t paper_n, std::size_t quick_n) {
  return PaperScale() ? paper_n : std::min(paper_n, quick_n);
}

double MeanOverReps(std::size_t reps, std::uint64_t seed,
                    const std::function<double(Rng&)>& body) {
  PRIVTREE_CHECK_GE(reps, 1u);
  Rng master(seed);
  double total = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Rng rng = master.Fork();
    total += body(rng);
  }
  return total / static_cast<double>(reps);
}

namespace {

/// Default options for one registry method: the grid-discretized backends
/// take their cell budget from the sweep configuration; everything else
/// runs on its built-in defaults.
release::MethodOptions DefaultSpecOptions(const std::string& name,
                                          std::int64_t discretization_cells) {
  release::MethodOptions options;
  if (name == "dawa" || name == "wavelet") {
    options.Set("target_total_cells", std::to_string(discretization_cells));
  }
  return options;
}

/// Paper-style column label, from the registry record (falls back to the
/// registry name when a backend registered no display label).
std::string DisplayName(const std::string& name) {
  const auto& entry = release::GlobalMethodRegistry().Get(name);
  return entry.display.empty() ? name : entry.display;
}

/// Whether a registry method supports `dim`-dimensional inputs at a
/// reasonable cost, per the registry's capability metadata: the hard
/// `required_dim` constraint (AG is 2-d only) and the advisory
/// `max_practical_dim` cost ceiling (complete hierarchies).
bool SupportsDim(const std::string& name, std::size_t dim) {
  const auto& entry = release::GlobalMethodRegistry().Get(name);
  if (entry.required_dim != 0 && dim != entry.required_dim) return false;
  if (entry.max_practical_dim != 0 && dim > entry.max_practical_dim) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<MethodSpec> ComparativeLineup(std::size_t dim,
                                          std::int64_t discretization_cells) {
  std::vector<std::string> order = {"privtree", "ug"};
  if (dim == 2) {
    order.push_back("ag");
    order.push_back("hierarchy");
  }
  order.push_back("dawa");
  order.push_back("wavelet");

  std::vector<MethodSpec> out;
  out.reserve(order.size());
  for (const std::string& name : order) {
    PRIVTREE_CHECK(release::GlobalMethodRegistry().Contains(name));
    out.push_back({name, DisplayName(name),
                   DefaultSpecOptions(name, discretization_cells)});
  }
  return out;
}

std::vector<MethodSpec> AllRegisteredSpecs(std::size_t dim,
                                           std::int64_t discretization_cells) {
  std::vector<MethodSpec> out;
  // Spatial lineups only: the sequence-kind methods (pst_privtree, ngram)
  // cannot fit a PointSet — they get their own sweeps (SequenceSpecs).
  for (const std::string& name : release::GlobalMethodRegistry().Names(
           release::DatasetKind::kSpatial)) {
    if (!SupportsDim(name, dim)) continue;
    out.push_back({name, DisplayName(name),
                   DefaultSpecOptions(name, discretization_cells)});
  }
  return out;
}

std::vector<MethodSpec> SequenceSpecs(std::size_t l_top) {
  std::vector<MethodSpec> out;
  for (const std::string& name : release::GlobalMethodRegistry().Names(
           release::DatasetKind::kSequence)) {
    release::MethodOptions options;
    options.Set("l_top", std::to_string(l_top));
    out.push_back({name, DisplayName(name), std::move(options)});
  }
  return out;
}

double RegistryMethodError(const MethodSpec& spec, const PointSet& points,
                           const Box& domain, double epsilon,
                           const std::vector<Box>& queries,
                           const std::vector<double>& exact,
                           std::size_t reps, std::uint64_t seed) {
  return RegistryMethodErrorBands(spec, points, domain, epsilon, {queries},
                                  {exact}, reps, seed)[0];
}

std::vector<double> RegistryMethodErrorBands(
    const MethodSpec& spec, const PointSet& points, const Box& domain,
    double epsilon, const std::vector<std::vector<Box>>& band_queries,
    const std::vector<std::vector<double>>& band_exact, std::size_t reps,
    std::uint64_t seed) {
  PRIVTREE_CHECK_GE(reps, 1u);
  PRIVTREE_CHECK_EQ(band_queries.size(), band_exact.size());
  for (std::size_t band = 0; band < band_queries.size(); ++band) {
    PRIVTREE_CHECK_EQ(band_queries[band].size(), band_exact[band].size());
  }
  const double smoothing = DefaultSmoothing(points.size());

  // Every job's randomness is forked here, on one thread, in rep order —
  // the execution schedule can then not perturb any synopsis.
  Rng master(seed);
  std::vector<serve::FitJob> jobs;
  jobs.reserve(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    jobs.push_back({spec.name, spec.options, epsilon, master.Fork()});
  }
  const serve::ParallelRunner runner(serve::SharedPool(),
                                     &serve::SharedSynopsisCache());
  const auto fitted = runner.FitAll(points, domain, std::move(jobs));

  // Per-(rep, band) errors land in fixed slots; the final reduction runs in
  // rep order, so the mean is identical at any thread count.
  std::vector<std::vector<double>> errors(
      reps, std::vector<double>(band_queries.size(), 0.0));
  serve::SharedPool().ParallelFor(reps, [&](std::size_t rep) {
    for (std::size_t band = 0; band < band_queries.size(); ++band) {
      const std::vector<Box>& queries = band_queries[band];
      if (queries.empty()) continue;
      const std::vector<double> answers = fitted[rep]->QueryBatch(queries);
      double total = 0.0;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        total += RelativeError(answers[q], band_exact[band][q], smoothing);
      }
      errors[rep][band] = total / static_cast<double>(queries.size());
    }
  });

  std::vector<double> means(band_queries.size(), 0.0);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t band = 0; band < band_queries.size(); ++band) {
      means[band] += errors[rep][band];
    }
  }
  for (double& m : means) m /= static_cast<double>(reps);
  return means;
}

double RegistrySequenceMethodError(
    const MethodSpec& spec, const SequenceDataset& data, double epsilon,
    const std::vector<release::SequenceQuery>& queries,
    const std::vector<double>& exact, std::size_t reps, std::uint64_t seed) {
  PRIVTREE_CHECK_GE(reps, 1u);
  PRIVTREE_CHECK_EQ(queries.size(), exact.size());
  const double smoothing = DefaultSmoothing(data.size());

  Rng master(seed);
  std::vector<serve::FitJob> jobs;
  jobs.reserve(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    jobs.push_back({spec.name, spec.options, epsilon, master.Fork()});
  }
  const serve::ParallelRunner runner(serve::SharedPool(),
                                     &serve::SharedSynopsisCache());
  const auto fitted =
      runner.FitAll(release::Dataset(data), std::move(jobs));

  std::vector<double> errors(reps, 0.0);
  serve::SharedPool().ParallelFor(reps, [&](std::size_t rep) {
    if (queries.empty()) return;
    const std::vector<double> answers =
        fitted[rep]->QueryBatch(std::span(queries));
    double total = 0.0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      total += RelativeError(answers[q], exact[q], smoothing);
    }
    errors[rep] = total / static_cast<double>(queries.size());
  });

  double mean = 0.0;
  for (const double e : errors) mean += e;
  return mean / static_cast<double>(reps);
}

double RegistrySequenceModelMetric(
    const MethodSpec& spec, const SequenceDataset& data, double epsilon,
    std::size_t reps, std::uint64_t seed,
    const std::function<double(const SequenceModel&, Rng&)>& metric) {
  PRIVTREE_CHECK_GE(reps, 1u);

  // Fit streams are forked first, then the metric streams, all on one
  // thread in rep order — neither the execution schedule nor the metric's
  // own draws can perturb any synopsis or any other rep's metric.
  Rng master(seed);
  std::vector<serve::FitJob> jobs;
  jobs.reserve(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    jobs.push_back({spec.name, spec.options, epsilon, master.Fork()});
  }
  std::vector<Rng> metric_rngs;
  metric_rngs.reserve(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    metric_rngs.push_back(master.Fork());
  }
  const serve::ParallelRunner runner(serve::SharedPool(),
                                     &serve::SharedSynopsisCache());
  const auto fitted = runner.FitAll(release::Dataset(data), std::move(jobs));

  std::vector<double> values(reps, 0.0);
  serve::SharedPool().ParallelFor(reps, [&](std::size_t rep) {
    const SequenceModel* model = fitted[rep]->sequence_model();
    PRIVTREE_CHECK(model != nullptr);
    values[rep] = metric(*model, metric_rngs[rep]);
  });

  double mean = 0.0;
  for (const double v : values) mean += v;
  return mean / static_cast<double>(reps);
}

}  // namespace privtree
