#include "eval/runner.h"

#include <algorithm>
#include <cstdlib>

#include "dp/check.h"

namespace privtree {

bool PaperScale() {
  const char* value = std::getenv("PRIVTREE_PAPER_SCALE");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

std::size_t Repetitions(std::size_t quick_default) {
  if (const char* value = std::getenv("PRIVTREE_REPS")) {
    const long parsed = std::strtol(value, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return PaperScale() ? 100 : quick_default;
}

std::size_t ScaledCardinality(std::size_t paper_n, std::size_t quick_n) {
  return PaperScale() ? paper_n : std::min(paper_n, quick_n);
}

double MeanOverReps(std::size_t reps, std::uint64_t seed,
                    const std::function<double(Rng&)>& body) {
  PRIVTREE_CHECK_GE(reps, 1u);
  Rng master(seed);
  double total = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Rng rng = master.Fork();
    total += body(rng);
  }
  return total / static_cast<double>(reps);
}

}  // namespace privtree
