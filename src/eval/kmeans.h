// Plain Lloyd's k-means, used to evaluate private synthetic data on the
// clustering task the paper's introduction motivates ([48]): cluster the
// synthetic points, then measure the resulting centers' cost on the real
// data.
#ifndef PRIVTREE_EVAL_KMEANS_H_
#define PRIVTREE_EVAL_KMEANS_H_

#include <cstddef>
#include <vector>

#include "dp/rng.h"
#include "spatial/point_set.h"

namespace privtree {

/// Result of a k-means run: centers flattened row-major (k × dim).
struct KMeansResult {
  std::size_t k = 0;
  std::size_t dim = 0;
  std::vector<double> centers;
  std::size_t iterations = 0;
};

/// Runs Lloyd's algorithm with k-means++-style seeding; stops after
/// `max_iterations` or when assignments stabilize.
KMeansResult KMeans(const PointSet& points, std::size_t k,
                    std::size_t max_iterations, Rng& rng);

/// Mean squared distance of every point in `points` to its nearest center.
double KMeansCost(const PointSet& points, const KMeansResult& centers);

}  // namespace privtree

#endif  // PRIVTREE_EVAL_KMEANS_H_
