// Small experiment-harness utilities shared by the bench binaries:
// repetition with forked deterministic RNG streams, environment-variable
// scaling, the paper's ε grid, and registry-driven method sweeps (the
// comparative benches iterate MethodSpecs built from release::
// GlobalMethodRegistry() instead of hard-coding per-method dispatch).
#ifndef PRIVTREE_EVAL_RUNNER_H_
#define PRIVTREE_EVAL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dp/rng.h"
#include "release/options.h"
#include "release/sequence_query.h"
#include "seq/sequence.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {

class SequenceModel;  // seq/model.h

/// The ε grid used throughout Section 6.
inline const std::vector<double>& PaperEpsilons() {
  static const std::vector<double> epsilons = {0.05, 0.1, 0.2, 0.4, 0.8, 1.6};
  return epsilons;
}

/// True when PRIVTREE_PAPER_SCALE is set to a non-zero value: benches then
/// use the full Table 2/3 cardinalities and 100 repetitions.
bool PaperScale();

/// Number of repetitions: PRIVTREE_REPS if set, else 100 at paper scale,
/// else `quick_default`.
std::size_t Repetitions(std::size_t quick_default);

/// Dataset cardinality: `paper_n` at paper scale, else
/// min(paper_n, quick_n).
std::size_t ScaledCardinality(std::size_t paper_n, std::size_t quick_n);

/// Runs `body` `reps` times, each with an independent deterministic RNG
/// forked from `seed`, and returns the mean of the returned values.
double MeanOverReps(std::size_t reps, std::uint64_t seed,
                    const std::function<double(Rng&)>& body);

/// One registry-backed method in a comparative sweep.
struct MethodSpec {
  std::string name;     ///< Registry key ("privtree", "ug", ...).
  std::string display;  ///< Column label ("PrivTree", "UG", ...).
  release::MethodOptions options;
};

/// The paper's comparative lineup (Figure 5 / Table 2) for a d-dimensional
/// dataset, in presentation order: PrivTree, UG, then AG and Hierarchy on
/// 2-d data only (as in the paper), DAWA, Privelet*.  The grid-discretized
/// methods get `discretization_cells` as their target cell count.
std::vector<MethodSpec> ComparativeLineup(std::size_t dim,
                                          std::int64_t discretization_cells);

/// Every spatial-kind method in the global registry that can fit
/// `dim`-dimensional data (AG is restricted to 2-d), in registry
/// (sorted-name) order, with the same discretization defaults as
/// ComparativeLineup.
std::vector<MethodSpec> AllRegisteredSpecs(std::size_t dim,
                                           std::int64_t discretization_cells);

/// Every sequence-kind method in the global registry (pst_privtree,
/// ngram), in registry order, each configured with the public length cap
/// `l_top` of the swept dataset.
std::vector<MethodSpec> SequenceSpecs(std::size_t l_top);

/// Builds `spec` afresh `reps` times (independent forked RNG streams and a
/// fresh ε budget each time), answers the workload with QueryBatch, and
/// returns the mean smoothed relative error (Δ = 0.1%·n).  Fits are sharded
/// across serve::SharedPool() and memoized in serve::SharedSynopsisCache(),
/// so --threads/PRIVTREE_THREADS parallelizes every registry-driven bench;
/// results are bit-for-bit identical at any thread count.
double RegistryMethodError(const MethodSpec& spec, const PointSet& points,
                           const Box& domain, double epsilon,
                           const std::vector<Box>& queries,
                           const std::vector<double>& exact,
                           std::size_t reps, std::uint64_t seed);

/// As RegistryMethodError, but evaluates every workload in `band_queries`
/// against the *same* `reps` fitted synopses (one fit sweep, many query
/// bands) and returns one mean error per band.  This is the economical
/// shape for the figure benches, which report small/medium/large bands of
/// one release.
std::vector<double> RegistryMethodErrorBands(
    const MethodSpec& spec, const PointSet& points, const Box& domain,
    double epsilon, const std::vector<std::vector<Box>>& band_queries,
    const std::vector<std::vector<double>>& band_exact, std::size_t reps,
    std::uint64_t seed);

/// The sequence twin of RegistryMethodError: fits the sequence-kind `spec`
/// (pst_privtree / ngram) `reps` times through serve::SharedPool() +
/// SharedSynopsisCache() — the same pre-forked-Rng discipline, so results
/// are bit-for-bit identical at any thread count — answers `queries`
/// through the SequenceQuery batch path, and returns the mean smoothed
/// relative error against `exact`.
double RegistrySequenceMethodError(
    const MethodSpec& spec, const SequenceDataset& data, double epsilon,
    const std::vector<release::SequenceQuery>& queries,
    const std::vector<double>& exact, std::size_t reps, std::uint64_t seed);

/// Model-level sibling of RegistrySequenceMethodError for the figure
/// benches whose metrics read the fitted generative model directly (top-k
/// string mining, synthetic-sequence sampling) instead of a SequenceQuery
/// workload.  Fits `spec` `reps` times through serve::SharedPool() +
/// SharedSynopsisCache(), then evaluates `metric` on each fitted
/// Method::sequence_model() with its own pre-forked Rng stream (forked
/// after the fit streams, in rep order), and returns the mean.  Results
/// are bit-for-bit identical at any thread count.
double RegistrySequenceModelMetric(
    const MethodSpec& spec, const SequenceDataset& data, double epsilon,
    std::size_t reps, std::uint64_t seed,
    const std::function<double(const SequenceModel&, Rng&)>& metric);

}  // namespace privtree

#endif  // PRIVTREE_EVAL_RUNNER_H_
