// Small experiment-harness utilities shared by the bench binaries:
// repetition with forked deterministic RNG streams, environment-variable
// scaling, and the paper's ε grid.
#ifndef PRIVTREE_EVAL_RUNNER_H_
#define PRIVTREE_EVAL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "dp/rng.h"

namespace privtree {

/// The ε grid used throughout Section 6.
inline const std::vector<double>& PaperEpsilons() {
  static const std::vector<double> epsilons = {0.05, 0.1, 0.2, 0.4, 0.8, 1.6};
  return epsilons;
}

/// True when PRIVTREE_PAPER_SCALE is set to a non-zero value: benches then
/// use the full Table 2/3 cardinalities and 100 repetitions.
bool PaperScale();

/// Number of repetitions: PRIVTREE_REPS if set, else 100 at paper scale,
/// else `quick_default`.
std::size_t Repetitions(std::size_t quick_default);

/// Dataset cardinality: `paper_n` at paper scale, else
/// min(paper_n, quick_n).
std::size_t ScaledCardinality(std::size_t paper_n, std::size_t quick_n);

/// Runs `body` `reps` times, each with an independent deterministic RNG
/// forked from `seed`, and returns the mean of the returned values.
double MeanOverReps(std::size_t reps, std::uint64_t seed,
                    const std::function<double(Rng&)>& body);

}  // namespace privtree

#endif  // PRIVTREE_EVAL_RUNNER_H_
