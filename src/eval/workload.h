// Range-count query workloads (Section 6.1): sets of random rectangles
// whose volume covers a given fraction band of the data domain — small
// [0.01%, 0.1%), medium [0.1%, 1%) and large [1%, 10%).
#ifndef PRIVTREE_EVAL_WORKLOAD_H_
#define PRIVTREE_EVAL_WORKLOAD_H_

#include <string>
#include <vector>

#include "dp/rng.h"
#include "spatial/box.h"

namespace privtree {

/// The paper's three query-size bands.
struct QuerySizeBand {
  const char* name;
  double min_fraction;
  double max_fraction;
};

inline constexpr QuerySizeBand kSmallQueries{"small", 1e-4, 1e-3};
inline constexpr QuerySizeBand kMediumQueries{"medium", 1e-3, 1e-2};
inline constexpr QuerySizeBand kLargeQueries{"large", 1e-2, 1e-1};

/// The three bands in presentation order, for callers that sweep all of
/// them (Figure 5 and friends).
inline constexpr QuerySizeBand kPaperBands[] = {kSmallQueries, kMediumQueries,
                                                kLargeQueries};

/// One band's query set, ready for batch evaluation through
/// release::Method::QueryBatch.
struct BandedWorkload {
  std::string band;          ///< Band name ("small", "medium", "large").
  std::vector<Box> queries;  ///< Random boxes inside the domain.
};

/// Generates `count` random boxes inside `domain`, each covering a volume
/// fraction drawn uniformly from [band.min_fraction, band.max_fraction).
/// Aspect ratios are random (log-volume split over dimensions via a uniform
/// simplex draw) and positions uniform.
std::vector<Box> GenerateRangeQueries(const Box& domain, std::size_t count,
                                      const QuerySizeBand& band, Rng& rng);

/// One workload per paper band, `per_band` queries each, drawn from `rng`
/// in band order (so a fixed seed fixes every band's query set).
std::vector<BandedWorkload> GenerateBandedWorkloads(const Box& domain,
                                                    std::size_t per_band,
                                                    Rng& rng);

}  // namespace privtree

#endif  // PRIVTREE_EVAL_WORKLOAD_H_
