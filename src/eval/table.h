// Aligned table printing for the bench binaries: one row per parameter
// setting, one column per method/series, in the layout of the paper's
// figures and tables.
#ifndef PRIVTREE_EVAL_TABLE_H_
#define PRIVTREE_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace privtree {

/// Accumulates rows of (label, values) and prints them aligned.
class TablePrinter {
 public:
  /// `row_header` names the first column (e.g. "epsilon"); `columns` name
  /// the value columns (e.g. method names).
  TablePrinter(std::string title, std::string row_header,
               std::vector<std::string> columns);

  /// Appends a row; values.size() must equal the number of columns.  NaN
  /// values print as "-" (method not applicable).
  void AddRow(const std::string& label, const std::vector<double>& values);

  /// Renders the table to stdout.
  void Print() const;

 private:
  std::string title_;
  std::string row_header_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

/// Formats a double compactly (4 significant digits; "-" for NaN).
std::string FormatCell(double value);

}  // namespace privtree

#endif  // PRIVTREE_EVAL_TABLE_H_
