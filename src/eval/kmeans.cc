#include "eval/kmeans.h"

#include <cmath>
#include <limits>

#include "dp/check.h"
#include "dp/distributions.h"

namespace privtree {

namespace {

double SquaredDistance(std::span<const double> point, const double* center,
                       std::size_t dim) {
  double total = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    const double diff = point[j] - center[j];
    total += diff * diff;
  }
  return total;
}

}  // namespace

KMeansResult KMeans(const PointSet& points, std::size_t k,
                    std::size_t max_iterations, Rng& rng) {
  PRIVTREE_CHECK_GE(k, 1u);
  PRIVTREE_CHECK(!points.empty());
  const std::size_t dim = points.dim();
  const std::size_t n = points.size();
  KMeansResult result;
  result.k = k;
  result.dim = dim;
  result.centers.resize(k * dim);

  // k-means++ seeding: first center uniform, the rest ∝ D²(x).
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  {
    const std::size_t first = rng.NextBounded(n);
    const auto p = points.point(first);
    std::copy(p.begin(), p.end(), result.centers.begin());
  }
  for (std::size_t c = 1; c < k; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(
          min_dist[i], SquaredDistance(points.point(i),
                                       &result.centers[(c - 1) * dim], dim));
    }
    double total = 0.0;
    for (double d : min_dist) total += d;
    std::size_t chosen = n - 1;
    if (total > 0.0) {
      double target = rng.NextDouble() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= min_dist[i];
        if (target < 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.NextBounded(n);
    }
    const auto p = points.point(chosen);
    std::copy(p.begin(), p.end(), result.centers.begin() + c * dim);
  }

  // Lloyd iterations.
  std::vector<std::size_t> assignment(n, 0);
  std::vector<double> sums(k * dim);
  std::vector<std::size_t> counts(k);
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = points.point(i);
      std::size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double dist =
            SquaredDistance(p, &result.centers[c * dim], dim);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    result.iterations = iteration + 1;
    if (!changed && iteration > 0) break;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = points.point(i);
      for (std::size_t j = 0; j < dim; ++j) {
        sums[assignment[i] * dim + j] += p[j];
      }
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Keep the old center for empty ones.
      for (std::size_t j = 0; j < dim; ++j) {
        result.centers[c * dim + j] =
            sums[c * dim + j] / static_cast<double>(counts[c]);
      }
    }
  }
  return result;
}

double KMeansCost(const PointSet& points, const KMeansResult& centers) {
  PRIVTREE_CHECK(!points.empty());
  PRIVTREE_CHECK_EQ(points.dim(), centers.dim);
  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points.point(i);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centers.k; ++c) {
      best = std::min(best, SquaredDistance(
                                p, &centers.centers[c * centers.dim],
                                centers.dim));
    }
    total += best;
  }
  return total / static_cast<double>(points.size());
}

}  // namespace privtree
