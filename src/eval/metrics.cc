#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "dp/check.h"

namespace privtree {

double RelativeError(double estimate, double truth, double smoothing) {
  PRIVTREE_CHECK_GT(smoothing, 0.0);
  return std::abs(estimate - truth) / std::max(truth, smoothing);
}

double DefaultSmoothing(std::size_t cardinality) {
  return std::max(0.001 * static_cast<double>(cardinality), 1e-12);
}

double MeanRelativeError(const std::vector<Box>& queries,
                         const std::vector<double>& exact_answers,
                         const std::function<double(const Box&)>& answer,
                         std::size_t cardinality) {
  PRIVTREE_CHECK_EQ(queries.size(), exact_answers.size());
  PRIVTREE_CHECK(!queries.empty());
  const double smoothing = DefaultSmoothing(cardinality);
  double total = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    total += RelativeError(answer(queries[i]), exact_answers[i], smoothing);
  }
  return total / static_cast<double>(queries.size());
}

std::vector<double> ExactAnswers(const std::vector<Box>& queries,
                                 const PointSet& points) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const Box& q : queries) {
    out.push_back(static_cast<double>(points.ExactRangeCount(q)));
  }
  return out;
}

double TotalVariationDistance(const std::vector<double>& a,
                              const std::vector<double>& b) {
  const std::size_t size = std::max(a.size(), b.size());
  double total_a = 0.0, total_b = 0.0;
  for (double v : a) total_a += std::max(v, 0.0);
  for (double v : b) total_b += std::max(v, 0.0);
  if (total_a <= 0.0 || total_b <= 0.0) return 1.0;
  double distance = 0.0;
  for (std::size_t i = 0; i < size; ++i) {
    const double pa = i < a.size() ? std::max(a[i], 0.0) / total_a : 0.0;
    const double pb = i < b.size() ? std::max(b[i], 0.0) / total_b : 0.0;
    distance += std::abs(pa - pb);
  }
  return 0.5 * distance;
}

}  // namespace privtree
