// Accuracy metrics used in Section 6: smoothed relative error for range
// queries, precision for top-k mining (in seq/topk.h) and total variation
// distance for distributions.
#ifndef PRIVTREE_EVAL_METRICS_H_
#define PRIVTREE_EVAL_METRICS_H_

#include <functional>
#include <vector>

#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {

/// Relative error with smoothing: |est − truth| / max(truth, Δ).
double RelativeError(double estimate, double truth, double smoothing);

/// The paper's smoothing factor Δ = 0.1% of the dataset cardinality.
double DefaultSmoothing(std::size_t cardinality);

/// Mean relative error of `answer` over the workload, against exact counts
/// computed from `points` (Δ = 0.1%·n).
double MeanRelativeError(const std::vector<Box>& queries,
                         const std::vector<double>& exact_answers,
                         const std::function<double(const Box&)>& answer,
                         std::size_t cardinality);

/// Exact answers q(D) for a workload (one O(n) scan per query).
std::vector<double> ExactAnswers(const std::vector<Box>& queries,
                                 const PointSet& points);

/// Total variation distance between two non-negative histograms (each is
/// normalized to a probability distribution first; shorter histograms are
/// zero-padded).  Returns a value in [0, 1].
double TotalVariationDistance(const std::vector<double>& a,
                              const std::vector<double>& b);

}  // namespace privtree

#endif  // PRIVTREE_EVAL_METRICS_H_
