#include "eval/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dp/check.h"

namespace privtree {

TablePrinter::TablePrinter(std::string title, std::string row_header,
                           std::vector<std::string> columns)
    : title_(std::move(title)),
      row_header_(std::move(row_header)),
      columns_(std::move(columns)) {}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values) {
  PRIVTREE_CHECK_EQ(values.size(), columns_.size());
  rows_.emplace_back(label, values);
}

std::string FormatCell(double value) {
  if (std::isnan(value)) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

void TablePrinter::Print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  // Column widths.
  std::size_t label_width = row_header_.size();
  for (const auto& [label, values] : rows_) {
    label_width = std::max(label_width, label.size());
  }
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& [label, values] : rows_) {
      widths[c] = std::max(widths[c], FormatCell(values[c]).size());
    }
  }
  std::printf("%-*s", static_cast<int>(label_width + 2), row_header_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%*s", static_cast<int>(widths[c] + 2), columns_[c].c_str());
  }
  std::printf("\n");
  for (const auto& [label, values] : rows_) {
    std::printf("%-*s", static_cast<int>(label_width + 2), label.c_str());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%*s", static_cast<int>(widths[c] + 2),
                  FormatCell(values[c]).c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace privtree
