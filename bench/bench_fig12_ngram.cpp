// Figure 12 (Appendix C): sensitivity of N-gram to its exploration-tree
// height h = n_max ∈ {3, ..., 7}, measured by top-k precision.
//
// Every fit rides the release registry via
// eval::RegistrySequenceModelMetric, so the k ∈ {50, 100, 200} sweep
// re-uses each (ε, h) synopsis from serve::SharedSynopsisCache instead of
// refitting it three times.
//
// Expected shape: h = 5 (the N-gram paper's recommendation) among the best
// overall, with h = 4 a close competitor.
#include <cstdio>

#include "bench/bench_seq_common.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "release/options.h"
#include "seq/model.h"
#include "seq/topk.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const SequenceCase data = MakeSequenceCase(name);
  const std::size_t reps = Repetitions(3);
  std::vector<std::string> columns;
  for (int h = 3; h <= 7; ++h) columns.push_back("h=" + std::to_string(h));
  for (std::size_t k : {std::size_t{50}, std::size_t{100}, std::size_t{200}}) {
    const TopKStrings exact = ExactTopKStrings(data.raw, k, kTopKMaxLen);
    TablePrinter table("Figure 12: " + name + " - top" + std::to_string(k) +
                           " precision, N-gram height sweep",
                       "epsilon", columns);
    for (double epsilon : PaperEpsilons()) {
      std::vector<double> row;
      for (int h = 3; h <= 7; ++h) {
        release::MethodOptions options;
        options.Set("l_top", std::to_string(data.l_top));
        options.Set("n_max", std::to_string(h));
        const MethodSpec spec{"ngram", "N-gram", std::move(options)};
        row.push_back(RegistrySequenceModelMetric(
            spec, data.truncated, epsilon, reps,
            0xF1C ^ static_cast<std::uint64_t>(h),
            [&](const SequenceModel& model, Rng&) {
              return TopKPrecision(exact, TopKFromModel(model, k, kTopKMaxLen));
            }));
      }
      table.AddRow(FormatCell(epsilon), row);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 12 (PrivTree, SIGMOD 2016): impact of the\n"
      "tree height h (= n_max) on N-gram.\n");
  privtree::bench::RunDataset("mooc");
  privtree::bench::RunDataset("msnbc");
  return 0;
}
