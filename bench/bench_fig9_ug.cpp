// Figure 9 (Appendix C): sensitivity of UG to its grid granularity — the
// heuristic cell count is scaled by r ∈ {1/9, 1/3, 1, 3, 9}.
//
// Expected shape: no single r dominates, but r = 1 (the published
// heuristic) is among the best overall.
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/table.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const std::vector<double> scales = {1.0 / 9.0, 1.0 / 3.0, 1.0, 3.0, 9.0};
  const std::vector<std::string> columns = {"r=1/9", "r=1/3", "r=1", "r=3",
                                            "r=9"};
  // errors[band][epsilon index][scale index]; one fit sweep per (ε, r)
  // serves all three bands.
  std::vector<std::vector<std::vector<double>>> errors(
      BandNames().size(),
      std::vector<std::vector<double>>(PaperEpsilons().size()));
  for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
    const double epsilon = PaperEpsilons()[e];
    for (double r : scales) {
      const MethodSpec spec{"ug", "UG", {{"cell_scale", OptionValue(r)}}};
      const std::vector<double> band_errors = RegistryBandErrors(
          data, spec, epsilon, reps,
          0xF19 ^ static_cast<std::uint64_t>(r * 100 + epsilon * 1e4));
      for (std::size_t band = 0; band < band_errors.size(); ++band) {
        errors[band][e].push_back(band_errors[band]);
      }
    }
  }
  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("Figure 9: " + name + " - " + BandNames()[band] +
                           " queries, UG grid-scale sweep",
                       "epsilon", columns);
    for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
      table.AddRow(FormatCell(PaperEpsilons()[e]), errors[band][e]);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 9 (PrivTree, SIGMOD 2016): impact of the\n"
      "grid granularity scale r on UG.\n");
  for (const char* name : {"road", "gowalla", "nyc", "beijing"}) {
    privtree::bench::RunDataset(name);
  }
  return 0;
}
