// Ablation of the budget split between tree shape and counts — the design
// choice of Section 3.4 (spatial: ε/2 + ε/2) and Section 4.2 (sequences:
// ε/β for the tree, ε(β−1)/β for the histograms).
//
// Expected shape: the paper's choices sit at or near the minimum of each
// sweep; starving either stage hurts.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_seq_common.h"
#include "eval/table.h"
#include "seq/pst_privtree.h"
#include "seq/topk.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace bench {
namespace {

void RunSpatial(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const std::vector<double> fractions = {0.1, 0.25, 0.5, 0.75, 0.9};
  std::vector<std::string> columns;
  for (double f : fractions) columns.push_back("tree=" + FormatCell(f));

  TablePrinter table("Budget ablation: " + name +
                         " - medium queries, tree-budget fraction sweep "
                         "(paper: 0.5)",
                     "epsilon", columns);
  for (double epsilon : PaperEpsilons()) {
    std::vector<double> row;
    for (double fraction : fractions) {
      row.push_back(SweepError(
          data, /*band=*/1, reps,
          0xBD1 ^ static_cast<std::uint64_t>(fraction * 100),
          [&, fraction](Rng& rng) -> AnswerFn {
            PrivTreeHistogramOptions options;
            options.tree_budget_fraction = fraction;
            auto hist = std::make_shared<SpatialHistogram>(
                BuildPrivTreeHistogram(data.points, data.domain, epsilon,
                                       options, rng));
            return [hist](const Box& q) { return hist->Query(q); };
          }));
    }
    table.AddRow(FormatCell(epsilon), row);
  }
  table.Print();
}

void RunSequence(const std::string& name) {
  const SequenceCase data = MakeSequenceCase(name);
  const std::size_t reps = Repetitions(3);
  const double paper_fraction =
      1.0 / static_cast<double>(data.truncated.alphabet_size() + 1);
  const std::vector<double> fractions = {paper_fraction, 0.25, 0.5, 0.75};
  std::vector<std::string> columns = {"paper(1/beta)"};
  for (std::size_t i = 1; i < fractions.size(); ++i) {
    columns.push_back("tree=" + FormatCell(fractions[i]));
  }
  const std::size_t k = 100;
  const TopKStrings exact = ExactTopKStrings(data.raw, k, kTopKMaxLen);

  TablePrinter table("Budget ablation: " + name +
                         " - top100 precision, tree-budget fraction sweep",
                     "epsilon", columns);
  for (double epsilon : PaperEpsilons()) {
    std::vector<double> row;
    for (double fraction : fractions) {
      row.push_back(MeanOverReps(
          reps, 0xBD2 ^ static_cast<std::uint64_t>(fraction * 1000),
          [&](Rng& rng) {
            PrivatePstOptions options;
            options.l_top = data.l_top;
            options.tree_budget_fraction = fraction;
            const auto result =
                BuildPrivatePst(data.truncated, epsilon, options, rng);
            return TopKPrecision(
                exact, TopKFromModel(result.model, k, kTopKMaxLen));
          }));
    }
    table.AddRow(FormatCell(epsilon), row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Ablation: budget split between decomposition shape and released\n"
      "counts (Sections 3.4 and 4.2).\n");
  privtree::bench::RunSpatial("road");
  privtree::bench::RunSequence("msnbc");
  return 0;
}
