// Ablation (Section 3.1's motivating dilemma, made quantitative): the
// Algorithm-1 baseline SimpleTree swept over its height limit h, against
// PrivTree at the same ε.
//
// Expected shape: every h loses to PrivTree — small h cannot resolve the
// dense regions, large h drowns the split decisions in noise (λ = h/ε).
// This is the experiment that motivates the whole paper.
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/table.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const std::vector<std::int32_t> heights = {2, 4, 6, 8, 10, 12};
  std::vector<std::string> columns = {"PrivTree"};
  for (std::int32_t h : heights) {
    columns.push_back("Alg1 h=" + std::to_string(h));
  }
  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("Ablation: " + name + " - " + BandNames()[band] +
                           " queries, PrivTree vs Algorithm 1 (h sweep)",
                       "epsilon", columns);
    for (double epsilon : PaperEpsilons()) {
      std::vector<double> row;
      row.push_back(SweepError(
          data, band, reps, 0xAB1,
          [&](Rng& rng) -> AnswerFn {
            auto hist = std::make_shared<SpatialHistogram>(
                BuildPrivTreeHistogram(data.points, data.domain, epsilon, {},
                                       rng));
            return [hist](const Box& q) { return hist->Query(q); };
          }));
      for (std::int32_t h : heights) {
        row.push_back(SweepError(
            data, band, reps, 0xAB2 ^ static_cast<std::uint64_t>(h),
            [&, h](Rng& rng) -> AnswerFn {
              SimpleTreeHistogramOptions options;
              options.height = h;
              auto hist = std::make_shared<SpatialHistogram>(
                  BuildSimpleTreeHistogram(data.points, data.domain, epsilon,
                                           options, rng));
              return [hist](const Box& q) { return hist->Query(q); };
            }));
      }
      table.AddRow(FormatCell(epsilon), row);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Ablation: PrivTree vs the Algorithm-1 baseline across height limits\n"
      "h — the choice-of-h dilemma of Section 3.1.\n");
  privtree::bench::RunDataset("road");
  privtree::bench::RunDataset("gowalla");
  return 0;
}
