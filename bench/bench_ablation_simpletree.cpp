// Ablation (Section 3.1's motivating dilemma, made quantitative): the
// Algorithm-1 baseline SimpleTree swept over its height limit h, against
// PrivTree at the same ε.
//
// Expected shape: every h loses to PrivTree — small h cannot resolve the
// dense regions, large h drowns the split decisions in noise (λ = h/ε).
// This is the experiment that motivates the whole paper.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "eval/table.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const std::vector<std::int32_t> heights = {2, 4, 6, 8, 10, 12};

  struct Column {
    std::string label;
    MethodSpec spec;
    std::uint64_t seed;
  };
  std::vector<Column> lineup = {
      {"PrivTree", {"privtree", "PrivTree", {}}, 0xAB1}};
  for (std::int32_t h : heights) {
    lineup.push_back(
        {"Alg1 h=" + std::to_string(h),
         {"simpletree", "SimpleTree", {{"height", std::to_string(h)}}},
         0xAB2 ^ static_cast<std::uint64_t>(h)});
  }
  std::vector<std::string> columns;
  for (const Column& c : lineup) columns.push_back(c.label);

  std::vector<std::vector<std::vector<double>>> errors(
      BandNames().size(),
      std::vector<std::vector<double>>(PaperEpsilons().size()));
  for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
    const double epsilon = PaperEpsilons()[e];
    for (const Column& column : lineup) {
      const std::vector<double> band_errors =
          RegistryBandErrors(data, column.spec, epsilon, reps, column.seed);
      for (std::size_t band = 0; band < band_errors.size(); ++band) {
        errors[band][e].push_back(band_errors[band]);
      }
    }
  }
  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("Ablation: " + name + " - " + BandNames()[band] +
                           " queries, PrivTree vs Algorithm 1 (h sweep)",
                       "epsilon", columns);
    for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
      table.AddRow(FormatCell(PaperEpsilons()[e]), errors[band][e]);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Ablation: PrivTree vs the Algorithm-1 baseline across height limits\n"
      "h — the choice-of-h dilemma of Section 3.1.\n");
  privtree::bench::RunDataset("road");
  privtree::bench::RunDataset("gowalla");
  return 0;
}
