// Figure 11 (Appendix C): sensitivity of Hierarchy to its height h,
// h ∈ {3, ..., 8} with per-dimension branching re-derived from the target
// leaf resolution.  2-d datasets only (as in the paper).
//
// Expected shape: h = 3 (the [42] heuristic) best in most settings.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "eval/table.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  std::vector<std::string> columns;
  for (int h = 3; h <= 8; ++h) columns.push_back("h=" + std::to_string(h));
  std::vector<std::vector<std::vector<double>>> errors(
      BandNames().size(),
      std::vector<std::vector<double>>(PaperEpsilons().size()));
  for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
    const double epsilon = PaperEpsilons()[e];
    for (int h = 3; h <= 8; ++h) {
      const MethodSpec spec{
          "hierarchy", "Hierarchy", {{"height", std::to_string(h)}}};
      const std::vector<double> band_errors = RegistryBandErrors(
          data, spec, epsilon, reps,
          0xF1B ^ static_cast<std::uint64_t>(h * 1000 + epsilon * 1e4));
      for (std::size_t band = 0; band < band_errors.size(); ++band) {
        errors[band][e].push_back(band_errors[band]);
      }
    }
  }
  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("Figure 11: " + name + " - " + BandNames()[band] +
                           " queries, Hierarchy height sweep",
                       "epsilon", columns);
    for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
      table.AddRow(FormatCell(PaperEpsilons()[e]), errors[band][e]);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 11 (PrivTree, SIGMOD 2016): impact of the\n"
      "tree height h on Hierarchy (2-d datasets only).\n");
  privtree::bench::RunDataset("road");
  privtree::bench::RunDataset("gowalla");
  return 0;
}
