// Figure 11 (Appendix C): sensitivity of Hierarchy to its height h,
// h ∈ {3, ..., 8} with per-dimension branching re-derived from the target
// leaf resolution.  2-d datasets only (as in the paper).
//
// Expected shape: h = 3 (the [42] heuristic) best in most settings.
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/table.h"
#include "hist/hierarchy.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  std::vector<std::string> columns;
  for (int h = 3; h <= 8; ++h) columns.push_back("h=" + std::to_string(h));
  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("Figure 11: " + name + " - " + BandNames()[band] +
                           " queries, Hierarchy height sweep",
                       "epsilon", columns);
    for (double epsilon : PaperEpsilons()) {
      std::vector<double> row;
      for (int h = 3; h <= 8; ++h) {
        row.push_back(SweepError(
            data, band, reps,
            0xF1B ^ static_cast<std::uint64_t>(h * 1000 + epsilon * 1e4),
            [&, h](Rng& rng) -> AnswerFn {
              HierarchyOptions options;
              options.height = h;
              auto hist = std::make_shared<HierarchyHistogram>(
                  data.points, data.domain, epsilon, options, rng);
              return [hist](const Box& q) { return hist->Query(q); };
            }));
      }
      table.AddRow(FormatCell(epsilon), row);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 11 (PrivTree, SIGMOD 2016): impact of the\n"
      "tree height h on Hierarchy (2-d datasets only).\n");
  privtree::bench::RunDataset("road");
  privtree::bench::RunDataset("gowalla");
  return 0;
}
