// Figure 8 (Appendix C): impact of PrivTree's fanout β on query accuracy.
// β = 2^d (full bisection) is compared against the round-robin variants
// β = 2^{d/2} and β = 2^{d/4} (the latter only for 4-d data).
//
// Expected shape: β = 2^d generally best; smaller β slightly worse because
// the deeper tree accrues larger bias terms; occasional wins for 2^{d/2}
// on 4-d data.
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench/bench_common.h"
#include "eval/table.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const int d = static_cast<int>(data.points.dim());

  std::vector<std::string> columns;
  std::vector<int> dims_per_split;
  for (int i = d; i >= 1; i /= 2) {
    columns.push_back("beta=2^" + std::to_string(i));
    dims_per_split.push_back(i);
    if (i == 1) break;
  }

  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("Figure 8: " + name + " - " + BandNames()[band] +
                           " queries (average relative error)",
                       "epsilon", columns);
    for (double epsilon : PaperEpsilons()) {
      std::vector<double> row;
      for (int dims : dims_per_split) {
        row.push_back(SweepError(
            data, band, reps,
            0xF18 ^ static_cast<std::uint64_t>(dims * 1000 + epsilon * 100),
            [&, dims](Rng& rng) -> AnswerFn {
              PrivTreeHistogramOptions options;
              options.dims_per_split = dims;
              auto hist = std::make_shared<SpatialHistogram>(
                  BuildPrivTreeHistogram(data.points, data.domain, epsilon,
                                         options, rng));
              return [hist](const Box& q) { return hist->Query(q); };
            }));
      }
      table.AddRow(FormatCell(epsilon), row);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 8 (PrivTree, SIGMOD 2016): impact of the\n"
      "tree fanout beta on PrivTree's accuracy.\n");
  for (const char* name : {"road", "gowalla", "nyc", "beijing"}) {
    privtree::bench::RunDataset(name);
  }
  return 0;
}
