// Figure 8 (Appendix C): impact of PrivTree's fanout β on query accuracy.
// β = 2^d (full bisection) is compared against the round-robin variants
// β = 2^{d/2} and β = 2^{d/4} (the latter only for 4-d data).
//
// Expected shape: β = 2^d generally best; smaller β slightly worse because
// the deeper tree accrues larger bias terms; occasional wins for 2^{d/2}
// on 4-d data.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "eval/table.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const int d = static_cast<int>(data.points.dim());

  std::vector<std::string> columns;
  std::vector<int> dims_per_split;
  for (int i = d; i >= 1; i /= 2) {
    columns.push_back("beta=2^" + std::to_string(i));
    dims_per_split.push_back(i);
    if (i == 1) break;
  }

  std::vector<std::vector<std::vector<double>>> errors(
      BandNames().size(),
      std::vector<std::vector<double>>(PaperEpsilons().size()));
  for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
    const double epsilon = PaperEpsilons()[e];
    for (int dims : dims_per_split) {
      const MethodSpec spec{
          "privtree", "PrivTree", {{"dims_per_split", std::to_string(dims)}}};
      const std::vector<double> band_errors = RegistryBandErrors(
          data, spec, epsilon, reps,
          0xF18 ^ static_cast<std::uint64_t>(dims * 1000 + epsilon * 100));
      for (std::size_t band = 0; band < band_errors.size(); ++band) {
        errors[band][e].push_back(band_errors[band]);
      }
    }
  }
  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("Figure 8: " + name + " - " + BandNames()[band] +
                           " queries (average relative error)",
                       "epsilon", columns);
    for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
      table.AddRow(FormatCell(PaperEpsilons()[e]), errors[band][e]);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 8 (PrivTree, SIGMOD 2016): impact of the\n"
      "tree fanout beta on PrivTree's accuracy.\n");
  for (const char* name : {"road", "gowalla", "nyc", "beijing"}) {
    privtree::bench::RunDataset(name);
  }
  return 0;
}
