// Hot-path cost of the observability primitives: ns per operation for
// Counter::Inc, Gauge::Set/SetMax, and Histogram::Observe, single-threaded
// and under 8-thread contention.  The design target the registry was built
// to (sharded relaxed atomics, cached handles): a counter increment stays
// under 10 ns on commodity hardware, so sprinkling counters through the
// serving path is free relative to a ~µs request.
//
//   bench_obs_metrics [--json[=PATH]] [--ops=N]
//
// Under PRIVTREE_DISABLE_METRICS every primitive compiles to a no-op and
// the numbers collapse to loop overhead — running both builds bounds the
// instrumentation cost directly.  Writes BENCH_obs_metrics.json with
// --json for the committed snapshot trail.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace {

using Clock = std::chrono::steady_clock;

/// Seconds of wall clock for `ops` iterations of `body(i)` across
/// `threads` threads (each runs the full `ops` count, so the reported
/// per-op cost is per *calling thread* — contention shows up directly).
template <typename Body>
double TimeThreads(std::size_t threads, std::uint64_t ops, Body body) {
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&go, ops, body, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < ops; ++i) body(i, t);
    });
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  const char* op;
  double single_ns = 0.0;
  double contended_ns = 0.0;  // 8 threads, per-thread per-op.
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::uint64_t ops = 20'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_obs_metrics.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--ops=", 0) == 0) {
      ops = std::strtoull(arg.c_str() + std::strlen("--ops="), nullptr, 10);
      if (ops == 0) ops = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--json[=PATH]] [--ops=N]\n", argv[0]);
      return 2;
    }
  }

  using privtree::obs::Counter;
  using privtree::obs::Gauge;
  using privtree::obs::Histogram;
  using privtree::obs::Registry;

  // Handles resolved once, exactly as production call sites hold them.
  Counter& counter = Registry::Global().GetCounter("bench.counter");
  Gauge& gauge = Registry::Global().GetGauge("bench.gauge");
  Histogram& histogram = Registry::Global().GetHistogram("bench.histogram");

  constexpr std::size_t kContended = 8;
  std::vector<Row> rows;
  const auto measure = [&](const char* op, auto body) {
    Row row{op};
    // Warm-up pass primes the thread-local shard indices and the caches.
    // lint-ok: discarded-status — warm-up timing is deliberately dropped.
    (void)TimeThreads(1, ops / 10 + 1, body);
    row.single_ns = TimeThreads(1, ops, body) * 1e9 /
                    static_cast<double>(ops);
    row.contended_ns = TimeThreads(kContended, ops, body) * 1e9 /
                       static_cast<double>(ops);
    rows.push_back(row);
  };

  measure("counter_inc",
          [&counter](std::uint64_t, std::size_t) { counter.Inc(); });
  measure("gauge_set",
          [&gauge](std::uint64_t i, std::size_t) { gauge.Set(i); });
  measure("gauge_setmax",
          [&gauge](std::uint64_t i, std::size_t) { gauge.SetMax(i); });
  measure("histogram_observe", [&histogram](std::uint64_t i, std::size_t) {
    histogram.Observe(i & 0xFFFF);  // Mixed buckets, no div in the loop.
  });

  std::printf("observability hot path, %llu ops/thread "
              "(contended = %zu threads, per-thread per-op):\n",
              static_cast<unsigned long long>(ops), kContended);
  std::printf("  %-20s %12s %14s\n", "op", "single ns", "contended ns");
  for (const Row& row : rows) {
    std::printf("  %-20s %12.2f %14.2f\n", row.op, row.single_ns,
                row.contended_ns);
  }
#ifdef PRIVTREE_NO_METRICS
  std::printf("metrics compiled out (PRIVTREE_DISABLE_METRICS): numbers "
              "above are loop overhead only\n");
#else
  // The design target, asserted softly: CI boxes are noisy, so a miss is
  // a loud warning, not a failure — the committed JSON carries the trend.
  for (const Row& row : rows) {
    if (std::strcmp(row.op, "counter_inc") == 0 && row.single_ns >= 10.0) {
      std::fprintf(stderr,
                   "warning: counter_inc %.2f ns/op exceeds the 10 ns "
                   "design target\n",
                   row.single_ns);
    }
  }
  if (counter.Value() == 0) {
    std::fprintf(stderr, "error: counter never incremented\n");
    return 1;
  }
#endif

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"ops_per_thread\": %llu,\n"
                    "  \"contended_threads\": %zu,\n"
                    "  \"metrics_compiled_out\": %s,\n  \"ops\": [\n",
                 static_cast<unsigned long long>(ops), kContended,
#ifdef PRIVTREE_NO_METRICS
                 "true"
#else
                 "false"
#endif
    );
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "    {\"op\": \"%s\", \"single_ns\": %.3f, "
                   "\"contended_ns\": %.3f}%s\n",
                   rows[i].op, rows[i].single_ns, rows[i].contended_ns,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}
