// Figure 6 (+ Table 3): precision of top-k frequent string mining on the
// two sequence datasets, k ∈ {50, 100, 200}, for Truncate (non-private),
// PrivTree (private PST), N-gram and EM.
//
// The private tree methods (PrivTree, N-gram) fit through the release
// registry via eval::RegistrySequenceModelMetric — the same
// serve::ParallelRunner / SharedSynopsisCache path the server dispatches,
// so this bench exercises (and memoizes across the k sweep) exactly the
// synopses a served tenant would get.  EM releases strings, not a
// generative model, and Truncate is the non-private baseline; both stay
// direct.
//
// Expected shape (Section 6.2): PrivTree > N-gram > EM among the private
// methods; Truncate flat in ε; PrivTree approaches (and on msnbc at large ε
// can exceed) Truncate.
#include <cstdio>

#include "bench/bench_seq_common.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "release/options.h"
#include "seq/em_topk.h"
#include "seq/model.h"
#include "seq/topk.h"

namespace privtree {
namespace bench {
namespace {

MethodSpec SequenceSpec(const std::string& name, const std::string& display,
                        std::size_t l_top) {
  release::MethodOptions options;
  options.Set("l_top", std::to_string(l_top));
  return {name, display, std::move(options)};
}

void RunDataset(const std::string& name) {
  const SequenceCase data = MakeSequenceCase(name);
  std::printf("[Table 3] %s: |I|=%zu n=%zu avg_len=%.2f l_top=%zu\n",
              name.c_str(), data.raw.alphabet_size(), data.raw.size(),
              data.raw.AverageLength(), data.l_top);

  const std::size_t reps = Repetitions(3);
  const MethodSpec pst_spec =
      SequenceSpec("pst_privtree", "PrivTree", data.l_top);
  const MethodSpec ngram_spec = SequenceSpec("ngram", "N-gram", data.l_top);
  // Ground truth is computed on the *raw* data, as in the paper (the
  // methods see only the truncated data; Truncate's precision gap at k is
  // exactly the information lost to truncation).
  for (std::size_t k : {std::size_t{50}, std::size_t{100}, std::size_t{200}}) {
    const TopKStrings exact = ExactTopKStrings(data.raw, k, kTopKMaxLen);
    const TopKStrings truncate_answer =
        ExactTopKStrings(data.truncated, k, kTopKMaxLen);
    const double truncate_precision = TopKPrecision(exact, truncate_answer);

    TablePrinter table(
        "Figure 6: " + name + " - top" + std::to_string(k) + " precision",
        "epsilon", {"Truncate", "PrivTree", "N-gram", "EM"});
    for (double epsilon : PaperEpsilons()) {
      const double pst_precision = RegistrySequenceModelMetric(
          pst_spec, data.truncated, epsilon, reps, 0xF16A,
          [&](const SequenceModel& model, Rng&) {
            return TopKPrecision(exact, TopKFromModel(model, k, kTopKMaxLen));
          });
      const double ngram_precision = RegistrySequenceModelMetric(
          ngram_spec, data.truncated, epsilon, reps, 0xF16B,
          [&](const SequenceModel& model, Rng&) {
            return TopKPrecision(exact, TopKFromModel(model, k, kTopKMaxLen));
          });
      const double em_precision = MeanOverReps(reps, 0xF16C, [&](Rng& rng) {
        EmTopKOptions options;
        options.l_top = data.l_top;
        return TopKPrecision(
            exact, EmTopKStrings(data.truncated, epsilon, k, options, rng));
      });
      table.AddRow(FormatCell(epsilon), {truncate_precision, pst_precision,
                                         ngram_precision, em_precision});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 6 / Table 3 (PrivTree, SIGMOD 2016): top-k\n"
      "frequent string mining precision.  Synthetic stand-ins for\n"
      "mooc/msnbc; see DESIGN.md.\n");
  privtree::bench::RunDataset("mooc");
  privtree::bench::RunDataset("msnbc");
  return 0;
}
