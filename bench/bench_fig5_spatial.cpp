// Figure 5 (+ Table 2): relative error of range-count queries on the four
// spatial datasets, for PrivTree and the five baselines, across the paper's
// ε grid and three query-size bands.
//
// Methods are not hard-coded: the lineup comes from the release-method
// registry via ComparativeLineup(), so a newly registered backend joins
// this comparison by adding itself to the lineup — no bench changes.
//
// Expected shape (Section 6.1): PrivTree best everywhere; the gap largest
// on the highly skewed datasets (road, NYC); AG between UG and PrivTree on
// 2-d; DAWA the closest competitor; AG/Hierarchy omitted on 4-d data, as
// in the paper.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "eval/table.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  std::printf("[Table 2] %s: d=%zu n=%zu\n", name.c_str(),
              data.points.dim(), data.points.size());

  const std::vector<MethodSpec> lineup =
      ComparativeLineup(data.points.dim(), DiscretizationCells());
  std::vector<std::string> columns;
  for (const MethodSpec& spec : lineup) columns.push_back(spec.display);

  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table(
        "Figure 5: " + name + " - " + BandNames()[band] +
            " queries (average relative error)",
        "epsilon", columns);
    for (double epsilon : PaperEpsilons()) {
      std::vector<double> row;
      for (const MethodSpec& spec : lineup) {
        const std::uint64_t seed =
            std::hash<std::string>{}(spec.display) ^
            static_cast<std::uint64_t>(epsilon * 1e6);
        row.push_back(RegistryMethodError(spec, data.points, data.domain,
                                          epsilon, data.queries[band],
                                          data.exact[band], reps, seed));
      }
      table.AddRow(FormatCell(epsilon), row);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 5 / Table 2 (PrivTree, SIGMOD 2016).\n"
      "Synthetic stand-ins for road/Gowalla/NYC/Beijing; see DESIGN.md.\n"
      "Note: the reimplemented DAWA is workload-agnostic (DESIGN.md §4).\n");
  for (const char* name : {"road", "gowalla", "nyc", "beijing"}) {
    privtree::bench::RunDataset(name);
  }
  return 0;
}
