// Figure 5 (+ Table 2): relative error of range-count queries on the four
// spatial datasets, for PrivTree and the five baselines, across the paper's
// ε grid and three query-size bands.
//
// Expected shape (Section 6.1): PrivTree best everywhere; the gap largest
// on the highly skewed datasets (road, NYC); AG between UG and PrivTree on
// 2-d; DAWA the closest competitor; AG/Hierarchy omitted on 4-d data, as
// in the paper.
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench/bench_common.h"
#include "eval/table.h"
#include "hist/ag.h"
#include "hist/dawa.h"
#include "hist/hierarchy.h"
#include "hist/ug.h"
#include "hist/wavelet.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const bool two_d = data.points.dim() == 2;
  std::printf("[Table 2] %s: d=%zu n=%zu\n", name.c_str(),
              data.points.dim(), data.points.size());

  std::vector<std::string> methods = {"PrivTree", "UG"};
  if (two_d) {
    methods.push_back("AG");
    methods.push_back("Hierarchy");
  }
  methods.push_back("DAWA");
  methods.push_back("Privelet*");

  const auto build_for = [&](const std::string& method,
                             double epsilon) -> BuildFn {
    if (method == "PrivTree") {
      return [&, epsilon](Rng& rng) -> AnswerFn {
        auto hist = std::make_shared<SpatialHistogram>(
            BuildPrivTreeHistogram(data.points, data.domain, epsilon, {},
                                   rng));
        return [hist](const Box& q) { return hist->Query(q); };
      };
    }
    if (method == "UG") {
      return [&, epsilon](Rng& rng) -> AnswerFn {
        auto grid = std::make_shared<GridHistogram>(
            BuildUniformGrid(data.points, data.domain, epsilon, {}, rng));
        return [grid](const Box& q) { return grid->Query(q); };
      };
    }
    if (method == "AG") {
      return [&, epsilon](Rng& rng) -> AnswerFn {
        auto grid = std::make_shared<AdaptiveGrid>(data.points, data.domain,
                                                   epsilon,
                                                   AdaptiveGridOptions{},
                                                   rng);
        return [grid](const Box& q) { return grid->Query(q); };
      };
    }
    if (method == "Hierarchy") {
      return [&, epsilon](Rng& rng) -> AnswerFn {
        auto hist = std::make_shared<HierarchyHistogram>(
            data.points, data.domain, epsilon, HierarchyOptions{}, rng);
        return [hist](const Box& q) { return hist->Query(q); };
      };
    }
    if (method == "DAWA") {
      return [&, epsilon](Rng& rng) -> AnswerFn {
        DawaOptions options;
        options.target_total_cells = DiscretizationCells();
        auto grid = std::make_shared<GridHistogram>(BuildDawaHistogram(
            data.points, data.domain, epsilon, options, rng));
        return [grid](const Box& q) { return grid->Query(q); };
      };
    }
    PRIVTREE_CHECK(method == "Privelet*");
    return [&, epsilon](Rng& rng) -> AnswerFn {
      PriveletOptions options;
      options.target_total_cells = DiscretizationCells();
      auto grid = std::make_shared<GridHistogram>(BuildPriveletHistogram(
          data.points, data.domain, epsilon, options, rng));
      return [grid](const Box& q) { return grid->Query(q); };
    };
  };

  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table(
        "Figure 5: " + name + " - " + BandNames()[band] +
            " queries (average relative error)",
        "epsilon", methods);
    for (double epsilon : PaperEpsilons()) {
      std::vector<double> row;
      for (const std::string& method : methods) {
        row.push_back(SweepError(data, band, reps,
                                 std::hash<std::string>{}(method) ^
                                     static_cast<std::uint64_t>(
                                         epsilon * 1e6),
                                 build_for(method, epsilon)));
      }
      table.AddRow(FormatCell(epsilon), row);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 5 / Table 2 (PrivTree, SIGMOD 2016).\n"
      "Synthetic stand-ins for road/Gowalla/NYC/Beijing; see DESIGN.md.\n"
      "Note: the reimplemented DAWA is workload-agnostic (DESIGN.md §4).\n");
  for (const char* name : {"road", "gowalla", "nyc", "beijing"}) {
    privtree::bench::RunDataset(name);
  }
  return 0;
}
