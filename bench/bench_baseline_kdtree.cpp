// Supplementary baseline: the private k-d tree of Xiao et al. [51], which
// the paper's related-work section reports to be inferior to UG/AG — this
// bench verifies that ordering holds in our reproduction too, alongside
// PrivTree.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "eval/table.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);

  struct Column {
    std::string label;
    MethodSpec spec;
    std::uint64_t seed;
  };
  std::vector<Column> lineup = {
      {"PrivTree", {"privtree", "PrivTree", {}}, 0xD1},
      {"UG", {"ug", "UG", {}}, 2},
  };
  for (std::int32_t h : {8, 12}) {
    lineup.push_back({"KD h=" + std::to_string(h),
                      {"kdtree", "KD", {{"height", std::to_string(h)}}},
                      3 + static_cast<std::uint64_t>(h)});
  }
  std::vector<std::string> columns;
  for (const Column& c : lineup) columns.push_back(c.label);

  std::vector<std::vector<std::vector<double>>> errors(
      BandNames().size(),
      std::vector<std::vector<double>>(PaperEpsilons().size()));
  for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
    const double epsilon = PaperEpsilons()[e];
    for (const Column& column : lineup) {
      const std::vector<double> band_errors =
          RegistryBandErrors(data, column.spec, epsilon, reps, column.seed);
      for (std::size_t band = 0; band < band_errors.size(); ++band) {
        errors[band][e].push_back(band_errors[band]);
      }
    }
  }
  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("KD baseline: " + name + " - " + BandNames()[band] +
                           " queries (average relative error)",
                       "epsilon", columns);
    for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
      table.AddRow(FormatCell(PaperEpsilons()[e]), errors[band][e]);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Supplementary baseline: private k-d tree [51] vs UG vs PrivTree\n"
      "(the paper's related work reports KD < UG/AG in utility).\n");
  privtree::bench::RunDataset("road");
  privtree::bench::RunDataset("gowalla");
  return 0;
}
