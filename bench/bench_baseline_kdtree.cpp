// Supplementary baseline: the private k-d tree of Xiao et al. [51], which
// the paper's related-work section reports to be inferior to UG/AG — this
// bench verifies that ordering holds in our reproduction too, alongside
// PrivTree.
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/table.h"
#include "hist/kdtree.h"
#include "hist/ug.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const std::vector<std::string> columns = {"PrivTree", "UG", "KD h=8",
                                            "KD h=12"};
  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("KD baseline: " + name + " - " + BandNames()[band] +
                           " queries (average relative error)",
                       "epsilon", columns);
    for (double epsilon : PaperEpsilons()) {
      std::vector<double> row;
      row.push_back(SweepError(data, band, reps, 0xD1,
                               [&](Rng& rng) -> AnswerFn {
                                 auto hist = std::make_shared<SpatialHistogram>(
                                     BuildPrivTreeHistogram(
                                         data.points, data.domain, epsilon,
                                         {}, rng));
                                 return [hist](const Box& q) {
                                   return hist->Query(q);
                                 };
                               }));
      row.push_back(SweepError(
          data, band, reps, 2,
          [&](Rng& rng) -> AnswerFn {
            auto grid = std::make_shared<GridHistogram>(BuildUniformGrid(
                data.points, data.domain, epsilon, {}, rng));
            return [grid](const Box& q) { return grid->Query(q); };
          }));
      for (std::int32_t h : {8, 12}) {
        row.push_back(SweepError(
            data, band, reps, 3 + static_cast<std::uint64_t>(h),
            [&, h](Rng& rng) -> AnswerFn {
              KdTreeOptions options;
              options.height = h;
              auto hist = std::make_shared<KdTreeHistogram>(
                  data.points, data.domain, epsilon, options, rng);
              return [hist](const Box& q) { return hist->Query(q); };
            }));
      }
      table.AddRow(FormatCell(epsilon), row);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Supplementary baseline: private k-d tree [51] vs UG vs PrivTree\n"
      "(the paper's related work reports KD < UG/AG in utility).\n");
  privtree::bench::RunDataset("road");
  privtree::bench::RunDataset("gowalla");
  return 0;
}
